#!/usr/bin/env bash
# Hermetic CI gate for the RSE workspace.
#
# Everything here must pass with zero network access: the workspace has
# no external crate dependencies (see DESIGN.md, "Hermetic dependency
# policy"), so --offline is load-bearing, not an optimisation.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo build --benches --offline"
cargo build --benches --offline --workspace

echo "== cargo test -q --offline (workspace)"
cargo test -q --offline --workspace

echo "== fault-injection smoke campaign (64 runs, fixed seed)"
# The campaign is a pure function of the seed: two invocations must be
# byte-identical, and both must match the pinned golden histogram. A
# diff here means an intentional behavior change — regenerate with:
#   cargo run --release --offline -p rse-bench --bin campaign -- \
#     --smoke --no-table --out tests/golden/campaign_smoke.jsonl
SMOKE_A="$(mktemp)"; SMOKE_B="$(mktemp)"
trap 'rm -f "$SMOKE_A" "$SMOKE_B"' EXIT
cargo run --release --offline -q -p rse-bench --bin campaign -- \
  --smoke --no-table --out "$SMOKE_A" 2>/dev/null
cargo run --release --offline -q -p rse-bench --bin campaign -- \
  --smoke --no-table --out "$SMOKE_B" 2>/dev/null
cmp "$SMOKE_A" "$SMOKE_B" \
  || { echo "FAIL: smoke campaign is nondeterministic"; exit 1; }
diff -u tests/golden/campaign_smoke.jsonl "$SMOKE_A" \
  || { echo "FAIL: smoke campaign diverges from pinned golden"; exit 1; }
echo "smoke campaign: deterministic and matches golden (64 runs)"

echo "== fault-injection control campaign (zero faults => 100% masked)"
cargo run --release --offline -q -p rse-bench --bin campaign -- \
  --control --runs 2 --no-table >/dev/null

echo "== quarantine campaign (module-targeted faults, fixed seed)"
# Same double-replay + pinned-golden discipline as the smoke campaign.
# Regenerate with:
#   cargo run --release --offline -p rse-bench --bin campaign -- \
#     --quarantine --runs 4 --no-table --out tests/golden/campaign_quarantine.jsonl
QUAR_A="$(mktemp)"; QUAR_B="$(mktemp)"
trap 'rm -f "$SMOKE_A" "$SMOKE_B" "$QUAR_A" "$QUAR_B"' EXIT
cargo run --release --offline -q -p rse-bench --bin campaign -- \
  --quarantine --runs 4 --no-table --out "$QUAR_A" 2>/dev/null
cargo run --release --offline -q -p rse-bench --bin campaign -- \
  --quarantine --runs 4 --no-table --out "$QUAR_B" 2>/dev/null
cmp "$QUAR_A" "$QUAR_B" \
  || { echo "FAIL: quarantine campaign is nondeterministic"; exit 1; }
diff -u tests/golden/campaign_quarantine.jsonl "$QUAR_A" \
  || { echo "FAIL: quarantine campaign diverges from pinned golden"; exit 1; }
echo "quarantine campaign: deterministic and matches golden (28 runs)"

echo "== adversarial attack smoke campaign (100 runs, fixed seed)"
# Same double-replay + pinned-golden discipline as the fault campaigns,
# and neither tiering nor sharding may change a byte. Regenerate with:
#   cargo run --release --offline -p rse-bench --bin attack_campaign -- \
#     --smoke --no-table --out tests/golden/attack_smoke.jsonl
ATK_A="$(mktemp)"; ATK_B="$(mktemp)"; ATK_T="$(mktemp)"; ATK_S="$(mktemp)"
trap 'rm -f "$SMOKE_A" "$SMOKE_B" "$QUAR_A" "$QUAR_B" "$ATK_A" "$ATK_B" "$ATK_T" "$ATK_S"' EXIT
cargo run --release --offline -q -p rse-bench --bin attack_campaign -- \
  --smoke --no-table --out "$ATK_A" 2>/dev/null
cargo run --release --offline -q -p rse-bench --bin attack_campaign -- \
  --smoke --no-table --out "$ATK_B" 2>/dev/null
cmp "$ATK_A" "$ATK_B" \
  || { echo "FAIL: attack campaign is nondeterministic"; exit 1; }
diff -u tests/golden/attack_smoke.jsonl "$ATK_A" \
  || { echo "FAIL: attack campaign diverges from pinned golden"; exit 1; }
cargo run --release --offline -q -p rse-bench --bin attack_campaign -- \
  --smoke --no-table --tiered --out "$ATK_T" 2>/dev/null
diff -u tests/golden/attack_smoke.jsonl "$ATK_T" \
  || { echo "FAIL: --tiered attack campaign diverges from pinned golden"; exit 1; }
cargo run --release --offline -q -p rse-bench --bin attack_campaign -- \
  --smoke --no-table --threads 4 --out "$ATK_S" 2>/dev/null
diff -u tests/golden/attack_smoke.jsonl "$ATK_S" \
  || { echo "FAIL: 4-thread attack campaign diverges from pinned golden"; exit 1; }
echo "attack campaign: deterministic (plain/tiered/sharded) and matches golden (100 runs)"

echo "== adaptive attack campaign (66 runs: chains, recovery strikes, DSM)"
# The adaptive spec (multi-stage chains + the instruction-stream models
# against the DSM twins) gets the same double-replay + pinned-golden
# discipline: strike-bearing rollback re-executions always run
# cycle-accurate, so neither tiering nor sharding may change a byte.
# Regenerate with:
#   cargo run --release --offline -p rse-bench --bin attack_campaign -- \
#     --adaptive --no-table --out tests/golden/attack_adaptive.jsonl
ADP_A="$(mktemp)"; ADP_B="$(mktemp)"; ADP_T="$(mktemp)"; ADP_S="$(mktemp)"
trap 'rm -f "$SMOKE_A" "$SMOKE_B" "$QUAR_A" "$QUAR_B" "$ATK_A" "$ATK_B" "$ATK_T" "$ATK_S" "$ADP_A" "$ADP_B" "$ADP_T" "$ADP_S"' EXIT
cargo run --release --offline -q -p rse-bench --bin attack_campaign -- \
  --adaptive --no-table --out "$ADP_A" 2>/dev/null
cargo run --release --offline -q -p rse-bench --bin attack_campaign -- \
  --adaptive --no-table --out "$ADP_B" 2>/dev/null
cmp "$ADP_A" "$ADP_B" \
  || { echo "FAIL: adaptive campaign is nondeterministic"; exit 1; }
diff -u tests/golden/attack_adaptive.jsonl "$ADP_A" \
  || { echo "FAIL: adaptive campaign diverges from pinned golden"; exit 1; }
cargo run --release --offline -q -p rse-bench --bin attack_campaign -- \
  --adaptive --no-table --tiered --out "$ADP_T" 2>/dev/null
diff -u tests/golden/attack_adaptive.jsonl "$ADP_T" \
  || { echo "FAIL: --tiered adaptive campaign diverges from pinned golden"; exit 1; }
cargo run --release --offline -q -p rse-bench --bin attack_campaign -- \
  --adaptive --no-table --threads 4 --out "$ADP_S" 2>/dev/null
diff -u tests/golden/attack_adaptive.jsonl "$ADP_S" \
  || { echo "FAIL: 4-thread adaptive campaign diverges from pinned golden"; exit 1; }
# The tentpole claim, gated directly on the artifact: the DSM-guarded
# twin never loses an inst-skip run (the ICM-only blind spot), and no
# defended adaptive run ends in a silent compromise.
if grep '"victim":"seq_guard"' "$ADP_A" | grep '"model":"inst-skip"' \
    | grep -qv '"outcome":"detected:DSM"'; then
  echo "FAIL: a seq_guard inst-skip run was not detected by the DSM"; exit 1
fi
if grep '"defended":true' "$ADP_A" | grep -q '"outcome":"compromised"'; then
  echo "FAIL: a defended adaptive run was silently compromised"; exit 1
fi
grep -q '"recovery":"recovered:retry' "$ADP_A" \
  || { echo "FAIL: no adaptive run exercised the bounded retry path"; exit 1; }
grep -q '"recovery":"failed-safe-halt"' "$ADP_A" \
  || { echo "FAIL: no adaptive run escalated past the retry budget"; exit 1; }
echo "adaptive campaign: deterministic (plain/tiered/sharded), DSM closes inst-skip (66 runs)"

echo "== attack control campaign (zero attacks => 100% prevented)"
# The attack_campaign binary itself exits non-zero unless every control
# record is prevented/not-needed/attack=none — including the DSM twins,
# whose sequence monitor must stay silent on a fault-free run.
cargo run --release --offline -q -p rse-bench --bin attack_campaign -- \
  --control --runs 2 --no-table >/dev/null

echo "== randomization entropy study (4-victim corpus, success vs rerand period)"
# Regenerates the committed BENCH_attack.json (one JSON line per victim
# kind) and gates the paper's §4.1 claim two ways: the binary exits
# non-zero unless the success count falls strictly at every period step
# of every victim's sweep, and an independent awk pass re-checks the
# committed artifact for the per-victim monotone decrease.
# Regenerate with:
#   cargo run --release --offline -p rse-bench --bin attack_campaign -- \
#     --entropy --out BENCH_attack.json
ENT_A="$(mktemp)"
trap 'rm -f "$SMOKE_A" "$SMOKE_B" "$QUAR_A" "$QUAR_B" "$ATK_A" "$ATK_B" "$ATK_T" "$ATK_S" "$ADP_A" "$ADP_B" "$ADP_T" "$ADP_S" "$ENT_A"' EXIT
cargo run --release --offline -q -p rse-bench --bin attack_campaign -- \
  --entropy --out "$ENT_A" 2>/dev/null \
  || { echo "FAIL: entropy study failed its strict-decrease gate"; exit 1; }
diff -u BENCH_attack.json "$ENT_A" \
  || { echo "FAIL: entropy study diverges from committed BENCH_attack.json"; exit 1; }
# Each line is one victim's sweep; the strict decrease must hold within
# every line independently (the count resets to the static baseline at
# the start of the next victim).
awk '{
    n = 0; line = $0
    while (match(line, /"successes":[0-9]+/)) {
      v = substr(line, RSTART + 12, RLENGTH - 12) + 0
      if (n > 0 && v >= prev) bad = 1
      prev = v; n++
      line = substr(line, RSTART + RLENGTH)
    }
    if (n < 2) short = 1
  } END {
    if (NR < 4) { print "FAIL: entropy study is missing victim kinds"; exit 1 }
    if (short) { print "FAIL: an entropy sweep has too few points"; exit 1 }
    if (bad) { print "FAIL: attack success not strictly decreasing for every victim"; exit 1 }
  }' BENCH_attack.json || exit 1
echo "entropy study: randomization strictly cuts attack success on all 4 victims; artifact matches"

echo "== fleet soak smoke campaign (52 runs, 5 nodes, fixed seed)"
# The fleet history is a pure function of (config, seed, fault): two
# invocations must be byte-identical and match the pinned golden.
# Regenerate with:
#   cargo run --release --offline -p rse-bench --bin fleet_soak -- \
#     --smoke --no-table --out tests/golden/fleet_soak_smoke.jsonl
FLEET_A="$(mktemp)"; FLEET_B="$(mktemp)"
trap 'rm -f "$SMOKE_A" "$SMOKE_B" "$QUAR_A" "$QUAR_B" "$ATK_A" "$ATK_B" "$ATK_T" "$ATK_S" "$ADP_A" "$ADP_B" "$ADP_T" "$ADP_S" "$ENT_A" "$FLEET_A" "$FLEET_B"' EXIT
cargo run --release --offline -q -p rse-bench --bin fleet_soak -- \
  --smoke --no-table --out "$FLEET_A" 2>/dev/null
cargo run --release --offline -q -p rse-bench --bin fleet_soak -- \
  --smoke --no-table --out "$FLEET_B" 2>/dev/null
cmp "$FLEET_A" "$FLEET_B" \
  || { echo "FAIL: fleet soak is nondeterministic"; exit 1; }
diff -u tests/golden/fleet_soak_smoke.jsonl "$FLEET_A" \
  || { echo "FAIL: fleet soak diverges from pinned golden"; exit 1; }
if grep -q '"outcome":"split-brain"' "$FLEET_A"; then
  echo "FAIL: fleet soak observed split-brain"; exit 1
fi
if grep -q '"outcome":"false-suspicion"' "$FLEET_A"; then
  echo "FAIL: fleet soak observed false suspicion"; exit 1
fi
echo "fleet soak: deterministic, matches golden, no split-brain/false-suspicion (52 runs)"

echo "== fleet control soak (zero faults => 0 failovers, 0 false suspicions)"
# The fleet_soak binary itself exits non-zero unless every control run
# is masked with zero failovers and zero false suspicions.
cargo run --release --offline -q -p rse-bench --bin fleet_soak -- \
  --control --runs 2 --no-table >/dev/null

echo "== tiered + sharded smoke campaigns (must be byte-identical to golden)"
# Neither the functional fast-path (--tiered) nor run-level sharding
# (--threads) may change a single output byte: faulted runs stay fully
# cycle-accurate and the sharded merge is ordered by run index. All
# three variants must match the same pinned golden as the sequential
# smoke campaign above.
TIER_A="$(mktemp)"; SHARD_A="$(mktemp)"; BOTH_A="$(mktemp)"; FLEET_T="$(mktemp)"
trap 'rm -f "$SMOKE_A" "$SMOKE_B" "$QUAR_A" "$QUAR_B" "$ATK_A" "$ATK_B" "$ATK_T" "$ATK_S" "$ADP_A" "$ADP_B" "$ADP_T" "$ADP_S" "$ENT_A" "$FLEET_A" "$FLEET_B" "$TIER_A" "$SHARD_A" "$BOTH_A" "$FLEET_T"' EXIT
cargo run --release --offline -q -p rse-bench --bin campaign -- \
  --smoke --no-table --tiered --out "$TIER_A" 2>/dev/null
diff -u tests/golden/campaign_smoke.jsonl "$TIER_A" \
  || { echo "FAIL: --tiered smoke campaign diverges from pinned golden"; exit 1; }
cargo run --release --offline -q -p rse-bench --bin campaign -- \
  --smoke --no-table --threads 4 --out "$SHARD_A" 2>/dev/null
diff -u tests/golden/campaign_smoke.jsonl "$SHARD_A" \
  || { echo "FAIL: 4-thread smoke campaign diverges from pinned golden"; exit 1; }
cargo run --release --offline -q -p rse-bench --bin campaign -- \
  --smoke --no-table --tiered --threads 4 --out "$BOTH_A" 2>/dev/null
diff -u tests/golden/campaign_smoke.jsonl "$BOTH_A" \
  || { echo "FAIL: tiered+sharded smoke campaign diverges from pinned golden"; exit 1; }
echo "tiered/sharded smoke campaigns: byte-identical to pinned golden"

echo "== tiered fleet soak (cross-tier verification, same golden)"
cargo run --release --offline -q -p rse-bench --bin fleet_soak -- \
  --smoke --no-table --tiered --out "$FLEET_T" 2>/dev/null
diff -u tests/golden/fleet_soak_smoke.jsonl "$FLEET_T" \
  || { echo "FAIL: --tiered fleet soak diverges from pinned golden"; exit 1; }
echo "tiered fleet soak: byte-identical to pinned golden"

echo "== lockstep fleet soak (equivalence shim, same golden)"
# The event-driven scheduler is the default engine; --lockstep replays
# the same smoke spec on the legacy per-cycle engine. Both must match
# the SAME pinned golden byte-for-byte — the discrete-event refactor's
# standing equivalence proof.
FLEET_L="$(mktemp)"
trap 'rm -f "$SMOKE_A" "$SMOKE_B" "$QUAR_A" "$QUAR_B" "$ATK_A" "$ATK_B" "$ATK_T" "$ATK_S" "$ADP_A" "$ADP_B" "$ADP_T" "$ADP_S" "$ENT_A" "$FLEET_A" "$FLEET_B" "$TIER_A" "$SHARD_A" "$BOTH_A" "$FLEET_T" "$FLEET_L"' EXIT
cargo run --release --offline -q -p rse-bench --bin fleet_soak -- \
  --smoke --no-table --lockstep --out "$FLEET_L" 2>/dev/null
diff -u tests/golden/fleet_soak_smoke.jsonl "$FLEET_L" \
  || { echo "FAIL: lockstep engine diverges from the event-driven golden"; exit 1; }
echo "lockstep fleet soak: byte-identical to the event-driven golden"

echo "== 1k-node churn smoke campaign (chaos engine, fixed seed)"
# Three 1,000-node runs: the availability control, a correlated rack
# partition, and full weather (rolling restarts + rack cut + cascading
# failure). Double-replayed and diffed against the pinned golden under
# a wall-clock budget; any split-brain completion fails the gate, and
# the weather runs must actually fail over. Regenerate with:
#   cargo run --release --offline -p rse-bench --bin fleet_soak -- \
#     --churn --no-table --out tests/golden/churn_smoke.jsonl
CHURN_A="$(mktemp)"; CHURN_B="$(mktemp)"
trap 'rm -f "$SMOKE_A" "$SMOKE_B" "$QUAR_A" "$QUAR_B" "$ATK_A" "$ATK_B" "$ATK_T" "$ATK_S" "$ADP_A" "$ADP_B" "$ADP_T" "$ADP_S" "$ENT_A" "$FLEET_A" "$FLEET_B" "$TIER_A" "$SHARD_A" "$BOTH_A" "$FLEET_T" "$FLEET_L" "$CHURN_A" "$CHURN_B"' EXIT
timeout 300 cargo run --release --offline -q -p rse-bench --bin fleet_soak -- \
  --churn --no-table --out "$CHURN_A" --bench-json BENCH_fleet.json 2>/dev/null \
  || { echo "FAIL: churn smoke failed or blew the 300s wall-clock budget"; exit 1; }
timeout 300 cargo run --release --offline -q -p rse-bench --bin fleet_soak -- \
  --churn --no-table --out "$CHURN_B" 2>/dev/null \
  || { echo "FAIL: churn replay failed or blew the 300s wall-clock budget"; exit 1; }
cmp "$CHURN_A" "$CHURN_B" \
  || { echo "FAIL: churn campaign is nondeterministic"; exit 1; }
diff -u tests/golden/churn_smoke.jsonl "$CHURN_A" \
  || { echo "FAIL: churn campaign diverges from pinned golden"; exit 1; }
if grep -Eq '"split_brain":[1-9]' "$CHURN_A"; then
  echo "FAIL: churn campaign observed a split-brain completion"; exit 1
fi
grep -q '"model":"full-weather"' "$CHURN_A" \
  || { echo "FAIL: churn smoke is missing the full-weather run"; exit 1; }
if grep '"model":"full-weather"' "$CHURN_A" | grep -q '"failovers":0,'; then
  echo "FAIL: full-weather run executed no failovers"; exit 1
fi
grep -q '"events_per_sec":' BENCH_fleet.json \
  || { echo "FAIL: BENCH_fleet.json missing throughput numbers"; exit 1; }
echo "churn smoke: deterministic 1k-node weather, matches golden, zero split-brain"

echo "== tier 3: bounded model checking (rse-mc)"
# Four theorem binaries drive the REAL production types (ModuleHealth,
# Ioq, NodeProtocol) through every schedule of a bounded adversary and
# exit non-zero on any counterexample, printing the shrunk event trace.
# Depth bounds are fixed here for CI; RSE_MC_DEPTH overrides the
# exhaustive runs and RSE_MC_SWEEP_DEPTH the unbounded-window fleet
# sweep for deeper offline sessions. Each line reports the explored
# state count and whether the run closed the full reachable space
# (exhaustive=true).
cargo test -q --offline --release -p rse-mc
cargo run --release --offline -q -p rse-mc --bin mc_health
cargo run --release --offline -q -p rse-mc --bin mc_ioq
cargo run --release --offline -q -p rse-mc --bin mc_liveness
cargo run --release --offline -q -p rse-mc --bin mc_fleet
# The standing self-test that the theorems have teeth: removing the
# contact lease must produce a printed split-brain counterexample and
# a non-zero exit.
if RSE_MC_MUTATE=no-self-fence cargo run --release --offline -q \
    -p rse-mc --bin mc_fleet >"${TMPDIR:-/tmp}/mc_mutate.out" 2>&1; then
  echo "FAIL: seeded no-self-fence mutation was not caught"; exit 1
fi
grep -q "counterexample: invariant 'split-brain'" "${TMPDIR:-/tmp}/mc_mutate.out" \
  || { echo "FAIL: mutation run printed no counterexample trace"; exit 1; }
rm -f "${TMPDIR:-/tmp}/mc_mutate.out"
# Likewise for the health ladder the quarantine-evade attack leans on: a
# forged ErrorBurst storm that could jump straight to Disabled must be a
# printed legal-edge counterexample, not a pass.
if RSE_MC_MUTATE=forged-burst-disable cargo run --release --offline -q \
    -p rse-mc --bin mc_health >"${TMPDIR:-/tmp}/mc_mutate.out" 2>&1; then
  echo "FAIL: seeded forged-burst-disable mutation was not caught"; exit 1
fi
grep -q "counterexample: invariant 'legal-edge'" "${TMPDIR:-/tmp}/mc_mutate.out" \
  || { echo "FAIL: health mutation run printed no counterexample trace"; exit 1; }
rm -f "${TMPDIR:-/tmp}/mc_mutate.out"
echo "model checking: four theorem groups verified; seeded mutations caught"

echo "== tiered execution speed curve (BENCH_tiered.json, gate >= 5x)"
# Regenerates the committed perf-trajectory artifact and gates the
# smoke_baseline/smoke_tiered median speedup at 5x (measured ~8x; the
# margin absorbs noisy CI hosts).
rm -f BENCH_tiered.json
RSE_BENCH_SAMPLES=5 RSE_BENCH_JSON="$PWD/BENCH_tiered.json" \
  cargo bench -q --offline -p rse-bench --bench tiered
awk -F'"median_ns":' '
  /"name":"tiered\/smoke_baseline"/ { split($2, a, ","); base = a[1] }
  /"name":"tiered\/smoke_tiered"/   { split($2, a, ","); tier = a[1] }
  END {
    if (base == "" || tier == "" || tier <= 0) { print "FAIL: bench JSON incomplete"; exit 1 }
    x = base / tier
    printf "tiered smoke speedup: %.1fx\n", x
    if (x < 5) { print "FAIL: tiered speedup below 5x gate"; exit 1 }
  }' BENCH_tiered.json || exit 1

echo "CI OK"
