#!/usr/bin/env bash
# Hermetic CI gate for the RSE workspace.
#
# Everything here must pass with zero network access: the workspace has
# no external crate dependencies (see DESIGN.md, "Hermetic dependency
# policy"), so --offline is load-bearing, not an optimisation.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo build --benches --offline"
cargo build --benches --offline --workspace

echo "== cargo test -q --offline (workspace)"
cargo test -q --offline --workspace

echo "CI OK"
