//! Golden-model regression corpus: 32 fixed-seed generated programs
//! committed under `tests/corpus/`, with their expected final
//! architectural-state digests pinned in `tests/corpus/MANIFEST.txt`.
//!
//! Two guarantees, both independent of the randomized differential
//! harness:
//!
//! 1. **Golden stability** — the golden interpreter's final state for
//!    every corpus program matches the committed digest exactly. Any
//!    semantics change to the ISA, assembler, or interpreter shows up
//!    as a digest mismatch naming the program file.
//! 2. **Differential agreement** — the out-of-order pipeline (bare and
//!    with the RSE + runtime CHECKs) reproduces the golden state for
//!    every corpus program, so differential bugs reproduce from a plain
//!    `cargo test golden_corpus` with no seeds involved.
//!
//! Regenerating after an *intentional* semantics change:
//!
//! ```text
//! cargo test --test golden_corpus -- --ignored regenerate_corpus
//! ```
//!
//! then review the diff under `tests/corpus/` and commit it.

mod common;

use common::{generate_program, run_golden, run_pipeline, state_digest};
use rse::isa::asm::assemble;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The fixed corpus seeds. Chosen once (32 draws of splitmix64 from
/// `0xC0FFEE`) and frozen; the exact values are arbitrary but must
/// never change, since the committed programs were generated from them.
fn corpus_seeds() -> Vec<u64> {
    let mut state = 0xC0FFEEu64;
    (0..32)
        .map(|_| rse_support::rng::splitmix64(&mut state))
        .collect()
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

fn program_name(seed: u64) -> String {
    format!("prog_{seed:016x}.s")
}

/// Reads the manifest into `(file name, digest)` pairs.
fn read_manifest() -> Vec<(String, u64)> {
    let text = std::fs::read_to_string(corpus_dir().join("MANIFEST.txt"))
        .expect("tests/corpus/MANIFEST.txt exists (run the regenerate_corpus test)");
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (name, digest) = l
                .split_once(char::is_whitespace)
                .expect("manifest line shape");
            (
                name.to_string(),
                u64::from_str_radix(digest.trim(), 16).expect("hex digest"),
            )
        })
        .collect()
}

#[test]
fn corpus_is_complete() {
    let manifest = read_manifest();
    assert_eq!(manifest.len(), 32, "corpus must hold 32 programs");
    for seed in corpus_seeds() {
        let name = program_name(seed);
        assert!(
            manifest.iter().any(|(n, _)| *n == name),
            "manifest is missing {name}; regenerate the corpus"
        );
        assert!(
            corpus_dir().join(&name).exists(),
            "missing corpus file {name}"
        );
    }
}

/// Guarantee 1: golden interpreter state digests match the manifest.
#[test]
fn golden_state_digests_match_manifest() {
    for (name, expected) in read_manifest() {
        let src = std::fs::read_to_string(corpus_dir().join(&name)).expect("corpus file reads");
        let image = assemble(&src).unwrap_or_else(|e| panic!("{name} does not assemble: {e}"));
        let (regs, scratch, _) = run_golden(&image);
        let digest = state_digest(&regs, &scratch);
        assert_eq!(
            digest, expected,
            "golden-state digest mismatch for {name}: got {digest:016x}, manifest says \
             {expected:016x} — ISA/assembler/interpreter semantics changed"
        );
    }
}

/// Guarantee 2: the out-of-order pipeline agrees with the golden model
/// on every corpus program, bare and with the RSE attached.
#[test]
fn pipeline_matches_golden_on_corpus() {
    for (name, _) in read_manifest() {
        let src = std::fs::read_to_string(corpus_dir().join(&name)).expect("corpus file reads");
        let image = assemble(&src).unwrap_or_else(|e| panic!("{name} does not assemble: {e}"));
        let (gold_regs, gold_scratch, _) = run_golden(&image);
        for with_engine in [false, true] {
            let (regs, scratch, _) = run_pipeline(&image, with_engine);
            assert_eq!(
                regs, gold_regs,
                "register divergence on {name} (engine={with_engine})"
            );
            assert_eq!(
                scratch, gold_scratch,
                "memory divergence on {name} (engine={with_engine})"
            );
        }
    }
}

/// Writes `tests/corpus/` from the fixed seeds. Run explicitly after an
/// intentional semantics change; review the diff before committing.
#[test]
#[ignore = "regenerates the committed corpus; run explicitly"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let mut manifest = String::from(
        "# Golden corpus manifest: <program file> <FNV-1a64 digest of final golden state>\n\
         # Regenerate: cargo test --test golden_corpus -- --ignored regenerate_corpus\n",
    );
    for seed in corpus_seeds() {
        let name = program_name(seed);
        let src = generate_program(seed);
        let image = assemble(&src).unwrap_or_else(|e| panic!("seed {seed:#x}: {e}"));
        let (regs, scratch, _) = run_golden(&image);
        let digest = state_digest(&regs, &scratch);
        std::fs::write(dir.join(&name), &src).unwrap();
        writeln!(manifest, "{name} {digest:016x}").unwrap();
    }
    std::fs::write(dir.join("MANIFEST.txt"), manifest).unwrap();
}
