//! Cross-crate integration tests of the fleet heartbeat fabric: the
//! acceptance criteria of the fleet-scale AHBM extension, end-to-end.
//!
//! Everything here is deterministic — fixed seeds, fixed configs — so a
//! failure is a behavior change, never flake.

use rse::fleet::{FleetConfig, FleetSim, FleetSpec, NodeFault, NodeFaultModel, NodeFaultPlan};
use rse_inject::{Histogram, Outcome, RecoveryStatus};

fn cfg() -> FleetConfig {
    FleetConfig::default()
}

/// A crashed node's workload is declared dead by the surviving
/// coordinator, adopted from the replicated checkpoint, and completes
/// on the successor with the golden digest — the run classifies
/// `failover:<victim>` with `recovered:fleet-checkpoint-failover`.
#[test]
fn crash_failover_completes_on_successor() {
    let c = cfg();
    let profile = FleetSim::profile(&c, 0xAB5E);
    for victim in [0u16, 2, 4] {
        let fault = NodeFault::Crash {
            node: victim,
            at: profile.first_snap_sent_at + 1_200,
        };
        let out = FleetSim::run(&c, 0xAB5E, fault, &profile);
        assert_eq!(
            out.outcome,
            Outcome::Failover(victim),
            "victim {victim}: {out:?}"
        );
        assert_eq!(
            out.recovery,
            RecoveryStatus::Succeeded {
                mechanism: "fleet-checkpoint-failover"
            }
        );
        assert_eq!(out.outcome.tag(), format!("failover:n{victim}"));
    }
}

/// A partition that heals never produces split-brain, whatever its
/// duration: either the victim rides it out / is reinstated (masked)
/// or its lease fences it before the successor's adopted guest starts
/// (failover). Sweeps durations across the lease/detection boundaries.
#[test]
fn healed_partitions_sweep_without_split_brain() {
    let c = cfg();
    let profile = FleetSim::profile(&c, 0x9A17);
    for dur in [500u64, 1_500, 2_500, 3_500, 5_000, 8_000, 14_000] {
        let fault = NodeFault::Partition {
            node: 3,
            from: profile.first_snap_sent_at + 1_000,
            dur,
        };
        let out = FleetSim::run(&c, 0x9A17, fault, &profile);
        assert_ne!(out.outcome, Outcome::SplitBrain, "dur {dur}: {out:?}");
        assert_ne!(out.outcome, Outcome::FalseSuspicion, "dur {dur}: {out:?}");
        assert!(
            matches!(out.outcome, Outcome::Masked | Outcome::Failover(3)),
            "dur {dur}: {out:?}"
        );
    }
}

/// The zero-fault control fleet is perfectly quiet: no suspicion, no
/// failover, every workload masked on its original owner.
#[test]
fn control_fleet_shows_zero_false_suspicions() {
    let recs = rse::fleet::run_soak(&FleetSpec::control(0x5EED, 4));
    let hist = Histogram::from_records(&recs);
    assert_eq!(hist.total(), 4);
    assert_eq!(hist.count("masked"), 4);
    assert_eq!(hist.failovers(), 0);
    assert_eq!(hist.count("false-suspicion"), 0);
    assert_eq!(hist.count("split-brain"), 0);
}

/// The smoke soak (the CI spec) replays bit-identically and covers the
/// outcome classes the protocol promises: failovers for late
/// crashes/hangs, unrecovered for pre-replication crashes, masked for
/// slow nodes, and zero split-brain / false suspicion anywhere.
#[test]
fn smoke_soak_covers_all_promised_outcome_classes() {
    let spec = FleetSpec::smoke(0xF1EE7);
    let recs = rse::fleet::run_soak(&spec);
    assert_eq!(
        recs,
        rse::fleet::run_soak(&spec),
        "soak must replay identically"
    );
    let hist = Histogram::from_records(&recs);
    assert_eq!(hist.total(), u64::from(spec.total_runs()));
    assert_eq!(hist.count("split-brain"), 0, "fencing invariant");
    assert_eq!(
        hist.count("false-suspicion"),
        0,
        "adaptive-timeout invariant"
    );
    assert_eq!(hist.count("sdc"), 0, "checkpoint restore must be exact");
    assert_eq!(hist.count("hang"), 0);
    assert!(hist.failovers() > 0, "crash/hang cells must fail over");
    assert!(
        hist.count("unrecovered") > 0,
        "crash-early cell must surface"
    );
    assert!(hist.count("masked") > 0, "control + slow cells must mask");
    // Every crash/hang run recovered via checkpoint failover.
    for r in recs.iter().filter(|r| {
        r.model == NodeFaultModel::Crash.name() || r.model == NodeFaultModel::Hang.name()
    }) {
        assert!(
            matches!(r.outcome, Outcome::Failover(_)),
            "{}: {:?}",
            r.model,
            r.outcome
        );
    }
    // Every slow-node run is absorbed, never declared.
    for r in recs
        .iter()
        .filter(|r| r.model == NodeFaultModel::SlowNode.name())
    {
        assert_eq!(r.outcome, Outcome::Masked, "{}", r.faults);
    }
}

/// The fault sampler and the simulator agree on replay: re-expanding
/// the JSONL seed of a smoke record reproduces its exact outcome.
#[test]
fn jsonl_seed_replays_one_record_exactly() {
    let spec = FleetSpec::smoke(0xF1EE7);
    let recs = rse::fleet::run_soak(&spec);
    let rec = recs
        .iter()
        .find(|r| r.model == NodeFaultModel::Partition.name())
        .expect("smoke has a partition cell");
    let cfg = FleetConfig {
        nodes: spec.nodes,
        ..FleetConfig::default()
    };
    let mut p = spec.base_seed ^ rse_support::rng::fnv1a64(b"fleet-profile");
    let profile_seed = rse_support::rng::splitmix64(&mut p);
    let profile = FleetSim::profile(&cfg, profile_seed);
    let cfg = FleetConfig {
        budget: cfg.budget.max(profile.run_cycles * 6 + 60_000),
        ..cfg
    };
    let mut s = rec.seed;
    let fault_seed = rse_support::rng::splitmix64(&mut s);
    let sim_seed = rse_support::rng::splitmix64(&mut s);
    let plan = NodeFaultPlan::sample(NodeFaultModel::Partition, fault_seed, &profile, spec.nodes);
    assert_eq!(plan.describe(), rec.faults);
    let out = FleetSim::run(&cfg, sim_seed, plan.fault, &profile);
    assert_eq!(out.outcome, rec.outcome);
    assert_eq!(out.cycles, rec.cycles);
}
