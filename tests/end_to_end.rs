//! End-to-end properties of the whole stack: workload correctness under
//! every machine configuration, determinism, and the monotonicity
//! relations the Table 4 experiment depends on.

use rse::core::{Engine, RseConfig};
use rse::isa::asm::assemble;
use rse::isa::ModuleId;
use rse::mem::{MemConfig, MemorySystem};
use rse::modules::icm::{Icm, IcmConfig};
use rse::pipeline::{CheckPolicy, Pipeline, PipelineConfig};
use rse::sys::{Os, OsConfig, OsExit};
use rse::workloads::{instrument, kmeans, place, route};

#[derive(Clone, Copy, PartialEq)]
enum Config {
    Baseline,
    Framework,
    FrameworkIcm,
}

fn run(image: &rse::isa::Image, config: Config) -> (Vec<i32>, u64) {
    let (mem, pipe) = match config {
        Config::Baseline => (MemConfig::baseline(), PipelineConfig::default()),
        Config::Framework => (MemConfig::with_framework(), PipelineConfig::default()),
        Config::FrameworkIcm => (
            MemConfig::with_framework(),
            PipelineConfig {
                check_policy: CheckPolicy::ControlFlow,
                ..PipelineConfig::default()
            },
        ),
    };
    let mut cpu = Pipeline::new(pipe, MemorySystem::new(mem));
    rse::sys::loader::load_process(&mut cpu, image);
    let mut engine = Engine::new(RseConfig::default());
    if config == Config::FrameworkIcm {
        let mut icm = Icm::new(IcmConfig::default());
        icm.install_for_control_flow(image, &mut cpu.mem_mut().memory);
        engine.install(Box::new(icm));
        engine.enable(ModuleId::ICM);
    }
    let mut os = Os::new(OsConfig::default());
    let exit = os.run(&mut cpu, &mut engine, 1_000_000_000);
    assert_eq!(exit, OsExit::Exited { code: 0 });
    (os.output, cpu.stats().cycles)
}

/// Every machine configuration computes the same architectural results
/// (the framework is *detection*, never a change of semantics), and the
/// results match the host-side reference implementations.
#[test]
fn all_configurations_agree_with_references() {
    let kp = kmeans::KmeansParams {
        patterns: 40,
        dims: 4,
        clusters: 4,
        iters: 2,
        seed: 5,
    };
    let rp = route::RouteParams {
        width: 10,
        nets: 5,
        block_pct: 10,
        seed: 9,
    };
    let pp = place::PlaceParams {
        cells: 16,
        nets_per_block: 8,
        blocks: 2,
        grid: 8,
        iters: 40,
        ..place::PlaceParams::default()
    };
    let (kc, _) = kmeans::reference(&kp);
    let (rr, rw) = route::reference(&rp);
    let pc = place::reference(&pp);
    for (name, src, expected) in [
        ("kmeans", kmeans::source(&kp), vec![kc as i32]),
        ("route", route::source(&rp), vec![rr as i32, rw as i32]),
        ("place", place::source(&pp), vec![pc as i32]),
    ] {
        let image = assemble(&src).unwrap();
        for config in [Config::Baseline, Config::Framework, Config::FrameworkIcm] {
            let (out, _) = run(&image, config);
            assert_eq!(
                out, expected,
                "{name} result must be configuration-independent"
            );
        }
    }
}

/// Cycle counts are strictly ordered: baseline ≤ framework ≤ framework+ICM
/// (the Table 4 relation), and simulation is bit-deterministic.
#[test]
fn configuration_cost_ordering_and_determinism() {
    let kp = kmeans::KmeansParams {
        patterns: 60,
        dims: 8,
        clusters: 4,
        iters: 2,
        seed: 5,
    };
    let image = assemble(&kmeans::source(&kp)).unwrap();
    let (_, base1) = run(&image, Config::Baseline);
    let (_, base2) = run(&image, Config::Baseline);
    assert_eq!(base1, base2, "simulation must be deterministic");
    let (_, fw) = run(&image, Config::Framework);
    let (_, icm) = run(&image, Config::FrameworkIcm);
    assert!(base1 <= fw, "baseline {base1} vs framework {fw}");
    assert!(fw < icm, "framework {fw} vs framework+ICM {icm}");
}

/// The static CHECK/NOP instrumentation preserves program semantics and
/// costs cycles (the cache study of §5.1).
#[test]
fn static_instrumentation_preserves_results_and_costs_cycles() {
    let rp = route::RouteParams {
        width: 16,
        nets: 8,
        block_pct: 10,
        seed: 2,
    };
    let src = route::source(&rp);
    let (rr, rw) = route::reference(&rp);
    let plain = assemble(&src).unwrap();
    for what in [instrument::StaticInsert::Nop, instrument::StaticInsert::Chk] {
        let instrumented = assemble(&instrument::instrument_control_flow(&src, what)).unwrap();
        let (out_p, cyc_p) = run(&plain, Config::Baseline);
        let (out_i, cyc_i) = run(&instrumented, Config::Baseline);
        assert_eq!(out_p, vec![rr as i32, rw as i32]);
        assert_eq!(out_i, out_p, "instrumentation must not change results");
        assert!(cyc_i > cyc_p, "fetching the inserted words costs cycles");
    }
}

/// ICM protection under randomized fault injection: a single-bit flip in
/// a fetched *checked* (control-flow) instruction is detected (mismatch →
/// flush → clean refetch) and the program produces the right answer. A
/// flip in an unchecked instruction may corrupt data silently or even
/// hang the program — the uncontrolled failures the paper's preemptive
/// checking argument is about — so those trials only need to terminate
/// within the cycle budget or time out without wedging the simulator.
#[test]
fn icm_fault_injection_campaign() {
    let src = r#"
        main:   li   r8, 0
                li   r9, 40
        loop:   addi r8, r8, 1
                bne  r8, r9, loop
                halt
    "#;
    let image = assemble(src).unwrap();
    let mut detected = 0;
    for trial in 0..24u64 {
        let index = 3 + (trial % 6) * 2; // odd indices land on the checked bne
        let bit = 1u32 << ((trial * 7) % 26);
        let mut cpu = Pipeline::new(
            PipelineConfig {
                check_policy: CheckPolicy::ControlFlow,
                ..PipelineConfig::default()
            },
            MemorySystem::new(MemConfig::with_framework()),
        );
        cpu.load_image(&image);
        let mut icm = Icm::new(IcmConfig::default());
        icm.install_for_control_flow(&image, &mut cpu.mem_mut().memory);
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(icm));
        engine.enable(ModuleId::ICM);
        cpu.set_fetch_fault(Some(rse::pipeline::FetchFault::xor(index, bit)));
        let ev = cpu.run(&mut engine, 2_000_000);
        let icm: &Icm = engine.module_ref(ModuleId::ICM).unwrap();
        if icm.stats().mismatches > 0 {
            detected += 1;
            assert_eq!(
                ev,
                rse::pipeline::StepEvent::Halted,
                "trial {trial} not recovered"
            );
            assert_eq!(cpu.regs()[8], 40, "detected faults must be fully recovered");
        } else {
            // Undetected (unchecked instruction hit): silent corruption or
            // a hang are both possible — the failure modes the ICM exists
            // to preempt.
            assert!(
                matches!(
                    ev,
                    rse::pipeline::StepEvent::Halted | rse::pipeline::StepEvent::Timeout
                ),
                "trial {trial}: {ev:?}"
            );
        }
    }
    assert!(
        detected >= 4,
        "the campaign must exercise the detection path ({detected})"
    );
}
