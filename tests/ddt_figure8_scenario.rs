//! Figure 8 of the paper, executed end to end as a real multithreaded
//! guest program: five threads, the exact dependency pattern
//! t2 → t1, t1 → t0, t0 → t1, a crash of t2, and a recovery that
//! terminates t0/t1/t2 while t3 and t4 run to completion — "The recovery
//! line in this case is only for the two surviving threads."
//!
//! Here t0 is the main thread, so recovery also kills the process's
//! original thread; the process survives on its healthy workers alone.

use rse::core::{Engine, RseConfig};
use rse::isa::asm::assemble;
use rse::isa::ModuleId;
use rse::mem::{MemConfig, MemorySystem};
use rse::modules::ddt::{Ddt, DdtConfig};
use rse::pipeline::{Pipeline, PipelineConfig};
use rse::sys::{Os, OsConfig, OsExit, ThreadState};

/// Thread roles by spawn order: 0 = main (the t0 of Figure 8),
/// 1 = t1, 2 = t2 (the faulty thread), 3 = t3, 4 = t4.
const SRC: &str = r#"
    main:   li   r2, 16
            la   r4, t1code
            li   r5, 0
            syscall
            li   r2, 16
            la   r4, t2code
            li   r5, 0
            syscall
            li   r2, 16
            la   r4, t34code
            li   r5, 3
            syscall
            li   r2, 16
            la   r4, t34code
            li   r5, 4
            syscall
            # t0: wait for t1's signal, consume p2, produce p3
    m1:     la   t0, f10
            lw   t1, 0(t0)
            bne  t1, r0, m2
            li   r2, 18
            syscall
            b    m1
    m2:     la   t0, p2
            lw   s0, 0(t0)         # t0 reads p2 (written by t1)
            la   t0, p3
            sw   s0, 0(t0)         # t0 writes p3
            la   t0, f01
            li   t1, 1
            sw   t1, 0(t0)         # signal t1
    mspin:  li   r2, 18            # t0 idles until recovery kills it
            syscall
            b    mspin

    t1code: la   t0, px
            li   t1, 7
            sw   t1, 0(t0)         # t1 legitimately owns px
            la   t0, fpx
            li   t1, 1
            sw   t1, 0(t0)
    t1w:    la   t0, f21
            lw   t1, 0(t0)
            bne  t1, r0, t1go
            li   r2, 18
            syscall
            b    t1w
    t1go:   la   t0, p1
            lw   s0, 0(t0)         # t1 reads p1 (written by t2): t2 -> t1
            la   t0, p2
            sw   s0, 0(t0)         # t1 writes p2
            la   t0, f10
            li   t1, 1
            sw   t1, 0(t0)
    t1w2:   la   t0, f01
            lw   t1, 0(t0)
            bne  t1, r0, t1go2
            li   r2, 18
            syscall
            b    t1w2
    t1go2:  la   t0, p3
            lw   s1, 0(t0)         # t1 reads p3 (written by t0): t0 -> t1
            la   t0, f12
            li   t1, 1
            sw   t1, 0(t0)
    t1spin: li   r2, 18
            syscall
            b    t1spin

    t2code: la   t0, fpx
    t2w0:   lw   t1, 0(t0)
            bne  t1, r0, t2go
            li   r2, 18
            syscall
            b    t2w0
    t2go:   la   t0, px
            li   t1, 13
            sw   t1, 0(t0)         # t2 clobbers t1's page: SavePage fires
            la   t0, p1
            li   t1, 111
            sw   t1, 0(t0)         # t2 writes p1
            la   t0, f21
            li   t1, 1
            sw   t1, 0(t0)
    t2w:    la   t0, f12
            lw   t1, 0(t0)
            bne  t1, r0, t2die
            li   r2, 18
            syscall
            b    t2w
    t2die:  li   r2, 50            # t2 crashes (the Figure 8 checkmark)
            syscall

    t34code:                       # healthy independent workers
            move s7, r4            # 3 or 4: selects a private page
            li   t0, 4096
            mul  t0, s7, t0
            la   t1, privbase
            add  s6, t1, t0
            li   s0, 40
    t34l:   sw   s0, 0(s6)         # private work
            li   r2, 18
            syscall
            addi s0, s0, -1
            bne  s0, r0, t34l
            li   t0, 1
            sw   t0, 4(s6)         # completion marker
            li   r2, 17
            syscall

            .data
            .align 4
    p1:     .space 4096
    p2:     .space 4096
    p3:     .space 4096
    px:     .space 4096
    f21:    .space 4096
    f10:    .space 4096
    f01:    .space 4096
    f12:    .space 4096
    fpx:    .space 4096
    privbase: .space 32768
"#;

fn run_figure8() -> (OsExit, Os, Pipeline, Engine) {
    let image = assemble(SRC).expect("assembles");
    let mut cpu = Pipeline::new(
        PipelineConfig::default(),
        MemorySystem::new(MemConfig::with_framework()),
    );
    rse::sys::loader::load_process(&mut cpu, &image);
    let mut engine = Engine::new(RseConfig::default());
    let mut ddt = Ddt::new(DdtConfig::default());
    ddt.set_current_thread(0);
    engine.install(Box::new(ddt));
    engine.enable(ModuleId::DDT);
    let mut os = Os::new(OsConfig::default());
    let exit = os.run(&mut cpu, &mut engine, 200_000_000);
    (exit, os, cpu, engine)
}

#[test]
fn figure8_recovery_kills_t0_t1_t2_and_spares_t3_t4() {
    let (exit, os, cpu, _engine) = run_figure8();
    // All tainted threads died; the healthy workers ran to completion.
    assert_eq!(exit, OsExit::AllThreadsDone);
    let recovery = os.last_recovery.as_ref().expect("a recovery happened");
    assert_eq!(
        recovery.terminated,
        vec![0, 1, 2],
        "exactly t0, t1, t2 are tainted"
    );
    assert!(!recovery.whole_process);
    assert_eq!(os.thread_state(0), Some(ThreadState::Crashed));
    assert_eq!(os.thread_state(1), Some(ThreadState::Crashed));
    assert_eq!(os.thread_state(2), Some(ThreadState::Crashed));
    assert_eq!(os.thread_state(3), Some(ThreadState::Done));
    assert_eq!(os.thread_state(4), Some(ThreadState::Done));
    // The healthy workers' completion markers are in their private pages.
    let image = assemble(SRC).unwrap();
    let privbase = image.symbol("privbase").unwrap();
    assert_eq!(cpu.mem().memory.read_u32(privbase + 3 * 4096 + 4), 1);
    assert_eq!(cpu.mem().memory.read_u32(privbase + 4 * 4096 + 4), 1);
}

#[test]
fn figure8_dependency_matrix_matches_paper() {
    let (_, _, _, mut engine) = run_figure8();
    let ddt: &mut Ddt = engine.module_mut(ModuleId::DDT).expect("DDT installed");
    // After recovery the victim edges are purged; re-derive the taint
    // from the recovery outcome instead of the matrix. t3/t4 never
    // became dependent on anyone.
    assert_eq!(ddt.tainted_by(3), vec![3]);
    assert_eq!(ddt.tainted_by(4), vec![4]);
}

#[test]
fn figure8_savepage_rolls_back_the_clobbered_page() {
    let (_, os, cpu, _) = run_figure8();
    // t2 overwrote px (owned by t1) with 13; the SavePage checkpoint
    // captured 7 and recovery restored it.
    let image = assemble(SRC).unwrap();
    let px = image.symbol("px").unwrap();
    assert_eq!(
        cpu.mem().memory.read_u32(px),
        7,
        "px must be rolled back to t1's value"
    );
    assert!(os.stats().pages_checkpointed >= 1);
    let recovery = os.last_recovery.as_ref().unwrap();
    assert!(recovery.pages_restored.contains(&(px / 4096)));
}
