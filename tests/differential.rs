//! Differential testing: randomly generated guest programs run on both
//! the golden in-order interpreter and the out-of-order pipeline (with
//! and without the RSE attached). Architectural state — every register,
//! the scratch memory region, the halt point — must agree exactly. Any
//! divergence is a speculation, forwarding, or recovery bug.
//!
//! On failure the harness shrinks the program and prints an
//! `RSE_PT_SEED` that replays the identical run; the fixed-seed corpus
//! in `tests/corpus/` (see `golden_corpus.rs`) pins known-good programs
//! so regressions reproduce without this randomized harness.

mod common;

use common::{emit, op_strategy, run_golden, run_pipeline};
use rse::isa::asm::assemble;
use rse_support::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn pipeline_matches_golden_model(ops in rse_support::collection::vec(op_strategy(), 1..40)) {
        let src = emit(&ops);
        let image = assemble(&src).expect("generated program assembles");
        // Golden reference.
        let (gold_regs, gold_scratch, base) = run_golden(&image);
        // Out-of-order pipeline, bare and with the RSE + runtime CHECKs.
        for with_engine in [false, true] {
            let (regs, scratch, pbase) = run_pipeline(&image, with_engine);
            prop_assert_eq!(base, pbase);
            prop_assert_eq!(
                &regs[..],
                &gold_regs[..],
                "register divergence (engine={}):\n{}",
                with_engine,
                src
            );
            prop_assert_eq!(
                scratch,
                gold_scratch,
                "memory divergence (engine={}):\n{}",
                with_engine,
                src
            );
        }
    }
}
