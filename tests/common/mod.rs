//! Shared infrastructure for the differential and golden-corpus test
//! crates: the random guest-program generator, pipeline/golden
//! execution helpers, and the architectural-state digest.
#![allow(dead_code)]

use rse::core::{Engine, RseConfig};
use rse::mem::{MemConfig, MemorySystem};
use rse::pipeline::{
    CheckPolicy, Golden, GoldenEvent, NullCoProcessor, Pipeline, PipelineConfig, StepEvent,
};
use rse_support::prelude::*;

/// Operations the program generator can emit. Loads/stores stay within a
/// 256-byte scratch buffer; loops are bounded by construction.
#[derive(Debug, Clone)]
pub enum Op {
    Alu {
        kind: u8,
        rd: u8,
        rs: u8,
        rt: u8,
    },
    AluImm {
        kind: u8,
        rd: u8,
        rs: u8,
        imm: i16,
    },
    Shift {
        kind: u8,
        rd: u8,
        rs: u8,
        sh: u8,
    },
    Load {
        width: u8,
        rd: u8,
        off: u8,
    },
    Store {
        width: u8,
        rs: u8,
        off: u8,
    },
    /// A bounded countdown loop wrapping a body of simple ALU ops.
    Loop {
        count: u8,
        body: Vec<(u8, u8, u8)>,
    },
    /// A data-dependent branch skipping one instruction.
    SkipIfEven {
        rs: u8,
        rd: u8,
    },
    Call,
}

/// Registers usable by generated code: t0–t7 and s0–s3 (r8..r15, r16..r19).
pub fn reg(n: u8) -> String {
    format!("r{}", 8 + (n % 12))
}

/// Renders an op sequence as a complete assembler program.
pub fn emit(ops: &[Op]) -> String {
    let mut src = String::from("main:   la   r28, scratch\n        li   r29, 0x7FFEF000\n");
    let mut label = 0usize;
    for op in ops {
        match op {
            Op::Alu { kind, rd, rs, rt } => {
                let m =
                    ["add", "sub", "and", "or", "xor", "nor", "slt", "mul"][(*kind % 8) as usize];
                src.push_str(&format!(
                    "        {m} {}, {}, {}\n",
                    reg(*rd),
                    reg(*rs),
                    reg(*rt)
                ));
            }
            Op::AluImm { kind, rd, rs, imm } => {
                let m = ["addi", "andi", "ori", "xori", "slti"][(*kind % 5) as usize];
                let imm = if m == "addi" || m == "slti" {
                    *imm as i32
                } else {
                    (*imm as u16) as i32
                };
                src.push_str(&format!("        {m} {}, {}, {imm}\n", reg(*rd), reg(*rs)));
            }
            Op::Shift { kind, rd, rs, sh } => {
                let m = ["sll", "srl", "sra"][(*kind % 3) as usize];
                src.push_str(&format!(
                    "        {m} {}, {}, {}\n",
                    reg(*rd),
                    reg(*rs),
                    sh % 32
                ));
            }
            Op::Load { width, rd, off } => {
                let m = ["lw", "lh", "lb", "lbu", "lhu"][(*width % 5) as usize];
                let off = (off % 63) * 4;
                src.push_str(&format!("        {m} {}, {off}(r28)\n", reg(*rd)));
            }
            Op::Store { width, rs, off } => {
                let m = ["sw", "sh", "sb"][(*width % 3) as usize];
                let off = (off % 63) * 4;
                src.push_str(&format!("        {m} {}, {off}(r28)\n", reg(*rs)));
            }
            Op::Loop { count, body } => {
                let count = 1 + count % 9;
                src.push_str(&format!("        li   r26, {count}\nL{label}:\n"));
                for (kind, rd, rs) in body {
                    let m = ["add", "xor", "sub"][(*kind % 3) as usize];
                    src.push_str(&format!("        {m} {}, {}, r26\n", reg(*rd), reg(*rs)));
                }
                src.push_str(&format!(
                    "        addi r26, r26, -1\n        bne  r26, r0, L{label}\n"
                ));
                label += 1;
            }
            Op::SkipIfEven { rs, rd } => {
                src.push_str(&format!(
                    "        andi r27, {}, 1\n        bne  r27, r0, L{label}\n        addi {}, {}, 77\nL{label}:\n",
                    reg(*rs),
                    reg(*rd),
                    reg(*rd),
                ));
                label += 1;
            }
            Op::Call => {
                src.push_str(&format!(
                    "        jal  F{label}\n        b    L{label}\nF{label}: addi r20, r20, 3\n        jr   ra\nL{label}:\n"
                ));
                label += 1;
            }
        }
    }
    src.push_str("        halt\n        .data\n        .align 4\nscratch: .space 256\n");
    src
}

/// The strategy generating a single [`Op`].
pub fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(kind, rd, rs, rt)| Op::Alu { kind, rd, rs, rt }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<i16>())
            .prop_map(|(kind, rd, rs, imm)| Op::AluImm { kind, rd, rs, imm }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(kind, rd, rs, sh)| Op::Shift { kind, rd, rs, sh }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(width, rd, off)| Op::Load {
            width,
            rd,
            off
        }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(width, rs, off)| Op::Store {
            width,
            rs,
            off
        }),
        (
            any::<u8>(),
            rse_support::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..4)
        )
            .prop_map(|(count, body)| Op::Loop { count, body }),
        (any::<u8>(), any::<u8>()).prop_map(|(rs, rd)| Op::SkipIfEven { rs, rd }),
        Just(Op::Call),
    ]
}

/// Runs `image` to completion on the out-of-order pipeline (bare, or
/// with the RSE attached and runtime CHECKs enabled) and returns the
/// final architectural state: registers, the scratch buffer, and its
/// base address.
pub fn run_pipeline(image: &rse::isa::Image, with_engine: bool) -> ([u32; 32], Vec<u8>, u32) {
    let (mem, pipe) = if with_engine {
        (
            MemConfig::with_framework(),
            PipelineConfig {
                check_policy: CheckPolicy::ControlFlow,
                ..PipelineConfig::default()
            },
        )
    } else {
        (MemConfig::baseline(), PipelineConfig::default())
    };
    let mut cpu = Pipeline::new(pipe, MemorySystem::new(mem));
    cpu.load_image(image);
    let ev = if with_engine {
        let mut engine = Engine::new(RseConfig::default());
        cpu.run(&mut engine, 50_000_000)
    } else {
        cpu.run(&mut NullCoProcessor, 50_000_000)
    };
    assert_eq!(ev, StepEvent::Halted, "pipeline must halt");
    let scratch_base = image.symbol("scratch").unwrap();
    let mut scratch = vec![0u8; 256];
    cpu.mem().memory.read_bytes(scratch_base, &mut scratch);
    (*cpu.regs(), scratch, scratch_base)
}

/// Runs `image` on the golden in-order interpreter and returns
/// `(registers, scratch bytes, scratch base)`.
pub fn run_golden(image: &rse::isa::Image) -> ([u32; 32], Vec<u8>, u32) {
    let mut golden = Golden::new(image);
    assert_eq!(
        golden.run(5_000_000),
        GoldenEvent::Halted,
        "golden must halt"
    );
    let base = image.symbol("scratch").unwrap();
    let mut scratch = vec![0u8; 256];
    golden.mem.read_bytes(base, &mut scratch);
    (golden.regs, scratch, base)
}

/// FNV-1a digest of final architectural state (registers then scratch
/// memory) — the fingerprint pinned by `tests/corpus/MANIFEST.txt`.
pub fn state_digest(regs: &[u32; 32], scratch: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for r in regs {
        for b in r.to_le_bytes() {
            eat(b);
        }
    }
    for &b in scratch {
        eat(b);
    }
    h
}

/// Deterministically generates the corpus program for `seed`: a
/// sequence of 4–40 ops drawn from [`op_strategy`] through the
/// property-harness generator, rendered to assembler source.
pub fn generate_program(seed: u64) -> String {
    let strategy = rse_support::collection::vec(op_strategy(), 4..40);
    let ops = strategy.generate(&mut TestRng::fresh(seed));
    emit(&ops)
}
