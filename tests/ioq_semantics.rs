//! Table 1 of the paper — the diagnostic role of the `checkValid` and
//! `check` fields of the Instruction Output Queue — verified through the
//! public engine interface and with property-based sequences.

use rse::core::ioq::{Ioq, IoqEntryKind};
use rse::core::testutil::{ScriptedBehavior, ScriptedModule};
use rse::core::{Engine, RseConfig, Verdict};
use rse::isa::asm::assemble;
use rse::isa::ModuleId;
use rse::mem::{MemConfig, MemorySystem};
use rse::pipeline::{CommitGate, Pipeline, PipelineConfig, RobId, StepEvent};
use rse_support::prelude::*;

#[test]
fn table1_row1_free_then_allocated_chk_stalls() {
    let mut ioq = Ioq::new(16);
    // Row 1: a free entry imposes nothing.
    assert_eq!(ioq.gate(RobId(0)), CommitGate::Pass);
    // Row 2 (`00`): allocated CHECK, incomplete — the pipeline may stall.
    ioq.allocate(0, RobId(0), IoqEntryKind::BlockingChk(ModuleId::ICM));
    assert_eq!(ioq.gate(RobId(0)), CommitGate::Stall);
}

#[test]
fn table1_row3_non_check_is_10() {
    let mut ioq = Ioq::new(16);
    ioq.allocate(0, RobId(1), IoqEntryKind::Plain);
    assert_eq!(ioq.gate(RobId(1)), CommitGate::Pass);
}

#[test]
fn table1_row4_completed_check_without_error_commits() {
    let mut ioq = Ioq::new(16);
    ioq.allocate(0, RobId(2), IoqEntryKind::BlockingChk(ModuleId::ICM));
    ioq.complete(3, RobId(2), false);
    assert_eq!(ioq.gate(RobId(2)), CommitGate::Pass);
}

#[test]
fn table1_row5_error_flushes() {
    let mut ioq = Ioq::new(16);
    ioq.allocate(0, RobId(3), IoqEntryKind::BlockingChk(ModuleId::ICM));
    ioq.complete(3, RobId(3), true);
    assert_eq!(ioq.gate(RobId(3)), CommitGate::Flush);
}

/// The whole stack honors Table 1: under a passing module, a blocking
/// CHECK's stall window equals the module latency (within scan and
/// broadcast delays), never more.
#[test]
fn stall_window_bounded_by_module_latency() {
    for latency in [1u64, 10, 50] {
        let image = assemble("main: chk icm, blk, 2, 0\nhalt").unwrap();
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::with_framework()),
        );
        cpu.load_image(&image);
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(ScriptedModule::new(
            ModuleId::ICM,
            ScriptedBehavior::Respond {
                verdict: Verdict::Pass,
                latency,
            },
        )));
        engine.enable(ModuleId::ICM);
        assert_eq!(cpu.run(&mut engine, 100_000), StepEvent::Halted);
        let stalls = cpu.stats().commit_stall_cycles;
        assert!(stalls <= latency + 4, "latency {latency}: stalled {stalls}");
    }
}

/// The stuck-at fault vocabulary is load-bearing: the Display strings
/// appear in diagnostics, the model names are JSONL fields and CLI
/// arguments of recorded campaigns, and the plan descriptions are
/// pinned in golden files. None of them may drift.
#[test]
fn stuck_at_fault_strings_are_pinned() {
    use rse::core::ioq::IoqFault;
    use rse_inject::{FaultModel, FaultPlan, PlannedFault};

    // Table 2 diagnostic strings (IoqFault Display).
    assert_eq!(
        IoqFault::ValidStuck0.to_string(),
        "checkValid stuck at 0 (blocking CHECKs stall forever)"
    );
    assert_eq!(
        IoqFault::ValidStuck1.to_string(),
        "checkValid stuck at 1 (results pass before modules finish)"
    );
    assert_eq!(
        IoqFault::CheckStuck0.to_string(),
        "check stuck at 0 (errors never reported: false negative)"
    );
    assert_eq!(
        IoqFault::CheckStuck1.to_string(),
        "check stuck at 1 (pipeline flushed repeatedly)"
    );

    // Campaign model tokens (JSONL `model` field / CLI argument) and
    // their round-trip through the parser.
    for (model, name) in [
        (FaultModel::ModValidStuck0, "mod-valid-stuck0"),
        (FaultModel::ModValidStuck1, "mod-valid-stuck1"),
    ] {
        assert_eq!(model.name(), name);
        assert_eq!(FaultModel::from_name(name), Some(model));
    }

    // Plan descriptions (JSONL `fault` field of recorded campaigns).
    for (fault, line) in [
        (IoqFault::ValidStuck0, "ioq[icm]=valid-stuck0"),
        (IoqFault::ValidStuck1, "ioq[icm]=valid-stuck1"),
        (IoqFault::CheckStuck0, "ioq[icm]=check-stuck0"),
        (IoqFault::CheckStuck1, "ioq[icm]=check-stuck1"),
    ] {
        let plan = FaultPlan {
            faults: vec![PlannedFault::ModuleIoq {
                module: ModuleId::ICM,
                fault,
            }],
        };
        assert_eq!(plan.describe(), line);
    }
    assert_eq!(FaultPlan { faults: vec![] }.describe(), "none");
}

proptest! {
    /// Arbitrary allocate/complete/free sequences keep the IOQ's gate
    /// consistent with the Table 1 truth table at every step.
    #[test]
    fn ioq_gate_matches_truth_table(ops in rse_support::collection::vec((0u64..8, 0u8..3, any::<bool>()), 1..60)) {
        let mut ioq = Ioq::new(16);
        // Shadow model: rob -> (is_chk, valid, check)
        let mut shadow: std::collections::HashMap<u64, (bool, bool, bool)> = Default::default();
        for (rob, op, flag) in ops {
            match op {
                0 => {
                    if shadow.len() < 16 && !shadow.contains_key(&rob) {
                        let kind = if flag {
                            IoqEntryKind::BlockingChk(ModuleId::ICM)
                        } else {
                            IoqEntryKind::Plain
                        };
                        ioq.allocate(0, RobId(rob), kind);
                        shadow.insert(rob, (flag, !flag, false));
                    }
                }
                1 => {
                    ioq.complete(1, RobId(rob), flag);
                    if let Some(e) = shadow.get_mut(&rob) {
                        e.1 = true;
                        e.2 = flag;
                    }
                }
                _ => {
                    ioq.free(RobId(rob));
                    shadow.remove(&rob);
                }
            }
            for (&rob, &(_, valid, check)) in &shadow {
                let expected = match (valid, check) {
                    (false, _) => CommitGate::Stall,
                    (true, false) => CommitGate::Pass,
                    (true, true) => CommitGate::Flush,
                };
                prop_assert_eq!(ioq.gate(RobId(rob)), expected);
            }
        }
    }
}
