//! Pinned end-to-end attack containment scenarios.
//!
//! The promoted, engine-driven successor of `examples/attack_demo.rs`:
//! where the demo walked one hand-built control-flow hijack through the
//! MLR, these tests replay pinned scenarios from every guard/exposed
//! twin pair through the `rse-attack` campaign engine and assert the
//! *byte-exact* JSON record each seed expands to. The expected strings
//! below are verbatim lines of `tests/golden/attack_smoke.jsonl`, so a
//! drift in seed derivation, attack planning, classification, recovery
//! tagging, or JSON shape fails here with a readable diff long before
//! the golden-file comparison in CI does.

use rse_attack::{derive_seed, run_one, victim_by_name, victims, AttackModel, AttackOutcome};
use rse_inject::{reference, retry_mechanism, RecoveryStatus};
use rse_isa::ModuleId;
use rse_sys::DEFAULT_MAX_RERUN;

/// Base seed shared with `attack_campaign --smoke` and `scripts/ci.sh`.
const BASE_SEED: u64 = 0xD5B;

/// Replays `(victim, model, run)` from the campaign base seed and
/// asserts the record serializes byte-for-byte to the pinned golden
/// line.
fn assert_pinned(victim: &str, model: AttackModel, run: u32, golden: &str) {
    let v = victim_by_name(victim).expect("victim exists");
    let r = reference(&v.workload);
    let seed = derive_seed(BASE_SEED, victim, model, run);
    let rec = run_one(v, model, run, seed, &r);
    assert_eq!(
        rec.to_json(),
        golden,
        "{victim}/{}/run{run} drifted",
        model.name()
    );
    // Seed-replayability is the engine's core contract: the same seed
    // must expand to the same attack and the same outcome, always.
    let again = run_one(v, model, run, seed, &r);
    assert_eq!(rec.to_json(), again.to_json());
}

/// The control group end to end: with no attack armed, every victim —
/// guarded or exposed — runs to its golden result, classifies
/// `prevented`, and engages no recovery machinery.
#[test]
fn control_runs_are_prevented_on_every_victim() {
    for v in victims() {
        let name = v.workload.name;
        let r = reference(&v.workload);
        let seed = derive_seed(BASE_SEED, name, AttackModel::Control, 0);
        let rec = run_one(v, AttackModel::Control, 0, seed, &r);
        assert_eq!(rec.outcome.tag(), "prevented", "{name}: {}", rec.to_json());
        assert_eq!(rec.recovery.tag(), "not-needed", "{name}");
        assert_eq!(rec.attack, "none", "{name}");
    }
}

/// The `attack_demo` scenario, engine-driven: a stack smash through the
/// hard-coded nominal address misses the MLR-randomized slot (guard
/// twin, `prevented`) and lands on the fixed layout (exposed twin,
/// `compromised`).
#[test]
fn stack_smash_pinned_pair() {
    assert_pinned(
        "stack_guard",
        AttackModel::StackSmash,
        0,
        r#"{"victim":"stack_guard","defended":true,"model":"stack-smash","run":0,"seed":7919462994826143190,"outcome":"prevented","recovery":"not-needed","cycles":635,"attack":"mem[0x7fffefc0]:=0x00400070@c476"}"#,
    );
    assert_pinned(
        "stack_exposed",
        AttackModel::StackSmash,
        1,
        r#"{"victim":"stack_exposed","defended":false,"model":"stack-smash","run":1,"seed":15054105865020624116,"outcome":"compromised","recovery":"not-needed","cycles":555,"attack":"mem[0x7fffefc0]:=0x00400070@c168"}"#,
    );
}

/// GOT-style pointer-table tampering: the nominal-address write misses
/// the randomized table under MLR and corrupts it on the fixed layout.
#[test]
fn got_tamper_pinned_pair() {
    assert_pinned(
        "got_guard",
        AttackModel::GotTamper,
        0,
        r#"{"victim":"got_guard","defended":true,"model":"got-tamper","run":0,"seed":16684351585530023248,"outcome":"prevented","recovery":"not-needed","cycles":790,"attack":"mem[0x18000000]:=0x00400094@c466"}"#,
    );
    assert_pinned(
        "got_exposed",
        AttackModel::GotTamper,
        0,
        r#"{"victim":"got_exposed","defended":false,"model":"got-tamper","run":0,"seed":16001797290474241168,"outcome":"compromised","recovery":"not-needed","cycles":556,"attack":"mem[0x18000000]:=0x00400094@c403"}"#,
    );
}

/// The NX case: shellcode staged in a writable data page trips the
/// DDT's non-executable check on the guard twin — and the divergent
/// state it left is repaired by checkpoint rollback — while the
/// exposed twin executes the payload outright.
#[test]
fn nx_probe_pinned_pair() {
    assert_pinned(
        "nx_guard",
        AttackModel::NxProbe,
        0,
        r#"{"victim":"nx_guard","defended":true,"model":"nx-probe","run":0,"seed":5002744442157867800,"outcome":"detected:DDT","recovery":"recovered:checkpoint-rollback","cycles":513,"attack":"mem[0x10000004]:=0x20020002@c175; mem[0x10000008]:=0x2004029a@c175; mem[0x1000000c]:=0x0000000c@c175; mem[0x10000010]:=0x20020001@c175; mem[0x10000014]:=0x20040000@c175; mem[0x10000018]:=0x0000000c@c175; mem[0x10000000]:=0x10000004@c175"}"#,
    );
    assert_pinned(
        "nx_exposed",
        AttackModel::NxProbe,
        0,
        r#"{"victim":"nx_exposed","defended":false,"model":"nx-probe","run":0,"seed":16835403033979038098,"outcome":"compromised","recovery":"not-needed","cycles":520,"attack":"mem[0x10000004]:=0x20020002@c62; mem[0x10000008]:=0x2004029a@c62; mem[0x1000000c]:=0x0000000c@c62; mem[0x10000010]:=0x20020001@c62; mem[0x10000014]:=0x20040000@c62; mem[0x10000018]:=0x0000000c@c62; mem[0x10000000]:=0x10000004@c62"}"#,
    );
}

/// The outcome vocabulary is an external contract: golden JSONL files,
/// `scripts/ci.sh` greps, and downstream consumers all match on these
/// exact spellings. Pin every token the adaptive work added (plus the
/// load-bearing old ones) so a rename fails here with a readable diff
/// instead of as a cryptic golden mismatch.
#[test]
fn outcome_and_model_token_spellings_are_pinned() {
    assert_eq!(AttackModel::AdaptiveChain.name(), "chain-adaptive");
    assert_eq!(AttackModel::RecoveryStrike.name(), "recovery-strike");
    assert_eq!(AttackModel::QuarantineEvade.name(), "quarantine-evade");
    assert_eq!(AttackModel::InstSkip.name(), "inst-skip");

    assert_eq!(AttackOutcome::Detected(ModuleId::DSM).tag(), "detected:DSM");
    assert_eq!(AttackOutcome::Evaded(ModuleId::ICM).tag(), "evaded:ICM");
    assert_eq!(AttackOutcome::Evaded(ModuleId::MLR).tag(), "evaded:MLR");
    assert_eq!(AttackOutcome::Degraded(ModuleId::DSM).tag(), "degraded:DSM");

    assert_eq!(RecoveryStatus::NotNeeded.tag(), "not-needed");
    assert_eq!(retry_mechanism(1), "retry1");
    assert_eq!(retry_mechanism(8), "retry8");
    assert_eq!(retry_mechanism(99), "retry8", "retry mechanism is clamped");
    assert_eq!(
        RecoveryStatus::Succeeded {
            mechanism: retry_mechanism(2)
        }
        .tag(),
        "recovered:retry2"
    );
    let halt = RecoveryStatus::FailedSafeHalt {
        cause: "retry budget exhausted after 3 rollback attempts (last: x); \
                raise --max-rerun only if the recovery window is known to clear"
            .into(),
    };
    assert_eq!(halt.tag(), "failed-safe-halt");
    match &halt {
        RecoveryStatus::FailedSafeHalt { cause } => {
            assert!(cause.contains("--max-rerun"), "cause must name the flag")
        }
        _ => unreachable!(),
    }
}

/// The DSM closing the inst-skip gap: a NOP-muxed fetch preserves every
/// ICM invariant (no word changed in memory) yet shortens the committed
/// basic block, so the sequence monitor's executed-word count diverges
/// from the static signature — `detected:DSM` on the guard twin where
/// the bare twin silently computes the wrong sum. Pinned lines are
/// verbatim from `tests/golden/attack_adaptive.jsonl`.
#[test]
fn inst_skip_dsm_pinned_pair() {
    assert_pinned(
        "seq_guard",
        AttackModel::InstSkip,
        0,
        r#"{"victim":"seq_guard","defended":true,"model":"inst-skip","run":0,"seed":17125397809732441317,"outcome":"detected:DSM","recovery":"recovered:checkpoint-rollback","cycles":618,"attack":"fetch[412]=nop"}"#,
    );
    assert_pinned(
        "seq_exposed",
        AttackModel::InstSkip,
        0,
        r#"{"victim":"seq_exposed","defended":false,"model":"inst-skip","run":0,"seed":5012233008048169099,"outcome":"compromised","recovery":"not-needed","cycles":612,"attack":"fetch[1069]=nop"}"#,
    );
}

/// The recovery-window property: a strike re-armed during rollback
/// re-execution either yields a *clean* recovery (`recovered:retry<k>`
/// within the budget — the engine only reports success when the re-run
/// digest matches golden) or escalates out of the retry loop
/// (`failed-safe-halt` naming the `--max-rerun` budget, or quarantine).
/// A defended victim never ends `compromised`, and no record ever pairs
/// a divergent end state with silent `not-needed` recovery — silent SDC
/// under attack is the one forbidden square.
#[test]
fn recovery_window_strikes_recover_cleanly_or_escalate() {
    let mut escalations = 0;
    let mut retries = 0;
    for victim in ["seq_guard", "branch_guard"] {
        let v = victim_by_name(victim).expect("victim exists");
        let r = reference(&v.workload);
        for run in 0..8 {
            let seed = derive_seed(BASE_SEED, victim, AttackModel::RecoveryStrike, run);
            let rec = run_one(v, AttackModel::RecoveryStrike, run, seed, &r);
            let outcome = rec.outcome.tag();
            let recovery = rec.recovery.tag();
            assert_ne!(
                outcome,
                "compromised",
                "{victim}/run{run}: defended victim lost silently: {}",
                rec.to_json()
            );
            match recovery.as_str() {
                s if s.starts_with("recovered:retry") => {
                    let k: u32 = s["recovered:retry".len()..].parse().expect("retry count");
                    assert!(
                        (1..=DEFAULT_MAX_RERUN).contains(&k),
                        "{victim}/run{run}: retry count {k} outside budget"
                    );
                    retries += 1;
                }
                "recovered:checkpoint-rollback"
                | "recovered:flush-refetch"
                | "recovered:quarantine-nop-mux"
                | "not-needed" => {}
                "failed-safe-halt" => {
                    assert!(
                        rec.to_json().contains("--max-rerun"),
                        "{victim}/run{run}: escalation cause must name the flag: {}",
                        rec.to_json()
                    );
                    escalations += 1;
                }
                other => panic!("{victim}/run{run}: unexpected recovery tag {other}"),
            }
        }
    }
    // The pinned seeds must actually exercise both halves of the
    // property, or this test is vacuous.
    assert!(retries > 0, "no run recovered through the retry budget");
    assert!(escalations > 0, "no run escalated past the retry budget");
}

/// Control-flow hijack via branch redirection: the ICM's redundant
/// invariant copy flags the rewritten branch word (the module reports
/// `degraded` because the tampered text disagrees with its store), and
/// rollback re-execution recovers the golden run; the exposed twin
/// jumps straight into the gadget.
#[test]
fn cfh_redirect_pinned_pair() {
    assert_pinned(
        "branch_guard",
        AttackModel::CfhRedirect,
        0,
        r#"{"victim":"branch_guard","defended":true,"model":"cfh-redirect","run":0,"seed":18267198131702743327,"outcome":"degraded:ICM","recovery":"recovered:checkpoint-rollback","cycles":627,"attack":"mem[0x00400014]:=0x0810000b@c543"}"#,
    );
    assert_pinned(
        "branch_exposed",
        AttackModel::CfhRedirect,
        0,
        r#"{"victim":"branch_exposed","defended":false,"model":"cfh-redirect","run":0,"seed":16880743320931427420,"outcome":"compromised","recovery":"not-needed","cycles":113,"attack":"mem[0x00400014]:=0x0810000b@c102"}"#,
    );
}
