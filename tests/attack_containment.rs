//! Pinned end-to-end attack containment scenarios.
//!
//! The promoted, engine-driven successor of `examples/attack_demo.rs`:
//! where the demo walked one hand-built control-flow hijack through the
//! MLR, these tests replay pinned scenarios from every guard/exposed
//! twin pair through the `rse-attack` campaign engine and assert the
//! *byte-exact* JSON record each seed expands to. The expected strings
//! below are verbatim lines of `tests/golden/attack_smoke.jsonl`, so a
//! drift in seed derivation, attack planning, classification, recovery
//! tagging, or JSON shape fails here with a readable diff long before
//! the golden-file comparison in CI does.

use rse_attack::{derive_seed, run_one, victim_by_name, victims, AttackModel};
use rse_inject::reference;

/// Base seed shared with `attack_campaign --smoke` and `scripts/ci.sh`.
const BASE_SEED: u64 = 0xD5B;

/// Replays `(victim, model, run)` from the campaign base seed and
/// asserts the record serializes byte-for-byte to the pinned golden
/// line.
fn assert_pinned(victim: &str, model: AttackModel, run: u32, golden: &str) {
    let v = victim_by_name(victim).expect("victim exists");
    let r = reference(&v.workload);
    let seed = derive_seed(BASE_SEED, victim, model, run);
    let rec = run_one(v, model, run, seed, &r);
    assert_eq!(
        rec.to_json(),
        golden,
        "{victim}/{}/run{run} drifted",
        model.name()
    );
    // Seed-replayability is the engine's core contract: the same seed
    // must expand to the same attack and the same outcome, always.
    let again = run_one(v, model, run, seed, &r);
    assert_eq!(rec.to_json(), again.to_json());
}

/// The control group end to end: with no attack armed, every victim —
/// guarded or exposed — runs to its golden result, classifies
/// `prevented`, and engages no recovery machinery.
#[test]
fn control_runs_are_prevented_on_every_victim() {
    for v in victims() {
        let name = v.workload.name;
        let r = reference(&v.workload);
        let seed = derive_seed(BASE_SEED, name, AttackModel::Control, 0);
        let rec = run_one(v, AttackModel::Control, 0, seed, &r);
        assert_eq!(rec.outcome.tag(), "prevented", "{name}: {}", rec.to_json());
        assert_eq!(rec.recovery.tag(), "not-needed", "{name}");
        assert_eq!(rec.attack, "none", "{name}");
    }
}

/// The `attack_demo` scenario, engine-driven: a stack smash through the
/// hard-coded nominal address misses the MLR-randomized slot (guard
/// twin, `prevented`) and lands on the fixed layout (exposed twin,
/// `compromised`).
#[test]
fn stack_smash_pinned_pair() {
    assert_pinned(
        "stack_guard",
        AttackModel::StackSmash,
        0,
        r#"{"victim":"stack_guard","defended":true,"model":"stack-smash","run":0,"seed":7919462994826143190,"outcome":"prevented","recovery":"not-needed","cycles":635,"attack":"mem[0x7fffefc0]:=0x00400070@c476"}"#,
    );
    assert_pinned(
        "stack_exposed",
        AttackModel::StackSmash,
        1,
        r#"{"victim":"stack_exposed","defended":false,"model":"stack-smash","run":1,"seed":15054105865020624116,"outcome":"compromised","recovery":"not-needed","cycles":555,"attack":"mem[0x7fffefc0]:=0x00400070@c168"}"#,
    );
}

/// GOT-style pointer-table tampering: the nominal-address write misses
/// the randomized table under MLR and corrupts it on the fixed layout.
#[test]
fn got_tamper_pinned_pair() {
    assert_pinned(
        "got_guard",
        AttackModel::GotTamper,
        0,
        r#"{"victim":"got_guard","defended":true,"model":"got-tamper","run":0,"seed":16684351585530023248,"outcome":"prevented","recovery":"not-needed","cycles":790,"attack":"mem[0x18000000]:=0x00400094@c466"}"#,
    );
    assert_pinned(
        "got_exposed",
        AttackModel::GotTamper,
        0,
        r#"{"victim":"got_exposed","defended":false,"model":"got-tamper","run":0,"seed":16001797290474241168,"outcome":"compromised","recovery":"not-needed","cycles":556,"attack":"mem[0x18000000]:=0x00400094@c403"}"#,
    );
}

/// The NX case: shellcode staged in a writable data page trips the
/// DDT's non-executable check on the guard twin — and the divergent
/// state it left is repaired by checkpoint rollback — while the
/// exposed twin executes the payload outright.
#[test]
fn nx_probe_pinned_pair() {
    assert_pinned(
        "nx_guard",
        AttackModel::NxProbe,
        0,
        r#"{"victim":"nx_guard","defended":true,"model":"nx-probe","run":0,"seed":5002744442157867800,"outcome":"detected:DDT","recovery":"recovered:checkpoint-rollback","cycles":513,"attack":"mem[0x10000004]:=0x20020002@c175; mem[0x10000008]:=0x2004029a@c175; mem[0x1000000c]:=0x0000000c@c175; mem[0x10000010]:=0x20020001@c175; mem[0x10000014]:=0x20040000@c175; mem[0x10000018]:=0x0000000c@c175; mem[0x10000000]:=0x10000004@c175"}"#,
    );
    assert_pinned(
        "nx_exposed",
        AttackModel::NxProbe,
        0,
        r#"{"victim":"nx_exposed","defended":false,"model":"nx-probe","run":0,"seed":16835403033979038098,"outcome":"compromised","recovery":"not-needed","cycles":520,"attack":"mem[0x10000004]:=0x20020002@c62; mem[0x10000008]:=0x2004029a@c62; mem[0x1000000c]:=0x0000000c@c62; mem[0x10000010]:=0x20020001@c62; mem[0x10000014]:=0x20040000@c62; mem[0x10000018]:=0x0000000c@c62; mem[0x10000000]:=0x10000004@c62"}"#,
    );
}

/// Control-flow hijack via branch redirection: the ICM's redundant
/// invariant copy flags the rewritten branch word (the module reports
/// `degraded` because the tampered text disagrees with its store), and
/// rollback re-execution recovers the golden run; the exposed twin
/// jumps straight into the gadget.
#[test]
fn cfh_redirect_pinned_pair() {
    assert_pinned(
        "branch_guard",
        AttackModel::CfhRedirect,
        0,
        r#"{"victim":"branch_guard","defended":true,"model":"cfh-redirect","run":0,"seed":18267198131702743327,"outcome":"degraded:ICM","recovery":"recovered:checkpoint-rollback","cycles":627,"attack":"mem[0x00400014]:=0x0810000b@c543"}"#,
    );
    assert_pinned(
        "branch_exposed",
        AttackModel::CfhRedirect,
        0,
        r#"{"victim":"branch_exposed","defended":false,"model":"cfh-redirect","run":0,"seed":16880743320931427420,"outcome":"compromised","recovery":"not-needed","cycles":113,"attack":"mem[0x00400014]:=0x0810000b@c102"}"#,
    );
}
