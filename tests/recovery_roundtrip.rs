//! End-to-end recovery round trip: inject a *detectable* fault, assert
//! the module catches it, then assert the checkpoint machinery rolls
//! the machine back and re-execution reaches the golden final state.
//!
//! The seeds are pinned: the campaign is a pure function of
//! `(workload, model, seed)`, so these scenarios replay bit-identically
//! on every host (see `rse_inject::derive_seed` / `FaultPlan::sample`).

use rse_inject::{run_one_by_name, FaultModel, Outcome, RecoveryStatus};

/// Pinned seed: flips bit 5 of the `beq` word of `icm_loop`'s text
/// segment at cycle 201. The corrupted branch is ICM-checked on every
/// fetch, so the mismatch against the redundant CheckerMemory copy is
/// detected; the flip is *persistent* (text memory, not fetch latch),
/// so flush-and-refetch cannot heal it and the engine escalates to
/// safe mode. External recovery then rolls memory back from the
/// pre-run checkpoints and re-executes to the golden digest.
const ICM_TEXT_SEED: u64 = 10524026136655159238;

/// Pinned seed: flips a bit inside `ddt_recover`'s canary page while
/// the worker thread is live. The worker audits the canary and CRASHes;
/// the DDT's dependency tracking plus the OS SavePage checkpoints roll
/// the shared page back to its pre-image (§4.2.2), and the main thread
/// observes the rollback (prints `1`) and exits cleanly.
const DDT_CANARY_SEED: u64 = 9459463412922225902;

#[test]
fn icm_detects_text_flip_and_checkpoint_rollback_reaches_golden_state() {
    let rec =
        run_one_by_name("icm_loop", FaultModel::MemText, ICM_TEXT_SEED).expect("workload exists");
    assert!(
        matches!(rec.outcome, Outcome::DetectedByModule(_)),
        "fault must be detected, got {}",
        rec.outcome
    );
    assert_eq!(rec.outcome.tag(), "detected:ICM");
    match &rec.recovery {
        RecoveryStatus::Succeeded { mechanism } => {
            assert_eq!(
                *mechanism, "checkpoint-rollback",
                "persistent text corruption needs rollback, not refetch"
            );
        }
        other => panic!("recovery must succeed, got {other}"),
    }
}

#[test]
fn transient_fetch_fault_is_detected_and_healed_by_flush_refetch() {
    // A transient fetch-latch flip is also detected by the ICM, but the
    // flush + refetch path heals it inline: the re-executed golden
    // state is reached without external rollback.
    let rec = run_one_by_name("icm_loop", FaultModel::FetchWord, 10054044860165962238)
        .expect("workload exists");
    assert_eq!(rec.outcome.tag(), "detected:ICM");
    assert_eq!(rec.recovery.tag(), "recovered:flush-refetch");
}

#[test]
fn ddt_detects_canary_corruption_and_rolls_shared_page_back() {
    let rec = run_one_by_name("ddt_recover", FaultModel::MemData, DDT_CANARY_SEED)
        .expect("workload exists");
    assert_eq!(
        rec.outcome.tag(),
        "detected:DDT",
        "worker crash must route through DDT recovery, got {} ({})",
        rec.outcome,
        rec.faults
    );
    assert_eq!(
        rec.recovery.tag(),
        "recovered:ddt-checkpoint-rollback",
        "guest must observe the rolled-back shared page"
    );
}

#[test]
fn records_replay_bit_identically() {
    let a = run_one_by_name("icm_loop", FaultModel::MemText, ICM_TEXT_SEED).unwrap();
    let b = run_one_by_name("icm_loop", FaultModel::MemText, ICM_TEXT_SEED).unwrap();
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn control_runs_reach_golden_state_untouched() {
    for name in ["alu_loop", "mem_checksum", "icm_loop", "ddt_recover"] {
        let rec = run_one_by_name(name, FaultModel::Control, 1).unwrap();
        assert_eq!(rec.outcome.tag(), "masked", "{name} control run");
        assert_eq!(rec.recovery.tag(), "not-needed", "{name} control run");
        assert_eq!(rec.faults, "none");
    }
}
