//! End-to-end per-module fault containment (§3.4 refined): a faulted
//! module is quarantined by its own health state machine while the rest
//! of the framework keeps protecting the guest, and a transiently
//! faulted module is healed by the exponential-backoff self-test probe
//! and returns to `Healthy` without any global decoupling.

use rse::core::testutil::{ScriptedBehavior, ScriptedModule};
use rse::core::{AnomalyKind, Engine, HealthState, Module, RseConfig, Verdict};
use rse::isa::asm::assemble;
use rse::isa::ModuleId;
use rse::mem::{MemConfig, MemorySystem};
use rse::pipeline::{Pipeline, PipelineConfig, StepEvent};

/// A loop that exercises two module slots per iteration with explicit
/// blocking CHECKs and accumulates a golden result in `r8`.
const TWO_MODULE_SRC: &str = r#"
    main:   li   r8, 0
            li   r9, 150
    loop:   chk  icm, blk, 2, 0
            chk  mlr, blk, 2, 0
            addi r8, r8, 1
            bne  r8, r9, loop
            halt
"#;

/// A longer single-module loop for the re-enable scenario: the run must
/// outlive quarantine entry, the failed early probes, and the healing
/// probe.
const LONG_LOOP_SRC: &str = r#"
    main:   li   r8, 0
            li   r9, 2000
    loop:   chk  icm, blk, 2, 0
            addi r8, r8, 1
            bne  r8, r9, loop
            halt
"#;

fn harness(src: &str, config: RseConfig, modules: Vec<ScriptedModule>) -> (Pipeline, Engine) {
    let image = assemble(src).unwrap();
    let mut cpu = Pipeline::new(
        PipelineConfig {
            // Blocking CHECKs of these slots gate commit (Table 1
            // semantics) — the containment scenarios depend on it.
            chk_serialize_mask: (1 << ModuleId::ICM.number()) | (1 << ModuleId::MLR.number()),
            ..PipelineConfig::default()
        },
        MemorySystem::new(MemConfig::with_framework()),
    );
    cpu.load_image(&image);
    let mut engine = Engine::new(config);
    for m in modules {
        let id = m.id();
        engine.install(Box::new(m));
        engine.enable(id);
    }
    (cpu, engine)
}

#[test]
fn faulted_module_is_contained_while_others_keep_detecting() {
    // ICM slot: wedged (never answers). MLR slot: healthy, and detects
    // exactly two planted errors. AHBM slot: healthy bystander, so one
    // disabled module can never reach the half-installed escalation
    // threshold.
    let mut config = RseConfig::default();
    config.watchdog.timeout = 500;
    config.watchdog.burst_threshold = 5;
    let (mut cpu, mut engine) = harness(
        TWO_MODULE_SRC,
        config,
        vec![
            ScriptedModule::new(ModuleId::ICM, ScriptedBehavior::Silent),
            ScriptedModule::new(
                ModuleId::MLR,
                ScriptedBehavior::FailFirstN { n: 2, latency: 2 },
            ),
            ScriptedModule::new(
                ModuleId::AHBM,
                ScriptedBehavior::Respond {
                    verdict: Verdict::Pass,
                    latency: 2,
                },
            ),
        ],
    );

    let ev = cpu.run(&mut engine, 5_000_000);
    assert_eq!(ev, StepEvent::Halted, "guest must complete");
    assert_eq!(cpu.regs()[8], 150, "golden architectural state");

    // Exactly the wedged module is down, attributed to its timeout.
    assert!(engine.module_health(ModuleId::ICM).is_down());
    assert_eq!(
        engine.watchdog().module_health(ModuleId::ICM).last_cause(),
        Some(AnomalyKind::Timeout)
    );
    // The rest of the framework never decoupled...
    assert_eq!(engine.safe_mode(), None);
    assert!(!engine.module_health(ModuleId::MLR).is_down());
    assert!(!engine.module_health(ModuleId::AHBM).is_down());
    // ...and the healthy module still raised its two planted errors.
    assert!(
        cpu.stats().check_flushes >= 2,
        "planted errors must flush: {}",
        cpu.stats().check_flushes
    );
    // The quarantined module's CHECKs committed as NOPs through the mux.
    assert!(engine.stats().chk_nop_committed >= 1);
    assert!(engine.stats().quarantines >= 1);
}

#[test]
fn transient_fault_is_healed_by_backoff_probe() {
    // The module ignores everything (guest CHECKs and self-test probes)
    // until cycle 2_000, then recovers: the health machine must walk
    // Healthy -> Suspect -> Quarantined -> (failed probes) -> probe
    // success -> Healthy, with the whole episode visible in RseStats.
    let mut config = RseConfig::default();
    config.watchdog.timeout = 200;
    config.watchdog.health.probe_base = 500;
    config.watchdog.health.probe_timeout = 300;
    config.watchdog.health.max_probe_attempts = 6;
    let (mut cpu, mut engine) = harness(
        LONG_LOOP_SRC,
        config,
        vec![ScriptedModule::new(
            ModuleId::ICM,
            ScriptedBehavior::SilentUntil {
                until: 2_000,
                latency: 2,
            },
        )],
    );

    let ev = cpu.run(&mut engine, 5_000_000);
    assert_eq!(ev, StepEvent::Halted, "guest must complete");
    assert_eq!(cpu.regs()[8], 2000, "golden architectural state");

    // The transient episode is over: the module served the tail of the
    // run and ended Healthy, with no global decoupling anywhere.
    assert_eq!(engine.module_health(ModuleId::ICM), HealthState::Healthy);
    assert_eq!(engine.safe_mode(), None);

    let stats = engine.stats();
    assert!(stats.quarantines >= 1, "module must have been quarantined");
    assert!(stats.reenables >= 1, "probe must have re-enabled it");
    assert!(stats.probes_launched >= 1);
    assert!(
        stats.probes_succeeded >= 1,
        "healing probe must be recorded"
    );
    assert!(
        engine
            .watchdog()
            .module_health(ModuleId::ICM)
            .probe_attempts()
            == 0,
        "attempt counter resets on re-enable"
    );
    // While quarantined, guest CHECKs were NOP-muxed instead of stalling.
    assert!(stats.chk_nop_committed >= 1);
}

#[test]
fn permanent_fault_exhausts_probes_and_disables() {
    // A permanently silent module fails `max_probe_attempts` consecutive
    // probes and lands in the absorbing `Disabled` state; with three
    // installed modules this still does not escalate to global safe
    // mode.
    let mut config = RseConfig::default();
    config.watchdog.timeout = 200;
    config.watchdog.health.probe_base = 300;
    config.watchdog.health.probe_timeout = 200;
    config.watchdog.health.max_probe_attempts = 3;
    let (mut cpu, mut engine) = harness(
        LONG_LOOP_SRC,
        config,
        vec![
            ScriptedModule::new(ModuleId::ICM, ScriptedBehavior::Silent),
            ScriptedModule::new(
                ModuleId::MLR,
                ScriptedBehavior::Respond {
                    verdict: Verdict::Pass,
                    latency: 2,
                },
            ),
            ScriptedModule::new(
                ModuleId::AHBM,
                ScriptedBehavior::Respond {
                    verdict: Verdict::Pass,
                    latency: 2,
                },
            ),
        ],
    );

    let ev = cpu.run(&mut engine, 5_000_000);
    assert_eq!(ev, StepEvent::Halted, "guest must complete");
    assert_eq!(cpu.regs()[8], 2000, "golden architectural state");

    assert_eq!(engine.module_health(ModuleId::ICM), HealthState::Disabled);
    assert_eq!(engine.safe_mode(), None, "1 of 3 down must not escalate");
    let stats = engine.stats();
    assert!(stats.probes_failed >= 3, "all probes must have failed");
    assert_eq!(stats.probes_succeeded, 0);
    assert!(stats.modules_disabled >= 1);
}
