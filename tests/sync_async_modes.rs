//! The two module operating modes of §3 / Figure 2, exercised through
//! the full stack:
//!
//! * **synchronous** (Figure 2(a)): a blocking CHECK gates commit — the
//!   pipeline may only commit when the module's check completes, and an
//!   error flushes the pipeline back to the CHECK;
//! * **asynchronous** (Figure 2(b)): a non-blocking CHECK never delays
//!   commit — the module lags the pipeline and logs permanent state on
//!   the commit signal, and squashed instructions never reach its
//!   permanent state.

use rse::core::testutil::{CountingModule, ScriptedBehavior, ScriptedModule};
use rse::core::{Engine, RseConfig, Verdict};
use rse::isa::asm::assemble;
use rse::isa::ModuleId;
use rse::mem::{MemConfig, MemorySystem};
use rse::pipeline::{Pipeline, PipelineConfig, StepEvent};

fn machine() -> Pipeline {
    Pipeline::new(
        PipelineConfig::default(),
        MemorySystem::new(MemConfig::with_framework()),
    )
}

#[test]
fn synchronous_check_stalls_commit_for_the_module_latency() {
    // The same program with a fast and a slow module: the slow module's
    // latency must show up in total cycles via commit stalls.
    let image = assemble("main: chk icm, blk, 2, 0\nli r8, 1\nhalt").unwrap();
    let run = |latency: u64| {
        let mut cpu = machine();
        cpu.load_image(&image);
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(ScriptedModule::new(
            ModuleId::ICM,
            ScriptedBehavior::Respond {
                verdict: Verdict::Pass,
                latency,
            },
        )));
        engine.enable(ModuleId::ICM);
        assert_eq!(cpu.run(&mut engine, 1_000_000), StepEvent::Halted);
        (cpu.stats().cycles, cpu.stats().commit_stall_cycles)
    };
    let (fast_cycles, _) = run(1);
    let (slow_cycles, slow_stalls) = run(200);
    assert!(
        slow_cycles > fast_cycles + 150,
        "{slow_cycles} vs {fast_cycles}"
    );
    assert!(slow_stalls >= 150);
}

#[test]
fn synchronous_error_flushes_and_restarts_at_the_check() {
    // A module that fails once and then passes: the pipeline must flush,
    // refetch the CHECK, and complete with correct architectural state.
    struct FailOnce {
        failed: bool,
        pending: Vec<(u64, rse::pipeline::RobId)>,
    }
    impl rse::core::Module for FailOnce {
        fn id(&self) -> ModuleId {
            ModuleId::ICM
        }
        fn name(&self) -> &'static str {
            "fail-once"
        }
        fn on_chk(&mut self, chk: &rse::core::ChkDispatch, ctx: &mut rse::core::ModuleCtx<'_>) {
            self.pending.push((ctx.now + 3, chk.rob));
        }
        fn on_squash(&mut self, rob: rse::pipeline::RobId, _: &mut rse::core::ModuleCtx<'_>) {
            self.pending.retain(|(_, r)| *r != rob);
        }
        fn tick(&mut self, ctx: &mut rse::core::ModuleCtx<'_>) {
            let now = ctx.now;
            let due: Vec<_> = self
                .pending
                .iter()
                .filter(|(at, _)| *at <= now)
                .map(|(_, r)| *r)
                .collect();
            self.pending.retain(|(at, _)| *at > now);
            for rob in due {
                let verdict = if self.failed {
                    Verdict::Pass
                } else {
                    Verdict::Fail
                };
                self.failed = true;
                ctx.complete_check(rob, verdict);
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    let image = assemble("main: li r8, 5\nchk icm, blk, 2, 0\naddi r8, r8, 1\nhalt").unwrap();
    let mut cpu = machine();
    cpu.load_image(&image);
    let mut engine = Engine::new(RseConfig::default());
    engine.install(Box::new(FailOnce {
        failed: false,
        pending: Vec::new(),
    }));
    engine.enable(ModuleId::ICM);
    assert_eq!(cpu.run(&mut engine, 1_000_000), StepEvent::Halted);
    // The addi after the CHECK executed exactly once despite the flush.
    assert_eq!(cpu.regs()[8], 6);
    assert_eq!(cpu.stats().check_flushes, 1);
    assert!(engine.safe_mode().is_none());
}

#[test]
fn asynchronous_check_never_stalls_commit() {
    let image = assemble("main: chk icm, nblk, 2, 0\nli r8, 1\nhalt").unwrap();
    let mut cpu = machine();
    cpu.load_image(&image);
    let mut engine = Engine::new(RseConfig::default());
    // Even a silent module cannot stall an asynchronous CHECK.
    engine.install(Box::new(ScriptedModule::new(
        ModuleId::ICM,
        ScriptedBehavior::Silent,
    )));
    engine.enable(ModuleId::ICM);
    assert_eq!(cpu.run(&mut engine, 100_000), StepEvent::Halted);
    assert_eq!(cpu.regs()[8], 1);
    assert!(
        engine.safe_mode().is_none(),
        "async CHECKs never trip the progress watchdog"
    );
}

#[test]
fn asynchronous_module_logs_only_committed_state() {
    // CHECKs on the wrong path of a mispredicted branch are squashed;
    // only the committed CHECK may enter the module's permanent log.
    let image = assemble(
        r#"
        main:   li   r8, 0
                li   r9, 6
        loop:   addi r8, r8, 1
                bne  r8, r9, loop
                chk  icm, nblk, 2, 0
                halt
        "#,
    )
    .unwrap();
    let mut cpu = machine();
    cpu.load_image(&image);
    let mut engine = Engine::new(RseConfig::default());
    engine.install(Box::new(CountingModule::new(ModuleId::ICM)));
    engine.enable(ModuleId::ICM);
    assert_eq!(cpu.run(&mut engine, 1_000_000), StepEvent::Halted);
    let m: &CountingModule = engine.module_ref(ModuleId::ICM).unwrap();
    assert_eq!(m.chk_commits, 1, "exactly one CHECK commits");
    assert!(
        cpu.stats().squashed > 0,
        "the loop must have mispredicted at least once for this test to bite"
    );
}

#[test]
fn disabled_module_makes_checks_transparent() {
    // §3.2 enable/disable unit: with the module disabled, its CHECKs
    // behave like `10` entries and the module sees nothing.
    let image = assemble("main: chk icm, blk, 2, 0\nchk icm, nblk, 2, 0\nli r8, 3\nhalt").unwrap();
    let mut cpu = machine();
    cpu.load_image(&image);
    let mut engine = Engine::new(RseConfig::default());
    engine.install(Box::new(CountingModule::new(ModuleId::ICM)));
    // Not enabled.
    assert_eq!(cpu.run(&mut engine, 100_000), StepEvent::Halted);
    assert_eq!(cpu.regs()[8], 3);
    let m: &CountingModule = engine.module_ref(ModuleId::ICM).unwrap();
    assert_eq!(m.chks_seen, 0);
    assert_eq!(engine.stats().chk_passthrough, 2);
}

#[test]
fn enable_via_check_then_module_participates() {
    let image = assemble(
        r#"
        main:   chk icm, nblk, 0, 0    # ENABLE the module slot
                chk icm, nblk, 2, 7    # now delivered to the module
                halt
        "#,
    )
    .unwrap();
    let mut cpu = machine();
    cpu.load_image(&image);
    let mut engine = Engine::new(RseConfig::default());
    engine.install(Box::new(CountingModule::new(ModuleId::ICM)));
    assert_eq!(cpu.run(&mut engine, 100_000), StepEvent::Halted);
    assert!(engine.is_enabled(ModuleId::ICM));
    let m: &CountingModule = engine.module_ref(ModuleId::ICM).unwrap();
    assert_eq!(m.chks_seen, 1);
    assert_eq!(m.last_param, 7);
}
