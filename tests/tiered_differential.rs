//! Three-way differential test for the tiered execution engine: every
//! program runs golden-only, pipeline-only, and tiered with randomized
//! switch points — the final architectural digests (registers + scratch
//! buffer) must be identical regardless of where the driver switched
//! tiers, because tier handoffs transfer the complete architectural
//! state at an exact instruction/commit boundary.
//!
//! Two sources of programs and switch points:
//!
//! * the 32 pinned corpus programs with switch points derived from each
//!   program's seed (deterministic, replayable),
//! * freshly generated programs with proptest-drawn (and therefore
//!   *shrinkable*) window positions — a failure shrinks to the smallest
//!   op sequence and window that still diverges.

mod common;

use common::{emit, generate_program, op_strategy, run_golden, run_pipeline, state_digest};
use rse::isa::asm::assemble;
use rse::isa::Image;
use rse::mem::MemConfig;
use rse::pipeline::{ExecEvent, Golden, GoldenEvent, NullCoProcessor, PipelineConfig};
use rse::sys::{TieredDriver, Window};
use rse_support::prelude::*;
use rse_support::rng::splitmix64;

/// Instruction count of a full golden run (the unified-clock horizon
/// tiered windows are placed against).
fn golden_horizon(image: &Image) -> u64 {
    let mut g = Golden::new(image);
    assert_eq!(g.run(5_000_000), GoldenEvent::Halted, "golden must halt");
    g.executed
}

/// Runs `image` under the tiered driver and returns the final
/// architectural state in `run_golden`/`run_pipeline` shape.
fn run_tiered(image: &Image, window: &Window) -> ([u32; 32], Vec<u8>, u32) {
    let mut d = TieredDriver::new(image, PipelineConfig::default(), MemConfig::baseline());
    let ev = d.run(&mut NullCoProcessor, window, 100_000_000);
    assert_eq!(ev, ExecEvent::Halted, "tiered run must halt");
    let base = image.symbol("scratch").unwrap();
    let mut scratch = vec![0u8; 256];
    d.memory().read_bytes(base, &mut scratch);
    (*d.regs(), scratch, base)
}

/// A window placed from three draws: open point, width, and margin, all
/// relative to the golden horizon. Degenerate draws intentionally cover
/// the edges (window before the first or after the last instruction,
/// zero-width, whole-run).
fn window_from(horizon: u64, open_pick: u64, width_pick: u64, margin_pick: u64) -> Window {
    let open = (open_pick % (horizon + 8)).saturating_sub(4);
    let close = open + width_pick % (horizon + 4);
    Window::around(open, close, margin_pick % 64)
}

#[test]
fn corpus_programs_agree_across_tiers_at_seeded_switch_points() {
    // The same seed schedule as `tests/golden_corpus.rs`.
    let mut s = 0xC0FFEE_u64;
    let seeds: Vec<u64> = (0..32).map(|_| splitmix64(&mut s)).collect();
    for seed in seeds {
        let image = assemble(&generate_program(seed)).expect("corpus program assembles");
        let (gr, gs, _) = run_golden(&image);
        let want = state_digest(&gr, &gs);
        let horizon = golden_horizon(&image);
        let mut w = seed;
        for k in 0..3 {
            let window = window_from(
                horizon,
                splitmix64(&mut w),
                splitmix64(&mut w),
                splitmix64(&mut w),
            );
            let (tr, ts, _) = run_tiered(&image, &window);
            assert_eq!(
                state_digest(&tr, &ts),
                want,
                "program {seed:#018x} window {k} ({window:?}, horizon {horizon}) diverged"
            );
        }
        // Pure-functional and whole-run-cycle-accurate endpoints too.
        let (fr, fs, _) = run_tiered(&image, &Window::none());
        assert_eq!(
            state_digest(&fr, &fs),
            want,
            "program {seed:#018x} functional"
        );
        let (cr, cs, _) = run_tiered(&image, &Window::whole_run());
        assert_eq!(
            state_digest(&cr, &cs),
            want,
            "program {seed:#018x} whole-run"
        );
    }
}

/// Degenerate window geometry, pinned explicitly: zero-width windows
/// (open == close), windows opening at the very first unified-clock
/// point, margins that reach back past cycle 0, and windows (or
/// margins) placed beyond the program's end. The randomized draws in
/// `window_from` *can* produce each of these, but an explicit table
/// keeps every edge exercised on every run — these are exactly the
/// off-by-one boundaries where a tier handoff would slice an
/// instruction in half.
#[test]
fn degenerate_windows_preserve_architectural_state() {
    let mut s = 0xED6E_u64;
    for seed in (0..4).map(|_| splitmix64(&mut s)) {
        let image = assemble(&generate_program(seed)).expect("program assembles");
        let (gr, gs, _) = run_golden(&image);
        let want = state_digest(&gr, &gs);
        let horizon = golden_horizon(&image);
        let cases: Vec<(&str, Window)> = vec![
            ("zero-width at cycle 0", Window::around(0, 0, 0)),
            (
                "zero-width mid-run",
                Window::around(horizon / 2, horizon / 2, 0),
            ),
            (
                "zero-width at the horizon",
                Window::around(horizon, horizon, 0),
            ),
            (
                "opens at cycle 0 with margin",
                Window::around(0, horizon / 2, 32),
            ),
            ("margin reaches past cycle 0", Window::around(3, 5, 64)),
            (
                "margin past the program end",
                Window::around(horizon, horizon, horizon + 64),
            ),
            (
                "window beyond the program end",
                Window::around(horizon + 7, horizon + 9, 2),
            ),
            (
                "closes exactly at the horizon",
                Window::around(horizon / 3, horizon, 1),
            ),
        ];
        for (label, window) in cases {
            let (tr, ts, _) = run_tiered(&image, &window);
            assert_eq!(
                state_digest(&tr, &ts),
                want,
                "program {seed:#018x}, {label} ({window:?}, horizon {horizon}) diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shrinkable three-way differential: op sequence AND window
    /// position both shrink on failure.
    #[test]
    fn tiered_matches_golden_and_pipeline(
        ops in rse_support::collection::vec(op_strategy(), 1..40),
        open_pick in any::<u64>(),
        width_pick in any::<u64>(),
        margin_pick in any::<u64>(),
    ) {
        let image = assemble(&emit(&ops)).unwrap();
        let (gr, gs, _) = run_golden(&image);
        let want = state_digest(&gr, &gs);
        let (pr, ps, _) = run_pipeline(&image, false);
        prop_assert_eq!(state_digest(&pr, &ps), want, "pipeline vs golden");
        let horizon = golden_horizon(&image);
        let window = window_from(horizon, open_pick, width_pick, margin_pick);
        let (tr, ts, _) = run_tiered(&image, &window);
        prop_assert_eq!(state_digest(&tr, &ts), want, "tiered {:?} vs golden", window);
    }
}
