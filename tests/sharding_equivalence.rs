//! Sharded campaign equivalence: the run-level `--threads` sharding in
//! `rse_inject::run_campaign_with` must produce byte-identical JSONL
//! for every thread count, and the records must match the pinned smoke
//! golden line-for-line.
//!
//! The spec here is two complete cells of the CI smoke campaign
//! (`CampaignSpec::smoke(0xD5B)`): because per-run seeds depend only on
//! `(base seed, workload, model, run index)`, those cells' records are
//! exactly the corresponding lines of `tests/golden/campaign_smoke.jsonl`
//! — so this test cross-checks the sharded merge order against the
//! pinned artifact without paying for all 64 runs in debug mode. CI
//! additionally runs the full `--smoke --threads 4` binary against the
//! same golden in release mode.

use rse_inject::{
    run_campaign_with, to_jsonl, CampaignCell, CampaignOptions, CampaignSpec, FaultModel,
};

/// The smoke base seed pinned by `scripts/ci.sh` and the golden JSONL.
const SMOKE_SEED: u64 = 0xD5B;

fn subset_spec() -> CampaignSpec {
    CampaignSpec {
        base_seed: SMOKE_SEED,
        cells: vec![
            // Smoke cell 0 → pinned lines 0..8.
            CampaignCell {
                workload: "alu_loop",
                model: FaultModel::RegSingle,
                runs: 8,
            },
            // Smoke cell 2 → pinned lines 16..24.
            CampaignCell {
                workload: "mem_checksum",
                model: FaultModel::RegDouble,
                runs: 8,
            },
        ],
    }
}

/// The pinned golden lines this subset must reproduce.
fn pinned_subset() -> Vec<String> {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/campaign_smoke.jsonl"
    ))
    .expect("pinned smoke golden exists");
    let lines: Vec<&str> = golden.lines().collect();
    assert_eq!(lines.len(), 64, "pinned smoke golden is 64 runs");
    lines[0..8]
        .iter()
        .chain(&lines[16..24])
        .map(|l| l.to_string())
        .collect()
}

#[test]
fn sharded_output_is_byte_identical_across_thread_counts_and_matches_golden() {
    let spec = subset_spec();
    let sequential = to_jsonl(&run_campaign_with(
        &spec,
        &CampaignOptions {
            tiered: false,
            threads: 1,
            ..CampaignOptions::default()
        },
    ));
    let expected: String = pinned_subset().into_iter().map(|l| l + "\n").collect();
    assert_eq!(
        sequential, expected,
        "sequential subset diverged from the pinned smoke golden"
    );
    for threads in [2, 4, 16] {
        for tiered in [false, true] {
            let sharded = to_jsonl(&run_campaign_with(
                &spec,
                &CampaignOptions {
                    tiered,
                    threads,
                    ..CampaignOptions::default()
                },
            ));
            assert_eq!(
                sharded, sequential,
                "threads={threads} tiered={tiered} diverged from sequential output"
            );
        }
    }
}
