//! Table 2 of the paper as integration tests: every framework error
//! scenario, injected while a checked workload runs, must either be
//! harmless (the false negative) or be detected by the §3.4 self-checking
//! watchdog so the application completes with correct architectural
//! results.
//!
//! Detection is now two-tiered. Anomalies attributable to a module
//! (its CHECK timed out, flushed in a burst, or passed prematurely)
//! quarantine *that module* — its CHECKs commit as NOPs through the §3.4
//! output multiplexer and the rest of the framework keeps running.
//! Anomalies with no owning module (a global wire fault wedging plain
//! instructions) still trip the global safe-mode escape hatch.

use rse::core::testutil::{ScriptedBehavior, ScriptedModule};
use rse::core::{AnomalyKind, Engine, IoqFault, RseConfig, SafeModeCause, Verdict};
use rse::isa::asm::assemble;
use rse::isa::ModuleId;
use rse::mem::{MemConfig, MemorySystem};
use rse::pipeline::{CheckPolicy, Pipeline, PipelineConfig, StepEvent};

const SRC: &str = r#"
    main:   li   r8, 0
            li   r9, 150
    loop:   addi r8, r8, 1
            bne  r8, r9, loop
            halt
"#;

fn run(behavior: ScriptedBehavior, fault: Option<IoqFault>) -> (Pipeline, Engine) {
    let image = assemble(SRC).unwrap();
    let mut cpu = Pipeline::new(
        PipelineConfig {
            check_policy: CheckPolicy::ControlFlow,
            ..PipelineConfig::default()
        },
        MemorySystem::new(MemConfig::with_framework()),
    );
    cpu.load_image(&image);
    let mut config = RseConfig::default();
    config.watchdog.timeout = 1_000;
    config.watchdog.burst_threshold = 5;
    config.watchdog.premature_pass_threshold = 5;
    let mut engine = Engine::new(config);
    engine.install(Box::new(ScriptedModule::new(ModuleId::ICM, behavior)));
    engine.enable(ModuleId::ICM);
    engine.inject_ioq_fault(fault);
    let ev = cpu.run(&mut engine, 5_000_000);
    assert_eq!(ev, StepEvent::Halted, "application must complete");
    assert_eq!(cpu.regs()[8], 150, "architectural result must be correct");
    (cpu, engine)
}

fn healthy() -> ScriptedBehavior {
    ScriptedBehavior::Respond {
        verdict: Verdict::Pass,
        latency: 2,
    }
}

#[test]
fn healthy_module_no_safe_mode() {
    let (_, engine) = run(healthy(), None);
    assert_eq!(engine.safe_mode(), None);
}

#[test]
fn module_without_progress_is_quarantined() {
    let (cpu, engine) = run(ScriptedBehavior::Silent, None);
    // The stuck module is contained, not the whole framework: its CHECKs
    // commit as NOPs and global safe mode is never needed.
    assert!(engine.module_health(ModuleId::ICM).is_down());
    assert_eq!(
        engine.watchdog().module_health(ModuleId::ICM).last_cause(),
        Some(AnomalyKind::Timeout)
    );
    assert_eq!(engine.safe_mode(), None);
    assert!(engine.stats().chk_nop_committed >= 1);
    assert!(cpu.stats().nop_commits >= 1);
}

#[test]
fn false_alarm_module_is_quarantined_by_burst_detector() {
    let (cpu, engine) = run(
        ScriptedBehavior::Respond {
            verdict: Verdict::Fail,
            latency: 2,
        },
        None,
    );
    assert!(engine.module_health(ModuleId::ICM).is_down());
    assert_eq!(
        engine.watchdog().module_health(ModuleId::ICM).last_cause(),
        Some(AnomalyKind::ErrorBurst)
    );
    assert_eq!(engine.safe_mode(), None);
    assert!(
        cpu.stats().check_flushes >= 4,
        "flush-loop before quarantine"
    );
}

#[test]
fn false_negative_is_undetectable_but_harmless() {
    // Table 2: "the application proceeds with execution and effectively
    // is not receiving any protection".
    let (_, engine) = run(healthy(), Some(IoqFault::CheckStuck0));
    assert_eq!(engine.safe_mode(), None);
}

#[test]
fn checkvalid_stuck_at_0_detected_as_no_progress() {
    let (_, engine) = run(healthy(), Some(IoqFault::ValidStuck0));
    assert!(matches!(
        engine.safe_mode(),
        Some(SafeModeCause::NoProgress { .. })
    ));
}

#[test]
fn checkvalid_stuck_at_1_detected_as_premature_pass() {
    // A stuck-at-1 `checkValid` only disturbs CHECK entries, so the
    // anomaly is attributable: the owning module is quarantined.
    let (_, engine) = run(healthy(), Some(IoqFault::ValidStuck1));
    assert!(engine.module_health(ModuleId::ICM).is_down());
    assert_eq!(
        engine.watchdog().module_health(ModuleId::ICM).last_cause(),
        Some(AnomalyKind::PrematurePass)
    );
    assert_eq!(engine.safe_mode(), None);
}

#[test]
fn check_stuck_at_1_detected_as_burst() {
    let (_, engine) = run(healthy(), Some(IoqFault::CheckStuck1));
    assert_eq!(engine.safe_mode(), Some(SafeModeCause::ErrorBurst));
}

#[test]
fn quarantine_costs_no_extra_cycles_once_muxed() {
    // After quarantine, the §3.4 multiplexer's constant `10` output lets
    // the pipeline run at full speed: a silent module's run must not be
    // dramatically slower than the healthy run past the detection point.
    let (healthy_cpu, _) = run(healthy(), None);
    let (silent_cpu, engine) = run(ScriptedBehavior::Silent, None);
    assert!(engine.module_health(ModuleId::ICM).is_down());
    // The silent run pays the re-arming watchdog timeout a bounded number
    // of times (until quarantine), not per CHECK.
    assert!(
        silent_cpu.stats().cycles < healthy_cpu.stats().cycles + 3_000,
        "silent: {} healthy: {}",
        silent_cpu.stats().cycles,
        healthy_cpu.stats().cycles
    );
}
