main:   la   r28, scratch
        li   r29, 0x7FFEF000
        andi r27, r17, 1
        bne  r27, r0, L0
        addi r9, r9, 77
L0:
        sub r19, r15, r10
        sh r8, 108(r28)
        sw r10, 20(r28)
        jal  F1
        b    L1
F1: addi r20, r20, 3
        jr   ra
L1:
        sll r14, r11, 20
        li   r26, 9
L2:
        add r19, r15, r26
        sub r16, r15, r26
        xor r11, r10, r26
        addi r26, r26, -1
        bne  r26, r0, L2
        srl r17, r13, 25
        sll r17, r13, 7
        li   r26, 5
L3:
        xor r11, r10, r26
        sub r19, r17, r26
        xor r13, r16, r26
        addi r26, r26, -1
        bne  r26, r0, L3
        sra r9, r9, 2
        li   r26, 7
L4:
        sub r13, r17, r26
        sub r9, r9, r26
        addi r26, r26, -1
        bne  r26, r0, L4
        addi r11, r15, 3419
        or r10, r15, r13
        lb r10, 0(r28)
        andi r27, r18, 1
        bne  r27, r0, L5
        addi r19, r19, 77
L5:
        or r12, r12, r19
        lbu r17, 116(r28)
        lw r16, 96(r28)
        sb r10, 140(r28)
        sb r8, 236(r28)
        li   r26, 8
L6:
        sub r16, r10, r26
        sub r18, r15, r26
        addi r26, r26, -1
        bne  r26, r0, L6
        andi r27, r8, 1
        bne  r27, r0, L7
        addi r9, r9, 77
L7:
        andi r27, r10, 1
        bne  r27, r0, L8
        addi r9, r9, 77
L8:
        andi r27, r14, 1
        bne  r27, r0, L9
        addi r17, r17, 77
L9:
        andi r27, r19, 1
        bne  r27, r0, L10
        addi r9, r9, 77
L10:
        sll r15, r8, 9
        jal  F11
        b    L11
F11: addi r20, r20, 3
        jr   ra
L11:
        sw r12, 104(r28)
        jal  F12
        b    L12
F12: addi r20, r20, 3
        jr   ra
L12:
        lbu r9, 176(r28)
        sw r10, 156(r28)
        halt
        .data
        .align 4
scratch: .space 256
