main:   la   r28, scratch
        li   r29, 0x7FFEF000
        srl r19, r17, 19
        lbu r11, 188(r28)
        ori r18, r13, 48539
        jal  F0
        b    L0
F0: addi r20, r20, 3
        jr   ra
L0:
        sb r10, 96(r28)
        li   r26, 1
L1:
        sub r15, r13, r26
        addi r26, r26, -1
        bne  r26, r0, L1
        addi r17, r12, 18059
        sb r10, 248(r28)
        srl r8, r16, 22
        and r18, r11, r13
        li   r26, 6
L2:
        sub r14, r19, r26
        sub r14, r15, r26
        sub r8, r19, r26
        addi r26, r26, -1
        bne  r26, r0, L2
        sra r15, r13, 10
        lw r12, 148(r28)
        jal  F3
        b    L3
F3: addi r20, r20, 3
        jr   ra
L3:
        sra r11, r18, 21
        lbu r18, 240(r28)
        mul r12, r10, r18
        mul r12, r16, r14
        srl r9, r9, 10
        mul r15, r11, r19
        jal  F4
        b    L4
F4: addi r20, r20, 3
        jr   ra
L4:
        jal  F5
        b    L5
F5: addi r20, r20, 3
        jr   ra
L5:
        jal  F6
        b    L6
F6: addi r20, r20, 3
        jr   ra
L6:
        lhu r16, 192(r28)
        sh r11, 16(r28)
        ori r11, r18, 55950
        addi r14, r13, 10303
        sw r14, 228(r28)
        sh r8, 156(r28)
        sh r19, 144(r28)
        sb r18, 212(r28)
        sll r16, r12, 13
        halt
        .data
        .align 4
scratch: .space 256
