main:   la   r28, scratch
        li   r29, 0x7FFEF000
        slti r17, r17, 16918
        xor r10, r19, r11
        andi r27, r16, 1
        bne  r27, r0, L0
        addi r16, r16, 77
L0:
        andi r16, r14, 62529
        andi r14, r14, 10750
        lhu r14, 160(r28)
        li   r26, 6
L1:
        add r17, r19, r26
        xor r17, r15, r26
        xor r19, r16, r26
        addi r26, r26, -1
        bne  r26, r0, L1
        andi r27, r18, 1
        bne  r27, r0, L2
        addi r14, r14, 77
L2:
        sb r10, 152(r28)
        li   r26, 5
L3:
        add r11, r11, r26
        add r15, r15, r26
        addi r26, r26, -1
        bne  r26, r0, L3
        sub r14, r19, r9
        andi r27, r18, 1
        bne  r27, r0, L4
        addi r14, r14, 77
L4:
        sh r9, 212(r28)
        sb r19, 92(r28)
        jal  F5
        b    L5
F5: addi r20, r20, 3
        jr   ra
L5:
        sra r19, r8, 2
        andi r27, r12, 1
        bne  r27, r0, L6
        addi r19, r19, 77
L6:
        sb r17, 228(r28)
        li   r26, 4
L7:
        add r19, r9, r26
        sub r17, r11, r26
        xor r18, r9, r26
        addi r26, r26, -1
        bne  r26, r0, L7
        li   r26, 4
L8:
        xor r13, r18, r26
        xor r18, r15, r26
        addi r26, r26, -1
        bne  r26, r0, L8
        li   r26, 2
L9:
        xor r12, r13, r26
        xor r18, r19, r26
        addi r26, r26, -1
        bne  r26, r0, L9
        mul r18, r9, r18
        lhu r8, 40(r28)
        sra r11, r11, 11
        halt
        .data
        .align 4
scratch: .space 256
