main:   la   r28, scratch
        li   r29, 0x7FFEF000
        li   r26, 1
L0:
        xor r10, r10, r26
        xor r14, r19, r26
        addi r26, r26, -1
        bne  r26, r0, L0
        andi r9, r19, 38110
        sb r10, 12(r28)
        jal  F1
        b    L1
F1: addi r20, r20, 3
        jr   ra
L1:
        lh r16, 192(r28)
        addi r14, r19, -29574
        lw r11, 4(r28)
        slt r12, r13, r19
        jal  F2
        b    L2
F2: addi r20, r20, 3
        jr   ra
L2:
        sll r8, r14, 17
        andi r27, r13, 1
        bne  r27, r0, L3
        addi r9, r9, 77
L3:
        andi r27, r16, 1
        bne  r27, r0, L4
        addi r16, r16, 77
L4:
        add r19, r14, r8
        andi r27, r18, 1
        bne  r27, r0, L5
        addi r9, r9, 77
L5:
        sw r14, 20(r28)
        sb r13, 144(r28)
        jal  F6
        b    L6
F6: addi r20, r20, 3
        jr   ra
L6:
        jal  F7
        b    L7
F7: addi r20, r20, 3
        jr   ra
L7:
        li   r26, 8
L8:
        xor r8, r13, r26
        addi r26, r26, -1
        bne  r26, r0, L8
        sra r12, r9, 31
        and r16, r17, r13
        xori r10, r15, 24347
        slt r14, r9, r16
        slt r11, r9, r10
        li   r26, 4
L9:
        add r11, r18, r26
        sub r10, r18, r26
        add r19, r12, r26
        addi r26, r26, -1
        bne  r26, r0, L9
        sll r12, r15, 8
        lb r10, 132(r28)
        nor r15, r15, r14
        sw r14, 48(r28)
        sw r10, 148(r28)
        xori r9, r15, 57722
        sra r14, r17, 5
        li   r26, 9
L10:
        add r15, r19, r26
        addi r26, r26, -1
        bne  r26, r0, L10
        halt
        .data
        .align 4
scratch: .space 256
