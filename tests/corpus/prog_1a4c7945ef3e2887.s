main:   la   r28, scratch
        li   r29, 0x7FFEF000
        srl r15, r18, 16
        lbu r17, 188(r28)
        sb r19, 248(r28)
        andi r27, r17, 1
        bne  r27, r0, L0
        addi r15, r15, 77
L0:
        li   r26, 7
L1:
        sub r15, r13, r26
        xor r9, r12, r26
        xor r14, r15, r26
        addi r26, r26, -1
        bne  r26, r0, L1
        lw r14, 36(r28)
        li   r26, 6
L2:
        sub r10, r16, r26
        addi r26, r26, -1
        bne  r26, r0, L2
        sll r10, r19, 26
        add r9, r13, r19
        andi r27, r14, 1
        bne  r27, r0, L3
        addi r16, r16, 77
L3:
        sh r12, 40(r28)
        andi r27, r11, 1
        bne  r27, r0, L4
        addi r11, r11, 77
L4:
        nor r16, r17, r10
        li   r26, 9
L5:
        xor r8, r14, r26
        addi r26, r26, -1
        bne  r26, r0, L5
        jal  F6
        b    L6
F6: addi r20, r20, 3
        jr   ra
L6:
        addi r15, r17, -3494
        jal  F7
        b    L7
F7: addi r20, r20, 3
        jr   ra
L7:
        andi r27, r9, 1
        bne  r27, r0, L8
        addi r17, r17, 77
L8:
        xor r10, r15, r14
        li   r26, 6
L9:
        add r17, r19, r26
        sub r17, r10, r26
        addi r26, r26, -1
        bne  r26, r0, L9
        andi r27, r14, 1
        bne  r27, r0, L10
        addi r19, r19, 77
L10:
        li   r26, 9
L11:
        xor r16, r16, r26
        sub r10, r13, r26
        addi r26, r26, -1
        bne  r26, r0, L11
        halt
        .data
        .align 4
scratch: .space 256
