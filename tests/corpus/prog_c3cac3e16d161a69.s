main:   la   r28, scratch
        li   r29, 0x7FFEF000
        xori r10, r11, 2801
        sw r17, 124(r28)
        sra r16, r17, 18
        srl r17, r11, 11
        andi r19, r13, 30069
        andi r27, r17, 1
        bne  r27, r0, L0
        addi r15, r15, 77
L0:
        xor r13, r13, r19
        lw r16, 116(r28)
        sh r14, 204(r28)
        sh r17, 16(r28)
        sll r9, r19, 17
        sll r11, r9, 0
        halt
        .data
        .align 4
scratch: .space 256
