main:   la   r28, scratch
        li   r29, 0x7FFEF000
        jal  F0
        b    L0
F0: addi r20, r20, 3
        jr   ra
L0:
        xor r13, r10, r15
        lw r14, 36(r28)
        jal  F1
        b    L1
F1: addi r20, r20, 3
        jr   ra
L1:
        li   r26, 4
L2:
        sub r9, r14, r26
        add r10, r16, r26
        addi r26, r26, -1
        bne  r26, r0, L2
        jal  F3
        b    L3
F3: addi r20, r20, 3
        jr   ra
L3:
        jal  F4
        b    L4
F4: addi r20, r20, 3
        jr   ra
L4:
        halt
        .data
        .align 4
scratch: .space 256
