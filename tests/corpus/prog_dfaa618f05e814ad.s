main:   la   r28, scratch
        li   r29, 0x7FFEF000
        jal  F0
        b    L0
F0: addi r20, r20, 3
        jr   ra
L0:
        sw r14, 132(r28)
        jal  F1
        b    L1
F1: addi r20, r20, 3
        jr   ra
L1:
        sra r16, r18, 27
        jal  F2
        b    L2
F2: addi r20, r20, 3
        jr   ra
L2:
        addi r13, r9, 20630
        halt
        .data
        .align 4
scratch: .space 256
