main:   la   r28, scratch
        li   r29, 0x7FFEF000
        sra r11, r17, 25
        li   r26, 9
L0:
        sub r8, r15, r26
        addi r26, r26, -1
        bne  r26, r0, L0
        lw r13, 60(r28)
        sra r14, r14, 19
        sb r18, 0(r28)
        jal  F1
        b    L1
F1: addi r20, r20, 3
        jr   ra
L1:
        srl r8, r12, 4
        sub r17, r13, r8
        li   r26, 1
L2:
        sub r17, r19, r26
        addi r26, r26, -1
        bne  r26, r0, L2
        slt r15, r18, r18
        li   r26, 4
L3:
        xor r8, r8, r26
        addi r26, r26, -1
        bne  r26, r0, L3
        sll r18, r10, 31
        andi r27, r17, 1
        bne  r27, r0, L4
        addi r18, r18, 77
L4:
        lh r12, 52(r28)
        li   r26, 8
L5:
        xor r13, r14, r26
        xor r12, r13, r26
        add r17, r16, r26
        addi r26, r26, -1
        bne  r26, r0, L5
        sh r16, 208(r28)
        slti r8, r18, 30443
        li   r26, 8
L6:
        sub r8, r19, r26
        addi r26, r26, -1
        bne  r26, r0, L6
        sw r11, 64(r28)
        andi r27, r13, 1
        bne  r27, r0, L7
        addi r17, r17, 77
L7:
        sw r9, 4(r28)
        andi r27, r9, 1
        bne  r27, r0, L8
        addi r11, r11, 77
L8:
        jal  F9
        b    L9
F9: addi r20, r20, 3
        jr   ra
L9:
        ori r12, r10, 46747
        andi r27, r12, 1
        bne  r27, r0, L10
        addi r10, r10, 77
L10:
        sb r10, 240(r28)
        halt
        .data
        .align 4
scratch: .space 256
