main:   la   r28, scratch
        li   r29, 0x7FFEF000
        sh r15, 100(r28)
        li   r26, 2
L0:
        add r18, r19, r26
        add r17, r13, r26
        sub r14, r10, r26
        addi r26, r26, -1
        bne  r26, r0, L0
        sh r10, 8(r28)
        jal  F1
        b    L1
F1: addi r20, r20, 3
        jr   ra
L1:
        addi r16, r11, 17848
        sw r16, 220(r28)
        sb r17, 80(r28)
        slti r9, r18, 19615
        lbu r10, 160(r28)
        sll r18, r9, 27
        lbu r16, 184(r28)
        sb r17, 4(r28)
        lbu r18, 148(r28)
        sll r9, r10, 9
        jal  F2
        b    L2
F2: addi r20, r20, 3
        jr   ra
L2:
        srl r17, r16, 10
        andi r27, r19, 1
        bne  r27, r0, L3
        addi r8, r8, 77
L3:
        sw r18, 180(r28)
        lhu r8, 108(r28)
        jal  F4
        b    L4
F4: addi r20, r20, 3
        jr   ra
L4:
        sub r15, r10, r8
        and r12, r13, r12
        andi r9, r17, 13284
        srl r14, r12, 1
        andi r27, r19, 1
        bne  r27, r0, L5
        addi r9, r9, 77
L5:
        sb r9, 16(r28)
        jal  F6
        b    L6
F6: addi r20, r20, 3
        jr   ra
L6:
        andi r27, r15, 1
        bne  r27, r0, L7
        addi r8, r8, 77
L7:
        lh r12, 144(r28)
        sra r13, r8, 15
        jal  F8
        b    L8
F8: addi r20, r20, 3
        jr   ra
L8:
        jal  F9
        b    L9
F9: addi r20, r20, 3
        jr   ra
L9:
        andi r27, r9, 1
        bne  r27, r0, L10
        addi r14, r14, 77
L10:
        jal  F11
        b    L11
F11: addi r20, r20, 3
        jr   ra
L11:
        andi r27, r19, 1
        bne  r27, r0, L12
        addi r18, r18, 77
L12:
        halt
        .data
        .align 4
scratch: .space 256
