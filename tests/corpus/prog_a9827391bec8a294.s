main:   la   r28, scratch
        li   r29, 0x7FFEF000
        ori r11, r16, 60158
        sb r12, 148(r28)
        li   r26, 8
L0:
        sub r8, r19, r26
        addi r26, r26, -1
        bne  r26, r0, L0
        jal  F1
        b    L1
F1: addi r20, r20, 3
        jr   ra
L1:
        mul r19, r12, r17
        or r15, r17, r18
        jal  F2
        b    L2
F2: addi r20, r20, 3
        jr   ra
L2:
        sb r9, 104(r28)
        sb r19, 76(r28)
        sb r18, 220(r28)
        jal  F3
        b    L3
F3: addi r20, r20, 3
        jr   ra
L3:
        lh r12, 180(r28)
        li   r26, 8
L4:
        sub r16, r9, r26
        sub r17, r8, r26
        addi r26, r26, -1
        bne  r26, r0, L4
        sra r10, r17, 7
        sll r15, r16, 15
        sw r8, 28(r28)
        lbu r16, 188(r28)
        li   r26, 7
L5:
        add r16, r8, r26
        add r15, r15, r26
        addi r26, r26, -1
        bne  r26, r0, L5
        andi r27, r19, 1
        bne  r27, r0, L6
        addi r12, r12, 77
L6:
        lb r9, 236(r28)
        li   r26, 9
L7:
        add r17, r8, r26
        sub r8, r13, r26
        add r19, r9, r26
        addi r26, r26, -1
        bne  r26, r0, L7
        lw r13, 208(r28)
        or r11, r17, r18
        li   r26, 3
L8:
        xor r9, r16, r26
        add r10, r10, r26
        addi r26, r26, -1
        bne  r26, r0, L8
        srl r17, r10, 13
        lw r18, 224(r28)
        halt
        .data
        .align 4
scratch: .space 256
