main:   la   r28, scratch
        li   r29, 0x7FFEF000
        sll r12, r15, 21
        li   r26, 1
L0:
        xor r12, r13, r26
        addi r26, r26, -1
        bne  r26, r0, L0
        or r17, r13, r17
        andi r27, r13, 1
        bne  r27, r0, L1
        addi r10, r10, 77
L1:
        nor r9, r11, r15
        lh r13, 228(r28)
        sub r11, r11, r18
        andi r27, r10, 1
        bne  r27, r0, L2
        addi r11, r11, 77
L2:
        andi r27, r14, 1
        bne  r27, r0, L3
        addi r14, r14, 77
L3:
        xor r14, r18, r14
        lh r14, 156(r28)
        nor r19, r13, r15
        lbu r19, 8(r28)
        jal  F4
        b    L4
F4: addi r20, r20, 3
        jr   ra
L4:
        sll r10, r12, 10
        andi r15, r14, 35632
        lhu r9, 188(r28)
        andi r27, r16, 1
        bne  r27, r0, L5
        addi r8, r8, 77
L5:
        addi r17, r10, 26711
        slti r19, r16, -24600
        andi r27, r15, 1
        bne  r27, r0, L6
        addi r15, r15, 77
L6:
        sll r16, r11, 21
        li   r26, 5
L7:
        add r8, r9, r26
        sub r13, r8, r26
        xor r9, r19, r26
        addi r26, r26, -1
        bne  r26, r0, L7
        andi r27, r8, 1
        bne  r27, r0, L8
        addi r19, r19, 77
L8:
        jal  F9
        b    L9
F9: addi r20, r20, 3
        jr   ra
L9:
        srl r17, r8, 18
        lb r19, 80(r28)
        li   r26, 6
L10:
        xor r18, r15, r26
        addi r26, r26, -1
        bne  r26, r0, L10
        jal  F11
        b    L11
F11: addi r20, r20, 3
        jr   ra
L11:
        nor r15, r19, r10
        srl r9, r16, 6
        lh r13, 24(r28)
        sll r13, r19, 0
        halt
        .data
        .align 4
scratch: .space 256
