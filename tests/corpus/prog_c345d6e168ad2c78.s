main:   la   r28, scratch
        li   r29, 0x7FFEF000
        sra r8, r19, 21
        jal  F0
        b    L0
F0: addi r20, r20, 3
        jr   ra
L0:
        xori r17, r19, 36729
        jal  F1
        b    L1
F1: addi r20, r20, 3
        jr   ra
L1:
        lhu r8, 224(r28)
        slti r17, r11, 10209
        sh r9, 204(r28)
        andi r10, r17, 19566
        add r14, r14, r13
        lbu r12, 12(r28)
        andi r27, r18, 1
        bne  r27, r0, L2
        addi r8, r8, 77
L2:
        li   r26, 4
L3:
        add r13, r15, r26
        xor r9, r11, r26
        add r19, r12, r26
        addi r26, r26, -1
        bne  r26, r0, L3
        jal  F4
        b    L4
F4: addi r20, r20, 3
        jr   ra
L4:
        sll r18, r13, 14
        xor r14, r19, r15
        jal  F5
        b    L5
F5: addi r20, r20, 3
        jr   ra
L5:
        srl r9, r9, 13
        li   r26, 9
L6:
        add r19, r8, r26
        add r10, r10, r26
        addi r26, r26, -1
        bne  r26, r0, L6
        sll r11, r13, 18
        lbu r10, 4(r28)
        slti r9, r17, -15764
        sh r16, 20(r28)
        jal  F7
        b    L7
F7: addi r20, r20, 3
        jr   ra
L7:
        sll r18, r13, 19
        jal  F8
        b    L8
F8: addi r20, r20, 3
        jr   ra
L8:
        andi r16, r9, 44948
        xori r13, r19, 62987
        lbu r13, 164(r28)
        slt r15, r15, r17
        ori r18, r12, 6451
        sub r10, r17, r13
        ori r14, r18, 37528
        li   r26, 2
L9:
        sub r11, r13, r26
        sub r9, r15, r26
        addi r26, r26, -1
        bne  r26, r0, L9
        lbu r14, 116(r28)
        nor r8, r16, r17
        srl r10, r17, 15
        andi r27, r11, 1
        bne  r27, r0, L10
        addi r8, r8, 77
L10:
        sra r10, r17, 31
        sb r10, 236(r28)
        halt
        .data
        .align 4
scratch: .space 256
