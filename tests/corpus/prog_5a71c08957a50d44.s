main:   la   r28, scratch
        li   r29, 0x7FFEF000
        jal  F0
        b    L0
F0: addi r20, r20, 3
        jr   ra
L0:
        srl r15, r14, 17
        andi r27, r9, 1
        bne  r27, r0, L1
        addi r15, r15, 77
L1:
        andi r27, r14, 1
        bne  r27, r0, L2
        addi r10, r10, 77
L2:
        xori r18, r13, 7957
        jal  F3
        b    L3
F3: addi r20, r20, 3
        jr   ra
L3:
        addi r8, r13, -25852
        andi r10, r13, 23510
        jal  F4
        b    L4
F4: addi r20, r20, 3
        jr   ra
L4:
        slt r15, r15, r9
        andi r27, r10, 1
        bne  r27, r0, L5
        addi r9, r9, 77
L5:
        andi r27, r9, 1
        bne  r27, r0, L6
        addi r14, r14, 77
L6:
        sh r13, 144(r28)
        lbu r19, 168(r28)
        sh r19, 32(r28)
        srl r13, r13, 16
        sra r17, r9, 31
        sra r18, r19, 30
        sw r19, 172(r28)
        li   r26, 8
L7:
        add r11, r18, r26
        add r18, r13, r26
        addi r26, r26, -1
        bne  r26, r0, L7
        li   r26, 8
L8:
        xor r10, r17, r26
        add r16, r10, r26
        addi r26, r26, -1
        bne  r26, r0, L8
        li   r26, 4
L9:
        xor r8, r12, r26
        xor r18, r9, r26
        addi r26, r26, -1
        bne  r26, r0, L9
        sw r10, 0(r28)
        andi r27, r10, 1
        bne  r27, r0, L10
        addi r8, r8, 77
L10:
        li   r26, 6
L11:
        sub r17, r13, r26
        addi r26, r26, -1
        bne  r26, r0, L11
        lh r16, 224(r28)
        jal  F12
        b    L12
F12: addi r20, r20, 3
        jr   ra
L12:
        lb r18, 204(r28)
        lh r8, 72(r28)
        ori r18, r12, 40345
        sra r17, r8, 13
        sh r12, 0(r28)
        halt
        .data
        .align 4
scratch: .space 256
