main:   la   r28, scratch
        li   r29, 0x7FFEF000
        ori r16, r15, 14251
        li   r26, 1
L0:
        xor r14, r9, r26
        add r18, r13, r26
        add r17, r18, r26
        addi r26, r26, -1
        bne  r26, r0, L0
        sh r13, 152(r28)
        xor r8, r19, r17
        lh r9, 80(r28)
        li   r26, 1
L1:
        add r14, r19, r26
        addi r26, r26, -1
        bne  r26, r0, L1
        andi r27, r14, 1
        bne  r27, r0, L2
        addi r9, r9, 77
L2:
        lb r11, 8(r28)
        andi r27, r18, 1
        bne  r27, r0, L3
        addi r8, r8, 77
L3:
        andi r8, r10, 56410
        andi r27, r13, 1
        bne  r27, r0, L4
        addi r8, r8, 77
L4:
        andi r27, r8, 1
        bne  r27, r0, L5
        addi r11, r11, 77
L5:
        addi r10, r17, 8053
        sw r9, 216(r28)
        jal  F6
        b    L6
F6: addi r20, r20, 3
        jr   ra
L6:
        sw r10, 40(r28)
        jal  F7
        b    L7
F7: addi r20, r20, 3
        jr   ra
L7:
        ori r13, r11, 12288
        jal  F8
        b    L8
F8: addi r20, r20, 3
        jr   ra
L8:
        nor r13, r14, r11
        sh r8, 84(r28)
        andi r27, r15, 1
        bne  r27, r0, L9
        addi r9, r9, 77
L9:
        add r19, r18, r11
        srl r10, r19, 20
        li   r26, 1
L10:
        xor r10, r15, r26
        add r19, r11, r26
        sub r14, r19, r26
        addi r26, r26, -1
        bne  r26, r0, L10
        jal  F11
        b    L11
F11: addi r20, r20, 3
        jr   ra
L11:
        ori r16, r16, 8344
        or r11, r16, r18
        jal  F12
        b    L12
F12: addi r20, r20, 3
        jr   ra
L12:
        lh r9, 64(r28)
        lw r14, 20(r28)
        lb r10, 84(r28)
        xori r12, r18, 4759
        sra r9, r13, 15
        sra r9, r14, 13
        lh r15, 192(r28)
        halt
        .data
        .align 4
scratch: .space 256
