main:   la   r28, scratch
        li   r29, 0x7FFEF000
        mul r18, r14, r12
        sra r13, r10, 20
        sw r15, 100(r28)
        andi r27, r19, 1
        bne  r27, r0, L0
        addi r19, r19, 77
L0:
        halt
        .data
        .align 4
scratch: .space 256
