main:   la   r28, scratch
        li   r29, 0x7FFEF000
        andi r27, r13, 1
        bne  r27, r0, L0
        addi r19, r19, 77
L0:
        andi r27, r16, 1
        bne  r27, r0, L1
        addi r16, r16, 77
L1:
        andi r27, r8, 1
        bne  r27, r0, L2
        addi r18, r18, 77
L2:
        lh r9, 164(r28)
        sb r13, 104(r28)
        slti r17, r14, 17764
        andi r27, r12, 1
        bne  r27, r0, L3
        addi r17, r17, 77
L3:
        lbu r8, 208(r28)
        sra r16, r17, 23
        ori r8, r13, 63462
        srl r18, r8, 2
        or r19, r18, r16
        halt
        .data
        .align 4
scratch: .space 256
