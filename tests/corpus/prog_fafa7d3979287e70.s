main:   la   r28, scratch
        li   r29, 0x7FFEF000
        sll r8, r10, 11
        jal  F0
        b    L0
F0: addi r20, r20, 3
        jr   ra
L0:
        li   r26, 4
L1:
        add r15, r17, r26
        addi r26, r26, -1
        bne  r26, r0, L1
        sll r12, r11, 22
        sw r12, 136(r28)
        xor r10, r19, r16
        nor r16, r16, r14
        sw r19, 12(r28)
        andi r27, r15, 1
        bne  r27, r0, L2
        addi r12, r12, 77
L2:
        xori r9, r15, 33183
        lbu r15, 236(r28)
        andi r27, r14, 1
        bne  r27, r0, L3
        addi r16, r16, 77
L3:
        lb r12, 100(r28)
        srl r16, r11, 6
        lh r15, 96(r28)
        jal  F4
        b    L4
F4: addi r20, r20, 3
        jr   ra
L4:
        sh r13, 72(r28)
        andi r27, r18, 1
        bne  r27, r0, L5
        addi r17, r17, 77
L5:
        srl r10, r18, 27
        slt r17, r8, r9
        addi r9, r8, 27887
        jal  F6
        b    L6
F6: addi r20, r20, 3
        jr   ra
L6:
        ori r13, r15, 289
        sll r19, r15, 20
        ori r15, r12, 6999
        halt
        .data
        .align 4
scratch: .space 256
