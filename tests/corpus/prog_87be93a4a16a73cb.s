main:   la   r28, scratch
        li   r29, 0x7FFEF000
        and r18, r14, r17
        andi r9, r8, 48015
        sw r19, 88(r28)
        and r9, r17, r11
        lh r8, 228(r28)
        sh r13, 104(r28)
        sw r10, 192(r28)
        sb r8, 208(r28)
        jal  F0
        b    L0
F0: addi r20, r20, 3
        jr   ra
L0:
        sra r9, r16, 20
        srl r12, r10, 23
        andi r27, r11, 1
        bne  r27, r0, L1
        addi r8, r8, 77
L1:
        sw r19, 216(r28)
        lh r16, 40(r28)
        andi r27, r11, 1
        bne  r27, r0, L2
        addi r13, r13, 77
L2:
        sh r17, 144(r28)
        sb r12, 12(r28)
        andi r16, r12, 64109
        lhu r8, 176(r28)
        sw r18, 60(r28)
        jal  F3
        b    L3
F3: addi r20, r20, 3
        jr   ra
L3:
        jal  F4
        b    L4
F4: addi r20, r20, 3
        jr   ra
L4:
        sw r15, 240(r28)
        lbu r10, 176(r28)
        li   r26, 5
L5:
        add r18, r11, r26
        sub r11, r16, r26
        addi r26, r26, -1
        bne  r26, r0, L5
        lbu r17, 12(r28)
        sra r11, r13, 1
        lw r14, 236(r28)
        lb r11, 100(r28)
        lh r9, 44(r28)
        addi r14, r16, -26636
        lbu r13, 28(r28)
        jal  F6
        b    L6
F6: addi r20, r20, 3
        jr   ra
L6:
        sub r11, r19, r16
        andi r27, r9, 1
        bne  r27, r0, L7
        addi r12, r12, 77
L7:
        halt
        .data
        .align 4
scratch: .space 256
