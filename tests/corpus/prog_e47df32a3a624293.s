main:   la   r28, scratch
        li   r29, 0x7FFEF000
        lb r19, 156(r28)
        xori r18, r16, 44446
        andi r27, r17, 1
        bne  r27, r0, L0
        addi r16, r16, 77
L0:
        mul r15, r19, r8
        sub r13, r8, r12
        jal  F1
        b    L1
F1: addi r20, r20, 3
        jr   ra
L1:
        add r10, r10, r16
        andi r27, r17, 1
        bne  r27, r0, L2
        addi r19, r19, 77
L2:
        andi r27, r12, 1
        bne  r27, r0, L3
        addi r10, r10, 77
L3:
        lbu r17, 236(r28)
        li   r26, 4
L4:
        sub r12, r8, r26
        sub r12, r19, r26
        sub r15, r15, r26
        addi r26, r26, -1
        bne  r26, r0, L4
        jal  F5
        b    L5
F5: addi r20, r20, 3
        jr   ra
L5:
        jal  F6
        b    L6
F6: addi r20, r20, 3
        jr   ra
L6:
        sub r15, r12, r9
        xor r18, r15, r11
        sub r12, r15, r15
        jal  F7
        b    L7
F7: addi r20, r20, 3
        jr   ra
L7:
        lw r15, 136(r28)
        sb r9, 200(r28)
        jal  F8
        b    L8
F8: addi r20, r20, 3
        jr   ra
L8:
        sb r13, 160(r28)
        sw r15, 200(r28)
        jal  F9
        b    L9
F9: addi r20, r20, 3
        jr   ra
L9:
        andi r27, r19, 1
        bne  r27, r0, L10
        addi r9, r9, 77
L10:
        sh r8, 32(r28)
        sh r12, 196(r28)
        halt
        .data
        .align 4
scratch: .space 256
