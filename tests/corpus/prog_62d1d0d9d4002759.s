main:   la   r28, scratch
        li   r29, 0x7FFEF000
        and r18, r19, r19
        sll r15, r15, 20
        lhu r14, 192(r28)
        slt r12, r13, r19
        and r11, r8, r8
        li   r26, 6
L0:
        add r11, r10, r26
        add r14, r8, r26
        sub r15, r14, r26
        addi r26, r26, -1
        bne  r26, r0, L0
        sb r12, 124(r28)
        andi r27, r11, 1
        bne  r27, r0, L1
        addi r8, r8, 77
L1:
        jal  F2
        b    L2
F2: addi r20, r20, 3
        jr   ra
L2:
        xor r16, r11, r17
        li   r26, 8
L3:
        sub r19, r11, r26
        add r9, r8, r26
        add r15, r8, r26
        addi r26, r26, -1
        bne  r26, r0, L3
        andi r18, r12, 34374
        slti r9, r16, -14122
        jal  F4
        b    L4
F4: addi r20, r20, 3
        jr   ra
L4:
        halt
        .data
        .align 4
scratch: .space 256
