main:   la   r28, scratch
        li   r29, 0x7FFEF000
        andi r27, r13, 1
        bne  r27, r0, L0
        addi r15, r15, 77
L0:
        nor r11, r9, r10
        li   r26, 6
L1:
        sub r16, r14, r26
        addi r26, r26, -1
        bne  r26, r0, L1
        li   r26, 7
L2:
        xor r11, r12, r26
        add r11, r15, r26
        add r15, r19, r26
        addi r26, r26, -1
        bne  r26, r0, L2
        ori r19, r14, 58908
        jal  F3
        b    L3
F3: addi r20, r20, 3
        jr   ra
L3:
        lb r10, 112(r28)
        lh r15, 72(r28)
        lb r19, 132(r28)
        li   r26, 9
L4:
        sub r16, r15, r26
        xor r19, r15, r26
        addi r26, r26, -1
        bne  r26, r0, L4
        sub r13, r12, r18
        lw r17, 92(r28)
        sub r15, r16, r9
        li   r26, 7
L5:
        xor r16, r18, r26
        xor r9, r14, r26
        addi r26, r26, -1
        bne  r26, r0, L5
        lb r8, 236(r28)
        lbu r13, 228(r28)
        andi r27, r16, 1
        bne  r27, r0, L6
        addi r18, r18, 77
L6:
        li   r26, 4
L7:
        xor r19, r8, r26
        add r12, r10, r26
        sub r15, r18, r26
        addi r26, r26, -1
        bne  r26, r0, L7
        lbu r11, 152(r28)
        sb r11, 204(r28)
        sll r8, r11, 11
        xor r12, r13, r10
        andi r27, r10, 1
        bne  r27, r0, L8
        addi r12, r12, 77
L8:
        andi r27, r10, 1
        bne  r27, r0, L9
        addi r18, r18, 77
L9:
        li   r26, 9
L10:
        add r18, r19, r26
        xor r18, r18, r26
        add r17, r18, r26
        addi r26, r26, -1
        bne  r26, r0, L10
        lb r17, 88(r28)
        addi r16, r16, -17115
        sh r10, 248(r28)
        srl r9, r13, 27
        li   r26, 5
L11:
        xor r8, r11, r26
        addi r26, r26, -1
        bne  r26, r0, L11
        halt
        .data
        .align 4
scratch: .space 256
