main:   la   r28, scratch
        li   r29, 0x7FFEF000
        sll r13, r13, 29
        xori r14, r12, 40386
        sub r19, r14, r16
        sb r10, 20(r28)
        srl r18, r12, 8
        xori r19, r13, 22083
        sra r18, r16, 15
        andi r27, r18, 1
        bne  r27, r0, L0
        addi r8, r8, 77
L0:
        li   r26, 7
L1:
        add r14, r11, r26
        add r8, r13, r26
        add r15, r19, r26
        addi r26, r26, -1
        bne  r26, r0, L1
        slt r17, r9, r13
        lb r13, 16(r28)
        li   r26, 9
L2:
        xor r14, r8, r26
        addi r26, r26, -1
        bne  r26, r0, L2
        halt
        .data
        .align 4
scratch: .space 256
