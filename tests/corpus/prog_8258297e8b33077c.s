main:   la   r28, scratch
        li   r29, 0x7FFEF000
        andi r27, r8, 1
        bne  r27, r0, L0
        addi r19, r19, 77
L0:
        li   r26, 7
L1:
        xor r15, r11, r26
        add r15, r9, r26
        sub r18, r13, r26
        addi r26, r26, -1
        bne  r26, r0, L1
        li   r26, 4
L2:
        sub r9, r15, r26
        addi r26, r26, -1
        bne  r26, r0, L2
        li   r26, 1
L3:
        sub r9, r13, r26
        add r15, r13, r26
        addi r26, r26, -1
        bne  r26, r0, L3
        slt r17, r8, r16
        slti r14, r17, -30802
        li   r26, 2
L4:
        xor r10, r17, r26
        sub r8, r15, r26
        addi r26, r26, -1
        bne  r26, r0, L4
        addi r11, r8, 19316
        xor r14, r8, r9
        li   r26, 7
L5:
        xor r16, r17, r26
        xor r12, r18, r26
        addi r26, r26, -1
        bne  r26, r0, L5
        lw r18, 128(r28)
        srl r14, r11, 30
        li   r26, 4
L6:
        add r15, r15, r26
        xor r12, r18, r26
        addi r26, r26, -1
        bne  r26, r0, L6
        lb r17, 120(r28)
        srl r15, r15, 3
        lbu r11, 0(r28)
        slti r17, r19, 20192
        jal  F7
        b    L7
F7: addi r20, r20, 3
        jr   ra
L7:
        halt
        .data
        .align 4
scratch: .space 256
