main:   la   r28, scratch
        li   r29, 0x7FFEF000
        lh r14, 236(r28)
        sra r16, r9, 26
        andi r27, r13, 1
        bne  r27, r0, L0
        addi r10, r10, 77
L0:
        sh r10, 84(r28)
        andi r27, r19, 1
        bne  r27, r0, L1
        addi r11, r11, 77
L1:
        lhu r15, 192(r28)
        halt
        .data
        .align 4
scratch: .space 256
