main:   la   r28, scratch
        li   r29, 0x7FFEF000
        sb r10, 192(r28)
        jal  F0
        b    L0
F0: addi r20, r20, 3
        jr   ra
L0:
        mul r11, r18, r15
        li   r26, 7
L1:
        add r17, r16, r26
        add r19, r13, r26
        xor r12, r11, r26
        addi r26, r26, -1
        bne  r26, r0, L1
        srl r15, r15, 30
        li   r26, 2
L2:
        sub r15, r16, r26
        addi r26, r26, -1
        bne  r26, r0, L2
        sb r17, 24(r28)
        addi r8, r12, -16015
        sra r19, r12, 23
        halt
        .data
        .align 4
scratch: .space 256
