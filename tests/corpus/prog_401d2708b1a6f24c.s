main:   la   r28, scratch
        li   r29, 0x7FFEF000
        or r12, r11, r9
        sw r14, 228(r28)
        sh r14, 172(r28)
        andi r27, r15, 1
        bne  r27, r0, L0
        addi r13, r13, 77
L0:
        sb r8, 248(r28)
        andi r27, r18, 1
        bne  r27, r0, L1
        addi r17, r17, 77
L1:
        ori r12, r16, 14883
        li   r26, 3
L2:
        sub r18, r12, r26
        add r19, r11, r26
        add r16, r11, r26
        addi r26, r26, -1
        bne  r26, r0, L2
        li   r26, 8
L3:
        xor r16, r13, r26
        sub r8, r13, r26
        addi r26, r26, -1
        bne  r26, r0, L3
        jal  F4
        b    L4
F4: addi r20, r20, 3
        jr   ra
L4:
        slti r12, r13, -25069
        ori r18, r18, 22721
        lbu r11, 44(r28)
        sw r8, 216(r28)
        sll r8, r10, 23
        halt
        .data
        .align 4
scratch: .space 256
