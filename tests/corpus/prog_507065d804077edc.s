main:   la   r28, scratch
        li   r29, 0x7FFEF000
        sub r8, r13, r8
        jal  F0
        b    L0
F0: addi r20, r20, 3
        jr   ra
L0:
        li   r26, 5
L1:
        xor r14, r19, r26
        add r9, r16, r26
        xor r9, r8, r26
        addi r26, r26, -1
        bne  r26, r0, L1
        andi r18, r17, 17164
        sll r9, r12, 1
        andi r27, r8, 1
        bne  r27, r0, L2
        addi r11, r11, 77
L2:
        lhu r10, 248(r28)
        srl r17, r12, 25
        addi r11, r14, -28427
        mul r19, r12, r17
        xori r15, r14, 30337
        lw r18, 80(r28)
        jal  F3
        b    L3
F3: addi r20, r20, 3
        jr   ra
L3:
        xori r14, r19, 18709
        slti r17, r18, -25051
        srl r15, r12, 6
        sw r13, 140(r28)
        ori r15, r14, 53556
        jal  F4
        b    L4
F4: addi r20, r20, 3
        jr   ra
L4:
        halt
        .data
        .align 4
scratch: .space 256
