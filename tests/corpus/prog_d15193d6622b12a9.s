main:   la   r28, scratch
        li   r29, 0x7FFEF000
        sll r11, r10, 2
        li   r26, 7
L0:
        add r12, r8, r26
        addi r26, r26, -1
        bne  r26, r0, L0
        xori r9, r17, 24795
        sra r17, r8, 26
        sh r11, 0(r28)
        andi r27, r14, 1
        bne  r27, r0, L1
        addi r19, r19, 77
L1:
        andi r27, r9, 1
        bne  r27, r0, L2
        addi r16, r16, 77
L2:
        xori r14, r9, 32198
        slt r11, r13, r17
        jal  F3
        b    L3
F3: addi r20, r20, 3
        jr   ra
L3:
        lhu r13, 160(r28)
        jal  F4
        b    L4
F4: addi r20, r20, 3
        jr   ra
L4:
        srl r11, r11, 30
        srl r19, r19, 22
        andi r27, r15, 1
        bne  r27, r0, L5
        addi r8, r8, 77
L5:
        addi r18, r8, 24690
        lb r11, 100(r28)
        li   r26, 8
L6:
        add r11, r14, r26
        addi r26, r26, -1
        bne  r26, r0, L6
        andi r27, r14, 1
        bne  r27, r0, L7
        addi r17, r17, 77
L7:
        li   r26, 6
L8:
        sub r15, r10, r26
        addi r26, r26, -1
        bne  r26, r0, L8
        andi r27, r8, 1
        bne  r27, r0, L9
        addi r19, r19, 77
L9:
        jal  F10
        b    L10
F10: addi r20, r20, 3
        jr   ra
L10:
        halt
        .data
        .align 4
scratch: .space 256
