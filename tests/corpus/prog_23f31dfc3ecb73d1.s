main:   la   r28, scratch
        li   r29, 0x7FFEF000
        sra r19, r12, 19
        sb r10, 188(r28)
        li   r26, 3
L0:
        xor r14, r16, r26
        xor r17, r17, r26
        addi r26, r26, -1
        bne  r26, r0, L0
        srl r8, r12, 25
        or r19, r19, r18
        add r8, r12, r8
        lbu r11, 8(r28)
        xor r10, r17, r13
        andi r27, r16, 1
        bne  r27, r0, L1
        addi r17, r17, 77
L1:
        xori r13, r18, 34040
        andi r27, r8, 1
        bne  r27, r0, L2
        addi r9, r9, 77
L2:
        sw r12, 28(r28)
        jal  F3
        b    L3
F3: addi r20, r20, 3
        jr   ra
L3:
        sb r14, 40(r28)
        jal  F4
        b    L4
F4: addi r20, r20, 3
        jr   ra
L4:
        andi r27, r18, 1
        bne  r27, r0, L5
        addi r12, r12, 77
L5:
        andi r27, r15, 1
        bne  r27, r0, L6
        addi r9, r9, 77
L6:
        srl r13, r17, 27
        andi r27, r12, 1
        bne  r27, r0, L7
        addi r15, r15, 77
L7:
        lb r18, 180(r28)
        andi r27, r9, 1
        bne  r27, r0, L8
        addi r11, r11, 77
L8:
        slt r13, r16, r18
        lh r13, 144(r28)
        jal  F9
        b    L9
F9: addi r20, r20, 3
        jr   ra
L9:
        slti r10, r15, -21910
        sb r12, 108(r28)
        jal  F10
        b    L10
F10: addi r20, r20, 3
        jr   ra
L10:
        lhu r14, 200(r28)
        slti r8, r13, -28295
        jal  F11
        b    L11
F11: addi r20, r20, 3
        jr   ra
L11:
        lb r14, 148(r28)
        sh r12, 72(r28)
        li   r26, 3
L12:
        sub r19, r12, r26
        addi r26, r26, -1
        bne  r26, r0, L12
        li   r26, 6
L13:
        xor r11, r10, r26
        add r9, r10, r26
        xor r13, r10, r26
        addi r26, r26, -1
        bne  r26, r0, L13
        li   r26, 4
L14:
        xor r15, r14, r26
        add r11, r13, r26
        addi r26, r26, -1
        bne  r26, r0, L14
        sll r14, r9, 25
        xor r11, r15, r14
        halt
        .data
        .align 4
scratch: .space 256
