main:   la   r28, scratch
        li   r29, 0x7FFEF000
        li   r26, 2
L0:
        xor r16, r16, r26
        xor r12, r10, r26
        add r16, r17, r26
        addi r26, r26, -1
        bne  r26, r0, L0
        andi r27, r10, 1
        bne  r27, r0, L1
        addi r16, r16, 77
L1:
        jal  F2
        b    L2
F2: addi r20, r20, 3
        jr   ra
L2:
        sra r15, r19, 30
        slti r15, r17, 8809
        halt
        .data
        .align 4
scratch: .space 256
