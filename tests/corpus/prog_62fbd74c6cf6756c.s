main:   la   r28, scratch
        li   r29, 0x7FFEF000
        sw r19, 156(r28)
        srl r15, r17, 31
        sh r9, 248(r28)
        lbu r13, 88(r28)
        andi r27, r15, 1
        bne  r27, r0, L0
        addi r9, r9, 77
L0:
        jal  F1
        b    L1
F1: addi r20, r20, 3
        jr   ra
L1:
        li   r26, 6
L2:
        add r18, r11, r26
        addi r26, r26, -1
        bne  r26, r0, L2
        slti r14, r16, 7387
        nor r10, r18, r14
        jal  F3
        b    L3
F3: addi r20, r20, 3
        jr   ra
L3:
        lbu r14, 248(r28)
        sw r13, 4(r28)
        lbu r11, 232(r28)
        andi r27, r9, 1
        bne  r27, r0, L4
        addi r17, r17, 77
L4:
        sw r12, 188(r28)
        jal  F5
        b    L5
F5: addi r20, r20, 3
        jr   ra
L5:
        sra r9, r14, 5
        xori r12, r10, 37006
        andi r27, r13, 1
        bne  r27, r0, L6
        addi r8, r8, 77
L6:
        lh r16, 76(r28)
        andi r27, r19, 1
        bne  r27, r0, L7
        addi r16, r16, 77
L7:
        sb r19, 192(r28)
        mul r13, r10, r18
        li   r26, 7
L8:
        add r10, r15, r26
        sub r9, r12, r26
        addi r26, r26, -1
        bne  r26, r0, L8
        andi r18, r10, 29517
        slti r13, r12, 20178
        andi r12, r13, 60062
        li   r26, 6
L9:
        sub r19, r17, r26
        add r16, r19, r26
        addi r26, r26, -1
        bne  r26, r0, L9
        sb r16, 96(r28)
        xori r17, r18, 44967
        lhu r12, 76(r28)
        sra r14, r14, 29
        sw r17, 4(r28)
        halt
        .data
        .align 4
scratch: .space 256
