//! # rse — the Reliability and Security Engine
//!
//! A from-scratch Rust reproduction of *"An Architectural Framework for
//! Providing Reliability and Security Support"* (Nakka, Xu, Kalbarczyk,
//! Iyer — DSN 2004).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`isa`] — the guest instruction set, assembler, and the `CHK`
//!   (CHECK) instruction extension,
//! * [`mem`] — caches, DRAM model and the pipeline/RSE bus arbiter,
//! * [`pipeline`] — the superscalar out-of-order processor simulator,
//! * [`core`] — the RSE framework itself: input queues, the Instruction
//!   Output Queue, the Memory Access Unit, module hosting, and the
//!   self-checking watchdog,
//! * [`modules`] — the four paper modules (MLR, DDT, ICM, AHBM),
//! * [`fleet`] — the multi-node heartbeat fabric: remote-peer AHBM
//!   suspicion, checkpoint failover, fencing, and soak campaigns,
//! * [`sys`] — the guest OS layer: loader, threads, syscalls, recovery,
//! * [`workloads`] — the evaluation workload generators.
//!
//! See `examples/quickstart.rs` for an end-to-end tour, and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment inventory.

pub use rse_core as core;
pub use rse_fleet as fleet;
pub use rse_isa as isa;
pub use rse_mem as mem;
pub use rse_modules as modules;
pub use rse_pipeline as pipeline;
pub use rse_sys as sys;
pub use rse_workloads as workloads;
