//! Quickstart: assemble a guest program, attach the RSE with the
//! Instruction Checker Module, inject a transient fault, and watch the
//! framework detect and recover from it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rse::core::{Engine, RseConfig};
use rse::isa::asm::assemble;
use rse::isa::ModuleId;
use rse::mem::{MemConfig, MemorySystem};
use rse::modules::icm::{Icm, IcmConfig};
use rse::pipeline::{CheckPolicy, FetchFault, Pipeline, PipelineConfig, StepEvent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A guest program: sum the integers 1..=100.
    let image = assemble(
        r#"
        main:   li   r8, 0          # i
                li   r9, 0          # sum
        loop:   addi r8, r8, 1
                add  r9, r9, r8
                li   r10, 100
                bne  r8, r10, loop
                halt
        "#,
    )?;

    // 2. A superscalar pipeline with the paper's Figure 1 parameters,
    //    runtime CHECK insertion on every control-flow instruction, and
    //    the RSE-attached memory configuration (arbiter in the DRAM path).
    let mut cpu = Pipeline::new(
        PipelineConfig {
            check_policy: CheckPolicy::ControlFlow,
            ..PipelineConfig::default()
        },
        MemorySystem::new(MemConfig::with_framework()),
    );
    cpu.load_image(&image);

    // 3. The Reliability and Security Engine hosting the Instruction
    //    Checker Module, with redundant copies of all control-flow
    //    instructions installed in CheckerMemory.
    let mut icm = Icm::new(IcmConfig::default());
    icm.install_for_control_flow(&image, &mut cpu.mem_mut().memory);
    let mut engine = Engine::new(RseConfig::default());
    engine.install(Box::new(icm));
    engine.enable(ModuleId::ICM);

    // 4. Corrupt the branch in flight: flip a bit of the 6th fetched
    //    word (the bne) as it leaves the I-cache.
    cpu.set_fetch_fault(Some(FetchFault::xor(5, 0x0000_0020)));

    // 5. Run. The ICM compares the corrupted word against its redundant
    //    copy, reports a mismatch, and the pipeline flushes and refetches
    //    — the program still computes the right answer.
    let event = cpu.run(&mut engine, 10_000_000);
    assert_eq!(event, StepEvent::Halted);

    let icm: &Icm = engine.module_ref(ModuleId::ICM).expect("ICM installed");
    println!("sum(1..=100)        = {} (expected 5050)", cpu.regs()[9]);
    println!("cycles              = {}", cpu.stats().cycles);
    println!("instructions        = {}", cpu.stats().committed_program());
    println!("checks completed    = {}", icm.stats().checks_completed);
    println!("mismatches detected = {}", icm.stats().mismatches);
    println!("pipeline flushes    = {}", cpu.stats().check_flushes);
    assert_eq!(cpu.regs()[9], 5050);
    assert!(
        icm.stats().mismatches >= 1,
        "the injected fault must be detected"
    );
    Ok(())
}
