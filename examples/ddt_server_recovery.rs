//! Thread-crash recovery with the Data Dependency Tracker — the paper's
//! headline DDT scenario (§4.2, Figure 8): a malicious thread corrupts a
//! shared page and crashes; with the DDT, only the threads that consumed
//! its data are terminated, the corrupted page is rolled back from the
//! SavePage checkpoint, and the healthy thread finishes its work. Without
//! the DDT, the kill-all policy destroys the whole process.
//!
//! ```text
//! cargo run --example ddt_server_recovery
//! ```

use rse::core::{Engine, RseConfig};
use rse::isa::asm::assemble;
use rse::isa::ModuleId;
use rse::mem::{MemConfig, MemorySystem};
use rse::modules::ddt::{Ddt, DdtConfig};
use rse::pipeline::{Pipeline, PipelineConfig};
use rse::sys::{Os, OsConfig, OsExit, ThreadState};

/// Threads (spawn order): 0 = main, 1 = worker (healthy, independent),
/// 2 = consumer (reads the attacker's data), 3 = attacker.
///
/// Event ordering is enforced with flag pages: `flag1` (consumer-owned)
/// and `flag2`/`flag3` handshakes. The dependency chain that matters:
/// the consumer reads `shared` after the attacker wrote it.
const SRC: &str = r#"
    main:   li   r2, 16            # spawn worker
            la   r4, worker
            li   r5, 0
            syscall
            li   r2, 16            # spawn consumer
            la   r4, consumer
            li   r5, 0
            syscall
            li   r2, 16            # spawn attacker
            la   r4, attacker
            li   r5, 0
            syscall
    wait:   la   t0, done
            lw   t1, 0(t0)
            li   t2, 1
            beq  t1, t2, fin
            li   r2, 18            # YIELD
            syscall
            b    wait
    fin:    la   t0, shared        # inspect the (rolled-back) shared page
            lw   r4, 0(t0)
            li   r2, 2             # print shared[0]
            syscall
            la   t0, unitsbuf
            lw   r4, 0(t0)
            li   r2, 2             # print healthy worker's result
            syscall
            halt

    # Healthy worker: 20 units of private work, then reports.
    worker: li   s0, 20
            li   s1, 0
    wkl:    addi s1, s1, 1
            li   r2, 18            # YIELD (interleave with the others)
            syscall
            addi s0, s0, -1
            bne  s0, r0, wkl
            la   t0, unitsbuf
            sw   s1, 0(t0)
            la   t0, done
            li   t1, 1
            sw   t1, 0(t0)
            li   r2, 17            # THREAD_EXIT
            syscall

    # Consumer: legitimately owns the shared page, then consumes the
    # attacker's update (becoming dependent on it).
    consumer:
            la   s0, shared
            li   t0, 42
            sw   t0, 0(s0)         # consumer owns the page (clean state)
            la   t0, flag1
            li   t1, 1
            sw   t1, 0(t0)         # signal the attacker
    cwait:  la   t0, flag2
            lw   t1, 0(t0)
            bne  t1, r0, cread
            li   r2, 18
            syscall
            b    cwait
    cread:  lw   s1, 0(s0)         # reads the attacker's 666 -> dependent
            la   t0, flag3
            li   t1, 1
            sw   t1, 0(t0)
    cspin:  li   r2, 18            # loop forever (until terminated)
            syscall
            b    cspin

    # Attacker: waits for the page to be owned, corrupts it, crashes.
    attacker:
    await:  la   t0, flag1
            lw   t1, 0(t0)
            bne  t1, r0, astrike
            li   r2, 18
            syscall
            b    await
    astrike:
            la   t0, shared
            li   t1, 666
            sw   t1, 0(t0)         # corrupting write -> SavePage
            la   t0, flag2
            li   t1, 1
            sw   t1, 0(t0)
    await3: la   t0, flag3
            lw   t1, 0(t0)
            bne  t1, r0, acrash
            li   r2, 18
            syscall
            b    await3
    acrash: li   r2, 50            # CRASH (the MLR turned the attack
            syscall                # into a crash)

            .data
            .align 4
    shared:   .space 4096
    flag1:    .space 4096
    flag2:    .space 4096
    flag3:    .space 4096
    done:     .space 4096
    unitsbuf: .space 4096
"#;

/// Exit status, per-thread results, and (when DDT is armed) the
/// `(terminated threads, recovered units)` pair, plus the final OS.
type RunResult = (OsExit, Vec<i32>, Option<(Vec<usize>, Vec<u32>)>, Os);

fn run(with_ddt: bool) -> RunResult {
    let image = assemble(SRC).expect("assembles");
    let mut cpu = Pipeline::new(
        PipelineConfig::default(),
        MemorySystem::new(MemConfig::with_framework()),
    );
    rse::sys::loader::load_process(&mut cpu, &image);
    let mut engine = Engine::new(RseConfig::default());
    if with_ddt {
        let mut ddt = Ddt::new(DdtConfig::default());
        ddt.set_current_thread(0);
        engine.install(Box::new(ddt));
        engine.enable(ModuleId::DDT);
    }
    let mut os = Os::new(OsConfig::default());
    let exit = os.run(&mut cpu, &mut engine, 100_000_000);
    let recovery = os
        .last_recovery
        .as_ref()
        .map(|r| (r.terminated.clone(), r.pages_restored.clone()));
    let output = os.output.clone();
    (exit, output, recovery, os)
}

fn main() {
    println!("--- without DDT: the kill-all policy ---");
    let (exit, _, _, _) = run(false);
    println!("outcome: {exit:?}\n");
    assert!(matches!(exit, OsExit::ProcessKilled { .. }));

    println!("--- with DDT: dependency-aware recovery ---");
    let (exit, output, recovery, os) = run(true);
    println!("outcome: {exit:?}");
    let (terminated, restored) = recovery.expect("a recovery happened");
    println!("threads terminated by recovery: {terminated:?} (attacker=3, consumer=2)");
    println!("pages rolled back: {}", restored.len());
    println!(
        "shared[0] after rollback: {} (42 = the pre-attack value)",
        output[0]
    );
    println!("healthy worker completed units: {}", output[1]);
    assert_eq!(exit, OsExit::Exited { code: 0 });
    assert_eq!(terminated, vec![2, 3]);
    assert_eq!(output, vec![42, 20]);
    assert_eq!(os.thread_state(1), Some(ThreadState::Done));
    assert_eq!(os.thread_state(2), Some(ThreadState::Crashed));
    println!("\nThe healthy thread survived the attack; the consumers of tainted");
    println!("data were terminated and the corrupted page was restored — no");
    println!("process restart required.");
}
