//! Memory Layout Randomization end to end (the Figure 3 handshake):
//! the loader assembles the special header, the guest program passes it
//! to the MLR module via CHECK instructions, and the module returns
//! randomized region bases and relocates the GOT/PLT in hardware.
//!
//! Two loads of the same binary produce two different memory layouts —
//! the property that defeats the fixed-layout assumption behind ~60% of
//! the attacks the paper cites.
//!
//! ```text
//! cargo run --example mlr_randomize
//! ```

use rse::core::{Engine, RseConfig};
use rse::isa::asm::assemble;
use rse::isa::ModuleId;
use rse::mem::{MemConfig, MemorySystem};
use rse::modules::mlr::{Mlr, MlrConfig};
use rse::pipeline::{Pipeline, PipelineConfig, StepEvent};
use rse::sys::loader;

/// The loader stub a real system would link in front of the program:
/// it hands the special header to the MLR and reads back the randomized
/// bases (instructions I0–I3 of Figure 3(A)).
const LOADER_STUB: &str = r#"
    main:   li   r4, 0x0EFF0000    # a0 = header location (loader.HEADER_ADDR)
            li   r5, 64            # a1 = header size
            chk  mlr, blk, 2, 0    # MLR_EXEC_HDR
            chk  mlr, blk, 3, 0    # MLR_PI_RAND
            li   r8, 0x0EFF0040    # results follow the header
            lw   r9, 0(r8)         # randomized shared-library base
            lw   r10, 4(r8)        # randomized stack base
            lw   r11, 8(r8)        # randomized heap base
            halt
    "#;

fn load_once(run: u32) -> (u32, u32, u32) {
    let image = assemble(LOADER_STUB).expect("stub assembles");
    let mut cpu = Pipeline::new(
        PipelineConfig {
            chk_serialize_mask: 1 << ModuleId::MLR.number(),
            ..PipelineConfig::default()
        },
        MemorySystem::new(MemConfig::with_framework()),
    );
    // The loader writes the program and its special header into memory.
    loader::load_process(&mut cpu, &image);
    let mut engine = Engine::new(RseConfig::default());
    // Entropy comes from the clock-cycle counter; vary it per load the
    // way distinct load times would.
    engine.install(Box::new(Mlr::new(MlrConfig {
        seed: Some(0xC10C_0000 + run as u64),
        ..MlrConfig::default()
    })));
    engine.enable(ModuleId::MLR);
    let ev = cpu.run(&mut engine, 10_000_000);
    assert_eq!(ev, StepEvent::Halted);
    (cpu.regs()[9], cpu.regs()[10], cpu.regs()[11])
}

fn main() {
    println!(
        "nominal layout: shlib={:#010x} stack={:#010x} heap={:#010x}",
        rse::isa::layout::SHLIB_BASE,
        rse::isa::layout::STACK_BASE,
        rse::isa::layout::HEAP_BASE
    );
    let first = load_once(1);
    let second = load_once(2);
    println!(
        "load #1:        shlib={:#010x} stack={:#010x} heap={:#010x}",
        first.0, first.1, first.2
    );
    println!(
        "load #2:        shlib={:#010x} stack={:#010x} heap={:#010x}",
        second.0, second.1, second.2
    );
    assert_ne!(first, second, "two loads must not share a layout");
    assert_ne!(first.1, rse::isa::layout::STACK_BASE);
    println!("\nAn attacker that hard-codes addresses from one run (e.g. a stack");
    println!("return address) finds them invalid on the next load — the attack");
    println!("becomes a crash, which the DDT can then recover from (see the");
    println!("ddt_server_recovery example).");
}
