//! The MLR's security argument, demonstrated: a control-flow hijack that
//! relies on the fixed memory layout (the class behind ~60% of the
//! CERT-reported attacks the paper cites) succeeds on a conventional
//! machine and *misses* under Memory Layout Randomization — the attack
//! degenerates into a wild write.
//!
//! The victim keeps a function pointer in a slot near the top of its
//! stack region; the attacker smashes the slot using the **hard-coded
//! nominal address**. Without MLR the nominal and actual layouts
//! coincide and the hijack lands; with MLR the victim's slot lives at a
//! randomized base the attacker cannot know.
//!
//! ```text
//! cargo run --example attack_demo
//! ```

use rse::core::{Engine, RseConfig};
use rse::isa::asm::assemble;
use rse::isa::{layout, ModuleId};
use rse::mem::{MemConfig, MemorySystem};
use rse::modules::mlr::{Mlr, MlrConfig};
use rse::pipeline::{Pipeline, PipelineConfig, StepEvent};
use rse::sys::loader;

/// `s1` ends up holding the stack base actually in use: the MLR's
/// randomized value when the module is live, else the nominal one
/// (the passthrough CHECKs leave the result words zero).
const SRC: &str = r#"
    main:   li   r4, 0x0EFF0000    # a0 = special header (loader.HEADER_ADDR)
            li   r5, 64
            chk  mlr, blk, 2, 0    # MLR_EXEC_HDR
            chk  mlr, blk, 3, 0    # MLR_PI_RAND
            li   t0, 0x0EFF0040
            lw   s1, 4(t0)         # randomized stack base (or 0)
            bne  s1, r0, haveb
            li   s1, 0x7FFFF000    # fall back to the nominal base
    haveb:  # victim: plant the function pointer at [stack_base - 64]
            la   t0, good
            addi t1, s1, -64
            sw   t0, 0(t1)
            # attacker: smash the slot at the HARD-CODED nominal address
            la   t0, evil
            li   t1, 0x7FFFF000
            addi t1, t1, -64
            sw   t0, 0(t1)
            # victim: call through its function pointer
            addi t1, s1, -64
            lw   t2, 0(t1)
            jalr r31, t2
            halt

    good:   li   r2, 2
            li   r4, 1             # 1 = legitimate path
            syscall
            jr   ra
    evil:   li   r2, 2
            li   r4, 666           # 666 = hijacked
            syscall
            jr   ra
"#;

fn run(with_mlr: bool) -> (i32, u32) {
    let image = assemble(SRC).expect("assembles");
    let mut cpu = Pipeline::new(
        PipelineConfig {
            chk_serialize_mask: 1 << ModuleId::MLR.number(),
            ..PipelineConfig::default()
        },
        MemorySystem::new(MemConfig::with_framework()),
    );
    loader::load_process(&mut cpu, &image);
    let mut engine = Engine::new(RseConfig::default());
    if with_mlr {
        engine.install(Box::new(Mlr::new(MlrConfig {
            seed: Some(0xDEFE47), // "load time" entropy, pinned for the demo
            ..MlrConfig::default()
        })));
        engine.enable(ModuleId::MLR);
    }
    let mut os = rse::sys::Os::new(rse::sys::OsConfig::default());
    let exit = os.run(&mut cpu, &mut engine, 10_000_000);
    assert!(matches!(exit, rse::sys::OsExit::Exited { .. }), "{exit:?}");
    let _ = StepEvent::Halted;
    (os.output[0], cpu.regs()[17])
}

fn main() {
    let (outcome, base) = run(false);
    println!("without MLR: stack base {base:#010x} (the nominal layout)");
    println!("             victim's call dispatched to ... {outcome}  (666 = hijacked)");
    assert_eq!(outcome, 666, "the fixed layout makes the attack land");
    assert_eq!(base, layout::STACK_BASE);

    let (outcome, base) = run(true);
    println!("with MLR:    stack base {base:#010x} (randomized at load)");
    println!("             victim's call dispatched to ... {outcome}  (1 = legitimate)");
    assert_eq!(
        outcome, 1,
        "the randomized layout defeats the hard-coded address"
    );
    assert_ne!(base, layout::STACK_BASE);

    println!("\nThe attacker's write landed on unmapped scratch space instead of the");
    println!("function-pointer slot: the hijack became a harmless (or crashing) wild");
    println!("write — and a crash is exactly what the DDT then recovers from.");
}
