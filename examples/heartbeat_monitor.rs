//! The Adaptive Heartbeat Monitor watching guest threads (§4.4,
//! Figure 7): two worker threads heartbeat via `AHBM_BEAT` CHECK
//! instructions; one of them wedges in a computation loop and the
//! monitor's adaptive timeout declares it dead while the other stays
//! healthy.
//!
//! ```text
//! cargo run --example heartbeat_monitor
//! ```

use rse::core::{Engine, RseConfig};
use rse::isa::asm::assemble;
use rse::isa::ModuleId;
use rse::mem::{MemConfig, MemorySystem};
use rse::modules::ahbm::{Ahbm, AhbmConfig};
use rse::pipeline::{Pipeline, PipelineConfig};
use rse::sys::{Os, OsConfig, OsExit};

/// Entity 1 = steady worker; entity 2 = worker that wedges half-way.
const SRC: &str = r#"
    main:   chk  ahbm, nblk, 2, 1   # AHBM_REGISTER(1)
            chk  ahbm, nblk, 2, 2   # AHBM_REGISTER(2)
            li   r2, 16
            la   r4, steady
            li   r5, 0
            syscall
            li   r2, 16
            la   r4, wedger
            li   r5, 0
            syscall
    wait:   la   t0, done
            lw   t1, 0(t0)
            li   t2, 1
            beq  t1, t2, fin
            li   r2, 18             # YIELD
            syscall
            b    wait
    fin:    halt

    steady: li   s0, 60             # 60 work units, beating every unit
    sloop:  li   s1, 300
    swork:  addi s1, s1, -1
            bne  s1, r0, swork
            chk  ahbm, nblk, 3, 1   # AHBM_BEAT(1)
            li   r2, 18
            syscall
            addi s0, s0, -1
            bne  s0, r0, sloop
            la   t0, done
            li   t1, 1
            sw   t1, 0(t0)
            li   r2, 17
            syscall

    wedger: li   s0, 10             # beats for 10 units...
    wloop:  li   s1, 300
    wwork:  addi s1, s1, -1
            bne  s1, r0, wwork
            chk  ahbm, nblk, 3, 2   # AHBM_BEAT(2)
            li   r2, 18
            syscall
            addi s0, s0, -1
            bne  s0, r0, wloop
    hang:   li   r2, 18             # ...then wedges: yields forever,
            syscall                 # never beating again
            b    hang

            .data
    done:   .word 0
"#;

fn main() {
    let image = assemble(SRC).expect("assembles");
    let mut cpu = Pipeline::new(
        PipelineConfig::default(),
        MemorySystem::new(MemConfig::with_framework()),
    );
    rse::sys::loader::load_process(&mut cpu, &image);
    let mut engine = Engine::new(RseConfig::default());
    engine.install(Box::new(Ahbm::new(AhbmConfig {
        sample_interval: 200,
        min_timeout: 400,
        ..AhbmConfig::default()
    })));
    engine.enable(ModuleId::AHBM);
    let mut os = Os::new(OsConfig::default());
    let exit = os.run(&mut cpu, &mut engine, 50_000_000);
    assert_eq!(exit, OsExit::Exited { code: 0 });

    let ahbm: &mut Ahbm = engine.module_mut(ModuleId::AHBM).expect("AHBM installed");
    let steady = *ahbm.entity(1).expect("registered");
    let wedged = *ahbm.entity(2).expect("registered");
    println!(
        "entity 1 (steady): alive={} beats={} adaptive timeout={} cycles",
        steady.alive, steady.counter, steady.timeout
    );
    println!(
        "entity 2 (wedged): alive={} beats={} adaptive timeout={} cycles",
        wedged.alive, wedged.counter, wedged.timeout
    );
    println!("failures declared: {:?}", ahbm.take_failed());
    assert!(steady.alive, "the steady worker must stay alive");
    assert!(!wedged.alive, "the wedged worker must be declared dead");
    println!("\nThe monitor learned each entity's own heartbeat rate; the wedged");
    println!("thread was declared dead roughly one adaptive timeout after its");
    println!("last beat, while the steady thread was never falsely accused.");
}
