//! The victim corpus: five attack surfaces, each as a *guard/exposed*
//! twin pair.
//!
//! Every pair shares one assembly source; the twins differ **only** in
//! the harness ([`Harness`]) they run under, so each campaign cell
//! measures exactly what the defending module buys:
//!
//! * `stack_guard` / `stack_exposed` — a function pointer planted near
//!   the top of the stack region, called after a delay window. The
//!   guard's `chk mlr` handshake randomizes the stack base at load
//!   (`Harness::MlrOs`); the exposed twin's CHECKs pass through and it
//!   falls back to the attacker-known nominal base (`Harness::OsBare`).
//! * `got_guard` / `got_exposed` — a one-entry GOT relocated to the heap
//!   base: by MLR hardware copy (`MLR_GOT_OLD/NEW/COPY_GOT`) to the
//!   randomized base on the guard, by an explicit store to the nominal
//!   base on the exposed twin.
//! * `branch_guard` / `branch_exposed` — a branch-dense loop with an
//!   unreferenced gadget (`evil:`) and a NOP code cave in text. The
//!   guard runs under `CheckPolicy::ControlFlow` with the ICM's
//!   redundant CheckerMemory copy installed (`Harness::Icm`); the
//!   exposed twin is a bare pipeline.
//! * `nx_guard` / `nx_exposed` — an indirect call through a data-page
//!   function-pointer slot, with writable staging space next to it. The
//!   guard arms the DDT's non-executable-page enforcement
//!   (`Harness::NxOs`); the exposed twin executes whatever it jumps to.
//! * `seq_guard` / `seq_exposed` — a branch-dense accumulator loop with
//!   no gadget and no code cave: the only way to tamper it is the
//!   in-flight instruction stream. The guard runs under the DSM's
//!   basic-block word counting (`Harness::Dsm`), which catches the
//!   NOP-in-flight skip the ICM's word check is blind to; the exposed
//!   twin is a bare pipeline.

pub use rse_inject::{Harness, Workload};

/// A campaign victim: a corpus workload plus whether the defending
/// module is actually installed (the *guard* half of a twin pair).
#[derive(Debug, Clone, Copy)]
pub struct Victim {
    /// The underlying workload (name, source, harness, result set).
    pub workload: Workload,
    /// `true` for the guard twin (defense installed), `false` for the
    /// exposed twin (same guest, defense absent).
    pub defended: bool,
}

/// Shared source of the `stack_*` twins. The guest reads the stack base
/// the MLR published (or falls back to the nominal base), plants a
/// function pointer at `base - 64`, burns a delay window — the attack
/// surface in time — then calls through the slot and exits 0. Golden
/// output: `[1]`.
const STACK_SRC: &str = r#"
    main:   li   r4, 0x0EFF0000    # a0 = special header (loader.HEADER_ADDR)
            li   r5, 64
            chk  mlr, blk, 2, 0    # MLR_EXEC_HDR
            chk  mlr, blk, 3, 0    # MLR_PI_RAND
            li   t0, 0x0EFF0040
            lw   s1, 4(t0)         # randomized stack base (or 0)
            bne  s1, r0, haveb
            li   s1, 0x7FFFF000    # fall back to the nominal base
    haveb:  la   t0, good
            addi t1, s1, -64
            sw   t0, 0(t1)         # plant the function pointer
            li   s0, 400
    dly:    addi s0, s0, -1
            bne  s0, r0, dly       # the attacker's window
            addi t1, s1, -64
            lw   t2, 0(t1)
            jalr r31, t2           # call through the slot
            li   r2, 1
            li   r4, 0
            syscall                # exit(0)

    good:   li   r2, 2
            li   r4, 1             # 1 = legitimate path
            syscall
            jr   ra
    evil:   li   r2, 2
            li   r4, 666           # 666 = hijacked
            syscall
            jr   ra
"#;

/// Shared source of the `got_*` twins. The guest builds a one-entry GOT
/// in its data segment, then relocates it to the heap base: the guard
/// asks the MLR hardware to copy it to the *randomized* base
/// (`MLR_GOT_OLD`/`MLR_GOT_NEW`/`MLR_COPY_GOT`); the exposed twin copies
/// it to the *nominal* base itself. After the delay window it calls
/// through the relocated entry. Golden output: `[1]`.
const GOT_SRC: &str = r#"
    main:   li   r4, 0x0EFF0000
            li   r5, 64
            chk  mlr, blk, 2, 0    # MLR_EXEC_HDR
            chk  mlr, blk, 3, 0    # MLR_PI_RAND
            li   t0, 0x0EFF0040
            lw   s2, 8(t0)         # randomized heap base (or 0)
            la   t0, good
            la   t1, got
            sw   t0, 0(t1)         # GOT[0] = good
            bne  s2, r0, randp
            li   s2, 0x18000000    # exposed: nominal heap base
            lw   t2, 0(t1)
            sw   t2, 0(s2)         # relocate the GOT by hand
            b    moved
    randp:  move r4, t1            # guard: MLR hardware copy
            li   r5, 8
            chk  mlr, blk, 4, 0    # MLR_GOT_OLD
            move r4, s2
            chk  mlr, blk, 5, 0    # MLR_GOT_NEW
            chk  mlr, blk, 6, 0    # MLR_COPY_GOT
    moved:  li   s0, 400
    dly:    addi s0, s0, -1
            bne  s0, r0, dly       # the attacker's window
            lw   t2, 0(s2)
            jalr r31, t2           # call through the relocated GOT
            li   r2, 1
            li   r4, 0
            syscall                # exit(0)

    good:   li   r2, 2
            li   r4, 1
            syscall
            jr   ra
    evil:   li   r2, 2
            li   r4, 666
            syscall
            jr   ra

            .data
            .align 4
    got:    .word 0, 0
"#;

/// Shared source of the `branch_*` twins: a branch-dense loop (three
/// control-flow commits per iteration, all ICM-checked on the guard),
/// an unreferenced gadget (`evil:` — sets `r13` so a hijack is visible
/// in the result digest), and a 4-word NOP code cave the code-injection
/// model patches its payload into. Golden: `r13 = 0`, `out = 420`.
const BRANCH_SRC: &str = r#"
    main:   li   r8, 0
            li   r9, 0
            li   r10, 120
    loop:   addi r8, r8, 1
            andi r11, r8, 1
            beq  r11, r0, even
            addi r9, r9, 5
            b    next
    even:   addi r9, r9, 2
    next:   bne  r8, r10, loop
            b    fin
    evil:   li   r13, 6666         # the hijack gadget (never called)
            b    fin
    cave:   nop                    # code cave: patch target for
            nop                    # the code-injection model
            nop
            nop
    fin:    la   r12, out
            sw   r9, 0(r12)
            halt

            .data
            .align 4
    out:    .space 8
"#;

/// Shared source of the `nx_*` twins: an indirect call through a
/// data-page slot (`fnslot`), with a writable staging buffer (`stage`)
/// right next to it for the shellcode probe. Golden output: `[1]`.
const NX_SRC: &str = r#"
    main:   la   t0, good
            la   t1, fnslot
            sw   t0, 0(t1)         # plant the function pointer
            li   s0, 400
    dly:    addi s0, s0, -1
            bne  s0, r0, dly       # the attacker's window
            la   t1, fnslot
            lw   t2, 0(t1)
            jalr r31, t2           # call through the slot
            li   r2, 1
            li   r4, 0
            syscall                # exit(0)

    good:   li   r2, 2
            li   r4, 1
            syscall
            jr   ra

            .data
            .align 4
    fnslot: .word 0
    stage:  .space 32              # shellcode staging area
"#;

/// Shared source of the `seq_*` twins: a branch-dense accumulator loop
/// whose every fourth iteration takes the `quad` arm. Unlike the
/// `branch_*` twins there is no gadget and no code cave — the only
/// attack surface is the fetched instruction stream itself, which makes
/// the pair the clean probe for the inst-skip blind spot: a skipped
/// word changes a basic block's committed word count, which the DSM's
/// signature check sees and the ICM's per-word check does not. Golden:
/// `r9 = 562`, `out = 562`.
const SEQ_SRC: &str = r#"
    main:   li   r8, 0
            li   r9, 0
            li   r10, 150
    loop:   addi r8, r8, 1
            andi r11, r8, 3
            beq  r11, r0, quad
            addi r9, r9, 3
            b    next
    quad:   addi r9, r9, 7
    next:   bne  r8, r10, loop
            la   r12, out
            sw   r9, 0(r12)
            halt

            .data
            .align 4
    out:    .space 8
"#;

const VICTIMS: [Victim; 10] = [
    Victim {
        workload: Workload {
            name: "stack_guard",
            source: STACK_SRC,
            harness: Harness::MlrOs,
            result_regs: &[],
            result_buf: None,
            data_fault_buf: None,
        },
        defended: true,
    },
    Victim {
        workload: Workload {
            name: "stack_exposed",
            source: STACK_SRC,
            harness: Harness::OsBare,
            result_regs: &[],
            result_buf: None,
            data_fault_buf: None,
        },
        defended: false,
    },
    Victim {
        workload: Workload {
            name: "got_guard",
            source: GOT_SRC,
            harness: Harness::MlrOs,
            result_regs: &[],
            result_buf: None,
            data_fault_buf: None,
        },
        defended: true,
    },
    Victim {
        workload: Workload {
            name: "got_exposed",
            source: GOT_SRC,
            harness: Harness::OsBare,
            result_regs: &[],
            result_buf: None,
            data_fault_buf: None,
        },
        defended: false,
    },
    Victim {
        workload: Workload {
            name: "branch_guard",
            source: BRANCH_SRC,
            harness: Harness::Icm,
            result_regs: &[8, 9, 13],
            result_buf: Some(("out", 4)),
            data_fault_buf: None,
        },
        defended: true,
    },
    Victim {
        workload: Workload {
            name: "branch_exposed",
            source: BRANCH_SRC,
            harness: Harness::Bare,
            result_regs: &[8, 9, 13],
            result_buf: Some(("out", 4)),
            data_fault_buf: None,
        },
        defended: false,
    },
    Victim {
        workload: Workload {
            name: "nx_guard",
            source: NX_SRC,
            harness: Harness::NxOs,
            result_regs: &[],
            result_buf: None,
            data_fault_buf: None,
        },
        defended: true,
    },
    Victim {
        workload: Workload {
            name: "nx_exposed",
            source: NX_SRC,
            harness: Harness::OsBare,
            result_regs: &[],
            result_buf: None,
            data_fault_buf: None,
        },
        defended: false,
    },
    Victim {
        workload: Workload {
            name: "seq_guard",
            source: SEQ_SRC,
            harness: Harness::Dsm,
            result_regs: &[8, 9],
            result_buf: Some(("out", 4)),
            data_fault_buf: None,
        },
        defended: true,
    },
    Victim {
        workload: Workload {
            name: "seq_exposed",
            source: SEQ_SRC,
            harness: Harness::Bare,
            result_regs: &[8, 9],
            result_buf: Some(("out", 4)),
            data_fault_buf: None,
        },
        defended: false,
    },
];

/// The victim corpus, in stable order (guard before exposed per pair).
pub fn victims() -> &'static [Victim] {
    &VICTIMS
}

/// Looks a victim up by its stable name.
pub fn victim_by_name(name: &str) -> Option<&'static Victim> {
    VICTIMS.iter().find(|v| v.workload.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_isa::asm::assemble;

    #[test]
    fn victims_assemble_and_declare_their_surfaces() {
        for v in victims() {
            let image = assemble(v.workload.source)
                .unwrap_or_else(|e| panic!("{} fails to assemble: {e:?}", v.workload.name));
            if v.workload.name.starts_with("stack_") || v.workload.name.starts_with("got_") {
                assert!(image.symbol("evil").is_some(), "{}", v.workload.name);
            }
            if v.workload.name.starts_with("branch_") {
                for sym in ["evil", "cave", "fin", "out"] {
                    assert!(image.symbol(sym).is_some(), "{}: {sym}", v.workload.name);
                }
            }
            if v.workload.name.starts_with("nx_") {
                for sym in ["fnslot", "stage"] {
                    assert!(image.symbol(sym).is_some(), "{}: {sym}", v.workload.name);
                }
            }
            if v.workload.name.starts_with("seq_") {
                for sym in ["loop", "quad", "next", "out"] {
                    assert!(image.symbol(sym).is_some(), "{}: {sym}", v.workload.name);
                }
                // The seq pair must stay gadget- and cave-free: its only
                // surface is the fetched instruction stream.
                assert!(image.symbol("evil").is_none(), "{}", v.workload.name);
                assert!(image.symbol("cave").is_none(), "{}", v.workload.name);
            }
        }
    }

    #[test]
    fn twins_share_sources_but_not_harnesses() {
        for pair in ["stack", "got", "branch", "nx", "seq"] {
            let guard = victim_by_name(&format!("{pair}_guard")).unwrap();
            let exposed = victim_by_name(&format!("{pair}_exposed")).unwrap();
            assert_eq!(guard.workload.source, exposed.workload.source, "{pair}");
            assert_ne!(guard.workload.harness, exposed.workload.harness, "{pair}");
            assert!(guard.defended && !exposed.defended, "{pair}");
            assert!(guard.workload.harness.target_module().is_some(), "{pair}");
            assert!(exposed.workload.harness.target_module().is_none(), "{pair}");
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        for v in victims() {
            assert_eq!(
                victim_by_name(v.workload.name).unwrap().workload.name,
                v.workload.name
            );
        }
        assert!(victim_by_name("nope").is_none());
        assert_eq!(victims().len(), 10);
    }
}
