//! The attack-outcome taxonomy, JSON-lines records, and the coverage
//! table.
//!
//! The taxonomy refines the injection engine's accidental-fault classes
//! into the adversarial vocabulary of the paper's security sections: an
//! attack is *prevented* when it fired and the victim still produced the
//! golden result with nothing tripping (randomization turned the hijack
//! into a harmless wild write), *detected* when a module caught it (ICM
//! mismatch, DDT NX trap or crash-mediated recovery), *degraded* when
//! the per-module health machine took the defending module down but the
//! guest still completed correctly in degraded mode, *compromised* when
//! the attacker's payload ran to a clean exit with tampered results —
//! the loss case — and *crash-trap* when the attack took the victim down
//! without any detector attributing it.

use rse_inject::{module_tag, RecoveryStatus};
use rse_isa::ModuleId;
use std::collections::BTreeMap;

/// How one attack run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The attack fired but the victim completed with the golden result
    /// and no detector tripped: the defense made the attack miss.
    Prevented,
    /// The named module detected the attack (the run then also records
    /// whether recovery restored the golden state).
    Detected(ModuleId),
    /// The health machine took the named module down and it stayed down;
    /// the run is judged by whether the guest still completed correctly.
    Degraded(ModuleId),
    /// The attacker won: the victim ran to a clean exit with tampered
    /// results and nothing detected it.
    Compromised,
    /// The victim crashed, hung, or was killed without a module
    /// attributing the attack — denial of service, not silent takeover.
    CrashTrap,
    /// The attacker beat the named module *around* its check rather than
    /// through it (a leaked layout, a quarantined checker): the payload
    /// ran, and the loss is attributed to the evaded defense. A loss
    /// class, like `Compromised`, but with the blame assigned.
    Evaded(ModuleId),
}

impl AttackOutcome {
    /// Stable machine-readable tag (JSONL field, histogram key).
    pub fn tag(&self) -> String {
        match self {
            AttackOutcome::Prevented => "prevented".into(),
            AttackOutcome::Detected(id) => format!("detected:{}", module_tag(*id)),
            AttackOutcome::Degraded(id) => format!("degraded:{}", module_tag(*id)),
            AttackOutcome::Compromised => "compromised".into(),
            AttackOutcome::CrashTrap => "crash-trap".into(),
            AttackOutcome::Evaded(id) => format!("evaded:{}", module_tag(*id)),
        }
    }

    /// Whether the defense held: anything but a compromise, an evasion,
    /// or an unattributed crash.
    pub fn defense_held(&self) -> bool {
        !matches!(
            self,
            AttackOutcome::Compromised | AttackOutcome::CrashTrap | AttackOutcome::Evaded(_)
        )
    }
}

impl std::fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.tag())
    }
}

/// One attack run, fully described — a line of the JSONL report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackRecord {
    /// Victim name.
    pub victim: &'static str,
    /// Whether the defending module was installed (guard twin).
    pub defended: bool,
    /// Attack-model name.
    pub model: &'static str,
    /// Run index within its campaign cell.
    pub run: u32,
    /// The replay seed (expands to the exact attack via
    /// [`crate::surface::sample_attack`]).
    pub seed: u64,
    /// Outcome classification.
    pub outcome: AttackOutcome,
    /// Recovery verdict (the injection engine's taxonomy, reused).
    pub recovery: RecoveryStatus,
    /// Cycles the attacked run consumed.
    pub cycles: u64,
    /// Compact description of the delivered tampering.
    pub attack: String,
}

/// Minimal JSON string escaper (same contract as the injection
/// engine's: quotes, backslashes, and control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl AttackRecord {
    /// Serializes the record as one minified JSON object (integers,
    /// booleans, and strings only — bit-stable across hosts, suitable
    /// for golden diffing).
    pub fn to_json(&self) -> String {
        let recovery_detail = match &self.recovery {
            RecoveryStatus::FailedSafeHalt { cause } => {
                format!(",\"recovery_cause\":\"{}\"", json_escape(cause))
            }
            _ => String::new(),
        };
        format!(
            "{{\"victim\":\"{}\",\"defended\":{},\"model\":\"{}\",\"run\":{},\"seed\":{},\
             \"outcome\":\"{}\",\"recovery\":\"{}\"{},\"cycles\":{},\"attack\":\"{}\"}}",
            json_escape(self.victim),
            self.defended,
            json_escape(self.model),
            self.run,
            self.seed,
            self.outcome.tag(),
            self.recovery.tag(),
            recovery_detail,
            self.cycles,
            json_escape(&self.attack),
        )
    }
}

/// Serializes records as JSON lines (one record per line, trailing
/// newline).
pub fn to_jsonl(records: &[AttackRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Per-cell outcome counts for the coverage table.
#[derive(Debug, Clone, Default)]
struct CellCounts {
    runs: u64,
    prevented: u64,
    detected: u64,
    degraded: u64,
    compromised: u64,
    crash: u64,
    evaded: u64,
    recovered: u64,
}

impl CellCounts {
    fn add(&mut self, r: &AttackRecord) {
        self.runs += 1;
        match r.outcome {
            AttackOutcome::Prevented => self.prevented += 1,
            AttackOutcome::Detected(_) => self.detected += 1,
            AttackOutcome::Degraded(_) => self.degraded += 1,
            AttackOutcome::Compromised => self.compromised += 1,
            AttackOutcome::CrashTrap => self.crash += 1,
            AttackOutcome::Evaded(_) => self.evaded += 1,
        }
        if matches!(r.recovery, RecoveryStatus::Succeeded { .. }) {
            self.recovered += 1;
        }
    }

    fn row(&self, victim: &str, model: &str, out: &mut String) {
        out.push_str(&format!(
            "{:<16} {:<16} {:>5} {:>10} {:>9} {:>9} {:>12} {:>6} {:>7} {:>10}\n",
            victim,
            model,
            self.runs,
            self.prevented,
            self.detected,
            self.degraded,
            self.compromised,
            self.crash,
            self.evaded,
            self.recovered,
        ));
    }
}

/// Renders the attack-coverage table: one row per (victim, model) cell
/// with its outcome mix and the count of successful recoveries.
pub fn attack_coverage_table(records: &[AttackRecord]) -> String {
    let mut cells: BTreeMap<(&str, &str), CellCounts> = BTreeMap::new();
    let mut total = CellCounts::default();
    for r in records {
        cells.entry((r.victim, r.model)).or_default().add(r);
        total.add(r);
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:<16} {:>5} {:>10} {:>9} {:>9} {:>12} {:>6} {:>7} {:>10}\n",
        "victim",
        "model",
        "runs",
        "prevented",
        "detected",
        "degraded",
        "compromised",
        "crash",
        "evaded",
        "recovered"
    ));
    for ((victim, model), counts) in &cells {
        counts.row(victim, model, &mut out);
    }
    total.row("TOTAL", "", &mut out);
    out
}

/// Fraction of runs where the attacker won outright, per mille (stable
/// integer arithmetic — no floats anywhere near a golden file). Evasions
/// count: a loss blamed on a bypassed module is still a loss.
pub fn compromise_permille(records: &[AttackRecord]) -> u64 {
    if records.is_empty() {
        return 0;
    }
    let lost = records
        .iter()
        .filter(|r| {
            matches!(
                r.outcome,
                AttackOutcome::Compromised | AttackOutcome::Evaded(_)
            )
        })
        .count() as u64;
    lost * 1000 / records.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(outcome: AttackOutcome, recovery: RecoveryStatus) -> AttackRecord {
        AttackRecord {
            victim: "stack_guard",
            defended: true,
            model: "stack-smash",
            run: 0,
            seed: 99,
            outcome,
            recovery,
            cycles: 1234,
            attack: "mem[0x7ffeefc0]:=0x00400064@c12".into(),
        }
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(AttackOutcome::Prevented.tag(), "prevented");
        assert_eq!(AttackOutcome::Detected(ModuleId::ICM).tag(), "detected:ICM");
        assert_eq!(AttackOutcome::Detected(ModuleId::DDT).tag(), "detected:DDT");
        assert_eq!(AttackOutcome::Degraded(ModuleId::MLR).tag(), "degraded:MLR");
        assert_eq!(AttackOutcome::Compromised.tag(), "compromised");
        assert_eq!(AttackOutcome::CrashTrap.tag(), "crash-trap");
        assert_eq!(AttackOutcome::Evaded(ModuleId::MLR).tag(), "evaded:MLR");
        assert_eq!(AttackOutcome::Evaded(ModuleId::ICM).tag(), "evaded:ICM");
        assert_eq!(AttackOutcome::Detected(ModuleId::DSM).tag(), "detected:DSM");
        assert!(AttackOutcome::Prevented.defense_held());
        assert!(AttackOutcome::Detected(ModuleId::ICM).defense_held());
        assert!(!AttackOutcome::Compromised.defense_held());
        assert!(!AttackOutcome::CrashTrap.defense_held());
        assert!(!AttackOutcome::Evaded(ModuleId::ICM).defense_held());
    }

    #[test]
    fn json_is_minified_and_complete() {
        let r = record(AttackOutcome::Prevented, RecoveryStatus::NotNeeded);
        let j = r.to_json();
        assert!(
            j.starts_with("{\"victim\":\"stack_guard\",\"defended\":true"),
            "{j}"
        );
        assert!(j.contains("\"outcome\":\"prevented\""), "{j}");
        assert!(j.contains("\"recovery\":\"not-needed\""), "{j}");
        assert!(!j.contains('\n'));
        let r = record(
            AttackOutcome::Detected(ModuleId::DDT),
            RecoveryStatus::FailedSafeHalt {
                cause: "a \"quoted\" cause".into(),
            },
        );
        assert!(
            r.to_json()
                .contains("\"recovery_cause\":\"a \\\"quoted\\\" cause\""),
            "{}",
            r.to_json()
        );
    }

    #[test]
    fn coverage_table_counts_every_class() {
        let records = vec![
            record(AttackOutcome::Prevented, RecoveryStatus::NotNeeded),
            record(
                AttackOutcome::Detected(ModuleId::ICM),
                RecoveryStatus::Succeeded {
                    mechanism: "checkpoint-rollback",
                },
            ),
            record(
                AttackOutcome::Degraded(ModuleId::ICM),
                RecoveryStatus::Succeeded {
                    mechanism: "quarantine-nop-mux",
                },
            ),
            record(AttackOutcome::Compromised, RecoveryStatus::NotNeeded),
            record(AttackOutcome::CrashTrap, RecoveryStatus::NotNeeded),
            record(
                AttackOutcome::Evaded(ModuleId::ICM),
                RecoveryStatus::NotNeeded,
            ),
        ];
        let table = attack_coverage_table(&records);
        assert!(table.contains("stack_guard"), "{table}");
        assert!(table.contains("TOTAL"), "{table}");
        assert!(table.contains("compromised"), "{table}");
        assert!(table.contains("evaded"), "{table}");
        assert_eq!(compromise_permille(&records), 333);
        assert_eq!(compromise_permille(&[]), 0);
    }
}
