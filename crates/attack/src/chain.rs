//! Adaptive multi-stage attack chains.
//!
//! The single-shot models of [`crate::model`] fire one planned attack
//! and observe the wreckage. The chain models here are *adaptive*: each
//! stage's plan depends on what the previous stage's module verdict
//! revealed, exactly like the leak-then-strike adversary of the paper's
//! §4.1 entropy argument — but run inside the campaign engine, so one
//! recorded `u64` seed still replays the whole chain byte-for-byte.
//!
//! Three chains are implemented:
//!
//! * [`AttackModel::AdaptiveChain`] — *probe → leak → strike*. Stage 1
//!   fires the nominal-layout attack; if the defense made it miss, the
//!   attacker re-runs the victim attack-free, reads the randomized base
//!   the MLR published in the special header (the information leak),
//!   and strikes again **through the leaked address**. A loss at that
//!   point is classified `evaded:MLR`: the module was beaten around its
//!   randomization, not through it.
//! * [`AttackModel::RecoveryStrike`] — corrupt a live control-flow
//!   word, then keep re-delivering the same corruption while the
//!   checkpoint-rollback recovery re-executes. The rollback is bounded
//!   by [`CampaignOptions::max_rerun`]: a clean re-execution records
//!   `recovered:retry<k>`, an attacker who outlasts the budget forces
//!   an escalation to a quarantined/degraded safe halt instead of a
//!   rollback livelock — never a silent wrong answer.
//! * [`AttackModel::QuarantineEvade`] — flip a bit in the ICM's own
//!   CheckerMemory copy so every pass over the guarded site mismatches;
//!   the watchdog's burst counter quarantines the checker, and the
//!   late-window hijack then sails past the NOP-muxed CHKs. A divergent
//!   result with the checker down is `evaded:ICM` — the containment
//!   question the health machine must answer honestly.

use crate::campaign::{mlr_layout_seed, rollback_and_rerun_os, CampaignOptions};
use crate::model::AttackModel;
use crate::outcome::{AttackOutcome, AttackRecord};
use crate::surface::{map_surface, sample_attack, STACK_SLOT_OFFSET};
use crate::victim::{Victim, Workload};
use rse_inject::{
    build_harness_seeded, capture_checkpoints, detecting_module, drive, fault_budget,
    result_digest, retry_mechanism, rollback_and_rerun, rollback_and_rerun_bounded,
    rollback_and_rerun_tiered, FaultPlan, PlannedFault, PreRunCheckpoints, RawEnd, RecoveryStatus,
    RefState,
};
use rse_isa::asm::assemble;
use rse_isa::layout::{HEAP_BASE, STACK_BASE};
use rse_isa::{Image, ModuleId};
use rse_pipeline::SoftFault;
use rse_support::rng::splitmix64;
use rse_sys::{Os, OsConfig, OsExit};

/// Domain separator for the chain's *stage* draws (strike timing,
/// attacker persistence), so they are independent of the stage-1 plan
/// draws taken from the same recorded seed.
const CHAIN_STAGE_DOMAIN: u64 = 0x4348_4149_4E53_5447; // "CHAINSTG"

/// Address of the MLR's published-layout words in the special header:
/// `+4` holds the randomized stack base, `+8` the randomized heap base
/// (`0` when no MLR ran) — exactly what the victim guests read, and
/// exactly what the leak stage steals.
const MLR_HDR: u32 = 0x0EFF_0040;

/// Whether `model` is a multi-stage chain handled by [`run_chain`]
/// rather than the single-shot runner.
pub fn is_chain_model(model: AttackModel) -> bool {
    matches!(
        model,
        AttackModel::AdaptiveChain | AttackModel::RecoveryStrike | AttackModel::QuarantineEvade
    )
}

/// Executes one adaptive-chain attack run. Dispatches on the chain
/// model; panics if called with a single-shot model (the campaign
/// runner routes only via [`is_chain_model`]).
pub fn run_chain(
    v: &Victim,
    model: AttackModel,
    run: u32,
    seed: u64,
    r: &RefState,
    opts: &CampaignOptions,
) -> AttackRecord {
    match model {
        AttackModel::AdaptiveChain => run_adaptive_chain(v, run, seed, r),
        AttackModel::RecoveryStrike => run_recovery_strike(v, run, seed, r, opts),
        AttackModel::QuarantineEvade => run_quarantine_evade(v, run, seed, r, opts),
        other => panic!("{other} is not a chain model"),
    }
}

/// One OS-harness chain stage, fully observed: the victim runs under a
/// fresh guest OS with `plan` armed, and the stage records everything
/// the adaptive attacker (and the classifier) needs — including the
/// MLR's published layout words, which the leak stage reads.
struct OsStage {
    exit_ok: bool,
    output: Vec<i32>,
    detected: bool,
    down: Option<ModuleId>,
    trapped: bool,
    cycles: u64,
    pre: PreRunCheckpoints,
    hdr_stack: u32,
    hdr_heap: u32,
}

fn run_os_stage(
    w: &Workload,
    image: &Image,
    budget: u64,
    mlr_seed: Option<u64>,
    plan: &FaultPlan,
) -> OsStage {
    let mut b = build_harness_seeded(w, image, budget, mlr_seed);
    let pre = capture_checkpoints(&b.cpu.mem().memory);
    plan.arm(&mut b.cpu, &mut b.engine);
    let mut os = Os::new(OsConfig::default());
    let exit = os.run(&mut b.cpu, &mut b.engine, budget);
    if exit == OsExit::Timeout {
        b.engine.poll_hang(b.cpu.now());
    }
    let detected = b.cpu.nx_violation().is_some() || os.stats().recoveries > 0;
    let down = w
        .harness
        .target_module()
        .filter(|&m| b.engine.module_health(m).is_down());
    let trapped = b.engine.safe_mode().is_some()
        || matches!(exit, OsExit::Timeout | OsExit::ProcessKilled { .. });
    OsStage {
        exit_ok: exit == (OsExit::Exited { code: 0 }),
        output: os.output.clone(),
        detected,
        down,
        trapped,
        cycles: b.cpu.now(),
        pre,
        hdr_stack: b.cpu.mem().memory.read_u32(MLR_HDR + 4),
        hdr_heap: b.cpu.mem().memory.read_u32(MLR_HDR + 8),
    }
}

/// Classifies an OS stage plus its recovery, shared by the probe and
/// strike stages (the same priority order as the single-shot runner).
fn classify_os_stage(
    st: &OsStage,
    w: &Workload,
    image: &Image,
    budget: u64,
    mlr_seed: Option<u64>,
    r: &RefState,
    loss: AttackOutcome,
) -> (AttackOutcome, RecoveryStatus) {
    let golden = st.exit_ok && st.output == r.output;
    let rollback =
        |pre: &PreRunCheckpoints| match rollback_and_rerun_os(w, image, pre, budget, mlr_seed) {
            Ok(out) if out == r.output => RecoveryStatus::Succeeded {
                mechanism: "checkpoint-rollback",
            },
            Ok(_) => RecoveryStatus::FailedSafeHalt {
                cause: "re-executed state diverged from golden".into(),
            },
            Err(cause) => RecoveryStatus::FailedSafeHalt { cause },
        };
    if let Some(m) = st.down {
        let recovery = if golden {
            RecoveryStatus::Succeeded {
                mechanism: "quarantine-nop-mux",
            }
        } else {
            rollback(&st.pre)
        };
        return (AttackOutcome::Degraded(m), recovery);
    }
    if st.detected {
        let recovery = if golden {
            RecoveryStatus::Succeeded {
                mechanism: "flush-refetch",
            }
        } else {
            rollback(&st.pre)
        };
        return (AttackOutcome::Detected(ModuleId::DDT), recovery);
    }
    if st.trapped {
        return (AttackOutcome::CrashTrap, rollback(&st.pre));
    }
    if golden {
        return (AttackOutcome::Prevented, RecoveryStatus::NotNeeded);
    }
    (loss, RecoveryStatus::NotNeeded)
}

/// *Probe → leak → strike*: the adaptive chain against the MLR-guarded
/// (`stack_*`, `got_*`) victims.
fn run_adaptive_chain(v: &Victim, run: u32, seed: u64, r: &RefState) -> AttackRecord {
    let w = &v.workload;
    let image = assemble(w.source).expect("victim workload assembles");
    let surface = map_surface(v, &image);
    let plan = sample_attack(AttackModel::AdaptiveChain, seed, v, &surface, &r.profile);
    let budget = fault_budget(r);
    let mlr_seed = mlr_layout_seed(v, seed);
    let mut cs = seed ^ CHAIN_STAGE_DOMAIN;

    // Stage 1: the nominal-layout probe.
    let probe = run_os_stage(w, &image, budget, mlr_seed, &plan);
    let mut cycles = probe.cycles;
    let probe_golden = probe.exit_ok && probe.output == r.output;
    if !probe_golden || probe.down.is_some() || probe.detected || probe.trapped {
        // The probe resolved the run on its own — a nominal-layout hit
        // (the undefended loss), a detection, or a crash. No adaptation
        // happened, so this is exactly the single-shot classification.
        let (outcome, recovery) = classify_os_stage(
            &probe,
            w,
            &image,
            budget,
            mlr_seed,
            r,
            AttackOutcome::Compromised,
        );
        return AttackRecord {
            victim: w.name,
            defended: v.defended,
            model: AttackModel::AdaptiveChain.name(),
            run,
            seed,
            outcome,
            recovery,
            cycles,
            attack: format!("chain[probe:{};probe-hit]", plan.describe()),
        };
    }

    // Stage 2: the probe missed — leak the published layout from an
    // attack-free run under the same layout seed.
    let leak = run_os_stage(
        w,
        &image,
        budget,
        mlr_seed,
        &FaultPlan { faults: Vec::new() },
    );
    cycles += leak.cycles;
    let evil = surface.evil.expect("chain victims declare evil");
    let slot = if w.name.starts_with("stack_") {
        let base = if leak.hdr_stack != 0 {
            leak.hdr_stack
        } else {
            STACK_BASE
        };
        base - STACK_SLOT_OFFSET
    } else if leak.hdr_heap != 0 {
        leak.hdr_heap
    } else {
        HEAP_BASE
    };

    // Stage 3: strike through the leaked address.
    let at_cycle = 1 + splitmix64(&mut cs) % r.profile.cycles.max(1);
    let strike_plan = FaultPlan {
        faults: vec![PlannedFault::Soft(SoftFault::Write {
            at_cycle,
            addr: slot,
            value: evil,
        })],
    };
    let strike = run_os_stage(w, &image, budget, mlr_seed, &strike_plan);
    cycles += strike.cycles;
    // A strike loss on the defended twin is attributed to the evaded
    // randomizer: the MLR's diversity was beaten by the leak, not by
    // luck at the nominal base.
    let loss = if v.defended {
        AttackOutcome::Evaded(ModuleId::MLR)
    } else {
        AttackOutcome::Compromised
    };
    let (outcome, recovery) = classify_os_stage(&strike, w, &image, budget, mlr_seed, r, loss);
    AttackRecord {
        victim: w.name,
        defended: v.defended,
        model: AttackModel::AdaptiveChain.name(),
        run,
        seed,
        outcome,
        recovery,
        cycles,
        attack: format!(
            "chain[probe:{};leak:base={slot:#x};strike:mem[{slot:#x}]:={evil:#x}@c{at_cycle}]",
            plan.describe()
        ),
    }
}

/// The recovery-window strike against the checked (`branch_*`, `seq_*`)
/// victims: the primary corruption plus re-delivery into every bounded
/// rollback re-execution the attacker's persistence covers.
fn run_recovery_strike(
    v: &Victim,
    run: u32,
    seed: u64,
    r: &RefState,
    opts: &CampaignOptions,
) -> AttackRecord {
    let w = &v.workload;
    let image = assemble(w.source).expect("victim workload assembles");
    let surface = map_surface(v, &image);
    let plan = sample_attack(AttackModel::RecoveryStrike, seed, v, &surface, &r.profile);
    let budget = fault_budget(r);
    // Attacker persistence: how many rollback re-executions the strike
    // still lands in (0 = the window clears immediately). Drawn past
    // the retry budget often enough that the escalation path is real.
    let mut cs = seed ^ CHAIN_STAGE_DOMAIN;
    let persist = (splitmix64(&mut cs) % 5) as u32;

    // Stage 1: the primary strike.
    let mut b = build_harness_seeded(w, &image, budget, None);
    let pre = capture_checkpoints(&b.cpu.mem().memory);
    plan.arm(&mut b.cpu, &mut b.engine);
    let end = drive(&mut b.cpu, &mut b.engine, budget);
    if end == RawEnd::TimedOut {
        b.engine.poll_hang(b.cpu.now());
    }
    let detected_by = detecting_module(&b.engine);
    let digest = result_digest(w, &b.cpu, &image);
    let clean = end == RawEnd::Halted && digest == r.digest;
    let down = w
        .harness
        .target_module()
        .filter(|&m| b.engine.module_health(m).is_down());
    let cycles = b.cpu.now();
    let pre_outcome = if let Some(m) = down {
        AttackOutcome::Degraded(m)
    } else if let Some(m) = detected_by {
        AttackOutcome::Detected(m)
    } else if b.engine.safe_mode().is_some() {
        AttackOutcome::CrashTrap
    } else {
        match end {
            RawEnd::TimedOut | RawEnd::Crash(_) => AttackOutcome::CrashTrap,
            RawEnd::Halted => {
                if digest == r.digest {
                    AttackOutcome::Prevented
                } else {
                    AttackOutcome::Compromised
                }
            }
        }
    };

    // Stage 2: recovery under fire. The strike closure re-delivers the
    // exact same plan into each re-execution the persistence covers; a
    // clean attempt records `recovered:retry<k>`, an exhausted budget
    // escalates to a degraded safe halt (never a silent wrong answer).
    let (outcome, recovery) = match pre_outcome {
        AttackOutcome::Prevented | AttackOutcome::Compromised => {
            (pre_outcome, RecoveryStatus::NotNeeded)
        }
        AttackOutcome::Detected(m) if clean => {
            // The DSM is detect-only (no flush path), so a clean result
            // needs no mechanism at all; the ICM's clean detections are
            // its flush-refetch at work.
            let recovery = if m == ModuleId::ICM {
                RecoveryStatus::Succeeded {
                    mechanism: "flush-refetch",
                }
            } else {
                RecoveryStatus::NotNeeded
            };
            (pre_outcome, recovery)
        }
        AttackOutcome::Degraded(_) if clean => (
            pre_outcome,
            RecoveryStatus::Succeeded {
                mechanism: "quarantine-nop-mux",
            },
        ),
        _ => {
            let strike = |attempt: u32, cpu: &mut _, engine: &mut _| {
                if attempt <= persist {
                    plan.arm(cpu, engine);
                }
            };
            match rollback_and_rerun_bounded(
                w,
                &image,
                &pre,
                budget,
                r.digest,
                opts.max_rerun,
                strike,
            ) {
                Ok(k) => (
                    pre_outcome,
                    RecoveryStatus::Succeeded {
                        mechanism: retry_mechanism(k),
                    },
                ),
                Err(cause) => {
                    // Budget exhausted: quarantine the attacked surface
                    // instead of livelocking in rollback.
                    let escalated = match pre_outcome {
                        AttackOutcome::Detected(m) => AttackOutcome::Degraded(m),
                        other => other,
                    };
                    (escalated, RecoveryStatus::FailedSafeHalt { cause })
                }
            }
        }
    };
    AttackRecord {
        victim: w.name,
        defended: v.defended,
        model: AttackModel::RecoveryStrike.name(),
        run,
        seed,
        outcome,
        recovery,
        cycles,
        attack: format!("rw-strike[{};persist={persist}]", plan.describe()),
    }
}

/// The cross-module evasion against `branch_guard`: forge a mismatch
/// storm out of the ICM's own CheckerMemory until the health machine
/// quarantines it, then hijack through the NOP-muxed blind spot.
fn run_quarantine_evade(
    v: &Victim,
    run: u32,
    seed: u64,
    r: &RefState,
    opts: &CampaignOptions,
) -> AttackRecord {
    let w = &v.workload;
    let image = assemble(w.source).expect("victim workload assembles");
    let surface = map_surface(v, &image);
    let plan = sample_attack(AttackModel::QuarantineEvade, seed, v, &surface, &r.profile);
    let budget = fault_budget(r);
    let mut b = build_harness_seeded(w, &image, budget, None);
    let pre = capture_checkpoints(&b.cpu.mem().memory);
    plan.arm(&mut b.cpu, &mut b.engine);
    let end = drive(&mut b.cpu, &mut b.engine, budget);
    if end == RawEnd::TimedOut {
        b.engine.poll_hang(b.cpu.now());
    }
    let detected_by = detecting_module(&b.engine);
    let digest = result_digest(w, &b.cpu, &image);
    let clean = end == RawEnd::Halted && digest == r.digest;
    let down = w
        .harness
        .target_module()
        .filter(|&m| b.engine.module_health(m).is_down());
    let cycles = b.cpu.now();
    let rollback = || match if opts.tiered {
        rollback_and_rerun_tiered(w, &image, &pre, budget)
    } else {
        rollback_and_rerun(w, &image, &pre, budget)
    } {
        Ok(d) if d == r.digest => RecoveryStatus::Succeeded {
            mechanism: "checkpoint-rollback",
        },
        Ok(_) => RecoveryStatus::FailedSafeHalt {
            cause: "re-executed state diverged from golden".into(),
        },
        Err(cause) => RecoveryStatus::FailedSafeHalt { cause },
    };
    let (outcome, recovery) = if let Some(m) = down {
        if clean {
            // The checker went down but the output-mux containment held
            // and the guest still computed the golden result.
            (
                AttackOutcome::Degraded(m),
                RecoveryStatus::Succeeded {
                    mechanism: "quarantine-nop-mux",
                },
            )
        } else {
            // Quarantined checker + divergent result: the forged burst
            // bought the attacker a blind spot and the hijack landed
            // in it. The loss is the evaded module's.
            (AttackOutcome::Evaded(m), rollback())
        }
    } else if let Some(m) = detected_by {
        let recovery = if clean {
            RecoveryStatus::Succeeded {
                mechanism: "flush-refetch",
            }
        } else {
            rollback()
        };
        (AttackOutcome::Detected(m), recovery)
    } else if b.engine.safe_mode().is_some() || matches!(end, RawEnd::TimedOut | RawEnd::Crash(_)) {
        (AttackOutcome::CrashTrap, rollback())
    } else if clean {
        (AttackOutcome::Prevented, RecoveryStatus::NotNeeded)
    } else {
        (AttackOutcome::Compromised, RecoveryStatus::NotNeeded)
    };
    AttackRecord {
        victim: w.name,
        defended: v.defended,
        model: AttackModel::QuarantineEvade.name(),
        run,
        seed,
        outcome,
        recovery,
        cycles,
        attack: format!("evade[{}]", plan.describe()),
    }
}
