//! # rse-attack — seed-replayable adversarial attack campaigns
//!
//! The security half of *"An Architectural Framework for Providing
//! Reliability and Security Support"* (DSN 2004) claims that the same
//! RSE machinery that catches soft errors — the ICM's redundant
//! invariant store, the DDT's non-executable pages, the MLR's layout
//! randomization — also defeats deliberate attacks. This crate is the
//! adversarial counterpart of `rse-inject`: instead of sampling
//! accidental upsets, it expands a seed into a *planned attack*
//! (stack smashing, GOT tampering, code injection, control-flow
//! hijack, instruction-stream tamper/skip/replay, NX probes, and
//! tampering with the ICM's own invariants) and classifies how the
//! defended system responds.
//!
//! Pieces:
//!
//! * [`model`] — the attack models ([`AttackModel`]), each mapping to
//!   a victim class that exposes the right surface,
//! * [`victim`] — the victim corpus: five guest programs, each as a
//!   *guard/exposed* twin pair sharing one source and differing only
//!   in whether the defending module is installed,
//! * [`surface`] — the attack-surface mapper (gadgets, code caves,
//!   control-flow sites, checker copies) and the deterministic
//!   seed-to-plan expander,
//! * [`outcome`] — the adversarial outcome taxonomy
//!   ([`AttackOutcome`]: prevented / detected / degraded /
//!   compromised / crash-trap), JSONL records, and the coverage table,
//! * [`campaign`] — the runner: golden references, attacked runs,
//!   classification, and the checkpoint-rollback recovery path, all
//!   sharing the injection engine's machinery,
//! * [`chain`] — the adaptive multi-stage chains: probe→leak→strike
//!   against the MLR, recovery-window strikes against the bounded
//!   rollback retry budget, and forged-burst quarantine evasion
//!   against the ICM's health machine,
//! * [`entropy`] — the §4.1 re-randomization study: leak-then-strike
//!   attack success rate as a function of the MLR re-randomization
//!   period, across the whole victim corpus.
//!
//! Everything is deterministic: same spec + same base seed →
//! byte-for-byte identical JSONL, on any host, at any thread count.
//!
//! # Example
//!
//! ```
//! use rse_attack::{run_one_by_name, AttackModel};
//!
//! // Replay one attack: seed → plan → outcome. The undefended twin
//! // of the stack pair loses to a stack smash landed mid-window …
//! let rec = run_one_by_name("stack_exposed", AttackModel::Control, 42).unwrap();
//! assert_eq!(rec.outcome.tag(), "prevented"); // control: no attack fired
//! // … and every record replays byte-identically from its seed.
//! let again = run_one_by_name("stack_exposed", AttackModel::Control, 42).unwrap();
//! assert_eq!(rec.to_json(), again.to_json());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod chain;
pub mod entropy;
pub mod model;
pub mod outcome;
pub mod surface;
pub mod victim;

pub use campaign::{
    derive_seed, run_campaign, run_campaign_with, run_one, run_one_by_name, run_one_with,
    AttackCell, AttackSpec, CampaignOptions,
};
pub use chain::{is_chain_model, run_chain};
pub use entropy::{
    corpus_study_json, corpus_trial_seed, entropy_study, entropy_study_corpus, entropy_victims,
    run_trial, run_trial_kind, strictly_decreasing, study_json, trial_seed, EntropyPoint,
    EntropyVictim, VictimStudy, DEFAULT_PERIODS, DEFAULT_TRIALS,
};
pub use model::AttackModel;
pub use outcome::{
    attack_coverage_table, compromise_permille, to_jsonl, AttackOutcome, AttackRecord,
};
pub use surface::{map_surface, nx_shellcode, sample_attack, AttackSurface, STACK_SLOT_OFFSET};
pub use victim::{victim_by_name, victims, Victim};
