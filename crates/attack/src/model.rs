//! The adversarial attack models.
//!
//! Where `rse_inject::FaultModel` enumerates *accidental* upsets, these
//! models enumerate *deliberate* tampering, drawn from the threat models
//! of the source paper and its follow-ups: the fixed-layout control-flow
//! hijacks the MLR randomizes away (stack smashing, GOT/PLT pointer
//! tampering — the class behind ~60% of the CERT advisories the paper
//! cites), the code-injection and indirect-branch-redirection hijacks of
//! the R5Detect taxonomy, the instruction-stream tampering / skip /
//! replay classes of InjectV, non-executable-page violation probes
//! against the DDT's NX enforcement, and tampering with the ICM's own
//! invariant store. Every model expands from a single `u64` seed into a
//! concrete [`rse_inject::FaultPlan`], so an attack run replays exactly
//! like an injection run.

use crate::victim::Victim;

/// The adversarial attack models of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackModel {
    /// No attack at all — the control group. Every run must classify as
    /// `prevented`; anything else is a campaign-engine bug.
    Control,
    /// Return-address/stack smashing: overwrite the victim's
    /// function-pointer slot at the **nominal** stack address, the
    /// fixed-layout attack of the paper's §4.1 motivation.
    StackSmash,
    /// GOT-style pointer-table tampering: overwrite a relocated pointer
    /// slot at the **nominal** heap address (MLR's exact threat model).
    GotTamper,
    /// Code injection into mapped text: patch a payload into a text-page
    /// code cave and redirect a control-flow site into it.
    CodeInject,
    /// Control-flow hijack via indirect-branch redirection: rewrite one
    /// branch word so it jumps straight to the attacker's gadget
    /// (R5Detect's hijack class).
    CfhRedirect,
    /// Instruction-stream tampering: one fetched instruction word
    /// corrupted in flight between the I-cache and the pipeline
    /// (InjectV's bit-tamper class).
    InstTamper,
    /// Instruction skip: one fetched instruction replaced by a NOP in
    /// flight (InjectV's skip class).
    InstSkip,
    /// Instruction replay: one fetched instruction duplicated in flight
    /// (InjectV's replay class).
    InstReplay,
    /// Non-executable-page probe: stage shellcode in a writable data
    /// page and swing a function pointer at it — the DDT's NX
    /// enforcement case.
    NxProbe,
    /// ICM invariant tampering: flip a bit inside the ICM's redundant
    /// CheckerMemory copy so the module's own ground truth lies.
    IcmTamper,
    /// Adaptive multi-stage chain: probe the nominal layout, observe
    /// the module verdict, then leak the randomized layout and strike
    /// through the leaked address (the §4.1 leak-then-strike game run
    /// inside the campaign, stage by stage).
    AdaptiveChain,
    /// Recovery-window strike: corrupt a live control-flow word, then
    /// keep re-injecting the same corruption while checkpoint-rollback
    /// re-executes — the attacker that turns unbounded retry into a
    /// rollback livelock unless the retry budget escalates.
    RecoveryStrike,
    /// Cross-module evasion: forge an anomaly burst against the
    /// checker's own invariant store until the health machine
    /// quarantines it, then attack the surface it guarded through the
    /// NOP-muxed blind spot.
    QuarantineEvade,
}

impl AttackModel {
    /// Every model, in stable order (the order is part of the seed
    /// derivation and must never change).
    pub const ALL: [AttackModel; 13] = [
        AttackModel::Control,
        AttackModel::StackSmash,
        AttackModel::GotTamper,
        AttackModel::CodeInject,
        AttackModel::CfhRedirect,
        AttackModel::InstTamper,
        AttackModel::InstSkip,
        AttackModel::InstReplay,
        AttackModel::NxProbe,
        AttackModel::IcmTamper,
        AttackModel::AdaptiveChain,
        AttackModel::RecoveryStrike,
        AttackModel::QuarantineEvade,
    ];

    /// Stable model name (JSONL field, CLI argument).
    pub fn name(self) -> &'static str {
        match self {
            AttackModel::Control => "control",
            AttackModel::StackSmash => "stack-smash",
            AttackModel::GotTamper => "got-tamper",
            AttackModel::CodeInject => "code-inject",
            AttackModel::CfhRedirect => "cfh-redirect",
            AttackModel::InstTamper => "inst-tamper",
            AttackModel::InstSkip => "inst-skip",
            AttackModel::InstReplay => "inst-replay",
            AttackModel::NxProbe => "nx-probe",
            AttackModel::IcmTamper => "icm-tamper",
            AttackModel::AdaptiveChain => "chain-adaptive",
            AttackModel::RecoveryStrike => "recovery-strike",
            AttackModel::QuarantineEvade => "quarantine-evade",
        }
    }

    /// Parses a model name (the inverse of [`AttackModel::name`]).
    pub fn from_name(name: &str) -> Option<AttackModel> {
        AttackModel::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// One-line human description (`--list-models` output).
    pub fn describe(self) -> &'static str {
        match self {
            AttackModel::Control => "no attack: the golden-reference control group",
            AttackModel::StackSmash => "smash the stack function-pointer slot at its nominal base",
            AttackModel::GotTamper => "tamper the GOT-style pointer table at its nominal base",
            AttackModel::CodeInject => "inject a payload into a text code cave and enter it",
            AttackModel::CfhRedirect => "rewrite one branch word to hijack control flow",
            AttackModel::InstTamper => "tamper one fetched instruction word in flight",
            AttackModel::InstSkip => "skip one fetched instruction (NOP in flight)",
            AttackModel::InstReplay => "replay one fetched instruction in flight",
            AttackModel::NxProbe => "stage shellcode in a data page and jump to it",
            AttackModel::IcmTamper => "flip a bit in the ICM's redundant CheckerMemory copy",
            AttackModel::AdaptiveChain => {
                "probe nominal, then leak the layout and strike through it"
            }
            AttackModel::RecoveryStrike => {
                "re-inject the corruption while checkpoint-rollback reruns"
            }
            AttackModel::QuarantineEvade => "forge a burst to quarantine the checker, then hijack",
        }
    }

    /// Position in [`AttackModel::ALL`] (seed-derivation index).
    pub fn index(self) -> u64 {
        AttackModel::ALL
            .iter()
            .position(|m| *m == self)
            .expect("model present in ALL") as u64
    }

    /// Whether this model can target the given victim. Each non-control
    /// model needs the attack surface its victim pair declares (a stack
    /// slot, a pointer table, a branch-dense loop with a code cave, a
    /// staged data buffer) — and ICM tampering needs an ICM to lie to.
    pub fn applicable(self, victim: &Victim) -> bool {
        match self {
            AttackModel::Control => true,
            AttackModel::StackSmash => victim.workload.name.starts_with("stack_"),
            AttackModel::GotTamper => victim.workload.name.starts_with("got_"),
            AttackModel::CodeInject | AttackModel::CfhRedirect => {
                victim.workload.name.starts_with("branch_")
            }
            AttackModel::InstTamper | AttackModel::InstSkip | AttackModel::InstReplay => {
                victim.workload.name.starts_with("branch_")
                    || victim.workload.name.starts_with("seq_")
            }
            AttackModel::NxProbe => victim.workload.name.starts_with("nx_"),
            AttackModel::IcmTamper => victim.workload.name == "branch_guard",
            AttackModel::AdaptiveChain => {
                victim.workload.name.starts_with("stack_")
                    || victim.workload.name.starts_with("got_")
            }
            AttackModel::RecoveryStrike => {
                victim.workload.name.starts_with("branch_")
                    || victim.workload.name.starts_with("seq_")
            }
            AttackModel::QuarantineEvade => victim.workload.name == "branch_guard",
        }
    }
}

impl std::fmt::Display for AttackModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::{victim_by_name, victims};

    #[test]
    fn names_round_trip() {
        for model in AttackModel::ALL {
            assert_eq!(AttackModel::from_name(model.name()), Some(model));
            assert_eq!(AttackModel::ALL[model.index() as usize], model);
        }
        assert_eq!(AttackModel::from_name("bogus"), None);
    }

    #[test]
    fn every_model_has_a_victim_and_vice_versa() {
        for model in AttackModel::ALL {
            assert!(
                victims().iter().any(|v| model.applicable(v)),
                "{model} has no victim"
            );
        }
        for v in victims() {
            let applicable = AttackModel::ALL.iter().filter(|m| m.applicable(v)).count();
            assert!(applicable >= 2, "{} only accepts control", v.workload.name);
        }
    }

    #[test]
    fn icm_tamper_needs_the_guarded_branch_victim() {
        let guard = victim_by_name("branch_guard").unwrap();
        let exposed = victim_by_name("branch_exposed").unwrap();
        assert!(AttackModel::IcmTamper.applicable(guard));
        assert!(!AttackModel::IcmTamper.applicable(exposed));
    }
}
