//! The adversarial campaign runner: golden references, attacked runs,
//! outcome classification, and the recovery path.
//!
//! The runner deliberately mirrors `rse_inject::campaign` — golden
//! reference once per victim, seed-derived plan per run, classification
//! against the golden result, checkpoint-rollback when a detection left
//! divergent state — so an attack run replays exactly like an injection
//! run and shares the same sharding/tiering machinery. What changes is
//! the threat model: plans come from [`sample_attack`] instead of the
//! soft-error sampler, victims come in defended/exposed twin pairs, and
//! MLR-guarded victims re-randomize their layout **fresh every run** (a
//! per-run layout seed derived from the attack seed), because a fixed
//! layout would hand the diversity defense a constant the attacker
//! never gets in the modeled system.

use crate::chain::{is_chain_model, run_chain};
use crate::model::AttackModel;
use crate::outcome::{AttackOutcome, AttackRecord};
use crate::surface::{map_surface, sample_attack};
use crate::victim::{victim_by_name, victims, Harness, Victim, Workload};
use rse_inject::{
    build_harness_seeded, capture_checkpoints, detecting_module, drive, fault_budget, reference,
    result_digest, rollback_and_rerun, rollback_and_rerun_tiered, run_sharded, PreRunCheckpoints,
    RawEnd, RecoveryStatus, RefState,
};
use rse_isa::asm::assemble;
use rse_isa::layout::{page_base, STACK_BASE};
use rse_isa::{Image, ModuleId, Reg};
use rse_pipeline::CpuContext;
use rse_support::rng::{fnv1a64, splitmix64};
use rse_sys::{Os, OsConfig, OsExit};
use std::collections::BTreeMap;

/// Re-exported so callers configure attack campaigns with the exact
/// options type the injection campaigns use (tiering and sharding
/// change wall-clock only, never a byte of output).
pub use rse_inject::CampaignOptions;

/// Domain separator folded into the attack seed to derive the per-run
/// MLR layout seed, so layout entropy and attack-timing entropy are
/// independent draws from one recorded seed.
const MLR_LAYOUT_DOMAIN: u64 = 0x4D4C_525F_4C41_594F; // "MLR_LAYO"

/// Derives the per-run seed from the campaign base seed, the victim
/// name, the attack model, and the run index. Pure and stable: the
/// JSONL `seed` field plus [`sample_attack`] replays the exact attack.
pub fn derive_seed(base_seed: u64, victim: &str, model: AttackModel, run: u32) -> u64 {
    let mut s = base_seed ^ fnv1a64(victim.as_bytes());
    splitmix64(&mut s);
    s ^= model.index().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s);
    s ^= u64::from(run);
    splitmix64(&mut s)
}

/// The per-run MLR layout seed for MLR-guarded victims: independent of
/// the attack draws, derived from the same recorded seed.
pub(crate) fn mlr_layout_seed(v: &Victim, seed: u64) -> Option<u64> {
    (v.workload.harness == Harness::MlrOs).then(|| {
        let mut s = seed ^ MLR_LAYOUT_DOMAIN;
        splitmix64(&mut s)
    })
}

/// Rolls an OS-harness victim back to its pre-run checkpoints and
/// re-executes under a fresh guest OS (same MLR layout seed, so the
/// re-run reproduces the attacked run's randomization decisions).
/// Returns the re-executed guest output, or the failure cause.
pub(crate) fn rollback_and_rerun_os(
    w: &Workload,
    image: &Image,
    pre: &PreRunCheckpoints,
    budget: u64,
    mlr_seed: Option<u64>,
) -> Result<Vec<i32>, String> {
    let mut b = build_harness_seeded(w, image, budget, mlr_seed);
    for &page in &pre.pages {
        let cp = pre
            .store
            .earliest_for(page)
            .ok_or_else(|| format!("missing checkpoint for page {page:#x}"))?;
        b.cpu
            .mem_mut()
            .memory
            .restore_page(page_base(page), &cp.data);
    }
    b.cpu.mem_mut().invalidate_caches();
    let mut regs = [0u32; 32];
    regs[Reg::SP.index()] = STACK_BASE - 16;
    b.cpu.set_context(&CpuContext {
        regs,
        pc: image.entry,
    });
    let mut os = Os::new(OsConfig::default());
    match os.run(&mut b.cpu, &mut b.engine, budget) {
        OsExit::Exited { code: 0 } => Ok(os.output.clone()),
        other => Err(format!("re-execution after rollback ended with {other:?}")),
    }
}

/// Executes one attack run and classifies it. Equivalent to
/// [`run_one_with`] with default (untiered, sequential) options.
pub fn run_one(v: &Victim, model: AttackModel, run: u32, seed: u64, r: &RefState) -> AttackRecord {
    run_one_with(v, model, run, seed, r, &CampaignOptions::default())
}

/// Executes one attack run and classifies it.
///
/// Classification priority (most attributable first): a downed
/// defending module (`degraded:*`), a module detection (`detected:*` —
/// ICM invariant mismatches on checked harnesses, the DDT's NX trap or
/// crash-mediated recovery on OS harnesses), then the end state: a
/// safe-mode trip, timeout, or kill is a `crash-trap`; a clean exit is
/// `prevented` if the result matches golden and `compromised` if the
/// attacker's tampering stuck. Detections and crashes with divergent
/// state then exercise the checkpoint-rollback recovery path exactly as
/// the injection engine does.
pub fn run_one_with(
    v: &Victim,
    model: AttackModel,
    run: u32,
    seed: u64,
    r: &RefState,
    opts: &CampaignOptions,
) -> AttackRecord {
    if is_chain_model(model) {
        return run_chain(v, model, run, seed, r, opts);
    }
    let w = &v.workload;
    let image = assemble(w.source).expect("victim workload assembles");
    let surface = map_surface(v, &image);
    let plan = sample_attack(model, seed, v, &surface, &r.profile);
    let budget = fault_budget(r);
    let (outcome, recovery, cycles) = match w.harness {
        Harness::Bare | Harness::Icm | Harness::Dsm => {
            let mut b = build_harness_seeded(w, &image, budget, None);
            let pre = capture_checkpoints(&b.cpu.mem().memory);
            plan.arm(&mut b.cpu, &mut b.engine);
            let end = drive(&mut b.cpu, &mut b.engine, budget);
            if end == RawEnd::TimedOut {
                b.engine.poll_hang(b.cpu.now());
            }
            let detected_by = detecting_module(&b.engine);
            let digest = result_digest(w, &b.cpu, &image);
            let clean = end == RawEnd::Halted && digest == r.digest;
            let down_target = w
                .harness
                .target_module()
                .filter(|&m| b.engine.module_health(m).is_down());
            let outcome = if let Some(m) = down_target {
                AttackOutcome::Degraded(m)
            } else if let Some(m) = detected_by {
                AttackOutcome::Detected(m)
            } else if b.engine.safe_mode().is_some() {
                AttackOutcome::CrashTrap
            } else {
                match end {
                    RawEnd::TimedOut | RawEnd::Crash(_) => AttackOutcome::CrashTrap,
                    RawEnd::Halted => {
                        if digest == r.digest {
                            AttackOutcome::Prevented
                        } else {
                            AttackOutcome::Compromised
                        }
                    }
                }
            };
            let recovery = match outcome {
                AttackOutcome::Prevented | AttackOutcome::Compromised => RecoveryStatus::NotNeeded,
                AttackOutcome::Degraded(_) if clean => RecoveryStatus::Succeeded {
                    mechanism: "quarantine-nop-mux",
                },
                // The DSM is detect-only (no flush path): a clean result
                // under a DSM detection needed no mechanism at all.
                AttackOutcome::Detected(ModuleId::DSM) if clean => RecoveryStatus::NotNeeded,
                AttackOutcome::Detected(_) if clean => RecoveryStatus::Succeeded {
                    mechanism: "flush-refetch",
                },
                _ => match if opts.tiered {
                    rollback_and_rerun_tiered(w, &image, &pre, budget)
                } else {
                    rollback_and_rerun(w, &image, &pre, budget)
                } {
                    Ok(d) if d == r.digest => RecoveryStatus::Succeeded {
                        mechanism: "checkpoint-rollback",
                    },
                    Ok(_) => RecoveryStatus::FailedSafeHalt {
                        cause: "re-executed state diverged from golden".into(),
                    },
                    Err(cause) => RecoveryStatus::FailedSafeHalt { cause },
                },
            };
            (outcome, recovery, b.cpu.now())
        }
        Harness::DdtOs | Harness::MlrOs | Harness::OsBare | Harness::NxOs => {
            let mlr_seed = mlr_layout_seed(v, seed);
            let mut b = build_harness_seeded(w, &image, budget, mlr_seed);
            let pre = capture_checkpoints(&b.cpu.mem().memory);
            plan.arm(&mut b.cpu, &mut b.engine);
            let mut os = Os::new(OsConfig::default());
            let exit = os.run(&mut b.cpu, &mut b.engine, budget);
            if exit == OsExit::Timeout {
                b.engine.poll_hang(b.cpu.now());
            }
            // The pipeline latches an NX violation when it traps a commit
            // from a non-executable page; `OsExit` alone cannot tell that
            // trap apart from a clean exit, so read the latch directly.
            let detected = b.cpu.nx_violation().is_some() || os.stats().recoveries > 0;
            let run_ok = exit == (OsExit::Exited { code: 0 }) && os.output == r.output;
            let down_target = w
                .harness
                .target_module()
                .filter(|&m| b.engine.module_health(m).is_down());
            let outcome = if let Some(m) = down_target {
                AttackOutcome::Degraded(m)
            } else if detected {
                AttackOutcome::Detected(ModuleId::DDT)
            } else if b.engine.safe_mode().is_some() {
                AttackOutcome::CrashTrap
            } else {
                match &exit {
                    OsExit::Timeout | OsExit::ProcessKilled { .. } => AttackOutcome::CrashTrap,
                    OsExit::Exited { code: 0 } if os.output == r.output => AttackOutcome::Prevented,
                    _ => AttackOutcome::Compromised,
                }
            };
            let recovery = match outcome {
                AttackOutcome::Prevented | AttackOutcome::Compromised => RecoveryStatus::NotNeeded,
                AttackOutcome::Degraded(_) if run_ok => RecoveryStatus::Succeeded {
                    mechanism: "quarantine-nop-mux",
                },
                AttackOutcome::Detected(_) if run_ok => RecoveryStatus::Succeeded {
                    mechanism: "flush-refetch",
                },
                _ => match rollback_and_rerun_os(w, &image, &pre, budget, mlr_seed) {
                    Ok(out) if out == r.output => RecoveryStatus::Succeeded {
                        mechanism: "checkpoint-rollback",
                    },
                    Ok(_) => RecoveryStatus::FailedSafeHalt {
                        cause: "re-executed state diverged from golden".into(),
                    },
                    Err(cause) => RecoveryStatus::FailedSafeHalt { cause },
                },
            };
            (outcome, recovery, b.cpu.now())
        }
    };
    AttackRecord {
        victim: w.name,
        defended: v.defended,
        model: model.name(),
        run,
        seed,
        outcome,
        recovery,
        cycles,
        attack: plan.describe(),
    }
}

/// Convenience: reference + single run for a named victim. Returns
/// `None` for an unknown victim name.
pub fn run_one_by_name(name: &str, model: AttackModel, seed: u64) -> Option<AttackRecord> {
    let v = victim_by_name(name)?;
    let r = reference(&v.workload);
    Some(run_one(v, model, 0, seed, &r))
}

/// One campaign cell: `runs` attacks of `model` against `victim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackCell {
    /// Victim name (must resolve via [`victim_by_name`]).
    pub victim: &'static str,
    /// Attack model.
    pub model: AttackModel,
    /// Number of runs.
    pub runs: u32,
}

/// A full adversarial campaign specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackSpec {
    /// Base seed every per-run seed is derived from.
    pub base_seed: u64,
    /// The cells, executed in order.
    pub cells: Vec<AttackCell>,
}

impl AttackSpec {
    /// The pinned CI smoke campaign: every attack model against every
    /// twin of its victim pair (plus a one-run control per victim), so
    /// the coverage table shows each defense and each exposure class.
    pub fn smoke(base_seed: u64) -> AttackSpec {
        let cell = |victim, model, runs| AttackCell {
            victim,
            model,
            runs,
        };
        let mut cells = Vec::new();
        for v in victims() {
            cells.push(cell(v.workload.name, AttackModel::Control, 1));
        }
        for victim in ["stack_guard", "stack_exposed"] {
            cells.push(cell(victim, AttackModel::StackSmash, 6));
        }
        for victim in ["got_guard", "got_exposed"] {
            cells.push(cell(victim, AttackModel::GotTamper, 6));
        }
        for victim in ["branch_guard", "branch_exposed"] {
            cells.push(cell(victim, AttackModel::CodeInject, 5));
            cells.push(cell(victim, AttackModel::CfhRedirect, 5));
            cells.push(cell(victim, AttackModel::InstTamper, 6));
            cells.push(cell(victim, AttackModel::InstSkip, 4));
            cells.push(cell(victim, AttackModel::InstReplay, 4));
        }
        for victim in ["nx_guard", "nx_exposed"] {
            cells.push(cell(victim, AttackModel::NxProbe, 6));
        }
        cells.push(cell("branch_guard", AttackModel::IcmTamper, 6));
        AttackSpec { base_seed, cells }
    }

    /// The pinned adaptive campaign: the chain models plus the
    /// instruction-stream models against the DSM twins — the coverage
    /// the smoke campaign's single-shot cells cannot provide. The
    /// headline cells are `inst-skip` on `seq_guard` (the DSM closing
    /// the ICM's skip blind spot: zero compromises on the guard) and
    /// `recovery-strike` (bounded retry with escalation, never a silent
    /// wrong answer).
    pub fn adaptive(base_seed: u64) -> AttackSpec {
        let cell = |victim, model, runs| AttackCell {
            victim,
            model,
            runs,
        };
        let mut cells = Vec::new();
        for victim in ["seq_guard", "seq_exposed"] {
            cells.push(cell(victim, AttackModel::Control, 1));
            cells.push(cell(victim, AttackModel::InstSkip, 6));
            cells.push(cell(victim, AttackModel::InstTamper, 4));
            cells.push(cell(victim, AttackModel::InstReplay, 4));
        }
        for victim in ["stack_guard", "stack_exposed", "got_guard", "got_exposed"] {
            cells.push(cell(victim, AttackModel::AdaptiveChain, 4));
        }
        for victim in ["branch_guard", "branch_exposed", "seq_guard", "seq_exposed"] {
            cells.push(cell(victim, AttackModel::RecoveryStrike, 4));
        }
        cells.push(cell("branch_guard", AttackModel::QuarantineEvade, 4));
        AttackSpec { base_seed, cells }
    }

    /// The zero-attack control campaign: every victim under the
    /// `control` model. All runs must classify as `prevented`.
    pub fn control(base_seed: u64, runs: u32) -> AttackSpec {
        AttackSpec {
            base_seed,
            cells: victims()
                .iter()
                .map(|v| AttackCell {
                    victim: v.workload.name,
                    model: AttackModel::Control,
                    runs,
                })
                .collect(),
        }
    }

    /// The full cross product: every applicable (victim, model) pair,
    /// `runs` attacks each.
    pub fn full(base_seed: u64, runs: u32) -> AttackSpec {
        let mut cells = Vec::new();
        for v in victims() {
            for model in AttackModel::ALL {
                if model.applicable(v) {
                    cells.push(AttackCell {
                        victim: v.workload.name,
                        model,
                        runs,
                    });
                }
            }
        }
        AttackSpec { base_seed, cells }
    }

    /// Total runs in the spec.
    pub fn total_runs(&self) -> u64 {
        self.cells.iter().map(|c| u64::from(c.runs)).sum()
    }
}

/// Executes an adversarial campaign. Equivalent to
/// [`run_campaign_with`] with default (sequential, untiered) options.
///
/// # Panics
///
/// Panics if a cell names an unknown victim or an inapplicable attack
/// model — specs are validated eagerly so a bad campaign never
/// half-runs.
pub fn run_campaign(spec: &AttackSpec) -> Vec<AttackRecord> {
    run_campaign_with(spec, &CampaignOptions::default())
}

/// Executes an adversarial campaign under [`CampaignOptions`], sharding
/// run-level jobs across threads exactly as the injection campaigns do:
/// the merged record vector — and therefore
/// [`crate::outcome::to_jsonl`] — is byte-for-byte identical for every
/// thread count and tiering choice.
///
/// # Panics
///
/// Panics as [`run_campaign`] does on an invalid spec, and propagates
/// any worker panic.
pub fn run_campaign_with(spec: &AttackSpec, opts: &CampaignOptions) -> Vec<AttackRecord> {
    for cell in &spec.cells {
        let v = victim_by_name(cell.victim)
            .unwrap_or_else(|| panic!("unknown victim {:?}", cell.victim));
        assert!(
            cell.model.applicable(v),
            "model {} is not applicable to victim {}",
            cell.model,
            v.workload.name
        );
    }
    let mut refs: BTreeMap<&str, RefState> = BTreeMap::new();
    for cell in &spec.cells {
        let v = victim_by_name(cell.victim).expect("validated above");
        refs.entry(v.workload.name)
            .or_insert_with(|| reference(&v.workload));
    }
    let jobs: Vec<(&'static Victim, AttackModel, u32, u64)> = spec
        .cells
        .iter()
        .flat_map(|cell| {
            let v = victim_by_name(cell.victim).expect("validated above");
            (0..cell.runs).map(move |run| {
                (
                    v,
                    cell.model,
                    run,
                    derive_seed(spec.base_seed, v.workload.name, cell.model, run),
                )
            })
        })
        .collect();
    run_sharded(&jobs, opts.threads, |_, &(v, model, run, seed)| {
        run_one_with(v, model, run, seed, &refs[v.workload.name], opts)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::to_jsonl;

    #[test]
    fn seeds_are_stable_and_well_spread() {
        let a = derive_seed(1, "stack_guard", AttackModel::StackSmash, 0);
        assert_eq!(a, derive_seed(1, "stack_guard", AttackModel::StackSmash, 0));
        assert_ne!(a, derive_seed(2, "stack_guard", AttackModel::StackSmash, 0));
        assert_ne!(
            a,
            derive_seed(1, "stack_exposed", AttackModel::StackSmash, 0)
        );
        assert_ne!(a, derive_seed(1, "stack_guard", AttackModel::GotTamper, 0));
        assert_ne!(a, derive_seed(1, "stack_guard", AttackModel::StackSmash, 1));
    }

    #[test]
    fn specs_are_valid_and_cover_every_model() {
        for spec in [
            AttackSpec::smoke(0),
            AttackSpec::adaptive(0),
            AttackSpec::full(0, 1),
        ] {
            for cell in &spec.cells {
                let v = victim_by_name(cell.victim).unwrap();
                assert!(cell.model.applicable(v), "{:?}", cell);
            }
        }
        // The full cross product covers the whole model space on its
        // own; the two pinned campaigns (smoke + adaptive) cover it
        // together.
        for model in AttackModel::ALL {
            assert!(
                AttackSpec::full(0, 1)
                    .cells
                    .iter()
                    .any(|c| c.model == model),
                "{model} missing from full spec"
            );
            assert!(
                AttackSpec::smoke(0).cells.iter().any(|c| c.model == model)
                    || AttackSpec::adaptive(0)
                        .cells
                        .iter()
                        .any(|c| c.model == model),
                "{model} missing from both pinned specs"
            );
        }
        assert!(AttackSpec::smoke(0).total_runs() >= 80);
        assert!(AttackSpec::adaptive(0).total_runs() >= 60);
    }

    #[test]
    fn control_runs_are_all_prevented() {
        let records = run_campaign(&AttackSpec::control(7, 1));
        assert_eq!(records.len(), 10);
        for r in &records {
            assert_eq!(r.outcome, AttackOutcome::Prevented, "{}", r.to_json());
            assert_eq!(r.recovery, RecoveryStatus::NotNeeded);
            assert_eq!(r.attack, "none");
        }
    }

    #[test]
    fn single_runs_replay_byte_identically() {
        let rec = run_one_by_name("stack_exposed", AttackModel::StackSmash, 0xFEED).unwrap();
        let again = run_one_by_name("stack_exposed", AttackModel::StackSmash, 0xFEED).unwrap();
        assert_eq!(rec.to_json(), again.to_json());
        assert!(!rec.defended);
    }

    /// A mixed mini-campaign across the harness flavors whose output the
    /// tiered and sharded paths must reproduce byte-for-byte.
    fn mini_spec() -> AttackSpec {
        AttackSpec {
            base_seed: 0xD5B,
            cells: vec![
                AttackCell {
                    victim: "stack_guard",
                    model: AttackModel::StackSmash,
                    runs: 2,
                },
                AttackCell {
                    victim: "branch_guard",
                    model: AttackModel::CfhRedirect,
                    runs: 2,
                },
                AttackCell {
                    victim: "nx_guard",
                    model: AttackModel::NxProbe,
                    runs: 2,
                },
            ],
        }
    }

    #[test]
    fn tiered_and_sharded_campaigns_are_byte_identical() {
        let spec = mini_spec();
        let base = to_jsonl(&run_campaign(&spec));
        for (tiered, threads) in [(true, 1), (false, 3), (true, 16)] {
            let alt = to_jsonl(&run_campaign_with(
                &spec,
                &CampaignOptions {
                    tiered,
                    threads,
                    ..CampaignOptions::default()
                },
            ));
            assert_eq!(base, alt, "tiered={tiered} threads={threads}");
        }
    }
}
