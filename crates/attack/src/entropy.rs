//! The randomization-entropy study: attack success rate as a function
//! of the MLR re-randomization period.
//!
//! §4.1 of the paper argues that for long-running processes a single
//! load-time randomization decays: every leaked pointer stays valid for
//! the rest of the process lifetime, so the defense is only as strong
//! as its oldest secret. The proposed fix is periodic re-randomization
//! (`rse_sys::rerand`). This study measures that claim end to end with
//! a leak-then-strike attacker:
//!
//! 1. the victim runs a long window of work rounds, each ending at a
//!    syscall safe point where the kernel may re-randomize its secret
//!    segment,
//! 2. at a seed-drawn *leak round* the attacker captures the segment's
//!    current base (a perfect info-leak primitive),
//! 3. at a seed-drawn later *strike round* the attacker writes through
//!    the leaked address, corrupting the segment datum if — and only if
//!    — the segment has not moved since the leak.
//!
//! A static layout (`period = 0`, never re-randomized) loses every
//! time: the leak never goes stale. As the re-randomization period
//! shrinks, the window between leak and strike is ever more likely to
//! contain a move, the stale write lands in the scrubbed old page, and
//! the success rate falls — monotonically, which is exactly what the
//! CI gate on the committed `BENCH_attack.json` asserts.
//!
//! The study runs over a small victim *corpus* ([`entropy_victims`]),
//! one long-running guest per attack-surface kind — plain pointer
//! chasing (`stack`), GOT-style double indirection (`got`), a
//! branch-dense round (`branch`), and a store/load staging round
//! (`nx`) — so the §4.1 claim is measured per surface, not just on one
//! victim. Each victim carries its own tuned period sweep (round times
//! differ), and the strict-decrease gate holds **per victim**.

use rse_core::{Engine, RseConfig};
use rse_inject::run_sharded;
use rse_isa::asm::assemble;
use rse_mem::{MemConfig, MemorySystem};
use rse_modules::mlr::{Mlr, MlrConfig};
use rse_pipeline::{Pipeline, PipelineConfig, StepEvent};
use rse_support::rng::{fnv1a64, splitmix64};
use rse_sys::rerand::{maybe_rerandomize, RerandPlan};
use rse_sys::{loader, Os, OsConfig, OsExit};

/// Work rounds in the victim's window (each ends at a YIELD safe
/// point). Leak and strike rounds are drawn inside this window.
pub const ROUNDS: u32 = 40;

/// The golden datum the victim prints when unmolested: 100 + one bump
/// per round.
pub const GOLDEN_DATUM: i32 = 100 + ROUNDS as i32;

/// Managed-segment length in bytes (two pages).
const SEG_LEN: u32 = 8192;

/// Fuel per drive step — generous; the guest window is tens of
/// thousands of cycles even with every round re-randomized.
const TRIAL_FUEL: u64 = 10_000_000;

/// Trials per sweep point in the committed study.
pub const DEFAULT_TRIALS: u32 = 48;

/// The default period sweep, in cycles, largest first. Tuned
/// empirically to the victim's ~20-cycle round time so the first
/// re-randomization lands progressively earlier in the window across
/// the sweep — the measured success rate then falls strictly at every
/// step; `0` (the static baseline, never re-randomized) is prepended
/// by [`entropy_study`] itself.
pub const DEFAULT_PERIODS: [u64; 4] = [512, 384, 256, 192];

/// The long-running victim. Every round reloads its secret-segment
/// pointer from a table-registered slot (the §4.1 compiler contract),
/// bumps the segment datum, and yields — the safe point where the
/// kernel may re-randomize. After the window it prints the datum:
/// [`GOLDEN_DATUM`] if no strike landed.
const ENTROPY_SRC: &str = r#"
    main:   li   s0, 40
    round:  la   t0, ptr
            lw   t1, 0(t0)      # reload the (possibly moved) pointer
            lw   t2, 0(t1)      # read the secret datum
            addi t2, t2, 1
            sw   t2, 0(t1)      # bump it
            li   r2, 18         # YIELD: the safe point
            syscall
            addi s0, s0, -1
            bne  s0, r0, round
            la   t0, ptr
            lw   t1, 0(t0)
            lw   r4, 0(t1)
            li   r2, 2          # print the datum
            syscall
            halt

            .data
            .align 4
    ptr:    .word seg           # a registered pointer variable
    ptrtab: .word 1, ptr        # the special data section
            .space 4000
            .align 4096
    seg:    .word 100           # the secret segment under study
            .space 8188
"#;

/// GOT-kind victim: the secret pointer is reached through a second
/// level of indirection (a GOT-style slot holding the address of the
/// registered pointer variable), the MLR's §4.1 pointer-table contract
/// exercised one hop deeper. Same window, same golden datum.
const ENTROPY_GOT_SRC: &str = r#"
    main:   li   s0, 40
    round:  la   t0, ptr2
            lw   t3, 0(t0)      # GOT-style slot: address of ptr
            lw   t1, 0(t3)      # the (possibly moved) pointer
            lw   t2, 0(t1)
            addi t2, t2, 1
            sw   t2, 0(t1)      # bump the secret datum
            li   r2, 18         # YIELD: the safe point
            syscall
            addi s0, s0, -1
            bne  s0, r0, round
            la   t0, ptr2
            lw   t3, 0(t0)
            lw   t1, 0(t3)
            lw   r4, 0(t1)
            li   r2, 2          # print the datum
            syscall
            halt

            .data
            .align 4
    ptr:    .word seg           # the registered pointer variable
    ptr2:   .word ptr           # GOT-style second-level slot
    ptrtab: .word 1, ptr        # the special data section
            .space 4000
            .align 4096
    seg:    .word 100
            .space 8188
"#;

/// Branch-kind victim: every round takes a parity-dependent branch arm
/// before touching the secret, so the window is branch-dense like the
/// `branch_*` campaign victims. Same golden datum.
const ENTROPY_BRANCH_SRC: &str = r#"
    main:   li   s0, 40
            li   s1, 0
    round:  addi s1, s1, 1
            andi t4, s1, 1
            beq  t4, r0, evn
            la   t0, ptr        # odd rounds
            b    cont
    evn:    la   t0, ptr        # even rounds
    cont:   lw   t1, 0(t0)
            lw   t2, 0(t1)
            addi t2, t2, 1
            sw   t2, 0(t1)      # bump the secret datum
            li   r2, 18         # YIELD: the safe point
            syscall
            addi s0, s0, -1
            bne  s0, r0, round
            la   t0, ptr
            lw   t1, 0(t0)
            lw   r4, 0(t1)
            li   r2, 2          # print the datum
            syscall
            halt

            .data
            .align 4
    ptr:    .word seg
    ptrtab: .word 1, ptr
            .space 4000
            .align 4096
    seg:    .word 100
            .space 8188
"#;

/// NX-kind victim: every round stages a scratch word into the secret
/// segment and reads it back (the writable-staging pattern of the
/// `nx_*` campaign victims) before bumping the datum. Same golden
/// datum.
const ENTROPY_NX_SRC: &str = r#"
    main:   li   s0, 40
    round:  la   t0, ptr
            lw   t1, 0(t0)      # reload the (possibly moved) pointer
            lw   t2, 0(t1)
            addi t2, t2, 1
            sw   t2, 0(t1)      # bump the secret datum
            sw   t2, 4(t1)      # stage a scratch copy ...
            lw   t5, 4(t1)      # ... and read it back
            li   r2, 18         # YIELD: the safe point
            syscall
            addi s0, s0, -1
            bne  s0, r0, round
            la   t0, ptr
            lw   t1, 0(t0)
            lw   r4, 0(t1)
            li   r2, 2          # print the datum
            syscall
            halt

            .data
            .align 4
    ptr:    .word seg
    ptrtab: .word 1, ptr
            .space 4000
            .align 4096
    seg:    .word 100
            .space 8188
"#;

/// One victim of the entropy corpus: a surface kind, its guest source,
/// and the period sweep tuned to its round time.
#[derive(Debug, Clone, Copy)]
pub struct EntropyVictim {
    /// Surface kind (JSON `victim` field; stable).
    pub kind: &'static str,
    source: &'static str,
    /// The tuned period sweep, largest first (`0` is prepended by the
    /// study itself).
    pub periods: [u64; 4],
}

const ENTROPY_VICTIMS: [EntropyVictim; 4] = [
    EntropyVictim {
        kind: "stack",
        source: ENTROPY_SRC,
        periods: DEFAULT_PERIODS,
    },
    EntropyVictim {
        kind: "got",
        source: ENTROPY_GOT_SRC,
        periods: DEFAULT_PERIODS,
    },
    EntropyVictim {
        kind: "branch",
        source: ENTROPY_BRANCH_SRC,
        periods: DEFAULT_PERIODS,
    },
    EntropyVictim {
        kind: "nx",
        source: ENTROPY_NX_SRC,
        periods: DEFAULT_PERIODS,
    },
];

/// The entropy victim corpus, in stable order.
pub fn entropy_victims() -> &'static [EntropyVictim] {
    &ENTROPY_VICTIMS
}

/// One point of the sweep: `successes` of `trials` leak-then-strike
/// attacks corrupted the victim under re-randomization `period`
/// (`period = 0` is the static-layout baseline, never re-randomized).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntropyPoint {
    /// Re-randomization period in cycles; `0` = static layout.
    pub period: u64,
    /// Attack trials at this point.
    pub trials: u32,
    /// Trials where the attacker corrupted the final output.
    pub successes: u32,
}

impl EntropyPoint {
    /// Success rate per mille (integer arithmetic only).
    pub fn permille(&self) -> u64 {
        if self.trials == 0 {
            return 0;
        }
        u64::from(self.successes) * 1000 / u64::from(self.trials)
    }
}

/// Derives the per-trial seed from the study base seed, the sweep
/// period, and the trial index. Pure and stable.
pub fn trial_seed(base_seed: u64, period: u64, trial: u32) -> u64 {
    let mut s = base_seed ^ fnv1a64(b"attack-entropy");
    splitmix64(&mut s);
    s ^= period.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s);
    s ^= u64::from(trial);
    splitmix64(&mut s)
}

/// [`trial_seed`] with the victim kind folded in, so every victim of
/// the corpus study draws an independent attack schedule from the same
/// base seed. Pure and stable.
pub fn corpus_trial_seed(base_seed: u64, kind: &str, period: u64, trial: u32) -> u64 {
    trial_seed(base_seed ^ fnv1a64(kind.as_bytes()), period, trial)
}

/// Everything one leak-then-strike trial observed (the full story
/// behind the boolean verdict; used by tests and period tuning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialDetail {
    /// The victim's final printed output.
    pub output: Vec<i32>,
    /// Re-randomization passes that fired during the window.
    pub moves: u32,
    /// The round the attacker leaked the base.
    pub leak_round: u32,
    /// The round the attacker struck through the leaked base.
    pub strike_round: u32,
    /// Whether the attacker corrupted the final output.
    pub success: bool,
}

/// Runs one leak-then-strike trial against the `stack`-kind victim.
/// `period = None` is the static baseline (the segment never moves).
/// Returns `true` when the attacker won: the victim completed but
/// printed a corrupted datum.
pub fn run_trial(seed: u64, period: Option<u64>) -> bool {
    run_trial_detail(seed, period).success
}

/// Runs one leak-then-strike trial against the named corpus victim.
///
/// # Panics
///
/// Panics on an unknown victim kind.
pub fn run_trial_kind(kind: &str, seed: u64, period: Option<u64>) -> bool {
    let v = ENTROPY_VICTIMS
        .iter()
        .find(|v| v.kind == kind)
        .unwrap_or_else(|| panic!("unknown entropy victim kind {kind:?}"));
    run_trial_detail_src(v.source, seed, period).success
}

/// [`run_trial`] with the full trial story.
pub fn run_trial_detail(seed: u64, period: Option<u64>) -> TrialDetail {
    run_trial_detail_src(ENTROPY_SRC, seed, period)
}

fn run_trial_detail_src(src: &str, seed: u64, period: Option<u64>) -> TrialDetail {
    let image = assemble(src).expect("entropy guest assembles");
    let seg = image.symbol("seg").expect("seg symbol");
    let ptrtab = image.symbol("ptrtab").expect("ptrtab symbol");
    // The attacker's schedule: leak in the first half of the window,
    // strike a seed-drawn gap later (always inside the window).
    let mut s = seed;
    let leak_round = 1 + (splitmix64(&mut s) % u64::from(ROUNDS / 2)) as u32;
    let gap = 1 + (splitmix64(&mut s) % u64::from(ROUNDS / 2 - 1)) as u32;
    let strike_round = leak_round + gap;
    let mut cpu = Pipeline::new(
        PipelineConfig::default(),
        MemorySystem::new(MemConfig::with_framework()),
    );
    loader::load_process(&mut cpu, &image);
    let mut engine = Engine::new(RseConfig::default());
    let mut os = Os::new(OsConfig::default());
    let mut mlr = Mlr::new(MlrConfig {
        seed: Some(seed | 1),
        ..MlrConfig::default()
    });
    let mut plan = RerandPlan {
        interval: period.unwrap_or(u64::MAX),
        ptr_table: ptrtab,
        base: seg,
        len: SEG_LEN,
    };
    let mut next_due = period.unwrap_or(u64::MAX);
    let mut leaked: Option<u32> = None;
    let mut round = 0u32;
    let mut moves = 0u32;
    let exit = loop {
        match cpu.run(&mut engine, TRIAL_FUEL) {
            StepEvent::Syscall => {
                round += 1;
                if period.is_some()
                    && maybe_rerandomize(&mut cpu, &mut mlr, &mut plan, &mut next_due).is_some()
                {
                    moves += 1;
                }
                if round == leak_round {
                    leaked = Some(plan.base);
                }
                if round == strike_round {
                    let base = leaked.expect("leak precedes strike");
                    // The strike: write through the (possibly stale)
                    // leaked address. A moved segment makes this land in
                    // the scrubbed old page — harmless.
                    cpu.mem_mut().memory.write_u32(base, 0x0020_0000);
                }
                if let Some(e) = os.dispatch_pending_syscall(&mut cpu, &mut engine) {
                    break e;
                }
            }
            StepEvent::Halted => break OsExit::Exited { code: 0 },
            other => panic!("entropy guest trapped: {other:?}"),
        }
    };
    assert_eq!(
        exit,
        OsExit::Exited { code: 0 },
        "entropy victim must complete (seed {seed:#x}, period {period:?})"
    );
    TrialDetail {
        success: os.output != [GOLDEN_DATUM],
        output: os.output.clone(),
        moves,
        leak_round,
        strike_round,
    }
}

/// Runs the full sweep: the static baseline (`period = 0`) followed by
/// `periods` (largest first), `trials` attacks each, sharded across
/// `threads` workers with the campaign engine's deterministic
/// round-robin — the result is byte-identical at every thread count.
pub fn entropy_study(
    base_seed: u64,
    trials: u32,
    periods: &[u64],
    threads: usize,
) -> Vec<EntropyPoint> {
    let mut points: Vec<u64> = vec![0];
    points.extend_from_slice(periods);
    let jobs: Vec<(u64, u32)> = points
        .iter()
        .flat_map(|&p| (0..trials).map(move |t| (p, t)))
        .collect();
    let wins = run_sharded(&jobs, threads, |_, &(period, trial)| {
        let seed = trial_seed(base_seed, period, trial);
        run_trial(seed, (period != 0).then_some(period))
    });
    points
        .iter()
        .enumerate()
        .map(|(i, &period)| EntropyPoint {
            period,
            trials,
            successes: wins[i * trials as usize..(i + 1) * trials as usize]
                .iter()
                .filter(|&&w| w)
                .count() as u32,
        })
        .collect()
}

/// One victim's sweep in the corpus study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VictimStudy {
    /// Surface kind (JSON `victim` field).
    pub kind: &'static str,
    /// The sweep points, static baseline first.
    pub points: Vec<EntropyPoint>,
}

/// Runs the §4.1 study over the whole entropy corpus: for each victim
/// kind, the static baseline followed by that victim's tuned period
/// sweep, `trials` attacks per point. All (victim, period, trial) jobs
/// are sharded flat across `threads` workers; the result is
/// byte-identical at every thread count.
pub fn entropy_study_corpus(base_seed: u64, trials: u32, threads: usize) -> Vec<VictimStudy> {
    let jobs: Vec<(usize, u64, u32)> = ENTROPY_VICTIMS
        .iter()
        .enumerate()
        .flat_map(|(vi, v)| {
            let mut periods: Vec<u64> = vec![0];
            periods.extend_from_slice(&v.periods);
            periods
                .into_iter()
                .flat_map(move |p| (0..trials).map(move |t| (vi, p, t)))
        })
        .collect();
    let wins = run_sharded(&jobs, threads, |_, &(vi, period, trial)| {
        let v = &ENTROPY_VICTIMS[vi];
        let seed = corpus_trial_seed(base_seed, v.kind, period, trial);
        run_trial_detail_src(v.source, seed, (period != 0).then_some(period)).success
    });
    let mut studies = Vec::new();
    let mut cursor = 0usize;
    for v in &ENTROPY_VICTIMS {
        let mut points = Vec::new();
        let mut periods: Vec<u64> = vec![0];
        periods.extend_from_slice(&v.periods);
        for period in periods {
            let slice = &wins[cursor..cursor + trials as usize];
            cursor += trials as usize;
            points.push(EntropyPoint {
                period,
                trials,
                successes: slice.iter().filter(|&&w| w).count() as u32,
            });
        }
        studies.push(VictimStudy {
            kind: v.kind,
            points,
        });
    }
    studies
}

/// Whether success counts strictly decrease across the sweep — the CI
/// gate: every shortening of the re-randomization period must buy a
/// measurable drop in attack success.
pub fn strictly_decreasing(points: &[EntropyPoint]) -> bool {
    points.windows(2).all(|w| w[1].successes < w[0].successes)
}

/// Serializes the study as one minified JSON object (integers only —
/// bit-stable, committed as `BENCH_attack.json` and diffed by CI).
pub fn study_json(base_seed: u64, points: &[EntropyPoint]) -> String {
    let mut body = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"period\":{},\"trials\":{},\"successes\":{},\"permille\":{}}}",
            p.period,
            p.trials,
            p.successes,
            p.permille()
        ));
    }
    format!(
        "{{\"name\":\"attack_entropy\",\"seed\":{},\"rounds\":{},\"points\":[{}]}}\n",
        base_seed, ROUNDS, body
    )
}

/// Serializes the corpus study as JSON lines, one line per victim kind
/// (integers only — bit-stable, committed as `BENCH_attack.json`; the
/// CI gate checks strict decrease on every line independently).
pub fn corpus_study_json(base_seed: u64, studies: &[VictimStudy]) -> String {
    let mut out = String::new();
    for s in studies {
        let mut body = String::new();
        for (i, p) in s.points.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "{{\"period\":{},\"trials\":{},\"successes\":{},\"permille\":{}}}",
                p.period,
                p.trials,
                p.successes,
                p.permille()
            ));
        }
        out.push_str(&format!(
            "{{\"name\":\"attack_entropy\",\"victim\":\"{}\",\"seed\":{},\"rounds\":{},\"points\":[{}]}}\n",
            s.kind, base_seed, ROUNDS, body
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_stable_and_spread() {
        let a = trial_seed(1, 512, 0);
        assert_eq!(a, trial_seed(1, 512, 0));
        assert_ne!(a, trial_seed(2, 512, 0));
        assert_ne!(a, trial_seed(1, 2048, 0));
        assert_ne!(a, trial_seed(1, 512, 1));
    }

    #[test]
    fn static_layout_always_loses_the_leak_game() {
        for trial in 0..4 {
            assert!(
                run_trial(trial_seed(0xD5B, 0, trial), None),
                "static trial {trial} should succeed for the attacker"
            );
        }
    }

    #[test]
    fn fast_rerandomization_defeats_most_strikes() {
        let fast = &DEFAULT_PERIODS[DEFAULT_PERIODS.len() - 1];
        let wins = (0..8)
            .filter(|&t| run_trial(trial_seed(0xD5B, *fast, t), Some(*fast)))
            .count();
        assert!(wins <= 2, "fast re-randomization barely helped: {wins}/8");
    }

    #[test]
    fn trials_replay_deterministically_and_study_shards_identically() {
        let seed = trial_seed(7, 2048, 3);
        assert_eq!(run_trial(seed, Some(2048)), run_trial(seed, Some(2048)));
        let a = entropy_study(7, 4, &[8192, 512], 1);
        let b = entropy_study(7, 4, &[8192, 512], 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].period, 0);
        assert_eq!(a[0].successes, 4, "static baseline must always lose");
    }

    #[test]
    fn every_corpus_victim_assembles_and_loses_statically() {
        // The static baseline is the corpus invariant: with no
        // re-randomization the leaked base never goes stale, so every
        // victim kind must lose every trial.
        for v in entropy_victims() {
            for trial in 0..2 {
                let seed = corpus_trial_seed(0xD5B, v.kind, 0, trial);
                assert!(
                    run_trial_kind(v.kind, seed, None),
                    "static trial {trial} on '{}' should succeed for the attacker",
                    v.kind
                );
            }
        }
    }

    #[test]
    fn corpus_seeds_separate_victims() {
        // Same (period, trial) on different kinds must draw different
        // schedules, or the corpus is four copies of one experiment.
        let kinds: Vec<u64> = entropy_victims()
            .iter()
            .map(|v| corpus_trial_seed(0xD5B, v.kind, 512, 0))
            .collect();
        for i in 0..kinds.len() {
            for j in i + 1..kinds.len() {
                assert_ne!(kinds[i], kinds[j], "victims {i} and {j} share a seed");
            }
        }
        // And the stack victim's corpus seed is its own channel, not
        // the legacy single-victim channel.
        assert_ne!(
            corpus_trial_seed(0xD5B, "stack", 512, 0),
            trial_seed(0xD5B, 512, 0)
        );
    }

    #[test]
    fn corpus_study_shards_identically_and_serializes_per_victim() {
        let a = entropy_study_corpus(7, 2, 1);
        let b = entropy_study_corpus(7, 2, 8);
        assert_eq!(a, b, "sharded corpus study diverged from sequential");
        assert_eq!(a.len(), 4);
        for s in &a {
            assert_eq!(s.points.len(), DEFAULT_PERIODS.len() + 1);
            assert_eq!(s.points[0].period, 0);
            assert_eq!(s.points[0].successes, 2, "static baseline must always lose");
        }
        let json = corpus_study_json(7, &a);
        assert_eq!(json.lines().count(), 4, "one JSON line per victim kind");
        for (line, s) in json.lines().zip(&a) {
            assert!(
                line.contains(&format!("\"victim\":\"{}\"", s.kind)),
                "line missing victim tag: {line}"
            );
        }
    }

    #[test]
    fn study_json_is_integer_only_and_ordered() {
        let points = [
            EntropyPoint {
                period: 0,
                trials: 4,
                successes: 4,
            },
            EntropyPoint {
                period: 512,
                trials: 4,
                successes: 1,
            },
        ];
        let json = study_json(9, &points);
        assert!(json.contains("\"period\":0,\"trials\":4,\"successes\":4,\"permille\":1000"));
        assert!(json.contains("\"period\":512,\"trials\":4,\"successes\":1,\"permille\":250"));
        assert!(strictly_decreasing(&points));
        let flat = [points[0], points[0]];
        assert!(!strictly_decreasing(&flat));
    }
}
