//! Attack-surface mapping and the deterministic attack planner.
//!
//! [`map_surface`] reads a victim's assembled [`Image`] the way an
//! attacker with a copy of the binary would: it locates the gadget and
//! code-cave symbols, scans the text segment for control-flow sites (the
//! indirect-branch-redirection and code-injection entry points), and —
//! for ICM-guarded victims — reconstructs the CheckerMemory layout to
//! find where the module keeps its redundant copies.
//!
//! [`sample_attack`] then expands a single `u64` seed into a concrete
//! [`FaultPlan`] for an [`AttackModel`], exactly as
//! `rse_inject::FaultPlan::sample` does for soft errors: the same seed
//! replays the same attack, forever. Attacks are delivered through the
//! injection engine's existing hooks (scheduled memory writes and
//! in-flight fetch tampers), so the adversarial campaigns reuse the
//! pipeline plumbing instead of growing a parallel delivery path.

use crate::model::AttackModel;
use crate::victim::{Harness, Victim};
use rse_inject::{FaultPlan, PlannedFault, RunProfile};
use rse_isa::layout::{HEAP_BASE, STACK_BASE};
use rse_isa::{decode, encode, Image, Inst, Reg};
use rse_mem::SparseMemory;
use rse_modules::icm::{Icm, IcmConfig};
use rse_pipeline::{FetchFault, FetchTamper, SoftFault};
use rse_support::rng::splitmix64;

/// Stack-slot offset below the stack base where the `stack_*` victims
/// keep their function pointer (and where the smash lands).
pub const STACK_SLOT_OFFSET: u32 = 64;

/// Everything the planner needs to know about a victim binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackSurface {
    /// Address of the `evil:` gadget, if the victim declares one.
    pub evil: Option<u32>,
    /// Address of the `fin:` join point (code-injection payload exit).
    pub fin: Option<u32>,
    /// Address of the NOP code cave, if the victim declares one.
    pub cave: Option<u32>,
    /// Control-flow sites on the victim's legitimate path: pc of every
    /// branch/jump word before the gadget region.
    pub cf_sites: Vec<u32>,
    /// CheckerMemory addresses of the redundant copies guarding
    /// `cf_sites` (ICM-harness victims only, same order as `cf_sites`).
    pub checker_sites: Vec<u32>,
    /// Address of the `fnslot` function-pointer slot, if declared.
    pub fnslot: Option<u32>,
    /// Address of the `stage` shellcode staging buffer, if declared.
    pub stage: Option<u32>,
}

/// Maps the attack surface of a victim image.
pub fn map_surface(victim: &Victim, image: &Image) -> AttackSurface {
    let evil = image.symbol("evil");
    let fin = image.symbol("fin");
    let cave = image.symbol("cave");
    // Only sites on the legitimate path (before the gadget region) are
    // redirect targets: patching the gadget's own `b fin` would attack
    // dead code.
    let limit = evil.unwrap_or_else(|| image.text_end());
    let mut cf_sites = Vec::new();
    for (i, &word) in image.text.iter().enumerate() {
        let pc = image.text_base + 4 * i as u32;
        if pc >= limit {
            break;
        }
        if let Ok(inst) = decode(word) {
            if inst.class().is_control_flow() {
                cf_sites.push(pc);
            }
        }
    }
    let checker_sites = if victim.workload.harness == Harness::Icm {
        // Reconstruct the ICM's CheckerMemory layout offline (the
        // harness installs it with the same default config).
        let mut icm = Icm::new(IcmConfig::default());
        icm.install_for_control_flow(image, &mut SparseMemory::new());
        cf_sites
            .iter()
            .map(|&pc| {
                icm.layout()
                    .addr_of(pc)
                    .expect("every text CF site has a checker copy")
            })
            .collect()
    } else {
        Vec::new()
    };
    AttackSurface {
        evil,
        fin,
        cave,
        cf_sites,
        checker_sites,
        fnslot: image.symbol("fnslot"),
        stage: image.symbol("stage"),
    }
}

/// The shellcode the NX probe stages in the victim's data page:
/// `print(666); exit(0)` — the attacked twin executes it verbatim, the
/// NX-guarded twin traps on the first commit from the data page.
pub fn nx_shellcode() -> [u32; 6] {
    [
        encode(&Inst::Addi {
            rt: Reg::V0,
            rs: Reg::ZERO,
            imm: 2,
        }),
        encode(&Inst::Addi {
            rt: Reg::A0,
            rs: Reg::ZERO,
            imm: 666,
        }),
        encode(&Inst::Syscall),
        encode(&Inst::Addi {
            rt: Reg::V0,
            rs: Reg::ZERO,
            imm: 1,
        }),
        encode(&Inst::Addi {
            rt: Reg::A0,
            rs: Reg::ZERO,
            imm: 0,
        }),
        encode(&Inst::Syscall),
    ]
}

/// Deterministically expands `seed` into a concrete attack plan for
/// `model` against `victim`, scaled to the golden-run `profile`. Pure:
/// same inputs → same plan, forever. The draw order per model is part of
/// the replay contract and must never change.
pub fn sample_attack(
    model: AttackModel,
    seed: u64,
    victim: &Victim,
    surface: &AttackSurface,
    profile: &RunProfile,
) -> FaultPlan {
    let mut s = seed;
    let mut next = move || splitmix64(&mut s);
    let cycle = |r: u64| 1 + r % profile.cycles.max(1);
    let write = |at_cycle, addr, value| {
        PlannedFault::Soft(SoftFault::Write {
            at_cycle,
            addr,
            value,
        })
    };
    let faults = match model {
        AttackModel::Control => Vec::new(),
        AttackModel::StackSmash => {
            let at_cycle = cycle(next());
            let evil = surface.evil.expect("stack victims declare evil");
            vec![write(at_cycle, STACK_BASE - STACK_SLOT_OFFSET, evil)]
        }
        AttackModel::GotTamper => {
            let at_cycle = cycle(next());
            let evil = surface.evil.expect("got victims declare evil");
            vec![write(at_cycle, HEAP_BASE, evil)]
        }
        AttackModel::CodeInject => {
            let site = surface.cf_sites[(next() % surface.cf_sites.len() as u64) as usize];
            let at_cycle = cycle(next());
            let cave = surface.cave.expect("branch victims declare cave");
            let fin = surface.fin.expect("branch victims declare fin");
            vec![
                // The payload body lands in the cave ...
                write(
                    at_cycle,
                    cave,
                    encode(&Inst::Addi {
                        rt: Reg::T5,
                        rs: Reg::ZERO,
                        imm: 6666,
                    }),
                ),
                write(at_cycle, cave + 4, encode(&Inst::J { target: fin >> 2 })),
                // ... and the entry patch rewrites a live control-flow
                // site, which is exactly what the ICM's redundant copy
                // guards.
                write(at_cycle, site, encode(&Inst::Jal { target: cave >> 2 })),
            ]
        }
        AttackModel::CfhRedirect => {
            let site = surface.cf_sites[(next() % surface.cf_sites.len() as u64) as usize];
            let at_cycle = cycle(next());
            let evil = surface.evil.expect("branch victims declare evil");
            vec![write(
                at_cycle,
                site,
                encode(&Inst::J { target: evil >> 2 }),
            )]
        }
        AttackModel::InstTamper => {
            let index = next() % profile.fetched.max(1);
            let b1 = (next() % 32) as u32;
            let mut xor_mask = 1u32 << b1;
            if next() % 2 == 1 {
                xor_mask |= 1u32 << ((b1 + 1 + (next() % 31) as u32) % 32);
            }
            vec![PlannedFault::Fetch(FetchFault::xor(index, xor_mask))]
        }
        AttackModel::InstSkip => {
            let index = next() % profile.fetched.max(1);
            vec![PlannedFault::Fetch(FetchFault {
                index,
                tamper: FetchTamper::Nop,
            })]
        }
        AttackModel::InstReplay => {
            let index = next() % profile.fetched.max(1);
            vec![PlannedFault::Fetch(FetchFault {
                index,
                tamper: FetchTamper::Replay,
            })]
        }
        AttackModel::NxProbe => {
            let at_cycle = cycle(next());
            let stage = surface.stage.expect("nx victims declare stage");
            let fnslot = surface.fnslot.expect("nx victims declare fnslot");
            let mut faults: Vec<PlannedFault> = nx_shellcode()
                .iter()
                .enumerate()
                .map(|(i, &w)| write(at_cycle, stage + 4 * i as u32, w))
                .collect();
            faults.push(write(at_cycle, fnslot, stage));
            faults
        }
        AttackModel::IcmTamper => {
            let caddr =
                surface.checker_sites[(next() % surface.checker_sites.len() as u64) as usize];
            let at_cycle = cycle(next());
            let xor_mask = 1u32 << (next() % 32);
            vec![PlannedFault::Soft(SoftFault::Mem {
                at_cycle,
                addr: caddr,
                xor_mask,
            })]
        }
        AttackModel::AdaptiveChain => {
            // Stage 1 of the chain: the nominal-layout probe (identical
            // surface to StackSmash/GotTamper). The later leak and
            // strike stages are planned by the chain runner from the
            // same seed stream, branching on this stage's verdict.
            let at_cycle = cycle(next());
            let evil = surface.evil.expect("chain victims declare evil");
            if victim.workload.name.starts_with("stack_") {
                vec![write(at_cycle, STACK_BASE - STACK_SLOT_OFFSET, evil)]
            } else {
                vec![write(at_cycle, HEAP_BASE, evil)]
            }
        }
        AttackModel::RecoveryStrike => {
            // One live control-flow word corrupted in text memory. The
            // chain runner re-delivers this exact fault on every
            // checkpoint-rollback re-execution while the attacker
            // persists, so the draw order here is the whole contract.
            let site = surface.cf_sites[(next() % surface.cf_sites.len() as u64) as usize];
            let at_cycle = cycle(next());
            let xor_mask = 1u32 << (next() % 32);
            vec![PlannedFault::Soft(SoftFault::Mem {
                at_cycle,
                addr: site,
                xor_mask,
            })]
        }
        AttackModel::QuarantineEvade => {
            // Stage 1: flip a bit in the ICM's redundant CheckerMemory
            // copy early — every pass over the guarded site then
            // mismatches, flushes, and feeds the watchdog's burst
            // counter until the health machine quarantines the ICM.
            let caddr =
                surface.checker_sites[(next() % surface.checker_sites.len() as u64) as usize];
            let early = 1 + next() % (profile.cycles / 2).max(1);
            let xor_mask = 1u32 << (next() % 32);
            // Stage 2: with the checker NOP-muxed, hijack a live site
            // in the window after the quarantine has landed.
            let site = surface.cf_sites[(next() % surface.cf_sites.len() as u64) as usize];
            let late = profile.cycles / 2 + 1 + next() % (profile.cycles / 2).max(1);
            let evil = surface.evil.expect("evade victims declare evil");
            vec![
                PlannedFault::Soft(SoftFault::Mem {
                    at_cycle: early,
                    addr: caddr,
                    xor_mask,
                }),
                write(late, site, encode(&Inst::J { target: evil >> 2 })),
            ]
        }
    };
    FaultPlan { faults }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::victim_by_name;
    use rse_isa::asm::assemble;
    use rse_isa::ModuleId;

    fn profile() -> RunProfile {
        RunProfile {
            cycles: 10_000,
            fetched: 2_500,
            chk_routed: 0,
            text_range: (0x0040_0000, 0x0040_0100),
            data_range: None,
            target_module: Some(ModuleId::ICM),
            mau_completions: 0,
        }
    }

    fn surface_of(name: &str) -> (AttackSurface, &'static Victim) {
        let v = victim_by_name(name).unwrap();
        let image = assemble(v.workload.source).unwrap();
        (map_surface(v, &image), v)
    }

    #[test]
    fn branch_surface_has_sites_gadget_and_cave() {
        let (s, _) = surface_of("branch_guard");
        assert!(s.evil.is_some() && s.fin.is_some() && s.cave.is_some());
        // The dense loop has beq/b/bne plus the `b fin` join.
        assert!(s.cf_sites.len() >= 4, "{:?}", s.cf_sites);
        assert_eq!(s.checker_sites.len(), s.cf_sites.len());
        assert!(s.cf_sites.iter().all(|&pc| pc < s.evil.unwrap()));
        // The exposed twin shares the text surface but has no checker.
        let (e, _) = surface_of("branch_exposed");
        assert_eq!(e.cf_sites, s.cf_sites);
        assert!(e.checker_sites.is_empty());
    }

    #[test]
    fn nx_surface_declares_slot_and_stage() {
        let (s, _) = surface_of("nx_guard");
        assert!(s.fnslot.is_some() && s.stage.is_some());
        assert_eq!(s.stage.unwrap(), s.fnslot.unwrap() + 4);
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let (s, v) = surface_of("branch_guard");
        for model in [
            AttackModel::CodeInject,
            AttackModel::CfhRedirect,
            AttackModel::InstTamper,
            AttackModel::IcmTamper,
        ] {
            let a = sample_attack(model, 0xFEED, v, &s, &profile());
            let b = sample_attack(model, 0xFEED, v, &s, &profile());
            assert_eq!(a, b, "{model} not deterministic");
            let plans: Vec<FaultPlan> = (0..16)
                .map(|seed| sample_attack(model, seed, v, &s, &profile()))
                .collect();
            let distinct = plans
                .iter()
                .filter(|p| plans.iter().filter(|q| q == p).count() == 1)
                .count();
            assert!(distinct >= 8, "{model} barely varies: {distinct}");
        }
    }

    #[test]
    fn redirect_patches_a_live_site_with_a_jump_to_evil() {
        let (s, v) = surface_of("branch_exposed");
        let plan = sample_attack(AttackModel::CfhRedirect, 7, v, &s, &profile());
        let [PlannedFault::Soft(SoftFault::Write { addr, value, .. })] = plan.faults[..] else {
            panic!("{:?}", plan.faults);
        };
        assert!(s.cf_sites.contains(&addr));
        assert_eq!(
            decode(value).unwrap(),
            Inst::J {
                target: s.evil.unwrap() >> 2
            }
        );
    }

    #[test]
    fn code_inject_fills_the_cave_and_patches_one_site() {
        let (s, v) = surface_of("branch_guard");
        let plan = sample_attack(AttackModel::CodeInject, 3, v, &s, &profile());
        assert_eq!(plan.faults.len(), 3);
        let addrs: Vec<u32> = plan
            .faults
            .iter()
            .map(|f| match f {
                PlannedFault::Soft(SoftFault::Write { addr, .. }) => *addr,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(addrs[0], s.cave.unwrap());
        assert_eq!(addrs[1], s.cave.unwrap() + 4);
        assert!(s.cf_sites.contains(&addrs[2]));
    }

    #[test]
    fn smash_targets_the_nominal_layout() {
        let (s, v) = surface_of("stack_guard");
        let plan = sample_attack(AttackModel::StackSmash, 11, v, &s, &profile());
        let [PlannedFault::Soft(SoftFault::Write { addr, value, .. })] = plan.faults[..] else {
            panic!("{:?}", plan.faults);
        };
        assert_eq!(addr, STACK_BASE - STACK_SLOT_OFFSET);
        assert_eq!(value, s.evil.unwrap());

        let (s, v) = surface_of("got_exposed");
        let plan = sample_attack(AttackModel::GotTamper, 11, v, &s, &profile());
        let [PlannedFault::Soft(SoftFault::Write { addr, .. })] = plan.faults[..] else {
            panic!("{:?}", plan.faults);
        };
        assert_eq!(addr, HEAP_BASE);
    }

    #[test]
    fn nx_probe_stages_decodable_shellcode() {
        let (s, v) = surface_of("nx_exposed");
        let plan = sample_attack(AttackModel::NxProbe, 5, v, &s, &profile());
        assert_eq!(plan.faults.len(), 7);
        for w in nx_shellcode() {
            assert!(decode(w).is_ok());
        }
        let PlannedFault::Soft(SoftFault::Write { addr, value, .. }) = plan.faults[6] else {
            panic!("{:?}", plan.faults[6]);
        };
        assert_eq!(addr, s.fnslot.unwrap());
        assert_eq!(value, s.stage.unwrap());
    }
}
