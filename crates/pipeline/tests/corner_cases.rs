//! Corner cases of the pipeline's resource and recovery machinery.

use rse_isa::asm::assemble;
use rse_mem::{MemConfig, MemorySystem};
use rse_pipeline::{Golden, GoldenEvent, NullCoProcessor, Pipeline, PipelineConfig, StepEvent};

fn run_src(src: &str, config: PipelineConfig) -> Pipeline {
    let image = assemble(src).expect("assembles");
    let mut cpu = Pipeline::new(config, MemorySystem::new(MemConfig::baseline()));
    cpu.load_image(&image);
    assert_eq!(cpu.run(&mut NullCoProcessor, 50_000_000), StepEvent::Halted);
    cpu
}

fn agree_with_golden(src: &str) {
    let image = assemble(src).expect("assembles");
    let mut golden = Golden::new(&image);
    assert_eq!(golden.run(10_000_000), GoldenEvent::Halted);
    let cpu = run_src(src, PipelineConfig::default());
    assert_eq!(cpu.regs()[..], golden.regs[..], "architectural divergence");
}

/// A dense burst of memory operations saturates the 8-entry LSQ; dispatch
/// must stall rather than overflow, and results stay exact.
#[test]
fn lsq_saturation() {
    let mut src = String::from("main: la r28, buf\n");
    for i in 0..32 {
        src.push_str(&format!("li r8, {i}\nsw r8, {}(r28)\n", 4 * i));
    }
    for i in 0..32 {
        src.push_str(&format!("lw r9, {}(r28)\nadd r10, r10, r9\n", 4 * i));
    }
    src.push_str("halt\n.data\nbuf: .space 256\n");
    agree_with_golden(&src);
    let cpu = run_src(&src, PipelineConfig::default());
    assert_eq!(cpu.regs()[10], (0..32).sum::<u32>());
}

/// Back-to-back divides contend for the single non-pipelined MDU.
#[test]
fn divider_contention() {
    let src = r#"
        main:   li   r8, 1000
                li   r9, 7
                div  r10, r8, r9
                div  r11, r10, r9
                div  r12, r11, r9
                rem  r13, r8, r9
                mul  r14, r10, r9
                halt
    "#;
    agree_with_golden(src);
    let cpu = run_src(src, PipelineConfig::default());
    assert_eq!(cpu.regs()[10], 142);
    assert_eq!(cpu.regs()[11], 20);
    assert_eq!(cpu.regs()[12], 2);
    assert_eq!(cpu.regs()[13], 6);
    // Three dependent 20-cycle divides cannot finish faster than ~60 cyc.
    assert!(cpu.stats().cycles > 60);
}

/// Nested calls deeper than the 8-entry return-address stack: the
/// predictor mispredicts some returns but architecture stays exact.
#[test]
fn deep_recursion_overflows_ras() {
    let src = r#"
        main:   li   r4, 12
                jal  fib
                move r10, r2
                halt
        # naive recursive-style chain: f(n) calls f(n-1) down to 0
        fib:    addi r29, r29, -8
                sw   r31, 0(r29)
                sw   r4, 4(r29)
                beq  r4, r0, base
                addi r4, r4, -1
                jal  fib
                lw   r4, 4(r29)
                add  r2, r2, r4
                b    out
        base:   li   r2, 0
        out:    lw   r31, 0(r29)
                addi r29, r29, 8
                jr   r31
    "#;
    agree_with_golden(src);
    let cpu = run_src(src, PipelineConfig::default());
    assert_eq!(cpu.regs()[10], (1..=12).sum::<u32>());
}

/// An indirect-jump-heavy dispatcher exercises the BTB (targets change
/// every iteration).
#[test]
fn btb_with_rotating_indirect_targets() {
    let src = r#"
        main:   li   r16, 30
        loop:   li   r8, 3
                rem  r9, r16, r8
                sll  r9, r9, 2
                la   r10, jtab
                add  r10, r10, r9
                lw   r11, 0(r10)
                jalr r31, r11
                addi r16, r16, -1
                bne  r16, r0, loop
                halt
        f0:     addi r20, r20, 1
                jr   ra
        f1:     addi r21, r21, 1
                jr   ra
        f2:     addi r22, r22, 1
                jr   ra
                .data
        jtab:   .word f0, f1, f2
    "#;
    agree_with_golden(src);
    let cpu = run_src(src, PipelineConfig::default());
    assert_eq!(cpu.regs()[20] + cpu.regs()[21] + cpu.regs()[22], 30);
}

/// Store-to-load forwarding across different widths and overlaps.
#[test]
fn mixed_width_forwarding() {
    let src = r#"
        main:   la   r28, buf
                li   r8, 0x11223344
                sw   r8, 0(r28)
                li   r9, 0xAB
                sb   r9, 2(r28)
                li   r10, 0xCDEF
                sh   r10, 4(r28)
                lw   r11, 0(r28)
                lw   r12, 4(r28)
                lb   r13, 3(r28)
                lhu  r14, 2(r28)
                halt
                .data
        buf:    .word 0, 0x99999999
    "#;
    agree_with_golden(src);
    let cpu = run_src(src, PipelineConfig::default());
    assert_eq!(cpu.regs()[11], 0x11AB_3344);
    assert_eq!(cpu.regs()[12], 0x9999_CDEF);
    assert_eq!(cpu.regs()[13], 0x11);
    assert_eq!(cpu.regs()[14], 0x11AB);
}

/// The same program on narrow (scalar-ish) and wide configurations gives
/// identical architectural results, and the wide machine is faster.
#[test]
fn width_sweep_is_architecturally_neutral() {
    let src = r#"
        main:   li   r8, 0
                li   r9, 300
        loop:   andi r10, r8, 7
                add  r11, r11, r10
                xor  r12, r11, r8
                addi r8, r8, 1
                bne  r8, r9, loop
                halt
    "#;
    let narrow = PipelineConfig {
        fetch_width: 1,
        dispatch_width: 1,
        issue_width: 1,
        commit_width: 1,
        rob_size: 4,
        lsq_size: 2,
        fetch_buffer: 2,
        int_alus: 1,
        mem_ports: 1,
        ..PipelineConfig::default()
    };
    let wide = PipelineConfig::default();
    let a = run_src(src, narrow);
    let b = run_src(src, wide);
    assert_eq!(a.regs()[..], b.regs()[..]);
    assert!(
        b.stats().cycles < a.stats().cycles,
        "wide {} should beat narrow {}",
        b.stats().cycles,
        a.stats().cycles
    );
    assert!(
        b.stats().ipc() > 1.0,
        "the wide machine should exceed IPC 1 on this loop"
    );
}

/// Freeze windows (exception-handler time) delay but never corrupt.
#[test]
fn freeze_mid_run_is_transparent() {
    let src = "main: li r8, 0\nli r9, 50\nloop: addi r8, r8, 1\nbne r8, r9, loop\nhalt";
    let image = assemble(src).unwrap();
    let mut cpu = Pipeline::new(
        PipelineConfig::default(),
        MemorySystem::new(MemConfig::baseline()),
    );
    cpu.load_image(&image);
    let mut cp = NullCoProcessor;
    // Single-step and freeze periodically.
    let mut steps = 0u64;
    loop {
        if let Some(ev) = cpu.step(&mut cp) {
            assert_eq!(ev, StepEvent::Halted);
            break;
        }
        steps += 1;
        if steps.is_multiple_of(17) {
            cpu.freeze_for(5);
        }
        assert!(steps < 100_000, "wedged");
    }
    assert_eq!(cpu.regs()[8], 50);
}
