//! The co-processor tap interface between the pipeline and the RSE.
//!
//! The paper's Figure 1 shows dedicated fan-outs from each pipeline stage
//! into the RSE's input queues, plus a feedback path by which the
//! Instruction Output Queue gates instruction commit. This trait is the
//! software rendering of those wires:
//!
//! | Paper signal       | Trait method                          |
//! |--------------------|---------------------------------------|
//! | `Fetch_Out` + `Regfile_Data` | [`CoProcessor::on_dispatch`] |
//! | `Execute_Out` + `Memory_Out` | [`CoProcessor::on_execute`]  |
//! | `Commit_Out` (commit)        | [`CoProcessor::on_commit`]   |
//! | `Commit_Out` (squash)        | [`CoProcessor::on_squash`]   |
//! | IOQ check bits → commit unit | [`CoProcessor::commit_gate`] |
//! | module clocks                | [`CoProcessor::tick`]        |

use rse_isa::Inst;
use rse_mem::MemorySystem;
use std::fmt;

/// Unique identity of an in-flight instruction: its dispatch sequence
/// number. The paper uses the reorder-buffer entry number for the same
/// purpose ("a unique identifier by which it is addressed throughout its
/// lifetime in the pipeline"); a monotonically increasing sequence avoids
/// slot-reuse ambiguity in software.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RobId(pub u64);

impl fmt::Display for RobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rob#{}", self.0)
    }
}

/// Verdict of the Instruction Output Queue for a committing instruction
/// (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitGate {
    /// `checkValid=1, check=0`: commit proceeds.
    Pass,
    /// `checkValid=1, check=0` forced by the §3.4 output multiplexer:
    /// the CHECK's module is quarantined/disabled, so the instruction
    /// commits as a NOP (its check was never performed). Architecturally
    /// identical to [`CommitGate::Pass`]; the distinct variant lets the
    /// commit stage count coverage lost to containment.
    PassNop,
    /// `checkValid=0`: the check has not completed; the commit stage
    /// stalls this cycle.
    Stall,
    /// `checkValid=1, check=1`: a module detected an error; the pipeline
    /// is flushed and restarts at the same instruction.
    Flush,
}

/// An exception raised by a co-processor module toward the operating
/// system (e.g. the DDT's SavePage exception, §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoprocException {
    /// Module slot that raised the exception.
    pub module: u8,
    /// Exception code (module-specific).
    pub code: u32,
    /// Exception argument (for SavePage: the faulting page's base address).
    pub arg: u32,
}

/// Everything the RSE sees when an instruction is dispatched: the raw
/// word and decoded form (the `Fetch_Out` queue) plus its operand values
/// (the `Regfile_Data` queue).
#[derive(Debug, Clone, Copy)]
pub struct DispatchInfo {
    /// Instruction identity.
    pub rob: RobId,
    /// Program counter of the instruction.
    pub pc: u32,
    /// Raw 32-bit encoding as fetched (post fault-injection, i.e. what
    /// the pipeline is actually executing).
    pub word: u32,
    /// Decoded instruction.
    pub inst: Inst,
    /// Operand values at dispatch. For a CHECK instruction these are the
    /// conventional wide-parameter registers `a0`/`a1`; otherwise the
    /// values of the instruction's `rs`/`rt` sources.
    pub operands: [u32; 2],
    /// Whether the pipeline believes this instruction is on a
    /// mispredicted (wrong) path. Wrong-path instructions still occupy
    /// RSE input-queue entries and are later squashed.
    pub wrong_path: bool,
    /// Whether this CHECK was injected at fetch by the runtime policy
    /// rather than present in the binary.
    pub injected: bool,
}

/// Execute-stage outputs delivered at writeback: the `Execute_Out` and
/// `Memory_Out` queues of Figure 1.
#[derive(Debug, Clone, Copy)]
pub struct ExecuteInfo {
    /// Instruction identity.
    pub rob: RobId,
    /// ALU result or address-generation output.
    pub result: u32,
    /// Effective address for loads and stores.
    pub eff_addr: Option<u32>,
    /// Value loaded from memory (the `Memory_Out` queue), for loads.
    pub loaded: Option<u32>,
}

/// The RSE side of the pipeline/engine interface. Implemented by
/// `rse_core::Engine`; [`NullCoProcessor`] is the detached baseline.
///
/// All methods receive the current cycle and mutable access to the shared
/// memory system (the MAU path into memory).
pub trait CoProcessor {
    /// An instruction entered the ROB (with its operand values).
    fn on_dispatch(&mut self, now: u64, info: &DispatchInfo, mem: &mut MemorySystem);

    /// An instruction finished executing (result / effective address /
    /// loaded value available).
    fn on_execute(&mut self, now: u64, info: &ExecuteInfo, mem: &mut MemorySystem);

    /// An instruction committed.
    fn on_commit(&mut self, now: u64, rob: RobId, mem: &mut MemorySystem);

    /// An instruction was squashed (mispredict recovery or flush).
    fn on_squash(&mut self, now: u64, rob: RobId, mem: &mut MemorySystem);

    /// Commit-stage query of the IOQ check bits for the oldest
    /// instruction. Called every cycle the instruction is ready to retire.
    fn commit_gate(&mut self, now: u64, rob: RobId) -> CommitGate;

    /// One clock of the engine: modules advance their internal pipelines,
    /// the MAU services queued memory requests.
    fn tick(&mut self, now: u64, mem: &mut MemorySystem);

    /// Drains a pending exception raised by a module toward the OS.
    fn take_exception(&mut self) -> Option<CoprocException> {
        None
    }
}

/// A co-processor that is not there: every instruction commits freely.
/// This is the paper's "baseline" configuration (no framework).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCoProcessor;

impl CoProcessor for NullCoProcessor {
    fn on_dispatch(&mut self, _: u64, _: &DispatchInfo, _: &mut MemorySystem) {}
    fn on_execute(&mut self, _: u64, _: &ExecuteInfo, _: &mut MemorySystem) {}
    fn on_commit(&mut self, _: u64, _: RobId, _: &mut MemorySystem) {}
    fn on_squash(&mut self, _: u64, _: RobId, _: &mut MemorySystem) {}
    fn commit_gate(&mut self, _: u64, _: RobId) -> CommitGate {
        CommitGate::Pass
    }
    fn tick(&mut self, _: u64, _: &mut MemorySystem) {}
}
