//! The shared executor surface over the two simulation tiers.
//!
//! Both backends execute the same guest ISA over the same
//! [`SparseMemory`] but at very different cost/fidelity points:
//!
//! * [`Golden`] — the functional tier: in-order, one instruction per
//!   unit of progress, no timing model, no co-processor taps. Orders of
//!   magnitude faster than the pipeline.
//! * [`Pipeline`] — the cycle-accurate tier: the full superscalar
//!   out-of-order machine with the RSE co-processor interface.
//!
//! The [`Cpu`] trait is the seam the tiered driver (in `rse-sys`)
//! switches across: each backend exposes its architectural state as a
//! [`CpuContext`] plus raw memory, a monotone *progress* clock
//! (instructions for the functional tier, cycles for the pipeline), and
//! an absolute-deadline run loop. The dual-backend split follows the
//! standard emulated-vs-cycle-accurate simulator layering.

use crate::coproc::{CoProcessor, CoprocException};
use crate::golden::{Golden, GoldenEvent};
use crate::machine::{CpuContext, Pipeline, StepEvent};
use rse_isa::Reg;
use rse_mem::SparseMemory;

/// Why a [`Cpu`] run loop stopped. The common subset of [`GoldenEvent`]
/// and [`StepEvent`]: the functional tier never raises co-processor
/// exceptions (it has no co-processor), so [`ExecEvent::Exception`] can
/// only come from the cycle-accurate tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecEvent {
    /// A `halt` executed/committed; the run is finished.
    Halted,
    /// A `syscall` executed/committed; service it and call
    /// [`Cpu::resume_after_syscall`].
    Syscall,
    /// A co-processor module raised an exception (cycle-accurate tier
    /// only).
    Exception(CoprocException),
    /// The progress deadline was reached.
    OutOfFuel,
}

/// A guest-ISA executor: the trait implemented by both the functional
/// interpreter and the cycle-accurate pipeline.
///
/// # Contract
///
/// * `arch_context` is exact whenever the executor is at an
///   architectural boundary: always for [`Golden`]; at reset, after a
///   syscall/halt event, or after [`Pipeline::drain`] for [`Pipeline`].
/// * `progress` is monotone and never rewinds; `run_for(cp, fuel)` runs
///   until `progress` has advanced by at most `fuel` (functional:
///   instructions; pipeline: cycles) or an event fires first.
/// * `install_context` + writes into `memory_mut` constitute a warm
///   start; the pipeline additionally requires its caches invalidated
///   by the caller (the tiered driver does this).
pub trait Cpu {
    /// Architectural registers + next PC (see the exactness contract).
    fn arch_context(&self) -> CpuContext;
    /// Installs registers + PC (warm-state handoff / context switch).
    fn install_context(&mut self, ctx: &CpuContext);
    /// The backing physical memory.
    fn memory(&self) -> &SparseMemory;
    /// Mutable backing memory (for page restores during handoff).
    fn memory_mut(&mut self) -> &mut SparseMemory;
    /// Executes until an event or until progress advances by `fuel`.
    fn run_for(&mut self, cp: &mut dyn CoProcessor, fuel: u64) -> ExecEvent;
    /// Resumes after [`ExecEvent::Syscall`], optionally redirecting.
    fn resume_after_syscall(&mut self, pc: Option<u32>);
    /// Writes a register (e.g. a syscall result), honoring the zero wire.
    fn write_reg(&mut self, reg: Reg, value: u32);
    /// Whether a `halt` has executed/committed.
    fn halted(&self) -> bool;
    /// The progress clock: instructions executed (functional tier) or
    /// cycles elapsed (cycle-accurate tier).
    fn progress(&self) -> u64;
}

impl Cpu for Golden {
    fn arch_context(&self) -> CpuContext {
        CpuContext {
            regs: self.regs,
            pc: self.pc,
        }
    }

    fn install_context(&mut self, ctx: &CpuContext) {
        self.regs = ctx.regs;
        self.pc = ctx.pc;
    }

    fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    fn run_for(&mut self, _cp: &mut dyn CoProcessor, fuel: u64) -> ExecEvent {
        match self.run(fuel) {
            GoldenEvent::Halted => ExecEvent::Halted,
            GoldenEvent::Syscall => ExecEvent::Syscall,
            GoldenEvent::OutOfFuel => ExecEvent::OutOfFuel,
        }
    }

    fn resume_after_syscall(&mut self, pc: Option<u32>) {
        self.resume(pc);
    }

    fn write_reg(&mut self, reg: Reg, value: u32) {
        self.set_reg(reg, value);
    }

    fn halted(&self) -> bool {
        self.is_halted()
    }

    fn progress(&self) -> u64 {
        self.executed
    }
}

impl Cpu for Pipeline {
    fn arch_context(&self) -> CpuContext {
        self.context()
    }

    fn install_context(&mut self, ctx: &CpuContext) {
        self.set_context(ctx);
    }

    fn memory(&self) -> &SparseMemory {
        &self.mem().memory
    }

    fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem_mut().memory
    }

    fn run_for(&mut self, cp: &mut dyn CoProcessor, fuel: u64) -> ExecEvent {
        match self.run(cp, fuel) {
            StepEvent::Halted => ExecEvent::Halted,
            StepEvent::Syscall => ExecEvent::Syscall,
            StepEvent::Exception(e) => ExecEvent::Exception(e),
            StepEvent::Timeout => ExecEvent::OutOfFuel,
        }
    }

    fn resume_after_syscall(&mut self, pc: Option<u32>) {
        self.resume(pc);
    }

    fn write_reg(&mut self, reg: Reg, value: u32) {
        self.set_reg(reg, value);
    }

    fn halted(&self) -> bool {
        self.is_halted()
    }

    fn progress(&self) -> u64 {
        self.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coproc::NullCoProcessor;
    use rse_isa::asm::assemble;

    #[test]
    fn both_backends_agree_through_the_trait() {
        let image =
            assemble("main: li r8, 0\nli r9, 25\nloop: addi r8, r8, 1\nbne r8, r9, loop\nhalt")
                .unwrap();
        let mut cp = NullCoProcessor;
        let mut golden = Golden::new(&image);
        let mut pipe = Pipeline::new(
            crate::config::PipelineConfig::default(),
            rse_mem::MemorySystem::new(rse_mem::MemConfig::baseline()),
        );
        pipe.load_image(&image);
        let backends: [&mut dyn Cpu; 2] = [&mut golden, &mut pipe];
        let mut contexts = Vec::new();
        for cpu in backends {
            assert_eq!(cpu.run_for(&mut cp, 1_000_000), ExecEvent::Halted);
            assert!(cpu.halted());
            assert!(cpu.progress() > 0);
            contexts.push(cpu.arch_context().regs);
        }
        assert_eq!(contexts[0], contexts[1]);
    }
}
