//! Pipeline configuration (the Figure 1 parameter table).

use rse_isa::chk::{ops, ChkSpec, ModuleId};
use rse_isa::{Inst, InstClass};

/// When the simulator embeds CHECK instructions into the fetched
/// instruction stream at run time (§5.1 of the paper: "When an
/// instruction is fetched, the simulator determines whether the
/// instruction has to be checked and, if so, inserts a CHECK instruction
/// before it into the instruction stream").
///
/// Runtime embedding deliberately does **not** perturb the I-cache — the
/// paper measures the cache effect separately by statically rewriting the
/// binary (reproduced by the workload generators' static instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckPolicy {
    /// No CHECK instructions are inserted (baseline).
    #[default]
    None,
    /// Insert an ICM blocking CHECK before every control-flow instruction
    /// (the Table 4 "Framework + ICM" configuration).
    ControlFlow,
    /// Insert an ICM blocking CHECK before every load and store.
    Memory,
    /// Insert an ICM blocking CHECK before every instruction of any of
    /// the listed classes.
    Classes([bool; 4]),
}

impl CheckPolicy {
    /// Whether `inst` should be preceded by an injected CHECK.
    pub fn wants_check(&self, inst: &Inst) -> bool {
        match self {
            CheckPolicy::None => false,
            CheckPolicy::ControlFlow => inst.is_control_flow(),
            CheckPolicy::Memory => inst.class().is_mem(),
            CheckPolicy::Classes(flags) => {
                let idx = match inst.class() {
                    InstClass::IntAlu | InstClass::MulDiv => 0,
                    InstClass::Load | InstClass::Store => 1,
                    InstClass::Branch | InstClass::Jump => 2,
                    _ => 3,
                };
                flags[idx]
            }
        }
    }

    /// The CHECK instruction to inject (an ICM `INST_CHECK`, blocking).
    pub fn injected_chk(&self) -> ChkSpec {
        ChkSpec::blocking(ModuleId::ICM, ops::ICM_CHECK_NEXT, 0)
    }
}

/// Architectural parameters of the simulated processor.
///
/// Defaults are the paper's Figure 1 table: 4-instruction fetch and
/// dispatch width, 4-instruction issue width, 16-entry RUU (reorder
/// buffer) and 8-entry LSQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions dispatched (renamed into the ROB) per cycle.
    pub dispatch_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer (RUU) entries.
    pub rob_size: usize,
    /// Load/store-queue entries (memory instructions resident in the ROB).
    pub lsq_size: usize,
    /// Fetch-buffer capacity (decoded-but-undispatched instructions).
    pub fetch_buffer: usize,
    /// Number of (pipelined) integer ALUs.
    pub int_alus: usize,
    /// Number of D-cache ports (load/store issues per cycle).
    pub mem_ports: usize,
    /// Multiply latency, cycles.
    pub mul_latency: u64,
    /// Divide/remainder latency, cycles (non-pipelined unit).
    pub div_latency: u64,
    /// Runtime CHECK-insertion policy.
    pub check_policy: CheckPolicy,
    /// Bitmask of module slots whose *blocking* CHECK instructions
    /// serialize dispatch (like a memory barrier). Needed for modules
    /// whose CHECK produces results in memory that the very next
    /// instructions consume (the MLR handshake of Figure 3, the DDT
    /// retrieval ops) — an out-of-order pipeline would otherwise read the
    /// locations before the module writes them.
    pub chk_serialize_mask: u16,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 16,
            lsq_size: 8,
            fetch_buffer: 8,
            int_alus: 4,
            mem_ports: 2,
            mul_latency: 3,
            div_latency: 20,
            check_policy: CheckPolicy::None,
            chk_serialize_mask: 0,
        }
    }
}

impl PipelineConfig {
    /// The baseline (paper Figure 1) configuration.
    pub fn paper() -> PipelineConfig {
        PipelineConfig::default()
    }

    /// The paper configuration with runtime ICM CHECKs on all
    /// control-flow instructions ("Framework + ICM" row of Table 4).
    pub fn with_control_flow_checks() -> PipelineConfig {
        PipelineConfig {
            check_policy: CheckPolicy::ControlFlow,
            ..PipelineConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_isa::Reg;

    #[test]
    fn default_matches_figure1() {
        let c = PipelineConfig::default();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.dispatch_width, 4);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.rob_size, 16);
        assert_eq!(c.lsq_size, 8);
    }

    #[test]
    fn control_flow_policy_selects_branches() {
        let p = CheckPolicy::ControlFlow;
        assert!(p.wants_check(&Inst::Beq {
            rs: Reg::T0,
            rt: Reg::T1,
            off: 1
        }));
        assert!(p.wants_check(&Inst::Jal { target: 4 }));
        assert!(p.wants_check(&Inst::Jr { rs: Reg::RA }));
        assert!(!p.wants_check(&Inst::Add {
            rd: Reg::T0,
            rs: Reg::T1,
            rt: Reg::T2
        }));
        assert!(!p.wants_check(&Inst::Lw {
            rt: Reg::T0,
            base: Reg::SP,
            off: 0
        }));
    }

    #[test]
    fn memory_policy_selects_loads_stores() {
        let p = CheckPolicy::Memory;
        assert!(p.wants_check(&Inst::Lw {
            rt: Reg::T0,
            base: Reg::SP,
            off: 0
        }));
        assert!(p.wants_check(&Inst::Sb {
            rt: Reg::T0,
            base: Reg::SP,
            off: 0
        }));
        assert!(!p.wants_check(&Inst::Beq {
            rs: Reg::T0,
            rt: Reg::T1,
            off: 1
        }));
    }

    #[test]
    fn injected_chk_targets_icm_blocking() {
        let chk = CheckPolicy::ControlFlow.injected_chk();
        assert!(chk.blocking);
        assert_eq!(chk.module, ModuleId::ICM);
    }
}
