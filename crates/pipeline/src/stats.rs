//! Pipeline performance counters.

/// Counters accumulated by the pipeline; the Table 4 rows are computed
/// from these plus the memory-system statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Simulated cycles elapsed.
    pub cycles: u64,
    /// Instructions committed, including injected CHECK instructions.
    pub committed: u64,
    /// Injected CHECK instructions committed (subset of `committed`).
    pub committed_injected_chk: u64,
    /// Instructions fetched (including wrong-path and injected ones).
    pub fetched: u64,
    /// Instructions dispatched into the ROB.
    pub dispatched: u64,
    /// Instructions squashed (wrong-path recovery or commit-stage flush).
    pub squashed: u64,
    /// Conditional branches + jumps committed.
    pub control_flow_committed: u64,
    /// Mispredicted control transfers detected.
    pub mispredicts: u64,
    /// Cycles the commit stage stalled waiting for a blocking CHECK
    /// result (the synchronous-mode cost of §3.2).
    pub commit_stall_cycles: u64,
    /// Commit-stage flushes demanded by the co-processor (check errors).
    pub check_flushes: u64,
    /// CHECK instructions injected at fetch by the runtime policy.
    pub chk_injected: u64,
    /// Loads committed.
    pub loads_committed: u64,
    /// Stores committed.
    pub stores_committed: u64,
    /// System calls committed.
    pub syscalls: u64,
    /// Scheduled soft faults ([`crate::SoftFault`]) actually applied.
    pub soft_faults_applied: u64,
    /// Instructions committed as NOPs because the co-processor's output
    /// multiplexer decoupled their module ([`crate::CommitGate::PassNop`]).
    pub nop_commits: u64,
}

impl PipelineStats {
    /// Committed instructions excluding the runtime-injected CHECKs —
    /// the program's own instruction count (the `#Instructions` columns
    /// of Table 5 count these).
    pub fn committed_program(&self) -> u64 {
        self.committed - self.committed_injected_chk
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate over committed control transfers.
    pub fn mispredict_rate(&self) -> f64 {
        if self.control_flow_committed == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.control_flow_committed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = PipelineStats {
            cycles: 100,
            committed: 150,
            committed_injected_chk: 30,
            control_flow_committed: 20,
            mispredicts: 5,
            ..Default::default()
        };
        assert_eq!(s.committed_program(), 120);
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.25).abs() < 1e-12);
        assert_eq!(PipelineStats::default().ipc(), 0.0);
    }
}
