//! A golden-model interpreter: executes the guest ISA one instruction at
//! a time, in order, with no timing model. Used as the reference in
//! differential tests against the out-of-order pipeline — any
//! architectural divergence (registers, memory, halt point) is a
//! speculation/forwarding/recovery bug in the pipeline.

use crate::exec::{branch_taken, exec_alu};
use rse_isa::{decode, layout, Image, Inst, InstClass, Reg};
use rse_mem::SparseMemory;

/// Why the interpreter stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenEvent {
    /// A `halt` executed.
    Halted,
    /// A `syscall` executed (registers hold the arguments); resume by
    /// calling [`Golden::resume`].
    Syscall,
    /// The instruction budget ran out.
    OutOfFuel,
}

/// The golden in-order interpreter.
#[derive(Debug, Clone)]
pub struct Golden {
    /// Architectural registers.
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Functional memory.
    pub mem: SparseMemory,
    /// Instructions executed.
    pub executed: u64,
    halted: bool,
}

impl Golden {
    /// Creates an interpreter with `image` loaded, mirroring
    /// `Pipeline::load_image`'s initial state.
    pub fn new(image: &Image) -> Golden {
        let mut mem = SparseMemory::new();
        for (i, &word) in image.text.iter().enumerate() {
            mem.write_u32(image.text_base + 4 * i as u32, word);
        }
        mem.write_bytes(image.data_base, &image.data);
        let mut regs = [0u32; 32];
        regs[Reg::SP.index()] = layout::STACK_BASE - 16;
        Golden {
            regs,
            pc: image.entry,
            mem,
            executed: 0,
            halted: false,
        }
    }

    /// Whether a `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Resumes after a syscall, optionally redirecting.
    pub fn resume(&mut self, pc: Option<u32>) {
        if let Some(pc) = pc {
            self.pc = pc;
        }
    }

    /// Writes a register (e.g. a syscall result), honoring the zero wire.
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        if !reg.is_zero() {
            self.regs[reg.index()] = value;
        }
    }

    fn read(&self, reg: Option<Reg>) -> u32 {
        reg.map_or(0, |r| self.regs[r.index()])
    }

    /// Executes until halt, syscall, or `fuel` instructions.
    pub fn run(&mut self, mut fuel: u64) -> GoldenEvent {
        if self.halted {
            return GoldenEvent::Halted;
        }
        while fuel > 0 {
            fuel -= 1;
            let word = self.mem.read_u32(self.pc);
            let inst = decode(word).unwrap_or(Inst::Nop);
            self.executed += 1;
            let mut next = self.pc.wrapping_add(4);
            let [s0, s1] = inst.sources();
            let (rs, rt) = (self.read(s0), self.read(s1));
            match inst.class() {
                InstClass::IntAlu | InstClass::MulDiv => {
                    if let (Some(v), Some(d)) = (exec_alu(&inst, rs, rt), inst.dest()) {
                        self.regs[d.index()] = v;
                    }
                }
                InstClass::Load => {
                    let addr = rs.wrapping_add(mem_offset(&inst));
                    let v = match inst {
                        Inst::Lw { .. } => self.mem.read_u32(addr),
                        Inst::Lh { .. } => self.mem.read_u16(addr) as i16 as i32 as u32,
                        Inst::Lhu { .. } => self.mem.read_u16(addr) as u32,
                        Inst::Lb { .. } => self.mem.read_u8(addr) as i8 as i32 as u32,
                        Inst::Lbu { .. } => self.mem.read_u8(addr) as u32,
                        _ => 0,
                    };
                    if let Some(d) = inst.dest() {
                        self.regs[d.index()] = v;
                    }
                }
                InstClass::Store => {
                    let addr = rs.wrapping_add(mem_offset(&inst));
                    match inst {
                        Inst::Sb { .. } => self.mem.write_u8(addr, rt as u8),
                        Inst::Sh { .. } => self.mem.write_u16(addr, rt as u16),
                        _ => self.mem.write_u32(addr, rt),
                    }
                }
                InstClass::Branch => {
                    if branch_taken(&inst, rs, rt).unwrap_or(false) {
                        next = inst.direct_target(self.pc).unwrap_or(next);
                    }
                }
                InstClass::Jump => match inst {
                    Inst::J { .. } => next = inst.direct_target(self.pc).expect("direct"),
                    Inst::Jal { .. } => {
                        self.regs[Reg::RA.index()] = self.pc.wrapping_add(4);
                        next = inst.direct_target(self.pc).expect("direct");
                    }
                    Inst::Jr { .. } => next = rs,
                    Inst::Jalr { rd, .. } => {
                        if !rd.is_zero() {
                            self.regs[rd.index()] = self.pc.wrapping_add(4);
                        }
                        next = rs;
                    }
                    _ => {}
                },
                InstClass::Syscall => {
                    self.pc = next;
                    return GoldenEvent::Syscall;
                }
                InstClass::Halt => {
                    self.halted = true;
                    return GoldenEvent::Halted;
                }
                InstClass::Nop | InstClass::Chk => {}
            }
            self.pc = next;
        }
        GoldenEvent::OutOfFuel
    }
}

fn mem_offset(inst: &Inst) -> u32 {
    use Inst::*;
    match *inst {
        Lw { off, .. }
        | Lh { off, .. }
        | Lhu { off, .. }
        | Lb { off, .. }
        | Lbu { off, .. }
        | Sw { off, .. }
        | Sh { off, .. }
        | Sb { off, .. } => off as i32 as u32,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_isa::asm::assemble;

    #[test]
    fn golden_runs_a_loop() {
        let image =
            assemble("main: li r8, 0\nli r9, 10\nloop: addi r8, r8, 1\nbne r8, r9, loop\nhalt")
                .unwrap();
        let mut g = Golden::new(&image);
        assert_eq!(g.run(1_000_000), GoldenEvent::Halted);
        assert_eq!(g.regs[8], 10);
        assert_eq!(g.executed, 2 + 20 + 1);
    }

    #[test]
    fn golden_pauses_at_syscalls() {
        let image = assemble("main: li r2, 7\nsyscall\nmove r10, r2\nhalt").unwrap();
        let mut g = Golden::new(&image);
        assert_eq!(g.run(100), GoldenEvent::Syscall);
        assert_eq!(g.regs[2], 7);
        g.set_reg(Reg::V0, 55);
        g.resume(None);
        assert_eq!(g.run(100), GoldenEvent::Halted);
        assert_eq!(g.regs[10], 55);
    }

    #[test]
    fn golden_out_of_fuel() {
        let image = assemble("main: b main").unwrap();
        let mut g = Golden::new(&image);
        assert_eq!(g.run(50), GoldenEvent::OutOfFuel);
        assert_eq!(g.executed, 50);
    }
}
