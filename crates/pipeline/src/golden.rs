//! A golden-model interpreter: executes the guest ISA one instruction at
//! a time, in order, with no timing model. Used as the reference in
//! differential tests against the out-of-order pipeline — any
//! architectural divergence (registers, memory, halt point) is a
//! speculation/forwarding/recovery bug in the pipeline.

use crate::exec::{branch_taken, exec_alu};
use rse_isa::{decode, layout, Image, Inst, InstClass, Reg};
use rse_mem::SparseMemory;

/// Why the interpreter stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenEvent {
    /// A `halt` executed.
    Halted,
    /// A `syscall` executed (registers hold the arguments); resume by
    /// calling [`Golden::resume`].
    Syscall,
    /// The instruction budget ran out.
    OutOfFuel,
}

/// The golden in-order interpreter.
#[derive(Debug, Clone)]
pub struct Golden {
    /// Architectural registers.
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Functional memory.
    pub mem: SparseMemory,
    /// Instructions executed.
    pub executed: u64,
    halted: bool,
    text_base: u32,
    /// Decode cache over the text segment: `(raw word, decoded)` per
    /// word slot. Validated against the actual memory word on every
    /// fetch, so it can never serve stale decodes — it only skips the
    /// `decode` call, which dominates the interpreter loop otherwise.
    /// Memory mutated behind the interpreter's back (checkpoint
    /// restores, injected text faults) is therefore still fetched
    /// correctly.
    icache: Vec<(u32, Inst)>,
}

impl Golden {
    /// Creates an interpreter with `image` loaded, mirroring
    /// `Pipeline::load_image`'s initial state.
    pub fn new(image: &Image) -> Golden {
        let mut mem = SparseMemory::new();
        for (i, &word) in image.text.iter().enumerate() {
            mem.write_u32(image.text_base + 4 * i as u32, word);
        }
        mem.write_bytes(image.data_base, &image.data);
        let mut regs = [0u32; 32];
        regs[Reg::SP.index()] = layout::STACK_BASE - 16;
        Golden {
            regs,
            pc: image.entry,
            mem,
            executed: 0,
            halted: false,
            text_base: image.text_base,
            icache: image
                .text
                .iter()
                .map(|&w| (w, decode(w).unwrap_or(Inst::Nop)))
                .collect(),
        }
    }

    /// Whether a `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Resumes after a syscall, optionally redirecting.
    pub fn resume(&mut self, pc: Option<u32>) {
        if let Some(pc) = pc {
            self.pc = pc;
        }
    }

    /// Writes a register (e.g. a syscall result), honoring the zero wire.
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        if !reg.is_zero() {
            self.regs[reg.index()] = value;
        }
    }

    fn read(&self, reg: Option<Reg>) -> u32 {
        reg.map_or(0, |r| self.regs[r.index()])
    }

    /// Executes until halt, syscall, or `fuel` more instructions.
    ///
    /// Equivalent to [`Golden::run_until`]`(self.executed + fuel)`: the
    /// budget is anchored to the cumulative instruction counter, so a
    /// run paused at a syscall and resumed with the *remaining* fuel
    /// stops at exactly the same instruction as an uninterrupted run.
    /// Callers that pause and resume should prefer `run_until` with an
    /// absolute deadline — it makes the bookkeeping impossible to get
    /// wrong, which is what the tiered driver's deterministic switch
    /// points rely on.
    pub fn run(&mut self, fuel: u64) -> GoldenEvent {
        self.run_until(self.executed.saturating_add(fuel))
    }

    /// Executes until halt, syscall, or until the cumulative executed
    /// instruction count reaches `deadline` (an *absolute* point on the
    /// [`Golden::executed`] clock, mirroring how `Pipeline::run`'s
    /// deadline is absolute on the cycle clock). Pausing at a syscall
    /// consumes no budget beyond the syscall instruction itself:
    /// resuming and calling `run_until` with the same deadline lands on
    /// exactly the same final instruction as a never-paused run.
    pub fn run_until(&mut self, deadline: u64) -> GoldenEvent {
        if self.halted {
            return GoldenEvent::Halted;
        }
        while self.executed < deadline {
            let word = self.mem.read_u32(self.pc);
            // Fetch through the decode cache when the PC lands on a text
            // slot; the word comparison keeps it exact under any memory
            // mutation (and any slot aliasing from unaligned PCs).
            let slot = (self.pc.wrapping_sub(self.text_base) / 4) as usize;
            let inst = match self.icache.get_mut(slot) {
                Some(entry) if self.pc.wrapping_sub(self.text_base).is_multiple_of(4) => {
                    if entry.0 != word {
                        *entry = (word, decode(word).unwrap_or(Inst::Nop));
                    }
                    entry.1
                }
                _ => decode(word).unwrap_or(Inst::Nop),
            };
            self.executed += 1;
            let mut next = self.pc.wrapping_add(4);
            let [s0, s1] = inst.sources();
            let (rs, rt) = (self.read(s0), self.read(s1));
            match inst.class() {
                InstClass::IntAlu | InstClass::MulDiv => {
                    if let (Some(v), Some(d)) = (exec_alu(&inst, rs, rt), inst.dest()) {
                        self.regs[d.index()] = v;
                    }
                }
                InstClass::Load => {
                    let addr = rs.wrapping_add(mem_offset(&inst));
                    let v = match inst {
                        Inst::Lw { .. } => self.mem.read_u32(addr),
                        Inst::Lh { .. } => self.mem.read_u16(addr) as i16 as i32 as u32,
                        Inst::Lhu { .. } => self.mem.read_u16(addr) as u32,
                        Inst::Lb { .. } => self.mem.read_u8(addr) as i8 as i32 as u32,
                        Inst::Lbu { .. } => self.mem.read_u8(addr) as u32,
                        _ => 0,
                    };
                    if let Some(d) = inst.dest() {
                        self.regs[d.index()] = v;
                    }
                }
                InstClass::Store => {
                    let addr = rs.wrapping_add(mem_offset(&inst));
                    match inst {
                        Inst::Sb { .. } => self.mem.write_u8(addr, rt as u8),
                        Inst::Sh { .. } => self.mem.write_u16(addr, rt as u16),
                        _ => self.mem.write_u32(addr, rt),
                    }
                }
                InstClass::Branch => {
                    if branch_taken(&inst, rs, rt).unwrap_or(false) {
                        next = inst.direct_target(self.pc).unwrap_or(next);
                    }
                }
                InstClass::Jump => match inst {
                    Inst::J { .. } => next = inst.direct_target(self.pc).expect("direct"),
                    Inst::Jal { .. } => {
                        self.regs[Reg::RA.index()] = self.pc.wrapping_add(4);
                        next = inst.direct_target(self.pc).expect("direct");
                    }
                    Inst::Jr { .. } => next = rs,
                    Inst::Jalr { rd, .. } => {
                        if !rd.is_zero() {
                            self.regs[rd.index()] = self.pc.wrapping_add(4);
                        }
                        next = rs;
                    }
                    _ => {}
                },
                InstClass::Syscall => {
                    self.pc = next;
                    return GoldenEvent::Syscall;
                }
                InstClass::Halt => {
                    self.halted = true;
                    return GoldenEvent::Halted;
                }
                InstClass::Nop | InstClass::Chk => {}
            }
            self.pc = next;
        }
        GoldenEvent::OutOfFuel
    }
}

fn mem_offset(inst: &Inst) -> u32 {
    use Inst::*;
    match *inst {
        Lw { off, .. }
        | Lh { off, .. }
        | Lhu { off, .. }
        | Lb { off, .. }
        | Lbu { off, .. }
        | Sw { off, .. }
        | Sh { off, .. }
        | Sb { off, .. } => off as i32 as u32,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_isa::asm::assemble;

    #[test]
    fn golden_runs_a_loop() {
        let image =
            assemble("main: li r8, 0\nli r9, 10\nloop: addi r8, r8, 1\nbne r8, r9, loop\nhalt")
                .unwrap();
        let mut g = Golden::new(&image);
        assert_eq!(g.run(1_000_000), GoldenEvent::Halted);
        assert_eq!(g.regs[8], 10);
        assert_eq!(g.executed, 2 + 20 + 1);
    }

    #[test]
    fn golden_pauses_at_syscalls() {
        let image = assemble("main: li r2, 7\nsyscall\nmove r10, r2\nhalt").unwrap();
        let mut g = Golden::new(&image);
        assert_eq!(g.run(100), GoldenEvent::Syscall);
        assert_eq!(g.regs[2], 7);
        g.set_reg(Reg::V0, 55);
        g.resume(None);
        assert_eq!(g.run(100), GoldenEvent::Halted);
        assert_eq!(g.regs[10], 55);
    }

    /// A paused-and-resumed run must consume exactly the same fuel as an
    /// uninterrupted one: `run_until` anchors the budget to the absolute
    /// `executed` clock, so syscall pauses grant no extra instructions.
    /// This is what makes tiered switch points deterministic.
    #[test]
    fn fuel_accounting_is_exact_across_syscall_pauses() {
        // Three syscalls interleaved with ALU work, then a loop.
        let src = "main: li r8, 1\nsyscall\naddi r8, r8, 1\nsyscall\naddi r8, r8, 1\nsyscall\n\
                   li r9, 6\nloop: addi r8, r8, 1\nbne r8, r9, loop\nhalt";
        let image = assemble(src).unwrap();
        // Uninterrupted equivalent: count every instruction to the halt.
        let mut free = Golden::new(&image);
        while free.run(u64::MAX) == GoldenEvent::Syscall {
            free.resume(None);
        }
        let total = free.executed;
        assert!(free.is_halted());
        // For every absolute deadline, the paused-and-resumed run must
        // stop at exactly the same instruction count as the free run.
        for deadline in 0..=total {
            let mut g = Golden::new(&image);
            loop {
                match g.run_until(deadline) {
                    GoldenEvent::Syscall => g.resume(None),
                    GoldenEvent::Halted => break,
                    GoldenEvent::OutOfFuel => break,
                }
            }
            let expected = deadline.min(total);
            assert_eq!(
                g.executed, expected,
                "deadline {deadline}: paused run consumed {} instructions, want {expected}",
                g.executed
            );
            assert_eq!(g.is_halted(), deadline >= total);
        }
        // Relative fuel stays exact too when the caller deducts what a
        // paused segment consumed (run delegates to run_until).
        let mut g = Golden::new(&image);
        let mut fuel = total;
        loop {
            let before = g.executed;
            match g.run(fuel) {
                GoldenEvent::Syscall => {
                    fuel -= g.executed - before;
                    g.resume(None);
                }
                _ => break,
            }
        }
        assert_eq!(g.executed, total);
        assert!(g.is_halted());
    }

    #[test]
    fn golden_out_of_fuel() {
        let image = assemble("main: b main").unwrap();
        let mut g = Golden::new(&image);
        assert_eq!(g.run(50), GoldenEvent::OutOfFuel);
        assert_eq!(g.executed, 50);
    }
}
