//! # rse-pipeline — superscalar out-of-order processor simulator
//!
//! A cycle-level simulator of the DLX-like superscalar processor of
//! Figure 1 of *"An Architectural Framework for Providing Reliability and
//! Security Support"* (DSN 2004), built in the style of SimpleScalar's
//! `sim-outorder` (which the paper augmented): instructions execute
//! *functionally* in program order at dispatch, while a detailed timing
//! model tracks fetch, dispatch, out-of-order issue, execution and
//! in-order commit through a 16-entry reorder buffer.
//!
//! Architectural parameters (Figure 1): 4-wide fetch/dispatch, 4-wide
//! issue, 16-entry RUU (ROB), 8-entry LSQ, bimodal branch predictor with
//! BTB and return-address stack, and the split cache hierarchy of
//! [`rse_mem`].
//!
//! The **co-processor tap interface** ([`CoProcessor`]) exposes exactly
//! the fan-outs the RSE framework consumes: dispatch events (the
//! `Fetch_Out` and `Regfile_Data` queues), execute/writeback events
//! (`Execute_Out`, `Memory_Out`), commit and squash events (`Commit_Out`),
//! and a commit gate implementing the Instruction Output Queue handshake
//! (`check`/`checkValid`) by which a blocking CHECK stalls or flushes the
//! pipeline.
//!
//! # Example
//!
//! ```
//! use rse_isa::asm::assemble;
//! use rse_mem::{MemConfig, MemorySystem};
//! use rse_pipeline::{NullCoProcessor, Pipeline, PipelineConfig, StepEvent};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble("main: li r4, 5\nloop: addi r4, r4, -1\nbne r4, r0, loop\nhalt")?;
//! let mut cpu = Pipeline::new(PipelineConfig::default(), MemorySystem::new(MemConfig::baseline()));
//! cpu.load_image(&image);
//! let mut cp = NullCoProcessor;
//! assert_eq!(cpu.run(&mut cp, 100_000), StepEvent::Halted);
//! assert!(cpu.stats().cycles > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod coproc;
pub mod cpu;
mod exec;
pub mod golden;
mod machine;
mod predictor;
mod stats;

pub use config::{CheckPolicy, PipelineConfig};
pub use coproc::{
    CoProcessor, CommitGate, CoprocException, DispatchInfo, ExecuteInfo, NullCoProcessor, RobId,
};
pub use cpu::{Cpu, ExecEvent};
pub use exec::exec_alu;
pub use golden::{Golden, GoldenEvent};
pub use machine::{CpuContext, FetchFault, FetchTamper, Pipeline, SoftFault, StepEvent};
pub use predictor::{Predictor, PredictorConfig};
pub use stats::PipelineStats;
