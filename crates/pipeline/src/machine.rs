//! The pipeline machine: fetch → dispatch → issue → execute → commit.
//!
//! Modeling approach (SimpleScalar `sim-outorder` style, which is what the
//! paper augmented): correct-path instructions execute *functionally* in
//! program order at dispatch, against a speculative register file; the
//! timing model then tracks their flow through the reorder buffer,
//! functional units and memory hierarchy. Wrong-path instructions (fetched
//! past a mispredicted branch) occupy fetch, ROB and functional-unit
//! resources but never touch architectural state; they are squashed when
//! the branch resolves at writeback.
//!
//! Stores are buffered in the ROB/LSQ and written to memory at commit, so
//! memory always holds committed state; loads forward from older in-flight
//! stores. A second, architectural register file is maintained at commit so
//! a commit-stage flush (a CHECK error: the paper's "pipeline is flushed
//! and starts execution repeatedly at the same CHECK instruction") can
//! restore the speculative file exactly.

use crate::config::PipelineConfig;
use crate::coproc::{CoProcessor, CommitGate, DispatchInfo, ExecuteInfo, RobId};
use crate::exec::{branch_taken, exec_alu};
use crate::predictor::Predictor;
use crate::stats::PipelineStats;
use rse_isa::{decode, encode, layout, Image, Inst, InstClass, Reg};
use rse_mem::{AccessKind, MemorySystem};
use std::collections::VecDeque;

/// A saved execution context (per-thread state for the guest OS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuContext {
    /// Architectural register values.
    pub regs: [u32; 32],
    /// Program counter to resume at.
    pub pc: u32,
}

impl Default for CpuContext {
    fn default() -> CpuContext {
        CpuContext {
            regs: [0; 32],
            pc: layout::TEXT_BASE,
        }
    }
}

/// What a [`FetchFault`] does to the targeted instruction word as it
/// leaves the I-cache. `Xor` models in-transit multi-bit errors; `Nop`
/// and `Replay` model the instruction-skip and instruction-replay
/// classes of instruction-stream tampering (a glitched fetch unit that
/// swallows or double-issues a word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchTamper {
    /// XOR the fetched word with the mask.
    Xor(u32),
    /// Replace the fetched word with a NOP (the instruction is skipped).
    Nop,
    /// Push the fetched word twice (the instruction executes twice).
    Replay,
}

/// A one-shot transient fault injected into the fetch path: the `index`-th
/// fetched instruction word (0-based, counting only real fetches) is
/// tampered with as it leaves the I-cache. This models the in-transit
/// errors the Instruction Checker Module detects (§4.3) as well as the
/// skip/replay tampering classes used by the adversarial campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchFault {
    /// Which fetched word to corrupt.
    pub index: u64,
    /// How the word is corrupted.
    pub tamper: FetchTamper,
}

impl FetchFault {
    /// The classic fetch fault: XOR `xor_mask` into the `index`-th word.
    pub fn xor(index: u64, xor_mask: u32) -> FetchFault {
        FetchFault {
            index,
            tamper: FetchTamper::Xor(xor_mask),
        }
    }
}

/// A scheduled transient soft error, applied once when the pipeline's
/// cycle counter reaches `at_cycle`. These model the classic
/// fault-injection campaign targets: single/double bit flips in the
/// architectural register file and bit flips in physical memory (text or
/// data). Faults are armed with [`Pipeline::schedule_fault`] and drain in
/// scheduling order; each fires exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoftFault {
    /// XOR `xor_mask` into architectural register `reg` at `at_cycle`.
    /// Flipping `r0` is architecturally masked by construction (the
    /// register reads as zero), so the engine still counts the injection
    /// but the value never changes.
    Reg {
        /// Cycle at which the flip lands.
        at_cycle: u64,
        /// Register index (0–31).
        reg: u8,
        /// Bits to flip.
        xor_mask: u32,
    },
    /// XOR `xor_mask` into the 32-bit memory word at `addr` at
    /// `at_cycle`. Because instruction fetch re-reads memory each time,
    /// a flip in the text segment is a *persistent* fault every
    /// subsequent fetch observes — exactly the case the ICM's redundant
    /// copy is designed to catch.
    Mem {
        /// Cycle at which the flip lands.
        at_cycle: u64,
        /// Byte address of the (unaligned-tolerant) word.
        addr: u32,
        /// Bits to flip.
        xor_mask: u32,
    },
    /// Overwrite the 32-bit memory word at `addr` with `value` at
    /// `at_cycle`. Unlike the XOR models above this is not a transient
    /// upset but an *arbitrary-write primitive* — the attacker capability
    /// the adversarial campaigns (rse-attack) use to smash return
    /// addresses, tamper with pointer tables, and plant payloads.
    Write {
        /// Cycle at which the write lands.
        at_cycle: u64,
        /// Byte address of the word.
        addr: u32,
        /// Value written.
        value: u32,
    },
}

impl SoftFault {
    fn at_cycle(&self) -> u64 {
        match *self {
            SoftFault::Reg { at_cycle, .. }
            | SoftFault::Mem { at_cycle, .. }
            | SoftFault::Write { at_cycle, .. } => at_cycle,
        }
    }
}

/// Why `Pipeline::run` returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// A system call committed. Read/modify registers, then call
    /// [`Pipeline::resume`].
    Syscall,
    /// A `halt` instruction committed; simulation is finished.
    Halted,
    /// A co-processor module raised an exception toward the OS (e.g.
    /// the DDT's SavePage).
    Exception(crate::coproc::CoprocException),
    /// The cycle budget given to [`Pipeline::run`] was exhausted.
    Timeout,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Dispatched,
    Issued,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct StoreData {
    addr: u32,
    width: u8,
    value: u32,
}

#[derive(Debug, Clone)]
struct RobEntry {
    id: RobId,
    pc: u32,
    word: u32,
    inst: Inst,
    wrong_path: bool,
    injected: bool,
    state: EntryState,
    complete_at: u64,
    deps: [Option<RobId>; 2],
    operands: [u32; 2],
    result: u32,
    eff_addr: Option<u32>,
    loaded: Option<u32>,
    store: Option<StoreData>,
    mispredicted: bool,
    actual_next: u32,
    taken: bool,
}

#[derive(Debug, Clone)]
struct FetchedInst {
    pc: u32,
    word: u32,
    inst: Inst,
    pred_next: u32,
    injected: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Running,
    WaitSyscall { resume_pc: u32 },
    Halted,
}

/// The simulated superscalar out-of-order processor.
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    mem: MemorySystem,
    pred: Predictor,
    regs: [u32; 32],
    arch_regs: [u32; 32],
    fetch_pc: u32,
    /// The next *architectural* program counter: the `actual_next` of the
    /// youngest committed program instruction. Unlike `fetch_pc` (which
    /// runs ahead speculatively) this is exact at every commit boundary;
    /// [`Pipeline::drain`] realigns the front end to it.
    arch_pc: u32,
    /// Cleared by [`Pipeline::drain`] to stop fetch/dispatch while the
    /// in-flight window commits.
    frontend_enabled: bool,
    fetch_queue: VecDeque<FetchedInst>,
    rob: VecDeque<RobEntry>,
    next_id: u64,
    now: u64,
    wrong_path_mode: bool,
    serialize: bool,
    pending_ifetch: Option<(u32, u64)>,
    chk_injected_for: Option<u32>,
    freeze_until: u64,
    state: State,
    stats: PipelineStats,
    fetch_fault: Option<FetchFault>,
    fetch_count: u64,
    soft_faults: Vec<SoftFault>,
    mul_busy_until: u64,
    exec_range: Option<(u32, u32)>,
    nx_violation: Option<u32>,
}

impl Pipeline {
    /// Creates a pipeline over the given memory system. Load a program
    /// with [`Pipeline::load_image`] before running.
    pub fn new(config: PipelineConfig, mem: MemorySystem) -> Pipeline {
        let mut regs = [0u32; 32];
        regs[Reg::SP.index()] = layout::STACK_BASE - 16;
        Pipeline {
            config,
            mem,
            pred: Predictor::default(),
            regs,
            arch_regs: regs,
            fetch_pc: layout::TEXT_BASE,
            arch_pc: layout::TEXT_BASE,
            frontend_enabled: true,
            fetch_queue: VecDeque::new(),
            rob: VecDeque::new(),
            next_id: 0,
            now: 0,
            wrong_path_mode: false,
            serialize: false,
            pending_ifetch: None,
            chk_injected_for: None,
            freeze_until: 0,
            state: State::Running,
            stats: PipelineStats::default(),
            fetch_fault: None,
            fetch_count: 0,
            soft_faults: Vec::new(),
            mul_busy_until: 0,
            exec_range: None,
            nx_violation: None,
        }
    }

    /// Loads an executable image: text and data are written to memory,
    /// caches are invalidated, the PC is set to the entry point and the
    /// stack pointer to the top of the (nominal) stack.
    pub fn load_image(&mut self, image: &Image) {
        for (i, &word) in image.text.iter().enumerate() {
            self.mem
                .memory
                .write_u32(image.text_base + 4 * i as u32, word);
        }
        self.mem.memory.write_bytes(image.data_base, &image.data);
        self.mem.invalidate_caches();
        self.fetch_pc = image.entry;
        self.arch_pc = image.entry;
        self.regs = [0; 32];
        self.regs[Reg::SP.index()] = layout::STACK_BASE - 16;
        self.arch_regs = self.regs;
        self.state = State::Running;
        self.nx_violation = None;
    }

    /// The current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Accumulated performance counters.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// The memory system (shared with the RSE's MAU).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to the memory system.
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// The architectural register file (valid while paused at a syscall).
    // Intentionally exposes the *architectural* file, not the speculative
    // `regs` working file — external observers must never see
    // uncommitted state.
    #[allow(clippy::misnamed_getters)]
    pub fn regs(&self) -> &[u32; 32] {
        &self.arch_regs
    }

    /// Mutable architectural registers — used by the guest OS to return
    /// syscall results. Keeps the speculative file coherent.
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        if !reg.is_zero() {
            self.arch_regs[reg.index()] = value;
            self.regs[reg.index()] = value;
        }
    }

    /// Arms a one-shot transient fetch fault.
    pub fn set_fetch_fault(&mut self, fault: Option<FetchFault>) {
        self.fetch_fault = fault;
    }

    /// Restricts *committed* execution to `[lo, hi)`. This models the
    /// DDT's non-executable-page enforcement (§4.2): the first program
    /// instruction that reaches commit from outside the range is blocked
    /// — the machine records the offending PC, squashes everything in
    /// flight and halts, before the instruction can retire any
    /// architectural effect. Wrong-path fetches from data pages are
    /// deliberately tolerated (real front ends speculate into garbage all
    /// the time); only *architectural* execution trips the trap. `None`
    /// disables enforcement.
    pub fn set_exec_range(&mut self, range: Option<(u32, u32)>) {
        self.exec_range = range;
    }

    /// The PC that tripped non-executable enforcement, if any. Latched
    /// once per program run; [`Pipeline::load_image`] clears it.
    pub fn nx_violation(&self) -> Option<u32> {
        self.nx_violation
    }

    /// Schedules a one-shot [`SoftFault`]. Faults whose `at_cycle` is in
    /// the past fire on the next step; multiple faults may be armed at
    /// once (the double-bit-flip model schedules two).
    pub fn schedule_fault(&mut self, fault: SoftFault) {
        self.soft_faults.push(fault);
    }

    /// Applies every armed soft fault whose time has come. Runs at the
    /// top of each cycle, before any stage reads state.
    fn apply_soft_faults(&mut self) {
        if self.soft_faults.is_empty() {
            return;
        }
        let now = self.now;
        let mut i = 0;
        while i < self.soft_faults.len() {
            if self.soft_faults[i].at_cycle() > now {
                i += 1;
                continue;
            }
            match self.soft_faults.remove(i) {
                SoftFault::Reg { reg, xor_mask, .. } => {
                    let r = (reg & 31) as usize;
                    if r != 0 {
                        // Hit both the speculative and the architectural
                        // file: a physical register-file upset is visible
                        // to readers and survives any later flush.
                        self.regs[r] ^= xor_mask;
                        self.arch_regs[r] ^= xor_mask;
                    }
                    self.stats.soft_faults_applied += 1;
                }
                SoftFault::Mem { addr, xor_mask, .. } => {
                    self.mem.memory.flip_word(addr, xor_mask);
                    self.stats.soft_faults_applied += 1;
                }
                SoftFault::Write { addr, value, .. } => {
                    self.mem.memory.write_u32(addr, value);
                    self.stats.soft_faults_applied += 1;
                }
            }
        }
    }

    /// Freezes fetch/dispatch/issue/commit for `cycles` cycles (used by
    /// the OS to model exception-handler work such as the SavePage
    /// page-checkpoint copy; in-flight operations still drain).
    pub fn freeze_for(&mut self, cycles: u64) {
        self.freeze_until = self.freeze_until.max(self.now + cycles);
    }

    /// Captures the execution context (only meaningful while paused at a
    /// syscall, when speculative and architectural state coincide).
    pub fn context(&self) -> CpuContext {
        let pc = match self.state {
            State::WaitSyscall { resume_pc } => resume_pc,
            _ => self.fetch_pc,
        };
        CpuContext {
            regs: self.arch_regs,
            pc,
        }
    }

    /// Installs an execution context (guest OS context switch).
    pub fn set_context(&mut self, ctx: &CpuContext) {
        self.arch_regs = ctx.regs;
        self.regs = ctx.regs;
        self.arch_pc = ctx.pc;
        match &mut self.state {
            State::WaitSyscall { resume_pc } => *resume_pc = ctx.pc,
            _ => self.fetch_pc = ctx.pc,
        }
    }

    /// Resumes after a syscall, optionally redirecting to `pc` (default:
    /// the instruction after the syscall).
    ///
    /// # Panics
    ///
    /// Panics if the pipeline is not paused at a syscall.
    pub fn resume(&mut self, pc: Option<u32>) {
        let State::WaitSyscall { resume_pc } = self.state else {
            panic!("resume called while not paused at a syscall");
        };
        self.fetch_pc = pc.unwrap_or(resume_pc);
        self.arch_pc = self.fetch_pc;
        self.state = State::Running;
    }

    /// Whether the pipeline has committed a `halt`.
    pub fn is_halted(&self) -> bool {
        self.state == State::Halted
    }

    /// Runs until a syscall, halt, co-processor exception, or until
    /// `max_cycles` more cycles have elapsed.
    pub fn run(&mut self, cp: &mut dyn CoProcessor, max_cycles: u64) -> StepEvent {
        let deadline = self.now + max_cycles;
        while self.now < deadline {
            if let Some(ev) = self.step(cp) {
                return ev;
            }
        }
        StepEvent::Timeout
    }

    /// Advances the cycle counter to `to_cycle` without simulating any
    /// cycles (saturating: a past value is a no-op). Used by the tiered
    /// driver's warm-state handoff so faults and deadlines scheduled on
    /// the absolute cycle clock stay meaningful after a functional
    /// fast-forward. `stats().cycles` keeps counting only *simulated*
    /// cycles, so `now()` may exceed it after a warm start.
    pub fn advance_clock(&mut self, to_cycle: u64) {
        self.now = self.now.max(to_cycle);
    }

    /// Runs the back end until every in-flight instruction has committed,
    /// without fetching or dispatching anything new, then realigns the
    /// front end to the next architectural instruction. On return with
    /// `None` the machine is at an exact commit boundary: `regs()` and
    /// [`Pipeline::context`] describe precise architectural state, which
    /// is what the tiered driver's pipeline→functional handoff needs.
    ///
    /// If a syscall, halt, or co-processor exception fires while the
    /// window drains, that event is returned instead (the pipeline is
    /// already architecturally exact at those boundaries).
    pub fn drain(&mut self, cp: &mut dyn CoProcessor) -> Option<StepEvent> {
        match self.state {
            State::Halted => return Some(StepEvent::Halted),
            State::WaitSyscall { .. } => return Some(StepEvent::Syscall),
            State::Running => {}
        }
        self.frontend_enabled = false;
        let mut event = None;
        let mut guard = 0u64;
        while !self.rob.is_empty() {
            if let Some(ev) = self.step(cp) {
                event = Some(ev);
                break;
            }
            guard += 1;
            assert!(guard < 10_000_000, "pipeline drain did not converge");
        }
        self.frontend_enabled = true;
        if event.is_none() {
            // The ROB emptied without an event: discard speculative fetch
            // state and restart fetch at the architectural continuation.
            self.fetch_queue.clear();
            self.pending_ifetch = None;
            self.chk_injected_for = None;
            self.wrong_path_mode = false;
            self.serialize = false;
            self.regs = self.arch_regs;
            self.fetch_pc = self.arch_pc;
        }
        event
    }

    /// Advances the machine by one cycle. Returns an event if the
    /// simulation must pause (syscall/halt/exception).
    pub fn step(&mut self, cp: &mut dyn CoProcessor) -> Option<StepEvent> {
        if self.state == State::Halted {
            return Some(StepEvent::Halted);
        }
        if matches!(self.state, State::WaitSyscall { .. }) {
            // A syscall event was preempted by a co-processor exception in
            // the same cycle; re-deliver it now.
            return Some(StepEvent::Syscall);
        }
        self.apply_soft_faults();
        let frozen = self.now < self.freeze_until;
        let mut event = None;
        if !frozen && self.state == State::Running {
            event = self.commit_stage(cp);
        }
        self.writeback_stage(cp);
        if !frozen && self.state == State::Running {
            self.issue_stage();
            self.dispatch_stage(cp);
            self.fetch_stage();
        }
        cp.tick(self.now, &mut self.mem);
        self.now += 1;
        self.stats.cycles += 1;
        // Exceptions take priority over any same-cycle syscall/halt event:
        // the OS must see the SavePage before acting on the other event
        // (which is re-delivered on the next step).
        if let Some(exc) = cp.take_exception() {
            return Some(StepEvent::Exception(exc));
        }
        event
    }

    // --- commit ---------------------------------------------------------

    fn commit_stage(&mut self, cp: &mut dyn CoProcessor) -> Option<StepEvent> {
        for _ in 0..self.config.commit_width {
            let head = self.rob.front()?;
            if head.state != EntryState::Done {
                return None;
            }
            debug_assert!(!head.wrong_path, "wrong-path instruction reached commit");
            if let Some((lo, hi)) = self.exec_range {
                // Non-executable enforcement fires at commit, not fetch:
                // speculative wrong-path fetches from data pages must not
                // kill the program, but no architectural effect may ever
                // retire from outside the executable range.
                if !head.injected && (head.pc < lo || head.pc >= hi) {
                    self.nx_violation = Some(head.pc);
                    self.flush_all(cp);
                    self.state = State::Halted;
                    return Some(StepEvent::Halted);
                }
            }
            match cp.commit_gate(self.now, head.id) {
                CommitGate::Stall => {
                    self.stats.commit_stall_cycles += 1;
                    return None;
                }
                CommitGate::Flush => {
                    let restart_pc = head.pc;
                    self.stats.check_flushes += 1;
                    self.flush_all(cp);
                    self.fetch_pc = restart_pc;
                    return None;
                }
                CommitGate::Pass => {}
                CommitGate::PassNop => {
                    // The §3.4 multiplexer forced `10` for a quarantined
                    // module: the instruction commits, but its check was
                    // never performed.
                    self.stats.nop_commits += 1;
                }
            }
            let entry = self.rob.pop_front().expect("head exists");
            if let Some(ev) = self.retire(cp, entry) {
                return Some(ev);
            }
        }
        None
    }

    fn retire(&mut self, cp: &mut dyn CoProcessor, entry: RobEntry) -> Option<StepEvent> {
        self.stats.committed += 1;
        if entry.injected {
            self.stats.committed_injected_chk += 1;
        } else {
            // Injected CHECKs share the guarded instruction's PC and must
            // not advance the architectural point past it.
            self.arch_pc = entry.actual_next;
        }
        if let Some(dest) = entry.inst.dest() {
            self.arch_regs[dest.index()] = entry.result;
        }
        // The Commit_Out indication precedes the store's memory update so
        // a co-processor (the DDT) can capture the pre-store page image.
        cp.on_commit(self.now, entry.id, &mut self.mem);
        match entry.inst.class() {
            InstClass::Load => self.stats.loads_committed += 1,
            InstClass::Store => {
                self.stats.stores_committed += 1;
                if let Some(store) = entry.store {
                    // Timing: the store accesses the D-cache at commit.
                    self.mem.access(self.now, store.addr, AccessKind::Store);
                    match store.width {
                        1 => self.mem.memory.write_u8(store.addr, store.value as u8),
                        2 => self.mem.memory.write_u16(store.addr, store.value as u16),
                        _ => self.mem.memory.write_u32(store.addr, store.value),
                    }
                }
            }
            InstClass::Branch | InstClass::Jump => self.stats.control_flow_committed += 1,
            InstClass::Chk => {
                if let Inst::Chk(spec) = entry.inst {
                    if spec.blocking
                        && self.config.chk_serialize_mask & (1 << spec.module.number()) != 0
                    {
                        // The serializing CHECK has retired; dispatch may
                        // proceed.
                        self.serialize = false;
                    }
                }
            }
            _ => {}
        }
        match entry.inst.class() {
            InstClass::Syscall => {
                // Serialization guaranteed nothing younger dispatched;
                // discard whatever fetch ran ahead with.
                self.flush_all(cp);
                self.state = State::WaitSyscall {
                    resume_pc: entry.pc.wrapping_add(4),
                };
                self.stats.syscalls += 1;
                Some(StepEvent::Syscall)
            }
            InstClass::Halt => {
                self.flush_all(cp);
                self.state = State::Halted;
                Some(StepEvent::Halted)
            }
            _ => None,
        }
    }

    /// Squashes every in-flight instruction and resets speculative state
    /// to architectural state.
    fn flush_all(&mut self, cp: &mut dyn CoProcessor) {
        while let Some(e) = self.rob.pop_back() {
            self.stats.squashed += 1;
            cp.on_squash(self.now, e.id, &mut self.mem);
        }
        self.fetch_queue.clear();
        self.pending_ifetch = None;
        self.chk_injected_for = None;
        self.regs = self.arch_regs;
        self.wrong_path_mode = false;
        self.serialize = false;
    }

    // --- writeback ------------------------------------------------------

    fn writeback_stage(&mut self, cp: &mut dyn CoProcessor) {
        let mut recover: Option<usize> = None;
        for idx in 0..self.rob.len() {
            let e = &mut self.rob[idx];
            if e.state == EntryState::Issued && e.complete_at <= self.now {
                e.state = EntryState::Done;
                if !e.wrong_path {
                    let info = ExecuteInfo {
                        rob: e.id,
                        result: e.result,
                        eff_addr: e.eff_addr,
                        loaded: e.loaded,
                    };
                    cp.on_execute(self.now, &info, &mut self.mem);
                    if e.mispredicted {
                        recover = Some(idx);
                        break;
                    }
                }
            }
        }
        if let Some(idx) = recover {
            let target = self.rob[idx].actual_next;
            while self.rob.len() > idx + 1 {
                let e = self.rob.pop_back().expect("len checked");
                self.stats.squashed += 1;
                cp.on_squash(self.now, e.id, &mut self.mem);
            }
            self.fetch_queue.clear();
            self.pending_ifetch = None;
            self.chk_injected_for = None;
            self.fetch_pc = target;
            self.wrong_path_mode = false;
        }
    }

    // --- issue ----------------------------------------------------------

    fn deps_ready(&self, deps: &[Option<RobId>; 2]) -> bool {
        deps.iter().flatten().all(|dep| {
            self.rob
                .iter()
                .find(|e| e.id == *dep)
                .is_none_or(|e| e.state == EntryState::Done)
        })
    }

    fn issue_stage(&mut self) {
        let mut alu_used = 0usize;
        let mut mem_used = 0usize;
        let mut issued = 0usize;
        let mut chosen: Vec<(usize, u64)> = Vec::new();
        let mut mul_busy = self.mul_busy_until;
        for idx in 0..self.rob.len() {
            if issued >= self.config.issue_width {
                break;
            }
            let e = &self.rob[idx];
            if e.state != EntryState::Dispatched || !self.deps_ready(&e.deps) {
                continue;
            }
            let class = e.inst.class();
            let complete_at = match class {
                InstClass::MulDiv => {
                    if mul_busy > self.now {
                        continue; // non-pipelined unit busy
                    }
                    let latency = if matches!(e.inst, Inst::Mul { .. }) {
                        self.config.mul_latency
                    } else {
                        self.config.div_latency
                    };
                    mul_busy = self.now + latency;
                    mul_busy
                }
                InstClass::Load => {
                    if mem_used >= self.config.mem_ports {
                        continue;
                    }
                    mem_used += 1;
                    if e.wrong_path {
                        self.now + 1
                    } else {
                        let addr = e.eff_addr.expect("load has an address");
                        // AGEN takes one cycle, then the D-cache access.
                        let addr_ready = self.now + 1;
                        // NOTE: the cache access happens in the apply loop
                        // below to keep borrows disjoint; store addr here.
                        let _ = addr;
                        addr_ready // patched below
                    }
                }
                InstClass::Store => {
                    if mem_used >= self.config.mem_ports {
                        continue;
                    }
                    mem_used += 1;
                    self.now + 1 // AGEN only; data written at commit
                }
                _ => {
                    if alu_used >= self.config.int_alus {
                        continue;
                    }
                    alu_used += 1;
                    self.now + 1
                }
            };
            issued += 1;
            chosen.push((idx, complete_at));
        }
        self.mul_busy_until = mul_busy;
        for (idx, mut complete_at) in chosen {
            // Correct-path loads access the D-cache at issue.
            let (is_load, wrong_path, addr) = {
                let e = &self.rob[idx];
                (e.inst.class() == InstClass::Load, e.wrong_path, e.eff_addr)
            };
            if is_load && !wrong_path {
                let addr = addr.expect("load has an address");
                complete_at = self.mem.access(self.now + 1, addr, AccessKind::Load);
            }
            let e = &mut self.rob[idx];
            e.state = EntryState::Issued;
            e.complete_at = complete_at.max(self.now + 1);
        }
    }

    // --- dispatch -------------------------------------------------------

    fn lsq_count(&self) -> usize {
        self.rob.iter().filter(|e| e.inst.class().is_mem()).count()
    }

    fn find_producer(&self, reg: Reg) -> Option<RobId> {
        self.rob
            .iter()
            .rev()
            .find(|e| e.inst.dest() == Some(reg))
            .map(|e| e.id)
    }

    /// Reads `width` bytes at `addr` with store-to-load forwarding from
    /// older in-flight (correct-path) stores.
    fn read_forwarded(&self, addr: u32, width: u8) -> u32 {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate().take(width as usize) {
            *b = self.mem.memory.read_u8(addr.wrapping_add(i as u32));
        }
        for e in &self.rob {
            if e.wrong_path {
                continue;
            }
            if let Some(s) = &e.store {
                let sbytes = s.value.to_le_bytes();
                for i in 0..width as u32 {
                    let a = addr.wrapping_add(i);
                    if a >= s.addr && a < s.addr + s.width as u32 {
                        bytes[i as usize] = sbytes[(a - s.addr) as usize];
                    }
                }
            }
        }
        u32::from_le_bytes(bytes)
    }

    fn dispatch_stage(&mut self, cp: &mut dyn CoProcessor) {
        if !self.frontend_enabled {
            return;
        }
        for _ in 0..self.config.dispatch_width {
            if self.serialize || self.rob.len() >= self.config.rob_size {
                break;
            }
            let Some(front) = self.fetch_queue.front() else {
                break;
            };
            if front.inst.class().is_mem() && self.lsq_count() >= self.config.lsq_size {
                break;
            }
            let f = self.fetch_queue.pop_front().expect("front exists");
            let id = RobId(self.next_id);
            self.next_id += 1;
            let wrong_path = self.wrong_path_mode;
            let mut entry = RobEntry {
                id,
                pc: f.pc,
                word: f.word,
                inst: f.inst,
                wrong_path,
                injected: f.injected,
                state: EntryState::Dispatched,
                complete_at: 0,
                deps: [None, None],
                operands: [0, 0],
                result: 0,
                eff_addr: None,
                loaded: None,
                store: None,
                mispredicted: false,
                actual_next: f.pc.wrapping_add(4),
                taken: false,
            };
            // Timing dependencies on in-flight producers.
            let sources = entry.inst.sources();
            for (slot, src) in sources.iter().enumerate() {
                if let Some(reg) = src {
                    entry.deps[slot] = self.find_producer(*reg);
                }
            }
            if !wrong_path {
                self.exec_functional(&mut entry, &f);
            }
            let info = DispatchInfo {
                rob: entry.id,
                pc: entry.pc,
                word: entry.word,
                inst: entry.inst,
                operands: entry.operands,
                wrong_path,
                injected: entry.injected,
            };
            let mispredicted = entry.mispredicted;
            let class = entry.inst.class();
            self.rob.push_back(entry);
            self.stats.dispatched += 1;
            cp.on_dispatch(self.now, &info, &mut self.mem);
            if !wrong_path {
                if mispredicted {
                    self.stats.mispredicts += 1;
                    self.wrong_path_mode = true;
                }
                if matches!(class, InstClass::Syscall | InstClass::Halt) {
                    self.serialize = true;
                    break;
                }
                if let Inst::Chk(spec) = info.inst {
                    if spec.blocking
                        && self.config.chk_serialize_mask & (1 << spec.module.number()) != 0
                    {
                        self.serialize = true;
                        break;
                    }
                }
            }
        }
    }

    /// Architectural execution of a correct-path instruction at dispatch.
    fn exec_functional(&mut self, entry: &mut RobEntry, f: &FetchedInst) {
        let inst = entry.inst;
        let read = |r: Option<Reg>, regs: &[u32; 32]| r.map_or(0, |r| regs[r.index()]);
        let [s0, s1] = inst.sources();
        let rs_val = read(s0, &self.regs);
        let rt_val = read(s1, &self.regs);
        entry.operands = [rs_val, rt_val];
        match inst.class() {
            InstClass::IntAlu | InstClass::MulDiv => {
                entry.result = exec_alu(&inst, rs_val, rt_val).unwrap_or(0);
            }
            InstClass::Load => {
                let addr = rs_val.wrapping_add(load_store_offset(&inst));
                entry.eff_addr = Some(addr);
                let raw = match inst {
                    Inst::Lw { .. } => self.read_forwarded(addr, 4),
                    Inst::Lh { .. } => self.read_forwarded(addr, 2) as u16 as i16 as i32 as u32,
                    Inst::Lhu { .. } => self.read_forwarded(addr, 2) & 0xFFFF,
                    Inst::Lb { .. } => self.read_forwarded(addr, 1) as u8 as i8 as i32 as u32,
                    Inst::Lbu { .. } => self.read_forwarded(addr, 1) & 0xFF,
                    _ => 0,
                };
                entry.result = raw;
                entry.loaded = Some(raw);
            }
            InstClass::Store => {
                // For stores, sources() = [base, rt]; rs_val is the base.
                let addr = rs_val.wrapping_add(load_store_offset(&inst));
                entry.eff_addr = Some(addr);
                let width = match inst {
                    Inst::Sb { .. } => 1,
                    Inst::Sh { .. } => 2,
                    _ => 4,
                };
                entry.store = Some(StoreData {
                    addr,
                    width,
                    value: rt_val,
                });
            }
            InstClass::Branch => {
                let taken = branch_taken(&inst, rs_val, rt_val).unwrap_or(false);
                entry.taken = taken;
                entry.actual_next = if taken {
                    inst.direct_target(entry.pc)
                        .unwrap_or(entry.pc.wrapping_add(4))
                } else {
                    entry.pc.wrapping_add(4)
                };
                self.pred.update(entry.pc, &inst, taken, entry.actual_next);
            }
            InstClass::Jump => {
                entry.taken = true;
                entry.actual_next = match inst {
                    Inst::J { .. } | Inst::Jal { .. } => {
                        inst.direct_target(entry.pc).expect("direct jump")
                    }
                    Inst::Jr { .. } | Inst::Jalr { .. } => rs_val,
                    _ => unreachable!("jump class"),
                };
                if matches!(inst, Inst::Jal { .. } | Inst::Jalr { .. }) {
                    entry.result = entry.pc.wrapping_add(4);
                }
                self.pred.update(entry.pc, &inst, true, entry.actual_next);
            }
            InstClass::Chk => {
                // Wide CHECK operands travel in a0/a1 by convention.
                entry.operands = [self.regs[Reg::A0.index()], self.regs[Reg::A1.index()]];
            }
            InstClass::Syscall | InstClass::Halt | InstClass::Nop => {}
        }
        if let Some(dest) = inst.dest() {
            self.regs[dest.index()] = entry.result;
        }
        if entry.inst.is_control_flow() {
            entry.mispredicted = f.pred_next != entry.actual_next;
        }
    }

    // --- fetch ----------------------------------------------------------

    fn fetch_stage(&mut self) {
        if !self.frontend_enabled {
            return;
        }
        const LINE_BYTES: u32 = 32;
        let mut fetched = 0usize;
        let mut line_this_cycle: Option<u32> = None;
        while fetched < self.config.fetch_width && self.fetch_queue.len() < self.config.fetch_buffer
        {
            let pc = self.fetch_pc;
            let line = pc / LINE_BYTES;
            // Outstanding I-cache miss?
            if let Some((miss_line, ready_at)) = self.pending_ifetch {
                if self.now < ready_at {
                    return;
                }
                self.pending_ifetch = None;
                line_this_cycle = Some(miss_line);
                if miss_line != line {
                    // Redirected while missing; re-access below.
                    line_this_cycle = None;
                }
            }
            if line_this_cycle == Some(line) {
                // Same line within the cycle: the I-cache is still read
                // per instruction (SimpleScalar counts one il1 access per
                // fetched instruction), but it always hits.
                self.mem.access(self.now, pc, AccessKind::InstFetch);
            } else {
                if line_this_cycle.is_some() {
                    // One I-cache line per cycle.
                    return;
                }
                let done = self.mem.access(self.now, pc, AccessKind::InstFetch);
                if done > self.now + 1 {
                    self.pending_ifetch = Some((line, done));
                    return;
                }
                line_this_cycle = Some(line);
            }
            let mut word = self.mem.memory.read_u32(pc);
            // The fault is consumed only when the word is actually pushed
            // into the fetch queue (a CHECK-injection pass over the same
            // word must not eat it).
            let corrupting = self
                .fetch_fault
                .is_some_and(|f| f.index == self.fetch_count);
            let mut replay = false;
            if corrupting {
                match self.fetch_fault.expect("checked").tamper {
                    FetchTamper::Xor(mask) => word ^= mask,
                    FetchTamper::Nop => word = encode(&Inst::Nop),
                    FetchTamper::Replay => replay = true,
                }
            }
            let inst = decode(word).unwrap_or(Inst::Nop);
            // Runtime CHECK embedding (§5.1): inject a CHECK in front of
            // instructions selected by the policy.
            if self.config.check_policy.wants_check(&inst) && self.chk_injected_for != Some(pc) {
                let spec = self.config.check_policy.injected_chk();
                self.fetch_queue.push_back(FetchedInst {
                    pc,
                    word: encode(&Inst::Chk(spec)),
                    inst: Inst::Chk(spec),
                    pred_next: pc,
                    injected: true,
                });
                self.chk_injected_for = Some(pc);
                self.stats.chk_injected += 1;
                self.stats.fetched += 1;
                fetched += 1;
                continue;
            }
            if self.chk_injected_for == Some(pc) {
                self.chk_injected_for = None;
            }
            if corrupting {
                self.fetch_fault = None;
            }
            self.fetch_count += 1;
            let pred_next = self.pred.predict_next(pc, &inst);
            self.fetch_queue.push_back(FetchedInst {
                pc,
                word,
                inst,
                pred_next,
                injected: false,
            });
            self.stats.fetched += 1;
            fetched += 1;
            if replay {
                // The replay tamper double-issues the word: a second copy
                // of the same fetched instruction enters the queue right
                // behind the first, so the instruction commits twice.
                // (Only program instructions count toward `fetch_count`
                // and the duplicate is not one — the fetch index stream
                // stays aligned with the untampered run.)
                self.fetch_queue.push_back(FetchedInst {
                    pc,
                    word,
                    inst,
                    pred_next,
                    injected: false,
                });
                self.stats.fetched += 1;
            }
            self.fetch_pc = pred_next;
            if pred_next != pc.wrapping_add(4) {
                // Predicted-taken control transfer: fetch bubble.
                return;
            }
        }
    }
}

fn load_store_offset(inst: &Inst) -> u32 {
    use Inst::*;
    match *inst {
        Lw { off, .. }
        | Lh { off, .. }
        | Lhu { off, .. }
        | Lb { off, .. }
        | Lbu { off, .. }
        | Sw { off, .. }
        | Sh { off, .. }
        | Sb { off, .. } => off as i32 as u32,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coproc::NullCoProcessor;
    use rse_isa::asm::assemble;
    use rse_mem::MemConfig;

    fn run_program(src: &str) -> Pipeline {
        let image = assemble(src).expect("assembles");
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::baseline()),
        );
        cpu.load_image(&image);
        let ev = cpu.run(&mut NullCoProcessor, 1_000_000);
        assert_eq!(ev, StepEvent::Halted, "program did not halt");
        cpu
    }

    /// `drain` at an arbitrary mid-run cycle must leave the machine at an
    /// exact architectural boundary: continuing afterwards reaches the
    /// same final state as a never-drained run, and the drained context
    /// replayed on the golden interpreter reaches the same halt state.
    #[test]
    fn drain_stops_at_an_exact_commit_boundary() {
        let src = "main: li r8, 0\nli r9, 40\nloop: addi r8, r8, 1\naddi r10, r10, 3\n\
                   bne r8, r9, loop\nsw r10, 0(r29)\nhalt";
        let reference = {
            let image = assemble(src).unwrap();
            let mut cpu = Pipeline::new(
                PipelineConfig::default(),
                MemorySystem::new(MemConfig::baseline()),
            );
            cpu.load_image(&image);
            assert_eq!(cpu.run(&mut NullCoProcessor, 1_000_000), StepEvent::Halted);
            *cpu.regs()
        };
        for drain_at in [1u64, 3, 7, 20, 55, 90] {
            let image = assemble(src).unwrap();
            let mut cpu = Pipeline::new(
                PipelineConfig::default(),
                MemorySystem::new(MemConfig::baseline()),
            );
            cpu.load_image(&image);
            if cpu.run(&mut NullCoProcessor, drain_at) == StepEvent::Halted {
                // The cut point landed past the halt; nothing to drain.
                assert_eq!(*cpu.regs(), reference);
                continue;
            }
            let ev = cpu.drain(&mut NullCoProcessor);
            if ev.is_none() {
                // At the boundary: speculative state must mirror
                // architectural state and fetch must restart at arch_pc.
                assert_eq!(cpu.regs, cpu.arch_regs);
                assert_eq!(cpu.fetch_pc, cpu.arch_pc);
                assert!(cpu.rob.is_empty());
                assert!(cpu.fetch_queue.is_empty());
            }
            if ev != Some(StepEvent::Halted) {
                assert_eq!(cpu.run(&mut NullCoProcessor, 1_000_000), StepEvent::Halted);
            }
            assert_eq!(*cpu.regs(), reference, "drain at cycle {drain_at} diverged");
        }
    }

    #[test]
    fn straight_line_arithmetic() {
        let cpu = run_program(
            r#"
            main:   li   r8, 10
                    li   r9, 32
                    add  r10, r8, r9
                    halt
            "#,
        );
        assert_eq!(cpu.regs()[10], 42);
        assert_eq!(cpu.stats().committed, 4);
    }

    #[test]
    fn loop_executes_correct_count() {
        let cpu = run_program(
            r#"
            main:   li   r8, 0
                    li   r9, 100
            loop:   addi r8, r8, 1
                    bne  r8, r9, loop
                    halt
            "#,
        );
        assert_eq!(cpu.regs()[8], 100);
        // 2 setup + 100 * 2 loop body + 1 halt
        assert_eq!(cpu.stats().committed, 2 + 200 + 1);
        assert!(cpu.stats().control_flow_committed >= 100);
    }

    #[test]
    fn memory_roundtrip_through_pipeline() {
        let cpu = run_program(
            r#"
            main:   la   r8, buf
                    li   r9, 0x1234
                    sw   r9, 0(r8)
                    lw   r10, 0(r8)
                    sh   r9, 8(r8)
                    lb   r11, 8(r8)
                    halt
                    .data
            buf:    .space 16
            "#,
        );
        assert_eq!(cpu.regs()[10], 0x1234);
        assert_eq!(cpu.regs()[11], 0x34);
    }

    #[test]
    fn store_to_load_forwarding_is_exact() {
        // The lw immediately follows the sw; the store is still in the
        // LSQ (not yet committed) when the load executes functionally.
        let cpu = run_program(
            r#"
            main:   la   r8, buf
                    li   r9, 0xAB
                    sb   r9, 1(r8)
                    lw   r10, 0(r8)
                    halt
                    .data
            buf:    .word 0x11111111
            "#,
        );
        assert_eq!(cpu.regs()[10], 0x1111_AB11);
    }

    #[test]
    fn function_call_and_return() {
        let cpu = run_program(
            r#"
            main:   li   r4, 5
                    jal  double
                    move r10, r2
                    halt
            double: add  r2, r4, r4
                    jr   r31
            "#,
        );
        assert_eq!(cpu.regs()[10], 10);
    }

    #[test]
    fn mispredicted_branches_recover() {
        // Alternating taken/not-taken pattern defeats the bimodal
        // predictor; results must still be architecturally exact.
        let cpu = run_program(
            r#"
            main:   li   r8, 0      # i
                    li   r9, 50     # n
                    li   r10, 0     # acc
            loop:   andi r11, r8, 1
                    beq  r11, r0, even
                    addi r10, r10, 2
                    b    next
            even:   addi r10, r10, 1
            next:   addi r8, r8, 1
                    bne  r8, r9, loop
                    halt
            "#,
        );
        // 25 even iterations (+1) and 25 odd (+2).
        assert_eq!(cpu.regs()[10], 25 + 50);
        assert!(cpu.stats().mispredicts > 0);
        assert!(cpu.stats().squashed > 0);
    }

    #[test]
    fn mul_div_latency_respected() {
        let cpu = run_program(
            r#"
            main:   li   r8, 7
                    li   r9, 6
                    mul  r10, r8, r9
                    li   r11, 100
                    div  r12, r11, r9
                    rem  r13, r11, r9
                    halt
            "#,
        );
        assert_eq!(cpu.regs()[10], 42);
        assert_eq!(cpu.regs()[12], 16);
        assert_eq!(cpu.regs()[13], 4);
    }

    #[test]
    fn syscall_pauses_and_resumes() {
        let image = assemble(
            r#"
            main:   li   r2, 99
                    syscall
                    move r10, r2
                    halt
            "#,
        )
        .unwrap();
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::baseline()),
        );
        cpu.load_image(&image);
        let ev = cpu.run(&mut NullCoProcessor, 100_000);
        assert_eq!(ev, StepEvent::Syscall);
        assert_eq!(cpu.regs()[2], 99);
        cpu.set_reg(Reg::V0, 1234); // OS returns a value
        cpu.resume(None);
        let ev = cpu.run(&mut NullCoProcessor, 100_000);
        assert_eq!(ev, StepEvent::Halted);
        assert_eq!(cpu.regs()[10], 1234);
    }

    #[test]
    fn context_switch_roundtrip() {
        let image = assemble("main: syscall\nhalt").unwrap();
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::baseline()),
        );
        cpu.load_image(&image);
        assert_eq!(cpu.run(&mut NullCoProcessor, 10_000), StepEvent::Syscall);
        let saved = cpu.context();
        let mut other = saved;
        other.regs[8] = 777;
        cpu.set_context(&other);
        assert_eq!(cpu.regs()[8], 777);
        cpu.set_context(&saved);
        assert_eq!(cpu.regs()[8], saved.regs[8]);
    }

    #[test]
    fn fetch_fault_corrupts_one_word() {
        let image = assemble(
            r#"
            main:   li   r8, 1
                    li   r9, 2
                    add  r10, r8, r9
                    halt
            "#,
        )
        .unwrap();
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::baseline()),
        );
        cpu.load_image(&image);
        // Corrupt the add (3rd fetched word) into an undecodable word:
        // it executes as a NOP, so r10 stays 0.
        cpu.set_fetch_fault(Some(FetchFault::xor(2, 0x7C00_0000)));
        assert_eq!(cpu.run(&mut NullCoProcessor, 100_000), StepEvent::Halted);
        assert_eq!(cpu.regs()[10], 0);
        assert_eq!(cpu.regs()[8], 1);
    }

    #[test]
    fn scheduled_reg_fault_flips_architectural_state() {
        // A countdown loop long enough that cycle 200 lands mid-loop; the
        // accumulator (r10) is flipped and the corruption persists to the
        // final state (an SDC in campaign terms).
        let image = assemble(
            r#"
            main:   li   r8, 200
                    li   r10, 0
            loop:   addi r10, r10, 1
                    addi r8, r8, -1
                    bne  r8, r0, loop
                    halt
            "#,
        )
        .unwrap();
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::baseline()),
        );
        cpu.load_image(&image);
        cpu.schedule_fault(SoftFault::Reg {
            at_cycle: 200,
            reg: 10,
            xor_mask: 1 << 20,
        });
        assert_eq!(cpu.run(&mut NullCoProcessor, 1_000_000), StepEvent::Halted);
        assert_eq!(cpu.stats().soft_faults_applied, 1);
        assert_eq!(cpu.regs()[10], 200 | (1 << 20));
    }

    #[test]
    fn scheduled_r0_fault_is_masked() {
        let image = assemble("main: li r8, 7\nhalt").unwrap();
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::baseline()),
        );
        cpu.load_image(&image);
        cpu.schedule_fault(SoftFault::Reg {
            at_cycle: 0,
            reg: 0,
            xor_mask: 0xFFFF_FFFF,
        });
        assert_eq!(cpu.run(&mut NullCoProcessor, 100_000), StepEvent::Halted);
        assert_eq!(cpu.stats().soft_faults_applied, 1);
        assert_eq!(cpu.regs()[0], 0);
        assert_eq!(cpu.regs()[8], 7);
    }

    #[test]
    fn scheduled_mem_fault_corrupts_data_word() {
        // The load at the end of the loop re-reads the word after the
        // cycle-300 flip has landed in memory.
        let image = assemble(
            r#"
            main:   la   r9, buf
                    li   r8, 400
            loop:   addi r8, r8, -1
                    bne  r8, r0, loop
                    lw   r10, 0(r9)
                    halt
                    .data
            buf:    .word 0x0F0F0F0F
            "#,
        )
        .unwrap();
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::baseline()),
        );
        cpu.load_image(&image);
        let buf = image.symbol("buf").unwrap();
        cpu.schedule_fault(SoftFault::Mem {
            at_cycle: 300,
            addr: buf,
            xor_mask: 0x8000_0000,
        });
        assert_eq!(cpu.run(&mut NullCoProcessor, 1_000_000), StepEvent::Halted);
        assert_eq!(cpu.regs()[10], 0x8F0F_0F0F);
    }

    #[test]
    fn injected_checks_counted_but_not_program_instructions() {
        let image = assemble(
            r#"
            main:   li   r8, 0
                    li   r9, 10
            loop:   addi r8, r8, 1
                    bne  r8, r9, loop
                    halt
            "#,
        )
        .unwrap();
        let mut base = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::baseline()),
        );
        base.load_image(&image);
        base.run(&mut NullCoProcessor, 1_000_000);
        let mut checked = Pipeline::new(
            PipelineConfig::with_control_flow_checks(),
            MemorySystem::new(MemConfig::baseline()),
        );
        checked.load_image(&image);
        checked.run(&mut NullCoProcessor, 1_000_000);
        assert_eq!(
            base.stats().committed_program(),
            checked.stats().committed_program()
        );
        assert!(checked.stats().committed_injected_chk >= 10);
        assert_eq!(base.regs()[8], checked.regs()[8]);
    }

    #[test]
    fn rob_never_exceeds_capacity() {
        // A long dependency-free run tries to fill the ROB.
        let mut src = String::from("main: li r8, 0\n");
        for i in 0..200 {
            src.push_str(&format!("addi r{}, r0, {}\n", 9 + (i % 20), i));
        }
        src.push_str("halt\n");
        let image = assemble(&src).unwrap();
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::baseline()),
        );
        cpu.load_image(&image);
        let mut cp = NullCoProcessor;
        loop {
            assert!(cpu.rob.len() <= cpu.config.rob_size);
            if cpu.step(&mut cp).is_some() {
                break;
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let src = r#"
            main:   li   r8, 0
                    li   r9, 40
            loop:   andi r10, r8, 3
                    add  r11, r11, r10
                    addi r8, r8, 1
                    bne  r8, r9, loop
                    halt
        "#;
        let a = run_program(src);
        let b = run_program(src);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.regs(), b.regs());
    }

    #[test]
    fn freeze_delays_progress() {
        let image = assemble("main: li r8, 1\nhalt").unwrap();
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::baseline()),
        );
        cpu.load_image(&image);
        cpu.freeze_for(500);
        assert_eq!(cpu.run(&mut NullCoProcessor, 100_000), StepEvent::Halted);
        assert!(cpu.stats().cycles > 500);
    }
}
