//! Functional (architectural) execution of ALU operations.

use rse_isa::Inst;

/// Computes the architectural result of an ALU-class instruction from
/// its operand values. Returns `None` for instructions that are not pure
/// ALU operations (memory, control flow, system).
///
/// Division and remainder by zero produce 0 rather than trapping — the
/// guest ISA is defined total so that fault-injection experiments can
/// never wedge the simulator on an arithmetic trap.
pub fn exec_alu(inst: &Inst, rs_val: u32, rt_val: u32) -> Option<u32> {
    use Inst::*;
    let v = match *inst {
        Add { .. } => rs_val.wrapping_add(rt_val),
        Sub { .. } => rs_val.wrapping_sub(rt_val),
        Mul { .. } => rs_val.wrapping_mul(rt_val),
        Div { .. } => {
            if rt_val == 0 {
                0
            } else {
                ((rs_val as i32).wrapping_div(rt_val as i32)) as u32
            }
        }
        Rem { .. } => {
            if rt_val == 0 {
                0
            } else {
                ((rs_val as i32).wrapping_rem(rt_val as i32)) as u32
            }
        }
        And { .. } => rs_val & rt_val,
        Or { .. } => rs_val | rt_val,
        Xor { .. } => rs_val ^ rt_val,
        Nor { .. } => !(rs_val | rt_val),
        Slt { .. } => ((rs_val as i32) < (rt_val as i32)) as u32,
        Sltu { .. } => (rs_val < rt_val) as u32,
        Sllv { .. } => rt_val.wrapping_shl(rs_val & 0x1F),
        Srlv { .. } => rt_val.wrapping_shr(rs_val & 0x1F),
        Srav { .. } => ((rt_val as i32).wrapping_shr(rs_val & 0x1F)) as u32,
        // Immediate shifts have a single source (`rt`), which arrives as
        // the first operand slot (see `Inst::sources`).
        Sll { shamt, .. } => rs_val.wrapping_shl(shamt as u32),
        Srl { shamt, .. } => rs_val.wrapping_shr(shamt as u32),
        Sra { shamt, .. } => ((rs_val as i32).wrapping_shr(shamt as u32)) as u32,
        Addi { imm, .. } => rs_val.wrapping_add(imm as i32 as u32),
        Slti { imm, .. } => ((rs_val as i32) < (imm as i32)) as u32,
        Andi { imm, .. } => rs_val & imm as u32,
        Ori { imm, .. } => rs_val | imm as u32,
        Xori { imm, .. } => rs_val ^ imm as u32,
        Lui { imm, .. } => (imm as u32) << 16,
        _ => return None,
    };
    Some(v)
}

/// Evaluates a conditional branch: does it take?
///
/// Returns `None` for non-branch instructions.
pub fn branch_taken(inst: &Inst, rs_val: u32, rt_val: u32) -> Option<bool> {
    use Inst::*;
    match *inst {
        Beq { .. } => Some(rs_val == rt_val),
        Bne { .. } => Some(rs_val != rt_val),
        Blt { .. } => Some((rs_val as i32) < (rt_val as i32)),
        Bge { .. } => Some((rs_val as i32) >= (rt_val as i32)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_isa::Reg;

    fn r3() -> (Reg, Reg, Reg) {
        (Reg::T0, Reg::T1, Reg::T2)
    }

    #[test]
    fn arithmetic_wraps() {
        let (rd, rs, rt) = r3();
        assert_eq!(exec_alu(&Inst::Add { rd, rs, rt }, u32::MAX, 1), Some(0));
        assert_eq!(exec_alu(&Inst::Sub { rd, rs, rt }, 0, 1), Some(u32::MAX));
        assert_eq!(exec_alu(&Inst::Mul { rd, rs, rt }, 0x8000_0000, 2), Some(0));
    }

    #[test]
    fn signed_division() {
        let (rd, rs, rt) = r3();
        assert_eq!(
            exec_alu(&Inst::Div { rd, rs, rt }, (-7i32) as u32, 2),
            Some((-3i32) as u32)
        );
        assert_eq!(
            exec_alu(&Inst::Rem { rd, rs, rt }, (-7i32) as u32, 2),
            Some((-1i32) as u32)
        );
        // Division by zero is total: result 0.
        assert_eq!(exec_alu(&Inst::Div { rd, rs, rt }, 5, 0), Some(0));
        // i32::MIN / -1 must not overflow-panic.
        assert_eq!(
            exec_alu(&Inst::Div { rd, rs, rt }, i32::MIN as u32, -1i32 as u32),
            Some(i32::MIN as u32)
        );
    }

    #[test]
    fn comparisons_are_signed_and_unsigned() {
        let (rd, rs, rt) = r3();
        assert_eq!(
            exec_alu(&Inst::Slt { rd, rs, rt }, -1i32 as u32, 1),
            Some(1)
        );
        assert_eq!(
            exec_alu(&Inst::Sltu { rd, rs, rt }, -1i32 as u32, 1),
            Some(0)
        );
    }

    #[test]
    fn shifts_mask_amounts() {
        let (rd, _, rt) = r3();
        // The single-source shift value arrives in the first operand slot.
        assert_eq!(exec_alu(&Inst::Sll { rd, rt, shamt: 4 }, 1, 0), Some(16));
        assert_eq!(
            exec_alu(&Inst::Sra { rd, rt, shamt: 1 }, 0x8000_0000, 0),
            Some(0xC000_0000)
        );
        let (rd, rs, rt) = r3();
        // Variable shifts use only the low 5 bits of rs.
        assert_eq!(exec_alu(&Inst::Sllv { rd, rt, rs }, 33, 1), Some(2));
    }

    #[test]
    fn immediates_sign_extend_where_specified() {
        assert_eq!(
            exec_alu(
                &Inst::Addi {
                    rt: Reg::T0,
                    rs: Reg::T1,
                    imm: -1
                },
                10,
                0
            ),
            Some(9)
        );
        // Logical immediates zero-extend.
        assert_eq!(
            exec_alu(
                &Inst::Ori {
                    rt: Reg::T0,
                    rs: Reg::T1,
                    imm: 0xFFFF
                },
                0,
                0
            ),
            Some(0xFFFF)
        );
        assert_eq!(
            exec_alu(
                &Inst::Lui {
                    rt: Reg::T0,
                    imm: 0x1234
                },
                0,
                0
            ),
            Some(0x1234_0000)
        );
    }

    #[test]
    fn branch_conditions() {
        let (_, rs, rt) = r3();
        assert_eq!(
            branch_taken(&Inst::Beq { rs, rt, off: 0 }, 3, 3),
            Some(true)
        );
        assert_eq!(
            branch_taken(&Inst::Bne { rs, rt, off: 0 }, 3, 3),
            Some(false)
        );
        assert_eq!(
            branch_taken(&Inst::Blt { rs, rt, off: 0 }, -1i32 as u32, 0),
            Some(true)
        );
        assert_eq!(
            branch_taken(&Inst::Bge { rs, rt, off: 0 }, 0, 0),
            Some(true)
        );
        assert_eq!(branch_taken(&Inst::Nop, 0, 0), None);
    }

    #[test]
    fn non_alu_returns_none() {
        assert_eq!(
            exec_alu(
                &Inst::Lw {
                    rt: Reg::T0,
                    base: Reg::SP,
                    off: 0
                },
                0,
                0
            ),
            None
        );
        assert_eq!(exec_alu(&Inst::Syscall, 0, 0), None);
    }
}
