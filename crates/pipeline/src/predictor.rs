//! Branch prediction: bimodal counters, a branch target buffer, and a
//! return-address stack.

use rse_isa::{Inst, InstClass};

/// Predictor sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Entries in the bimodal 2-bit-counter table (power of two).
    pub bimodal_entries: usize,
    /// Entries in the direct-mapped branch target buffer (power of two).
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
}

impl Default for PredictorConfig {
    fn default() -> PredictorConfig {
        PredictorConfig {
            bimodal_entries: 2048,
            btb_entries: 512,
            ras_depth: 8,
        }
    }
}

/// The fetch-stage branch predictor.
///
/// * Conditional branches: 2-bit saturating bimodal counters indexed by
///   PC; the target comes from the instruction itself (direct).
/// * `j`/`jal`: always taken, direct target.
/// * `jr ra`: popped from the return-address stack (pushed by `jal`).
/// * other `jr`/`jalr`: target from the BTB (mispredicts until trained).
#[derive(Debug, Clone)]
pub struct Predictor {
    config: PredictorConfig,
    counters: Vec<u8>,
    btb: Vec<(u32, u32)>, // (branch pc, target); pc==u32::MAX means empty
    ras: Vec<u32>,
    /// Lookups made.
    pub lookups: u64,
    /// Updates applied.
    pub updates: u64,
}

impl Predictor {
    /// Creates a predictor with all counters weakly-not-taken.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two.
    pub fn new(config: PredictorConfig) -> Predictor {
        assert!(config.bimodal_entries.is_power_of_two());
        assert!(config.btb_entries.is_power_of_two());
        Predictor {
            config,
            counters: vec![1; config.bimodal_entries],
            btb: vec![(u32::MAX, 0); config.btb_entries],
            ras: Vec::with_capacity(config.ras_depth),
            lookups: 0,
            updates: 0,
        }
    }

    fn counter_index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.config.bimodal_entries - 1)
    }

    fn btb_index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.config.btb_entries - 1)
    }

    /// Predicts the next fetch PC after `inst` at `pc`. Also performs the
    /// fetch-time RAS push for calls.
    pub fn predict_next(&mut self, pc: u32, inst: &Inst) -> u32 {
        self.lookups += 1;
        let fall_through = pc.wrapping_add(4);
        match inst.class() {
            InstClass::Branch => {
                let taken = self.counters[self.counter_index(pc)] >= 2;
                if taken {
                    inst.direct_target(pc).unwrap_or(fall_through)
                } else {
                    fall_through
                }
            }
            InstClass::Jump => match *inst {
                Inst::J { .. } => inst.direct_target(pc).unwrap_or(fall_through),
                Inst::Jal { .. } => {
                    self.push_ras(fall_through);
                    inst.direct_target(pc).unwrap_or(fall_through)
                }
                Inst::Jalr { .. } => {
                    self.push_ras(fall_through);
                    self.btb_lookup(pc).unwrap_or(fall_through)
                }
                Inst::Jr { rs } if rs == rse_isa::Reg::RA => self
                    .ras
                    .pop()
                    .or_else(|| self.btb_lookup(pc))
                    .unwrap_or(fall_through),
                Inst::Jr { .. } => self.btb_lookup(pc).unwrap_or(fall_through),
                _ => fall_through,
            },
            _ => fall_through,
        }
    }

    fn push_ras(&mut self, return_addr: u32) {
        if self.ras.len() == self.config.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(return_addr);
    }

    fn btb_lookup(&self, pc: u32) -> Option<u32> {
        let (tag, target) = self.btb[self.btb_index(pc)];
        (tag == pc).then_some(target)
    }

    /// Trains the predictor with the resolved outcome of the control-flow
    /// instruction at `pc`: whether it was `taken` and its actual
    /// `target`.
    pub fn update(&mut self, pc: u32, inst: &Inst, taken: bool, target: u32) {
        self.updates += 1;
        if inst.class() == InstClass::Branch {
            let idx = self.counter_index(pc);
            let c = &mut self.counters[idx];
            if taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        if taken && matches!(inst, Inst::Jr { .. } | Inst::Jalr { .. }) {
            let idx = self.btb_index(pc);
            self.btb[idx] = (pc, target);
        }
    }
}

impl Default for Predictor {
    fn default() -> Predictor {
        Predictor::new(PredictorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_isa::Reg;

    #[test]
    fn bimodal_learns_taken_loop() {
        let mut p = Predictor::default();
        let pc = 0x40_0010;
        let b = Inst::Bne {
            rs: Reg::T0,
            rt: Reg::ZERO,
            off: -4,
        };
        let target = b.direct_target(pc).unwrap();
        // Initially weakly-not-taken → predicts fall-through.
        assert_eq!(p.predict_next(pc, &b), pc + 4);
        p.update(pc, &b, true, target);
        // One taken outcome flips the 2-bit counter to weakly-taken.
        assert_eq!(p.predict_next(pc, &b), target);
        // Two not-taken outcomes flip it back.
        p.update(pc, &b, false, pc + 4);
        p.update(pc, &b, false, pc + 4);
        assert_eq!(p.predict_next(pc, &b), pc + 4);
    }

    #[test]
    fn direct_jumps_always_predicted() {
        let mut p = Predictor::default();
        let j = Inst::J {
            target: 0x1000 >> 2,
        };
        assert_eq!(
            p.predict_next(0x40_0000, &j),
            j.direct_target(0x40_0000).unwrap()
        );
    }

    #[test]
    fn ras_predicts_returns() {
        let mut p = Predictor::default();
        let call_pc = 0x40_0100;
        let jal = Inst::Jal {
            target: 0x2000 >> 2,
        };
        p.predict_next(call_pc, &jal); // pushes return address
        let ret = Inst::Jr { rs: Reg::RA };
        assert_eq!(p.predict_next(0x40_2000, &ret), call_pc + 4);
    }

    #[test]
    fn btb_learns_indirect_targets() {
        let mut p = Predictor::default();
        let pc = 0x40_0200;
        let jr = Inst::Jr { rs: Reg::T0 };
        // Untrained: falls through (a mispredict the pipeline will fix).
        assert_eq!(p.predict_next(pc, &jr), pc + 4);
        p.update(pc, &jr, true, 0x40_8000);
        assert_eq!(p.predict_next(pc, &jr), 0x40_8000);
    }

    #[test]
    fn ras_depth_bounded() {
        let mut p = Predictor::new(PredictorConfig {
            ras_depth: 2,
            ..Default::default()
        });
        for i in 0..5u32 {
            p.predict_next(
                0x100 + 8 * i,
                &Inst::Jal {
                    target: 0x4000 >> 2,
                },
            );
        }
        assert_eq!(p.ras.len(), 2);
    }
}
