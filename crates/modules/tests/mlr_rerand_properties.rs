//! Property tests for the MLR's layout permutation (§4.1 runtime
//! re-randomization).
//!
//! A re-randomization pass is a *permutation* of the address space:
//! segment bytes move by a delta, registered pointers are redirected by
//! the same delta, the vacated pages are scrubbed. Three properties pin
//! that down:
//!
//! 1. **Invertibility** — applying the inverse delta by hand restores
//!    the exact pre-move address-space image (digest equality), so a
//!    pass destroys no information beyond the deliberate scrub,
//! 2. **Logical-image preservation** — across many passes the
//!    *relocated* view (segment bytes at the current base + pointer
//!    offsets relative to it) keeps one digest while the raw layout
//!    digest changes every move,
//! 3. **Seed dispersion** — distinct seeds pick distinct, page-aligned
//!    bases, with a collision bound matching the page-grid birthday
//!    math.

use rse_isa::asm::assemble;
use rse_isa::layout::PAGE_SIZE;
use rse_mem::{MemConfig, MemorySystem};
use rse_modules::mlr::{Mlr, MlrConfig};
use rse_pipeline::{Pipeline, PipelineConfig};
use rse_support::rng::fnv1a64;
use rse_sys::rerand::rerandomize_segment;

/// Registered-pointer guest: `ptr` aims into the segment, `ptrtab` is
/// the compiler's special data section, `seg` is page-aligned and
/// carries a recognizable byte pattern.
const SRC: &str = r#"
    main:   halt

            .data
            .align 4
    ptr:    .word seg
    ptr2:   .word seg
    ptrtab: .word 2, ptr, ptr2
            .space 4000
            .align 4096
    seg:    .word 0x11223344, 0x55667788, 0x99aabbcc
            .space 8180
"#;

const SEG_LEN: u32 = 8192;

fn setup(seed: u64) -> (Pipeline, Mlr, u32, u32, [u32; 2]) {
    let image = assemble(SRC).unwrap();
    let seg = image.symbol("seg").unwrap();
    let ptrtab = image.symbol("ptrtab").unwrap();
    let slots = [image.symbol("ptr").unwrap(), image.symbol("ptr2").unwrap()];
    assert_eq!(seg % PAGE_SIZE, 0);
    let mut cpu = Pipeline::new(
        PipelineConfig::default(),
        MemorySystem::new(MemConfig::baseline()),
    );
    rse_sys::loader::load_process(&mut cpu, &image);
    // Stamp a non-repeating pattern across the whole segment so a
    // partial or misaligned copy cannot alias to a digest match.
    for i in 0..SEG_LEN / 4 {
        let prev = cpu.mem().memory.read_u32(seg + 4 * i);
        cpu.mem_mut()
            .memory
            .write_u32(seg + 4 * i, prev ^ (0x9E37_79B9u32.wrapping_mul(i + 1)));
    }
    let mlr = Mlr::new(MlrConfig {
        seed: Some(seed),
        ..MlrConfig::default()
    });
    (cpu, mlr, seg, ptrtab, slots)
}

/// Digest of the raw address-space window every candidate base can land
/// in (the default range mask walks ±8 MB around the current base).
fn window_digest(cpu: &Pipeline, around: u32) -> u64 {
    const HALF: u32 = 12 << 20;
    let start = around - HALF;
    let mut bytes = vec![0u8; (2 * HALF + SEG_LEN) as usize];
    cpu.mem().memory.read_bytes(start, &mut bytes);
    fnv1a64(&bytes)
}

/// Digest of the *logical* image: segment bytes read through the current
/// base, plus each registered pointer as an offset relative to that
/// base. Invariant under any correct re-randomization pass.
fn logical_digest(cpu: &Pipeline, base: u32, ptrtab: u32) -> u64 {
    let mut bytes = vec![0u8; SEG_LEN as usize];
    cpu.mem().memory.read_bytes(base, &mut bytes);
    let count = cpu.mem().memory.read_u32(ptrtab);
    for i in 0..count {
        let slot = cpu.mem().memory.read_u32(ptrtab + 4 + 4 * i);
        let off = cpu.mem().memory.read_u32(slot).wrapping_sub(base);
        bytes.extend_from_slice(&off.to_le_bytes());
    }
    fnv1a64(&bytes)
}

#[test]
fn rerandomization_is_invertible() {
    let (mut cpu, mut mlr, seg, ptrtab, slots) = setup(0xA11CE);
    let before = window_digest(&cpu, seg);
    let out = rerandomize_segment(&mut cpu, &mut mlr, ptrtab, seg, SEG_LEN);
    assert_ne!(out.new_base, seg);
    assert_eq!(out.pointers_rewritten, 2);
    assert_ne!(window_digest(&cpu, seg), before, "the pass moved bytes");

    // Apply the inverse permutation by hand: move the bytes back, scrub
    // the vacated pages, undo the pointer redirection.
    let delta = out.new_base.wrapping_sub(seg);
    let mut bytes = vec![0u8; SEG_LEN as usize];
    cpu.mem().memory.read_bytes(out.new_base, &mut bytes);
    cpu.mem_mut().memory.write_bytes(seg, &bytes);
    cpu.mem_mut()
        .memory
        .write_bytes(out.new_base, &vec![0u8; SEG_LEN as usize]);
    for slot in slots {
        let v = cpu.mem().memory.read_u32(slot);
        cpu.mem_mut().memory.write_u32(slot, v.wrapping_sub(delta));
    }
    assert_eq!(
        window_digest(&cpu, seg),
        before,
        "inverse delta restores the exact address-space image"
    );
}

#[test]
fn logical_image_digest_is_preserved_across_moves() {
    let (mut cpu, mut mlr, seg, ptrtab, _) = setup(0xB0B);
    let logical = logical_digest(&cpu, seg, ptrtab);
    let mut base = seg;
    let mut raw_digests = vec![window_digest(&cpu, seg)];
    for pass in 0..5 {
        let out = rerandomize_segment(&mut cpu, &mut mlr, ptrtab, base, SEG_LEN);
        base = out.new_base;
        assert_eq!(
            logical_digest(&cpu, base, ptrtab),
            logical,
            "pass {pass}: the relocated view is unchanged"
        );
        raw_digests.push(window_digest(&cpu, seg));
    }
    // ... while the raw layout genuinely changed every single pass.
    let distinct: std::collections::BTreeSet<u64> = raw_digests.iter().copied().collect();
    assert_eq!(distinct.len(), raw_digests.len());
}

#[test]
fn distinct_seeds_yield_distinct_layouts() {
    const SEEDS: u64 = 64;
    // The default range mask spreads bases over a 16 MB window: 4096
    // page slots. Birthday math puts the expected collisions for 64
    // draws at ~0.5; demanding ≥ 56 distinct bases leaves generous
    // slack without ever flaking (the draws are deterministic anyway).
    const MIN_DISTINCT: usize = 56;
    let old_base = 0x1000_1000;
    let mut bases = std::collections::BTreeSet::new();
    for s in 0..SEEDS {
        let mut mlr = Mlr::new(MlrConfig {
            seed: Some(0xC0FFEE ^ (s << 8)),
            ..MlrConfig::default()
        });
        let base = mlr.pick_rerandomized_base(old_base, SEG_LEN, 1_000);
        assert_eq!(base % PAGE_SIZE, 0, "seed {s}: bases stay page-aligned");
        assert_ne!(base, old_base, "seed {s}: a move never lands in place");
        bases.insert(base);

        // Same seed, same draw: the layout is a pure function of the seed.
        let mut twin = Mlr::new(MlrConfig {
            seed: Some(0xC0FFEE ^ (s << 8)),
            ..MlrConfig::default()
        });
        assert_eq!(twin.pick_rerandomized_base(old_base, SEG_LEN, 1_000), base);
    }
    assert!(
        bases.len() >= MIN_DISTINCT,
        "{} distinct bases from {SEEDS} seeds (collision bound {MIN_DISTINCT})",
        bases.len()
    );
}
