//! Property-based tests of the AHBM adaptive-timeout estimator and the
//! remote-peer suspicion monitor (in-repo harness, no external deps).

use rse_modules::{q16, Ahbm, AhbmConfig, IntervalEstimator, PeerConfig, PeerMonitor, PeerState};
use rse_support::prelude::*;

/// Feeds `n` intervals of `base ± jitter` (jitter pattern derived from
/// `noise`) into a fresh estimator and returns it.
fn converge(base: u64, jitter: u64, noise: u64, n: u32, cfg: &AhbmConfig) -> IntervalEstimator {
    let mut est = IntervalEstimator::new();
    let mut s = noise;
    for _ in 0..n {
        let wobble = rse_support::rng::splitmix64(&mut s) % (2 * jitter + 1);
        let interval = base + wobble - jitter.min(base);
        est.observe(interval, cfg.alpha_q16, cfg.beta_q16);
    }
    est
}

proptest! {
    /// Jacobson/Karn convergence: under jittered-but-bounded intervals
    /// (`base ± jitter`), the adaptive timeout settles inside
    /// `[base - jitter, base + jitter + k·(2·jitter) + slack]` — i.e. it
    /// tracks `mean + k·dev` where the mean is within the jitter band
    /// and the deviation is bounded by the jitter amplitude.
    #[test]
    fn timeout_converges_to_mean_plus_k_dev(
        base in 200u64..20_000,
        jitter_pct in 0u64..30,
        noise in any::<u64>(),
    ) {
        let cfg = AhbmConfig { min_timeout: 1, initial_timeout: 1, ..AhbmConfig::default() };
        let jitter = base * jitter_pct / 100;
        let est = converge(base, jitter, noise, 400, &cfg);
        let mean = est.mean_cycles();
        prop_assert!(mean >= base.saturating_sub(jitter), "mean {mean} below band {base}-{jitter}");
        prop_assert!(mean <= base + jitter, "mean {mean} above band {base}+{jitter}");
        // dev is an EWMA of |err| ≤ 2·jitter; allow integer-truncation slack.
        prop_assert!(
            est.deviation_cycles() <= 2 * jitter + 1,
            "dev {} exceeds jitter bound {}", est.deviation_cycles(), 2 * jitter + 1
        );
        let timeout = est.timeout(cfg.k_q16, cfg.min_timeout, cfg.initial_timeout);
        // timeout = mean + 4·dev ≤ (base + jitter) + 4·(2·jitter) + slack.
        let upper = base + jitter + 8 * jitter + 8;
        prop_assert!(timeout >= mean, "timeout {timeout} below mean {mean}");
        prop_assert!(timeout <= upper, "timeout {timeout} above bound {upper}");
    }

    /// The configured floor holds: however regular the heartbeat (zero
    /// deviation drives `mean + k·dev` toward `mean`), the effective
    /// timeout never collapses below `min_timeout`.
    #[test]
    fn timeout_never_collapses_below_the_floor(
        interval in 1u64..500,
        min_timeout in 1u64..10_000,
        beats in 1u32..300,
    ) {
        let cfg = AhbmConfig { min_timeout, ..AhbmConfig::default() };
        let mut est = IntervalEstimator::new();
        for _ in 0..beats {
            est.observe(interval, cfg.alpha_q16, cfg.beta_q16);
        }
        let t = est.timeout(cfg.k_q16, cfg.min_timeout, cfg.initial_timeout);
        prop_assert!(t >= min_timeout, "timeout {t} below floor {min_timeout}");
    }

    /// Q16.16 gains keep the estimator exact under replay: two
    /// estimators fed the same intervals agree bit-for-bit, whatever
    /// the (nonzero) gains.
    #[test]
    fn estimator_is_replay_exact_for_any_gains(
        intervals in rse_support::collection::vec(1u64..1_000_000, 1..100),
        a_den in 1u32..64,
        b_den in 1u32..64,
    ) {
        let (alpha, beta) = (q16(1, a_den), q16(1, b_den));
        let mut x = IntervalEstimator::new();
        let mut y = IntervalEstimator::new();
        for &i in &intervals {
            x.observe(i, alpha, beta);
            y.observe(i, alpha, beta);
        }
        prop_assert_eq!(x.mean_q16(), y.mean_q16());
        prop_assert_eq!(x.dev_q16(), y.dev_q16());
    }

    /// Losing a single heartbeat — the next one arriving before the
    /// adaptive timeout expires — must never flip a local entity to
    /// failed: the AHBM tolerates isolated loss by construction.
    #[test]
    fn one_lost_beat_below_timeout_is_tolerated(
        interval in 64u64..2_000,
        warmup in 8u32..64,
        lost_at in 0u32..8,
    ) {
        let cfg = AhbmConfig {
            sample_interval: 16,
            min_timeout: 4 * interval, // timeout comfortably above one gap
            initial_timeout: 8 * interval,
            ..AhbmConfig::default()
        };
        let mut ahbm = Ahbm::new(cfg);
        ahbm.register(1, 0);
        let mut now = 0;
        for _ in 0..warmup {
            now += interval;
            ahbm.beat(1, now);
            ahbm.host_sample(now);
        }
        // One beat lost: double gap, but 2·interval < 4·interval floor.
        let lost = warmup + lost_at;
        let _ = lost;
        now += 2 * interval;
        ahbm.host_sample(now - interval); // sampler runs during the gap
        ahbm.beat(1, now);
        ahbm.host_sample(now);
        prop_assert!(ahbm.is_alive(1), "single lost beat declared entity failed");
        prop_assert!(ahbm.take_failed().is_empty());
    }

    /// The same tolerance at fleet level: a suspicion raised by one
    /// lost beat is refuted by the following beat (probe reply), and
    /// the peer is never declared Dead while gaps stay below the probe
    /// budget's reach.
    #[test]
    fn peer_survives_one_lost_beat(
        interval in 64u64..1_500,
        warmup in 8u32..48,
    ) {
        let cfg = PeerConfig {
            ahbm: AhbmConfig {
                sample_interval: 16,
                min_timeout: 3 * interval,
                initial_timeout: 8 * interval,
                ..AhbmConfig::default()
            },
            probe_base: 4 * interval,
            max_probes: 3,
        };
        let mut mon = PeerMonitor::new(cfg);
        mon.register(7, 0);
        let mut now = 0;
        for _ in 0..warmup {
            now += interval;
            mon.beat(7, now);
            mon.sample(now);
        }
        now += 2 * interval; // one beat lost
        mon.sample(now - interval);
        mon.beat(7, now);
        mon.sample(now);
        let _ = mon.take_events();
        prop_assert_eq!(mon.state(7), PeerState::Alive);
    }
}
