//! Property-based tests of the module-level invariants.

use rse_isa::layout::PAGE_SIZE;
use rse_modules::ddt::{transition, Ddt, DdtConfig, PageOwners};
use rse_modules::mlr::{Mlr, MlrConfig};
use rse_support::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The DDT's PST/DDM against a shadow model: replay a random access
    /// trace through `debug_track_*` and independently through a naive
    /// map; ownership, dependency edges and SavePage counts must agree.
    #[test]
    fn ddt_matches_shadow_model(trace in rse_support::collection::vec(
        (0usize..6, 0u32..8, any::<bool>()), 1..300,
    )) {
        let mut ddt = Ddt::new(DdtConfig::default());
        let mut shadow: HashMap<u32, PageOwners> = HashMap::new();
        let mut shadow_edges: std::collections::HashSet<(usize, usize)> = Default::default();
        let mut shadow_saves = 0u64;
        for (thread, page, is_write) in trace {
            ddt.set_current_thread(thread);
            let owners = shadow.entry(page).or_default();
            let actions = transition(owners, thread, is_write);
            if let Some(edge) = actions.log_dependency {
                shadow_edges.insert(edge);
            }
            if actions.save_page {
                shadow_saves += 1;
            }
            if is_write {
                let saved = ddt.debug_track_write(page);
                prop_assert_eq!(saved, actions.save_page);
            } else {
                let dep = ddt.debug_track_read(page);
                prop_assert_eq!(dep, actions.log_dependency);
            }
        }
        // Ownership states agree page by page.
        for (page, owners) in &shadow {
            prop_assert_eq!(ddt.pst().peek(*page), Some(*owners));
        }
        // Every shadow edge is in the DDM and vice versa.
        for &(p, c) in &shadow_edges {
            prop_assert!(ddt.ddm().depends(p, c));
        }
        prop_assert_eq!(ddt.ddm().edge_count(), shadow_edges.len());
        let _ = shadow_saves;
    }

    /// SavePage never fires for single-threaded traces, no matter the
    /// access pattern — the Figure 9 "one thread, zero saved pages" fact
    /// as a property.
    #[test]
    fn single_thread_never_saves(trace in rse_support::collection::vec((0u32..16, any::<bool>()), 1..200)) {
        let mut ddt = Ddt::new(DdtConfig::default());
        ddt.set_current_thread(3);
        for (page, is_write) in trace {
            if is_write {
                prop_assert!(!ddt.debug_track_write(page));
            } else {
                prop_assert!(ddt.debug_track_read(page).is_none());
            }
        }
        prop_assert_eq!(ddt.ddm().edge_count(), 0);
    }

    /// MLR re-randomized bases are always page-aligned, never equal to
    /// the previous base, and distinct draws diverge.
    #[test]
    fn rerandomized_bases_are_sound(seed in 1u64..u64::MAX, base_page in 0x1000u32..0x40000) {
        let old_base = base_page * PAGE_SIZE;
        let mut mlr = Mlr::new(MlrConfig { seed: Some(seed), ..MlrConfig::default() });
        let a = mlr.pick_rerandomized_base(old_base, 8192, 0);
        let b = mlr.pick_rerandomized_base(old_base, 8192, 0);
        prop_assert_eq!(a % PAGE_SIZE, 0);
        prop_assert_eq!(b % PAGE_SIZE, 0);
        prop_assert_ne!(a, old_base);
        prop_assert_ne!(b, old_base);
        // Two draws from the same stream almost surely differ; equality
        // would indicate a stuck RNG.
        prop_assert_ne!(a, b);
    }
}

/// The taint set is monotone: adding accesses can only grow it.
#[test]
fn taint_is_monotone_under_new_dependencies() {
    let mut ddt = Ddt::new(DdtConfig::default());
    ddt.set_current_thread(1);
    ddt.debug_track_write(10);
    ddt.set_current_thread(2);
    ddt.debug_track_read(10); // 1 -> 2
    let before = ddt.tainted_by(1);
    ddt.set_current_thread(2);
    ddt.debug_track_write(11);
    ddt.set_current_thread(3);
    ddt.debug_track_read(11); // 2 -> 3
    let after = ddt.tainted_by(1);
    assert!(
        before.iter().all(|t| after.contains(t)),
        "{before:?} ⊄ {after:?}"
    );
    assert!(after.contains(&3));
}
