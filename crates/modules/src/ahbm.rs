//! The Adaptive Heartbeat Monitor (AHBM) — §4.4 of the paper.
//!
//! Hardware support for heartbeating of operating-system and application
//! processes/threads. The block diagram of Figure 7:
//!
//! * `ENTITY_IDX` — a content-addressable memory holding the ids of
//!   monitored entities,
//! * `COUNTER_RAM` — per-entity heartbeat counters, incremented by the
//!   *Increment Counter Value* CHECK instruction,
//! * `TIMEOUT_MEM` — per-entity dynamic timeout values,
//! * the *Adaptive Timeout Monitor* — samples the counters at a fixed
//!   interval and recalculates per-entity timeouts with an adaptive
//!   algorithm.
//!
//! The paper omits the timeout algorithm "due to space limitations"; we
//! use the classic Jacobson/Karn mean-plus-deviation estimator (the same
//! family used for TCP RTO): the mean inter-beat interval and its mean
//! absolute deviation are tracked with exponentially weighted moving
//! averages, and `timeout = mean + k·dev` (with a floor). An entity whose
//! counter does not advance for longer than its timeout is declared dead.

use rse_core::{ChkDispatch, Module, ModuleCtx, Verdict};
use rse_isa::chk::ops;
use rse_isa::ModuleId;
use rse_pipeline::RobId;
use std::any::Any;
use std::collections::HashMap;

/// An identifier of a monitored entity (process/thread/OS), as carried in
/// the CHECK instruction's 16-bit parameter.
pub type EntityId = u16;

/// AHBM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AhbmConfig {
    /// Sampling interval of the Adaptive Timeout Monitor, in cycles.
    pub sample_interval: u64,
    /// EWMA gain for the mean inter-beat interval (0 < alpha ≤ 1).
    pub alpha: f64,
    /// EWMA gain for the mean absolute deviation.
    pub beta: f64,
    /// Deviation multiplier `k` in `timeout = mean + k·dev`.
    pub k: f64,
    /// Lower bound on the timeout, in cycles (guards against a timeout
    /// collapsing to ~0 for perfectly regular heartbeats).
    pub min_timeout: u64,
    /// Initial timeout before any interval estimate exists.
    pub initial_timeout: u64,
}

impl Default for AhbmConfig {
    fn default() -> AhbmConfig {
        AhbmConfig {
            sample_interval: 256,
            alpha: 0.125,
            beta: 0.25,
            k: 4.0,
            min_timeout: 512,
            initial_timeout: 100_000,
        }
    }
}

/// Liveness state of one monitored entity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntityState {
    /// Heartbeat counter (`COUNTER_RAM` value).
    pub counter: u64,
    /// Estimated mean inter-beat interval, cycles.
    pub mean_interval: f64,
    /// Estimated mean absolute deviation of the interval.
    pub deviation: f64,
    /// Current dynamic timeout (`TIMEOUT_MEM` value), cycles.
    pub timeout: u64,
    /// Cycle of the last observed counter change.
    pub last_beat: u64,
    /// Whether the monitor currently believes the entity is alive.
    pub alive: bool,
}

/// AHBM counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AhbmStats {
    /// Heartbeats applied (committed `AHBM_BEAT` CHECKs).
    pub beats: u64,
    /// Entities registered.
    pub registrations: u64,
    /// Liveness failures declared.
    pub failures_declared: u64,
    /// Sampling passes performed.
    pub samples: u64,
}

#[derive(Debug, Clone, Copy)]
enum PendingOp {
    Register(EntityId),
    Beat(EntityId),
    Deregister(EntityId),
}

/// The Adaptive Heartbeat Monitor module.
#[derive(Debug)]
pub struct Ahbm {
    config: AhbmConfig,
    entities: HashMap<EntityId, EntityState>,
    pending: HashMap<RobId, PendingOp>,
    failed: Vec<EntityId>,
    next_sample: u64,
    stats: AhbmStats,
    /// Duplicated running sum of all `COUNTER_RAM` values, maintained at
    /// every legitimate counter update, so the §3.4 self-test can detect
    /// a soft error upsetting a heartbeat counter.
    counter_shadow: u64,
}

impl Ahbm {
    /// Creates an AHBM module.
    pub fn new(config: AhbmConfig) -> Ahbm {
        Ahbm {
            config,
            entities: HashMap::new(),
            pending: HashMap::new(),
            failed: Vec::new(),
            next_sample: 0,
            stats: AhbmStats::default(),
            counter_shadow: 0,
        }
    }

    /// Module counters.
    pub fn stats(&self) -> AhbmStats {
        self.stats
    }

    /// The state of a monitored entity.
    pub fn entity(&self, id: EntityId) -> Option<&EntityState> {
        self.entities.get(&id)
    }

    /// Whether the monitor believes `id` is alive (unknown entities are
    /// not alive).
    pub fn is_alive(&self, id: EntityId) -> bool {
        self.entities.get(&id).is_some_and(|e| e.alive)
    }

    /// Entities declared dead since the last call.
    pub fn take_failed(&mut self) -> Vec<EntityId> {
        std::mem::take(&mut self.failed)
    }

    /// Registers an entity directly (OS-side path; equivalent to a
    /// committed `AHBM_REGISTER` CHECK).
    pub fn register(&mut self, id: EntityId, now: u64) {
        self.stats.registrations += 1;
        if let Some(old) = self.entities.get(&id) {
            // Re-registration resets the counter: keep the shadow sum
            // consistent.
            self.counter_shadow -= old.counter;
        }
        self.entities.insert(
            id,
            EntityState {
                counter: 0,
                mean_interval: 0.0,
                deviation: 0.0,
                timeout: self.config.initial_timeout,
                last_beat: now,
                alive: true,
            },
        );
    }

    /// Stops monitoring `id` (OS-side path; equivalent to a committed
    /// `AHBM_DEREGISTER` CHECK).
    pub fn deregister(&mut self, id: EntityId) {
        if let Some(old) = self.entities.remove(&id) {
            self.counter_shadow -= old.counter;
        }
    }

    /// Applies one heartbeat for `id` at cycle `now`.
    pub fn beat(&mut self, id: EntityId, now: u64) {
        let cfg = self.config;
        let Some(e) = self.entities.get_mut(&id) else {
            return;
        };
        self.stats.beats += 1;
        e.counter += 1;
        self.counter_shadow += 1;
        let measured = (now - e.last_beat) as f64;
        if e.mean_interval == 0.0 {
            e.mean_interval = measured;
            e.deviation = measured / 2.0;
        } else {
            let err = measured - e.mean_interval;
            e.mean_interval += cfg.alpha * err;
            e.deviation += cfg.beta * (err.abs() - e.deviation);
        }
        e.timeout = ((e.mean_interval + cfg.k * e.deviation) as u64).max(cfg.min_timeout);
        e.last_beat = now;
        // A heartbeat resurrects a previously-declared-dead entity (e.g.
        // a stalled thread that resumed).
        e.alive = true;
    }

    /// Host-side sampling hook: runs one Adaptive Timeout Monitor pass if
    /// the sampling interval has elapsed (the same behavior `Module::tick`
    /// performs inside the engine) — used by host-level evaluations that
    /// drive the module without a pipeline.
    pub fn host_sample(&mut self, now: u64) {
        if now >= self.next_sample {
            self.sample(now);
            self.next_sample = now + self.config.sample_interval;
        }
    }

    fn sample(&mut self, now: u64) {
        self.stats.samples += 1;
        for (id, e) in self.entities.iter_mut() {
            if e.alive && now.saturating_sub(e.last_beat) > e.timeout {
                e.alive = false;
                self.failed.push(*id);
                self.stats.failures_declared += 1;
            }
        }
    }
}

impl Module for Ahbm {
    fn id(&self) -> ModuleId {
        ModuleId::AHBM
    }

    fn name(&self) -> &'static str {
        "adaptive-heartbeat-monitor"
    }

    fn on_chk(&mut self, chk: &ChkDispatch, ctx: &mut ModuleCtx<'_>) {
        if chk.spec.op == ops::SELFTEST {
            let verdict = self.self_test();
            ctx.complete_check(chk.rob, verdict);
            return;
        }
        let id = chk.spec.param;
        let op = match chk.spec.op {
            ops::AHBM_REGISTER => PendingOp::Register(id),
            ops::AHBM_BEAT => PendingOp::Beat(id),
            ops::AHBM_DEREGISTER => PendingOp::Deregister(id),
            _ => return,
        };
        // Asynchronous module: the effect is logged at commit.
        self.pending.insert(chk.rob, op);
    }

    fn on_commit(&mut self, rob: RobId, ctx: &mut ModuleCtx<'_>) {
        let Some(op) = self.pending.remove(&rob) else {
            return;
        };
        match op {
            PendingOp::Register(id) => self.register(id, ctx.now),
            PendingOp::Beat(id) => self.beat(id, ctx.now),
            PendingOp::Deregister(id) => self.deregister(id),
        }
    }

    fn on_squash(&mut self, rob: RobId, _ctx: &mut ModuleCtx<'_>) {
        self.pending.remove(&rob);
    }

    fn tick(&mut self, ctx: &mut ModuleCtx<'_>) {
        if ctx.now >= self.next_sample {
            self.sample(ctx.now);
            self.next_sample = ctx.now + self.config.sample_interval;
        }
    }

    fn self_test(&mut self) -> Verdict {
        // Recompute the COUNTER_RAM sum and compare it to the duplicated
        // running total.
        let sum: u64 = self.entities.values().map(|e| e.counter).sum();
        if sum == self.counter_shadow {
            Verdict::Pass
        } else {
            Verdict::Fail
        }
    }

    fn corrupt_state(&mut self, seed: u64) -> bool {
        // Upset one heartbeat counter (deterministically picked by the
        // seed over the sorted entity ids) without touching the shadow.
        let mut ids: Vec<EntityId> = self.entities.keys().copied().collect();
        ids.sort_unstable();
        if let Some(&id) = ids.get(seed as usize % ids.len().max(1)) {
            let delta = 1 + (seed >> 8) % 7;
            self.entities
                .get_mut(&id)
                .expect("picked from live keys")
                .counter += delta;
        } else {
            // No monitored entities: upset the shadow register instead.
            self.counter_shadow ^= 1 << (seed % 64);
        }
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_core::Verdict;

    #[test]
    fn selftest_passes_until_counter_is_corrupted() {
        let mut ahbm = Ahbm::new(AhbmConfig::default());
        ahbm.register(7, 0);
        ahbm.beat(7, 100);
        ahbm.beat(7, 200);
        assert_eq!(Module::self_test(&mut ahbm), Verdict::Pass);
        assert!(Module::corrupt_state(&mut ahbm, 99));
        assert_eq!(Module::self_test(&mut ahbm), Verdict::Fail);
    }

    #[test]
    fn deregister_keeps_shadow_sum_consistent() {
        let mut ahbm = Ahbm::new(AhbmConfig::default());
        ahbm.register(1, 0);
        ahbm.register(2, 0);
        ahbm.beat(1, 10);
        ahbm.beat(2, 10);
        ahbm.beat(2, 20);
        // Deregistration of entity 2 must subtract its beats.
        ahbm.deregister(2);
        assert_eq!(Module::self_test(&mut ahbm), Verdict::Pass);
        // Re-registration resets the counter without breaking the sum.
        ahbm.register(1, 30);
        assert_eq!(Module::self_test(&mut ahbm), Verdict::Pass);
    }

    fn cfg() -> AhbmConfig {
        AhbmConfig {
            sample_interval: 10,
            min_timeout: 50,
            initial_timeout: 1000,
            ..AhbmConfig::default()
        }
    }

    fn drive(ahbm: &mut Ahbm, beats: &[(EntityId, u64)], until: u64) {
        // Apply beats at their cycles, sampling as the module would.
        let mut next_sample = 0;
        let mut bi = 0;
        for now in 0..until {
            while bi < beats.len() && beats[bi].1 == now {
                ahbm.beat(beats[bi].0, now);
                bi += 1;
            }
            if now >= next_sample {
                ahbm.sample(now);
                next_sample = now + ahbm.config.sample_interval;
            }
        }
    }

    #[test]
    fn regular_heartbeats_stay_alive() {
        let mut a = Ahbm::new(cfg());
        a.register(1, 0);
        let beats: Vec<(EntityId, u64)> = (1..50).map(|i| (1, i * 20)).collect();
        drive(&mut a, &beats, 1000);
        assert!(a.is_alive(1));
        assert!(a.take_failed().is_empty());
        // The adaptive timeout converged near the beat interval.
        let e = a.entity(1).unwrap();
        assert!(
            (e.mean_interval - 20.0).abs() < 1.0,
            "mean={}",
            e.mean_interval
        );
        assert_eq!(e.timeout, 50, "floored at min_timeout");
    }

    #[test]
    fn silence_is_detected() {
        let mut a = Ahbm::new(cfg());
        a.register(1, 0);
        // Beats every 20 cycles until cycle 400, then silence.
        let beats: Vec<(EntityId, u64)> = (1..21).map(|i| (1, i * 20)).collect();
        drive(&mut a, &beats, 2000);
        assert!(!a.is_alive(1));
        assert_eq!(a.take_failed(), vec![1]);
        assert_eq!(a.stats().failures_declared, 1);
    }

    #[test]
    fn adaptive_timeout_tolerates_slow_but_regular_entities() {
        let mut a = Ahbm::new(AhbmConfig {
            min_timeout: 10,
            ..cfg()
        });
        a.register(1, 0); // fast: every 20 cycles
        a.register(2, 0); // slow: every 300 cycles
        let mut beats: Vec<(EntityId, u64)> = Vec::new();
        for i in 1..100 {
            beats.push((1, i * 20));
        }
        for i in 1..7 {
            beats.push((2, i * 300));
        }
        beats.sort_by_key(|b| b.1);
        drive(&mut a, &beats, 2000);
        // The slow entity's timeout adapted upward, so it is still alive
        // despite an interval that would kill the fast entity.
        assert!(a.is_alive(2));
        assert!(a.entity(2).unwrap().timeout >= 300);
        assert!(a.entity(1).unwrap().timeout < a.entity(2).unwrap().timeout);
    }

    #[test]
    fn faster_detection_for_faster_entities() {
        let mut a = Ahbm::new(AhbmConfig {
            min_timeout: 10,
            ..cfg()
        });
        a.register(1, 0);
        a.register(2, 0);
        let mut beats: Vec<(EntityId, u64)> = Vec::new();
        for i in 1..50 {
            beats.push((1, i * 20)); // dies at 1000
        }
        for i in 1..4 {
            beats.push((2, i * 300)); // dies at 900
        }
        beats.sort_by_key(|b| b.1);
        drive(&mut a, &beats, 5000);
        assert!(!a.is_alive(1));
        assert!(!a.is_alive(2));
        // Detection latency relative to last beat is shorter for the
        // fast-beating entity (its adaptive timeout is tighter).
        assert!(a.entity(1).unwrap().timeout < a.entity(2).unwrap().timeout);
    }

    #[test]
    fn resurrection_on_new_beat() {
        let mut a = Ahbm::new(cfg());
        a.register(1, 0);
        let beats: Vec<(EntityId, u64)> = (1..11).map(|i| (1, i * 20)).collect();
        drive(&mut a, &beats, 1500);
        assert!(!a.is_alive(1));
        a.beat(1, 1500);
        assert!(a.is_alive(1));
    }

    #[test]
    fn deregistered_entities_are_forgotten() {
        let mut a = Ahbm::new(cfg());
        a.register(3, 0);
        assert!(a.is_alive(3));
        a.entities.remove(&3);
        assert!(!a.is_alive(3));
        assert!(a.entity(3).is_none());
    }

    #[test]
    fn beats_for_unregistered_entities_ignored() {
        let mut a = Ahbm::new(cfg());
        a.beat(9, 100);
        assert_eq!(a.stats().beats, 0);
        assert!(!a.is_alive(9));
    }
}
