//! The Adaptive Heartbeat Monitor (AHBM) — §4.4 of the paper.
//!
//! Hardware support for heartbeating of operating-system and application
//! processes/threads. The block diagram of Figure 7:
//!
//! * `ENTITY_IDX` — a content-addressable memory holding the ids of
//!   monitored entities,
//! * `COUNTER_RAM` — per-entity heartbeat counters, incremented by the
//!   *Increment Counter Value* CHECK instruction,
//! * `TIMEOUT_MEM` — per-entity dynamic timeout values,
//! * the *Adaptive Timeout Monitor* — samples the counters at a fixed
//!   interval and recalculates per-entity timeouts with an adaptive
//!   algorithm.
//!
//! The paper omits the timeout algorithm "due to space limitations"; we
//! use the classic Jacobson/Karn mean-plus-deviation estimator (the same
//! family used for TCP RTO): the mean inter-beat interval and its mean
//! absolute deviation are tracked with exponentially weighted moving
//! averages, and `timeout = mean + k·dev` (with a floor). An entity whose
//! counter does not advance for longer than its timeout is declared dead.
//!
//! ## Fixed-point arithmetic
//!
//! The estimator state is kept in **Q16.16 fixed point** (integer cycles
//! scaled by 2^16) rather than `f64`. The EWMA gains are Q16.16 constants
//! and every update is pure integer arithmetic (shifts, adds, widening
//! multiplies), so the adaptive timeouts are bit-identical across
//! platforms, compilers, and optimization levels — a requirement for the
//! replayable fleet goldens (`fleet_soak`), and an accurate model of what
//! the hardware Adaptive Timeout Monitor would actually implement.
//!
//! ## Remote-peer monitoring
//!
//! [`PeerMonitor`] extends the block from *local-entity* monitoring to
//! *remote-peer* monitoring for the fleet heartbeat fabric: incoming
//! heartbeat messages from peer nodes increment `COUNTER_RAM` entries
//! keyed by peer id, the same adaptive estimator drives a three-level
//! suspicion state (Alive → Suspect → Dead) with probe-before-declare
//! retry and exponential backoff mirroring the per-module health machine
//! in `rse_core::health`.

use rse_core::{ChkDispatch, Module, ModuleCtx, Verdict};
use rse_isa::chk::ops;
use rse_isa::ModuleId;
use rse_pipeline::RobId;
use std::any::Any;
use std::collections::{BTreeMap, HashMap};

/// An identifier of a monitored entity (process/thread/OS), as carried in
/// the CHECK instruction's 16-bit parameter.
pub type EntityId = u16;

/// One in Q16.16 fixed point.
pub const Q16_ONE: u32 = 1 << 16;

/// AHBM configuration.
///
/// The EWMA gains are expressed in Q16.16 fixed point (see [`q16`]); the
/// defaults correspond to the classic Jacobson/Karn constants
/// `alpha = 1/8`, `beta = 1/4`, `k = 4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AhbmConfig {
    /// Sampling interval of the Adaptive Timeout Monitor, in cycles.
    pub sample_interval: u64,
    /// EWMA gain for the mean inter-beat interval, Q16.16 (0 < alpha ≤ 1).
    pub alpha_q16: u32,
    /// EWMA gain for the mean absolute deviation, Q16.16.
    pub beta_q16: u32,
    /// Deviation multiplier `k` in `timeout = mean + k·dev`, Q16.16.
    pub k_q16: u32,
    /// Lower bound on the timeout, in cycles (guards against a timeout
    /// collapsing to ~0 for perfectly regular heartbeats).
    pub min_timeout: u64,
    /// Initial timeout before any interval estimate exists.
    pub initial_timeout: u64,
}

/// Converts the rational `num/den` to Q16.16 fixed point (truncating).
///
/// `q16(1, 8)` is the Jacobson `alpha`, `q16(4, 1)` the classic `k`.
pub const fn q16(num: u32, den: u32) -> u32 {
    (((num as u64) << 16) / den as u64) as u32
}

impl AhbmConfig {
    /// Converts the rational `num/den` to Q16.16 fixed point.
    pub const fn q16(num: u32, den: u32) -> u32 {
        q16(num, den)
    }
}

impl Default for AhbmConfig {
    fn default() -> AhbmConfig {
        AhbmConfig {
            sample_interval: 256,
            alpha_q16: q16(1, 8),
            beta_q16: q16(1, 4),
            k_q16: q16(4, 1),
            min_timeout: 512,
            initial_timeout: 100_000,
        }
    }
}

/// The Jacobson/Karn mean-plus-deviation interval estimator in Q16.16
/// fixed point.
///
/// All state and arithmetic are integer-only, so a sequence of
/// `observe()` calls produces bit-identical `timeout()` values on every
/// platform and optimization level. Intermediate products are widened to
/// 128 bits so even pathological intervals (up to 2^47 cycles) cannot
/// overflow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalEstimator {
    /// Estimated mean inter-beat interval, Q16.16 cycles.
    mean_q16: u64,
    /// Estimated mean absolute deviation of the interval, Q16.16 cycles.
    dev_q16: u64,
    /// Whether at least one interval has been observed.
    primed: bool,
}

impl IntervalEstimator {
    /// A fresh estimator with no observations.
    pub fn new() -> IntervalEstimator {
        IntervalEstimator::default()
    }

    /// Whether at least one interval has been observed.
    pub fn primed(&self) -> bool {
        self.primed
    }

    /// Feeds one measured inter-beat interval (in cycles).
    pub fn observe(&mut self, measured: u64, alpha_q16: u32, beta_q16: u32) {
        // Clamp into the range representable without overflow (2^47
        // cycles is ~4 days at 1 GHz — far beyond any simulated run).
        let m_q16 = measured.min(1 << 47) << 16;
        if !self.primed {
            self.mean_q16 = m_q16;
            self.dev_q16 = m_q16 / 2;
            self.primed = true;
            return;
        }
        // err = measured - mean (signed, Q16.16)
        let err: i128 = m_q16 as i128 - self.mean_q16 as i128;
        // mean += alpha * err
        let mean = self.mean_q16 as i128 + ((alpha_q16 as i128 * err) >> 16);
        self.mean_q16 = mean.clamp(0, u64::MAX as i128) as u64;
        // dev += beta * (|err| - dev)
        let derr: i128 = err.abs() - self.dev_q16 as i128;
        let dev = self.dev_q16 as i128 + ((beta_q16 as i128 * derr) >> 16);
        self.dev_q16 = dev.clamp(0, u64::MAX as i128) as u64;
    }

    /// The adaptive timeout `mean + k·dev` in whole cycles, floored at
    /// `min_timeout`; before any observation, `initial_timeout`.
    pub fn timeout(&self, k_q16: u32, min_timeout: u64, initial_timeout: u64) -> u64 {
        if !self.primed {
            return initial_timeout;
        }
        let kdev = ((k_q16 as u128 * self.dev_q16 as u128) >> 16) as u64;
        (self.mean_q16.saturating_add(kdev) >> 16).max(min_timeout)
    }

    /// The mean interval estimate, truncated to whole cycles.
    pub fn mean_cycles(&self) -> u64 {
        self.mean_q16 >> 16
    }

    /// The deviation estimate, truncated to whole cycles.
    pub fn deviation_cycles(&self) -> u64 {
        self.dev_q16 >> 16
    }

    /// The raw Q16.16 mean (for tests asserting bit-exactness).
    pub fn mean_q16(&self) -> u64 {
        self.mean_q16
    }

    /// The raw Q16.16 deviation (for tests asserting bit-exactness).
    pub fn dev_q16(&self) -> u64 {
        self.dev_q16
    }
}

/// Liveness state of one monitored entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntityState {
    /// Heartbeat counter (`COUNTER_RAM` value).
    pub counter: u64,
    /// The fixed-point Jacobson/Karn interval estimator.
    pub est: IntervalEstimator,
    /// Current dynamic timeout (`TIMEOUT_MEM` value), cycles.
    pub timeout: u64,
    /// Cycle of the last observed counter change.
    pub last_beat: u64,
    /// Whether the monitor currently believes the entity is alive.
    pub alive: bool,
}

/// AHBM counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AhbmStats {
    /// Heartbeats applied (committed `AHBM_BEAT` CHECKs).
    pub beats: u64,
    /// Entities registered.
    pub registrations: u64,
    /// Liveness failures declared.
    pub failures_declared: u64,
    /// Sampling passes performed.
    pub samples: u64,
}

#[derive(Debug, Clone, Copy)]
enum PendingOp {
    Register(EntityId),
    Beat(EntityId),
    Deregister(EntityId),
}

/// The Adaptive Heartbeat Monitor module.
///
/// Entities are kept in a `BTreeMap` so sampling visits them in sorted id
/// order: the order in which same-cycle failures are declared (and thus
/// the order of [`Ahbm::take_failed`]) is deterministic across processes
/// and platforms.
#[derive(Debug)]
pub struct Ahbm {
    config: AhbmConfig,
    entities: BTreeMap<EntityId, EntityState>,
    pending: HashMap<RobId, PendingOp>,
    failed: Vec<EntityId>,
    next_sample: u64,
    stats: AhbmStats,
    /// Duplicated running sum of all `COUNTER_RAM` values, maintained at
    /// every legitimate counter update, so the §3.4 self-test can detect
    /// a soft error upsetting a heartbeat counter.
    counter_shadow: u64,
}

impl Ahbm {
    /// Creates an AHBM module.
    pub fn new(config: AhbmConfig) -> Ahbm {
        Ahbm {
            config,
            entities: BTreeMap::new(),
            pending: HashMap::new(),
            failed: Vec::new(),
            next_sample: 0,
            stats: AhbmStats::default(),
            counter_shadow: 0,
        }
    }

    /// Module counters.
    pub fn stats(&self) -> AhbmStats {
        self.stats
    }

    /// The state of a monitored entity.
    pub fn entity(&self, id: EntityId) -> Option<&EntityState> {
        self.entities.get(&id)
    }

    /// Whether the monitor believes `id` is alive (unknown entities are
    /// not alive).
    pub fn is_alive(&self, id: EntityId) -> bool {
        self.entities.get(&id).is_some_and(|e| e.alive)
    }

    /// Entities declared dead since the last call (in declaration order,
    /// which is deterministic: sorted by id within one sampling pass).
    pub fn take_failed(&mut self) -> Vec<EntityId> {
        std::mem::take(&mut self.failed)
    }

    /// Registers an entity directly (OS-side path; equivalent to a
    /// committed `AHBM_REGISTER` CHECK).
    pub fn register(&mut self, id: EntityId, now: u64) {
        self.stats.registrations += 1;
        if let Some(old) = self.entities.get(&id) {
            // Re-registration resets the counter: keep the shadow sum
            // consistent.
            self.counter_shadow -= old.counter;
        }
        self.entities.insert(
            id,
            EntityState {
                counter: 0,
                est: IntervalEstimator::new(),
                timeout: self.config.initial_timeout,
                last_beat: now,
                alive: true,
            },
        );
    }

    /// Stops monitoring `id` (OS-side path; equivalent to a committed
    /// `AHBM_DEREGISTER` CHECK).
    pub fn deregister(&mut self, id: EntityId) {
        if let Some(old) = self.entities.remove(&id) {
            self.counter_shadow -= old.counter;
        }
    }

    /// Applies one heartbeat for `id` at cycle `now`.
    pub fn beat(&mut self, id: EntityId, now: u64) {
        let cfg = self.config;
        let Some(e) = self.entities.get_mut(&id) else {
            return;
        };
        self.stats.beats += 1;
        e.counter += 1;
        self.counter_shadow += 1;
        let measured = now.saturating_sub(e.last_beat);
        e.est.observe(measured, cfg.alpha_q16, cfg.beta_q16);
        e.timeout = e
            .est
            .timeout(cfg.k_q16, cfg.min_timeout, cfg.initial_timeout);
        e.last_beat = now;
        // A heartbeat resurrects a previously-declared-dead entity (e.g.
        // a stalled thread that resumed).
        e.alive = true;
    }

    /// Host-side sampling hook: runs one Adaptive Timeout Monitor pass if
    /// the sampling interval has elapsed (the same behavior `Module::tick`
    /// performs inside the engine) — used by host-level evaluations that
    /// drive the module without a pipeline.
    pub fn host_sample(&mut self, now: u64) {
        if now >= self.next_sample {
            self.sample(now);
            self.next_sample = now + self.config.sample_interval;
        }
    }

    fn sample(&mut self, now: u64) {
        self.stats.samples += 1;
        // BTreeMap iteration: sorted by entity id, so same-cycle failures
        // are declared in a platform-independent order.
        for (id, e) in self.entities.iter_mut() {
            if e.alive && now.saturating_sub(e.last_beat) > e.timeout {
                e.alive = false;
                self.failed.push(*id);
                self.stats.failures_declared += 1;
            }
        }
    }
}

impl Module for Ahbm {
    fn id(&self) -> ModuleId {
        ModuleId::AHBM
    }

    fn name(&self) -> &'static str {
        "adaptive-heartbeat-monitor"
    }

    fn on_chk(&mut self, chk: &ChkDispatch, ctx: &mut ModuleCtx<'_>) {
        if chk.spec.op == ops::SELFTEST {
            let verdict = self.self_test();
            ctx.complete_check(chk.rob, verdict);
            return;
        }
        let id = chk.spec.param;
        let op = match chk.spec.op {
            ops::AHBM_REGISTER => PendingOp::Register(id),
            ops::AHBM_BEAT => PendingOp::Beat(id),
            ops::AHBM_DEREGISTER => PendingOp::Deregister(id),
            _ => return,
        };
        // Asynchronous module: the effect is logged at commit.
        self.pending.insert(chk.rob, op);
    }

    fn on_commit(&mut self, rob: RobId, ctx: &mut ModuleCtx<'_>) {
        let Some(op) = self.pending.remove(&rob) else {
            return;
        };
        match op {
            PendingOp::Register(id) => self.register(id, ctx.now),
            PendingOp::Beat(id) => self.beat(id, ctx.now),
            PendingOp::Deregister(id) => self.deregister(id),
        }
    }

    fn on_squash(&mut self, rob: RobId, _ctx: &mut ModuleCtx<'_>) {
        self.pending.remove(&rob);
    }

    fn tick(&mut self, ctx: &mut ModuleCtx<'_>) {
        if ctx.now >= self.next_sample {
            self.sample(ctx.now);
            self.next_sample = ctx.now + self.config.sample_interval;
        }
    }

    fn self_test(&mut self) -> Verdict {
        // Recompute the COUNTER_RAM sum and compare it to the duplicated
        // running total.
        let sum: u64 = self.entities.values().map(|e| e.counter).sum();
        if sum == self.counter_shadow {
            Verdict::Pass
        } else {
            Verdict::Fail
        }
    }

    fn corrupt_state(&mut self, seed: u64) -> bool {
        // Upset one heartbeat counter (deterministically picked by the
        // seed over the sorted entity ids) without touching the shadow.
        let ids: Vec<EntityId> = self.entities.keys().copied().collect();
        if let Some(&id) = ids.get(seed as usize % ids.len().max(1)) {
            let delta = 1 + (seed >> 8) % 7;
            self.entities
                .get_mut(&id)
                .expect("picked from live keys")
                .counter += delta;
        } else {
            // No monitored entities: upset the shadow register instead.
            self.counter_shadow ^= 1 << (seed % 64);
        }
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Remote-peer monitoring (fleet heartbeat fabric)
// ---------------------------------------------------------------------------

/// An identifier of a remote peer node.
pub type PeerId = u16;

/// Suspicion level of one remote peer.
///
/// Mirrors the per-module health machine (`rse_core::health`): a missed
/// timeout does not immediately declare the peer dead; the monitor first
/// *suspects* it and sends probes with exponential backoff
/// (`probe_base << probes_sent`). Only after `max_probes` unanswered
/// probes is the peer declared dead — a terminal state until the recovery
/// coordinator explicitly [`PeerMonitor::reinstate`]s it (fencing: a
/// partitioned-but-alive node that rejoins must be quarantined, not
/// silently resurrected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PeerState {
    /// Heartbeats arriving within the adaptive timeout.
    Alive,
    /// Timeout exceeded; probing before declaring death.
    Suspect,
    /// Declared dead after probe exhaustion (absorbing until reinstated).
    Dead,
}

impl std::fmt::Display for PeerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PeerState::Alive => "alive",
            PeerState::Suspect => "suspect",
            PeerState::Dead => "dead",
        };
        f.write_str(s)
    }
}

/// Configuration of a [`PeerMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerConfig {
    /// The adaptive-timeout estimator parameters (shared with the local
    /// AHBM block).
    pub ahbm: AhbmConfig,
    /// Base probe backoff: probe `n` is scheduled `probe_base << n` cycles
    /// after suspicion (mirrors `HealthConfig::probe_base`).
    pub probe_base: u64,
    /// Unanswered probes before a Suspect peer is declared Dead.
    pub max_probes: u32,
}

impl Default for PeerConfig {
    fn default() -> PeerConfig {
        PeerConfig {
            ahbm: AhbmConfig::default(),
            probe_base: 512,
            max_probes: 3,
        }
    }
}

/// Monitoring state for one remote peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerEntry {
    /// Heartbeat counter for this peer (`COUNTER_RAM` keyed by peer id).
    pub counter: u64,
    /// The fixed-point interval estimator.
    pub est: IntervalEstimator,
    /// Current adaptive timeout, cycles.
    pub timeout: u64,
    /// Cycle of the last accepted heartbeat (or probe reply).
    pub last_beat: u64,
    /// Suspicion state.
    pub state: PeerState,
    /// Probes sent since entering Suspect.
    pub probes_sent: u32,
    /// Cycle at which the next probe fires (valid while Suspect).
    pub next_probe_at: u64,
}

/// An event produced by the peer monitor, in deterministic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerEvent {
    /// The peer's adaptive timeout elapsed; it is now Suspect.
    Suspected(PeerId),
    /// A probe should be sent to the peer (probe-before-declare retry).
    ProbeRequest(PeerId),
    /// Probe budget exhausted; the peer is declared Dead.
    DeclaredDead(PeerId),
    /// A heartbeat arrived from a Suspect peer: suspicion refuted.
    Refuted(PeerId),
}

/// The remote-peer extension of the AHBM: adaptive-timeout failure
/// *suspicion* over heartbeat messages from other nodes.
#[derive(Debug, Clone)]
pub struct PeerMonitor {
    config: PeerConfig,
    peers: BTreeMap<PeerId, PeerEntry>,
    events: Vec<PeerEvent>,
    next_sample: u64,
}

impl PeerMonitor {
    /// Creates a peer monitor.
    pub fn new(config: PeerConfig) -> PeerMonitor {
        PeerMonitor {
            config,
            peers: BTreeMap::new(),
            events: Vec::new(),
            next_sample: 0,
        }
    }

    /// Begins monitoring `peer` (its first timeout is
    /// `initial_timeout`, so slow-starting peers are not suspected).
    pub fn register(&mut self, peer: PeerId, now: u64) {
        self.peers.insert(
            peer,
            PeerEntry {
                counter: 0,
                est: IntervalEstimator::new(),
                timeout: self.config.ahbm.initial_timeout,
                last_beat: now,
                state: PeerState::Alive,
                probes_sent: 0,
                next_probe_at: 0,
            },
        );
    }

    /// The monitoring entry for `peer`.
    pub fn peer(&self, peer: PeerId) -> Option<&PeerEntry> {
        self.peers.get(&peer)
    }

    /// The suspicion state of `peer` (unknown peers are Dead).
    pub fn state(&self, peer: PeerId) -> PeerState {
        self.peers.get(&peer).map_or(PeerState::Dead, |p| p.state)
    }

    /// All monitored peer ids, sorted.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.peers.keys().copied().collect()
    }

    /// Applies a heartbeat (or probe reply) from `peer` at cycle `now`.
    ///
    /// A Dead peer's beats are **ignored** (fencing: resurrection is the
    /// recovery coordinator's decision via [`PeerMonitor::reinstate`]).
    pub fn beat(&mut self, peer: PeerId, now: u64) {
        let cfg = self.config.ahbm;
        let Some(e) = self.peers.get_mut(&peer) else {
            return;
        };
        if e.state == PeerState::Dead {
            return;
        }
        e.counter += 1;
        let measured = now.saturating_sub(e.last_beat);
        e.est.observe(measured, cfg.alpha_q16, cfg.beta_q16);
        e.timeout = e
            .est
            .timeout(cfg.k_q16, cfg.min_timeout, cfg.initial_timeout);
        e.last_beat = now;
        if e.state == PeerState::Suspect {
            e.state = PeerState::Alive;
            e.probes_sent = 0;
            self.events.push(PeerEvent::Refuted(peer));
        }
    }

    /// Runs one suspicion pass if the sampling interval elapsed.
    ///
    /// Peers are visited in sorted id order, so same-cycle transitions
    /// produce a deterministic event sequence.
    pub fn sample(&mut self, now: u64) {
        if now < self.next_sample {
            return;
        }
        self.next_sample = now + self.config.ahbm.sample_interval;
        let probe_base = self.config.probe_base;
        let max_probes = self.config.max_probes;
        for (id, e) in self.peers.iter_mut() {
            match e.state {
                PeerState::Alive => {
                    if now.saturating_sub(e.last_beat) > e.timeout {
                        e.state = PeerState::Suspect;
                        e.probes_sent = 0;
                        e.next_probe_at = now;
                        self.events.push(PeerEvent::Suspected(*id));
                    }
                }
                PeerState::Suspect => {
                    if now >= e.next_probe_at {
                        if e.probes_sent >= max_probes {
                            e.state = PeerState::Dead;
                            self.events.push(PeerEvent::DeclaredDead(*id));
                        } else {
                            // Exponential backoff, mirroring
                            // `HealthConfig::probe_base << attempts`.
                            e.next_probe_at = now + (probe_base << e.probes_sent);
                            e.probes_sent += 1;
                            self.events.push(PeerEvent::ProbeRequest(*id));
                        }
                    }
                }
                PeerState::Dead => {}
            }
        }
    }

    /// Drains the pending events (in generation order).
    pub fn take_events(&mut self) -> Vec<PeerEvent> {
        std::mem::take(&mut self.events)
    }

    /// Whether any events are pending (without draining them).
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// The configured sampling interval (event schedulers assert it
    /// against their grid).
    pub fn sample_interval(&self) -> u64 {
        self.config.ahbm.sample_interval
    }

    /// The earliest future cycle at which a [`PeerMonitor::sample`] call
    /// can change any peer's state — the monitor's *wake deadline* for
    /// event-driven hosts. `None` means no sample will ever transition
    /// anything (every peer Dead): the host need not schedule a wake.
    ///
    /// Per peer: an Alive peer becomes Suspect at `last_beat + timeout +
    /// 1` (the suspicion test is strict), a Suspect peer acts at
    /// `next_probe_at`, a Dead peer never acts. A sample at the returned
    /// cycle (or any later cycle) observes the transition; samples
    /// strictly before every returned deadline are guaranteed no-ops, so
    /// an event-driven host that only samples at these deadlines (plus
    /// on beat arrivals) is equivalent to one sampling every cycle.
    pub fn next_deadline(&self) -> Option<u64> {
        self.peers
            .values()
            .filter_map(|e| match e.state {
                PeerState::Alive => Some(e.last_beat + e.timeout + 1),
                PeerState::Suspect => Some(e.next_probe_at),
                PeerState::Dead => None,
            })
            .min()
    }

    /// Coordinator-approved resurrection of a Dead (or Suspect) peer:
    /// resets the estimator and returns the peer to Alive with a fresh
    /// `initial_timeout` grace period.
    pub fn reinstate(&mut self, peer: PeerId, now: u64) {
        if let Some(e) = self.peers.get_mut(&peer) {
            e.est = IntervalEstimator::new();
            e.timeout = self.config.ahbm.initial_timeout;
            e.last_beat = now;
            e.state = PeerState::Alive;
            e.probes_sent = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_core::Verdict;

    #[test]
    fn q16_constants() {
        assert_eq!(q16(1, 8), 8192);
        assert_eq!(q16(1, 4), 16384);
        assert_eq!(q16(4, 1), 4 << 16);
        assert_eq!(q16(1, 1), Q16_ONE);
    }

    #[test]
    fn estimator_is_integer_exact() {
        // First observation primes mean = m, dev = m/2.
        let mut est = IntervalEstimator::new();
        est.observe(20, q16(1, 8), q16(1, 4));
        assert_eq!(est.mean_q16(), 20 << 16);
        assert_eq!(est.dev_q16(), 10 << 16);
        // timeout = mean + 4*dev = 20 + 40 = 60 (exact).
        assert_eq!(est.timeout(q16(4, 1), 0, 999), 60);
        // A second identical observation: err = 0, dev decays by beta.
        est.observe(20, q16(1, 8), q16(1, 4));
        assert_eq!(est.mean_q16(), 20 << 16);
        // dev += 1/4 * (0 - dev) => dev = 3/4 * 10 = 7.5 cycles.
        assert_eq!(est.dev_q16(), (10 << 16) * 3 / 4);
        assert_eq!(est.timeout(q16(4, 1), 0, 999), 50);
    }

    #[test]
    fn estimator_replays_bit_identically() {
        // Two estimators fed the same jittered sequence must agree in
        // every bit — the property the fleet goldens rely on.
        let seq: Vec<u64> = (0..200).map(|i| 20 + (i * 7) % 13).collect();
        let mut a = IntervalEstimator::new();
        let mut b = IntervalEstimator::new();
        for &m in &seq {
            a.observe(m, q16(1, 8), q16(1, 4));
        }
        for &m in &seq {
            b.observe(m, q16(1, 8), q16(1, 4));
        }
        assert_eq!(a, b);
        assert_eq!(a.mean_q16(), b.mean_q16());
        assert_eq!(a.timeout(q16(4, 1), 50, 999), b.timeout(q16(4, 1), 50, 999));
    }

    #[test]
    fn estimator_huge_intervals_do_not_overflow() {
        let mut est = IntervalEstimator::new();
        est.observe(u64::MAX, q16(1, 1), q16(1, 1));
        est.observe(u64::MAX, q16(1, 1), q16(1, 1));
        // Clamped at 2^47 cycles; timeout saturates without panicking.
        let t = est.timeout(q16(4, 1), 0, 0);
        assert!(t >= 1 << 47);
    }

    #[test]
    fn selftest_passes_until_counter_is_corrupted() {
        let mut ahbm = Ahbm::new(AhbmConfig::default());
        ahbm.register(7, 0);
        ahbm.beat(7, 100);
        ahbm.beat(7, 200);
        assert_eq!(Module::self_test(&mut ahbm), Verdict::Pass);
        assert!(Module::corrupt_state(&mut ahbm, 99));
        assert_eq!(Module::self_test(&mut ahbm), Verdict::Fail);
    }

    #[test]
    fn deregister_keeps_shadow_sum_consistent() {
        let mut ahbm = Ahbm::new(AhbmConfig::default());
        ahbm.register(1, 0);
        ahbm.register(2, 0);
        ahbm.beat(1, 10);
        ahbm.beat(2, 10);
        ahbm.beat(2, 20);
        // Deregistration of entity 2 must subtract its beats.
        ahbm.deregister(2);
        assert_eq!(Module::self_test(&mut ahbm), Verdict::Pass);
        // Re-registration resets the counter without breaking the sum.
        ahbm.register(1, 30);
        assert_eq!(Module::self_test(&mut ahbm), Verdict::Pass);
    }

    fn cfg() -> AhbmConfig {
        AhbmConfig {
            sample_interval: 10,
            min_timeout: 50,
            initial_timeout: 1000,
            ..AhbmConfig::default()
        }
    }

    fn drive(ahbm: &mut Ahbm, beats: &[(EntityId, u64)], until: u64) {
        // Apply beats at their cycles, sampling as the module would.
        let mut next_sample = 0;
        let mut bi = 0;
        for now in 0..until {
            while bi < beats.len() && beats[bi].1 == now {
                ahbm.beat(beats[bi].0, now);
                bi += 1;
            }
            if now >= next_sample {
                ahbm.sample(now);
                next_sample = now + ahbm.config.sample_interval;
            }
        }
    }

    #[test]
    fn regular_heartbeats_stay_alive() {
        let mut a = Ahbm::new(cfg());
        a.register(1, 0);
        let beats: Vec<(EntityId, u64)> = (1..50).map(|i| (1, i * 20)).collect();
        drive(&mut a, &beats, 1000);
        assert!(a.is_alive(1));
        assert!(a.take_failed().is_empty());
        // The adaptive timeout converged to the exact beat interval (the
        // fixed-point estimator is exact for a constant input).
        let e = a.entity(1).unwrap();
        assert_eq!(e.est.mean_cycles(), 20, "mean={}", e.est.mean_cycles());
        assert_eq!(e.timeout, 50, "floored at min_timeout");
    }

    #[test]
    fn silence_is_detected() {
        let mut a = Ahbm::new(cfg());
        a.register(1, 0);
        // Beats every 20 cycles until cycle 400, then silence.
        let beats: Vec<(EntityId, u64)> = (1..21).map(|i| (1, i * 20)).collect();
        drive(&mut a, &beats, 2000);
        assert!(!a.is_alive(1));
        assert_eq!(a.take_failed(), vec![1]);
        assert_eq!(a.stats().failures_declared, 1);
    }

    #[test]
    fn adaptive_timeout_tolerates_slow_but_regular_entities() {
        let mut a = Ahbm::new(AhbmConfig {
            min_timeout: 10,
            ..cfg()
        });
        a.register(1, 0); // fast: every 20 cycles
        a.register(2, 0); // slow: every 300 cycles
        let mut beats: Vec<(EntityId, u64)> = Vec::new();
        for i in 1..100 {
            beats.push((1, i * 20));
        }
        for i in 1..7 {
            beats.push((2, i * 300));
        }
        beats.sort_by_key(|b| b.1);
        drive(&mut a, &beats, 2000);
        // The slow entity's timeout adapted upward, so it is still alive
        // despite an interval that would kill the fast entity.
        assert!(a.is_alive(2));
        assert!(a.entity(2).unwrap().timeout >= 300);
        assert!(a.entity(1).unwrap().timeout < a.entity(2).unwrap().timeout);
    }

    #[test]
    fn faster_detection_for_faster_entities() {
        let mut a = Ahbm::new(AhbmConfig {
            min_timeout: 10,
            ..cfg()
        });
        a.register(1, 0);
        a.register(2, 0);
        let mut beats: Vec<(EntityId, u64)> = Vec::new();
        for i in 1..50 {
            beats.push((1, i * 20)); // dies at 1000
        }
        for i in 1..4 {
            beats.push((2, i * 300)); // dies at 900
        }
        beats.sort_by_key(|b| b.1);
        drive(&mut a, &beats, 5000);
        assert!(!a.is_alive(1));
        assert!(!a.is_alive(2));
        // Detection latency relative to last beat is shorter for the
        // fast-beating entity (its adaptive timeout is tighter).
        assert!(a.entity(1).unwrap().timeout < a.entity(2).unwrap().timeout);
    }

    #[test]
    fn resurrection_on_new_beat() {
        let mut a = Ahbm::new(cfg());
        a.register(1, 0);
        let beats: Vec<(EntityId, u64)> = (1..11).map(|i| (1, i * 20)).collect();
        drive(&mut a, &beats, 1500);
        assert!(!a.is_alive(1));
        a.beat(1, 1500);
        assert!(a.is_alive(1));
    }

    #[test]
    fn deregistered_entities_are_forgotten() {
        let mut a = Ahbm::new(cfg());
        a.register(3, 0);
        assert!(a.is_alive(3));
        a.entities.remove(&3);
        assert!(!a.is_alive(3));
        assert!(a.entity(3).is_none());
    }

    #[test]
    fn beats_for_unregistered_entities_ignored() {
        let mut a = Ahbm::new(cfg());
        a.beat(9, 100);
        assert_eq!(a.stats().beats, 0);
        assert!(!a.is_alive(9));
    }

    #[test]
    fn same_cycle_failures_are_declared_in_sorted_order() {
        // Register ids in scrambled order; all time out at the same
        // sampling pass. take_failed() must come back sorted regardless.
        let mut a = Ahbm::new(cfg());
        for id in [9, 2, 7, 1, 5] {
            a.register(id, 0);
            // Two beats at identical intervals so every entity shares the
            // same tight timeout.
            a.beat(id, 20);
            a.beat(id, 40);
        }
        a.sample(5000);
        assert_eq!(a.take_failed(), vec![1, 2, 5, 7, 9]);
    }

    // ---- PeerMonitor -----------------------------------------------------

    fn peer_cfg() -> PeerConfig {
        PeerConfig {
            ahbm: AhbmConfig {
                sample_interval: 10,
                min_timeout: 50,
                initial_timeout: 1000,
                ..AhbmConfig::default()
            },
            probe_base: 20,
            max_probes: 2,
        }
    }

    #[test]
    fn peer_suspicion_escalates_through_probes_to_dead() {
        let mut pm = PeerMonitor::new(peer_cfg());
        pm.register(3, 0);
        for t in (20..=200).step_by(20) {
            pm.beat(3, t);
        }
        assert_eq!(pm.state(3), PeerState::Alive);
        // Silence. First sample past the timeout suspects the peer.
        pm.sample(300);
        assert_eq!(pm.state(3), PeerState::Suspect);
        let ev = pm.take_events();
        assert_eq!(ev, vec![PeerEvent::Suspected(3)]);
        // Probes with exponential backoff, then death.
        let mut probes = 0;
        let mut dead_at = None;
        for now in (310..2000).step_by(10) {
            pm.sample(now);
            for e in pm.take_events() {
                match e {
                    PeerEvent::ProbeRequest(3) => probes += 1,
                    PeerEvent::DeclaredDead(3) => dead_at = Some(now),
                    other => panic!("unexpected event {other:?}"),
                }
            }
            if dead_at.is_some() {
                break;
            }
        }
        assert_eq!(probes, 2, "max_probes probes before declaring");
        assert!(dead_at.is_some());
        assert_eq!(pm.state(3), PeerState::Dead);
    }

    #[test]
    fn probe_reply_refutes_suspicion() {
        let mut pm = PeerMonitor::new(peer_cfg());
        pm.register(1, 0);
        for t in (20..=200).step_by(20) {
            pm.beat(1, t);
        }
        pm.sample(300);
        assert_eq!(pm.state(1), PeerState::Suspect);
        pm.take_events();
        // The probe reply arrives: suspicion refuted, peer Alive again.
        pm.beat(1, 310);
        assert_eq!(pm.state(1), PeerState::Alive);
        assert_eq!(pm.take_events(), vec![PeerEvent::Refuted(1)]);
        // And the counter kept counting.
        assert_eq!(pm.peer(1).unwrap().counter, 11);
    }

    #[test]
    fn dead_peer_beats_are_fenced_until_reinstated() {
        let mut pm = PeerMonitor::new(peer_cfg());
        pm.register(2, 0);
        for t in (20..=100).step_by(20) {
            pm.beat(2, t);
        }
        // Drive to Dead.
        for now in (200..3000).step_by(10) {
            pm.sample(now);
            if pm.state(2) == PeerState::Dead {
                break;
            }
        }
        assert_eq!(pm.state(2), PeerState::Dead);
        let counter = pm.peer(2).unwrap().counter;
        // A zombie beat from the partitioned node is ignored.
        pm.beat(2, 3100);
        assert_eq!(pm.state(2), PeerState::Dead);
        assert_eq!(pm.peer(2).unwrap().counter, counter);
        // Coordinator-approved reinstatement restores monitoring.
        pm.reinstate(2, 3200);
        assert_eq!(pm.state(2), PeerState::Alive);
        assert_eq!(pm.peer(2).unwrap().timeout, 1000, "fresh grace period");
        pm.beat(2, 3300);
        assert_eq!(pm.peer(2).unwrap().counter, counter + 1);
    }

    #[test]
    fn next_deadline_tracks_the_earliest_state_change() {
        let mut pm = PeerMonitor::new(peer_cfg());
        pm.register(1, 0);
        pm.register(2, 0);
        // Both fresh: deadline = last_beat + initial_timeout + 1.
        assert_eq!(pm.next_deadline(), Some(1001));
        // Beats tighten peer 1's adaptive timeout; peer 2 stays on the
        // initial grace, so peer 1 now bounds the deadline.
        for t in (20..=200).step_by(20) {
            pm.beat(1, t);
        }
        let e1 = *pm.peer(1).unwrap();
        let d = pm.next_deadline().unwrap();
        assert_eq!(d, e1.last_beat + e1.timeout + 1);
        // A sample strictly before the deadline is a no-op...
        let mut early = pm.clone();
        early.sample(d - 1);
        assert_eq!(early.state(1), PeerState::Alive);
        assert!(early.take_events().is_empty());
        assert_eq!(early.peer(1), pm.peer(1));
        // ...and a sample exactly at it transitions to Suspect, whose
        // deadline is the probe schedule.
        pm.sample(d);
        assert_eq!(pm.state(1), PeerState::Suspect);
        assert_eq!(pm.next_deadline(), Some(pm.peer(1).unwrap().next_probe_at));
    }

    #[test]
    fn next_deadline_is_none_once_every_peer_is_dead() {
        let mut pm = PeerMonitor::new(peer_cfg());
        pm.register(4, 0);
        for t in (20..=100).step_by(20) {
            pm.beat(4, t);
        }
        for now in (200..3000).step_by(10) {
            pm.sample(now);
            if pm.state(4) == PeerState::Dead {
                break;
            }
        }
        assert_eq!(pm.state(4), PeerState::Dead);
        assert_eq!(pm.next_deadline(), None);
        // Reinstatement restores a deadline (fresh grace period).
        pm.reinstate(4, 5000);
        assert_eq!(pm.next_deadline(), Some(5000 + 1000 + 1));
    }

    #[test]
    fn peer_events_are_sorted_within_a_pass() {
        let mut pm = PeerMonitor::new(peer_cfg());
        for id in [8, 1, 5] {
            pm.register(id, 0);
            for t in (20..=100).step_by(20) {
                pm.beat(id, t);
            }
        }
        pm.sample(500);
        assert_eq!(
            pm.take_events(),
            vec![
                PeerEvent::Suspected(1),
                PeerEvent::Suspected(5),
                PeerEvent::Suspected(8)
            ]
        );
    }
}
