//! The Instruction Checker Module (ICM) — §4.3 of the paper.
//!
//! The ICM "preemptively checks for errors in an instruction just at the
//! time the instruction is dispatched, by comparing the binary of the
//! instruction in the pipeline with a redundant copy of the instruction
//! fetched from memory", covering multi-bit errors between the fetch from
//! memory and dispatch — including residence in the on-chip caches.
//!
//! * The program is statically parsed and all checked instructions are
//!   stored **contiguously** in a separate chunk of memory
//!   (the *CheckerMemory*), which gives batch refills spatial locality.
//! * A dedicated 256-entry cache (the `Icm_Cache`) with LRU-stack
//!   replacement and an 8-word refill batch reduces CheckerMemory
//!   traffic (the §5.2 configuration: "ICM_Cache size of 256 and a
//!   replacement size of 8 least-recently-used entries").
//! * Internally the module is a 3-stage pipeline: `ICM_IDLE` scans
//!   `Fetch_Out` for CHECK instructions and posts a memory request,
//!   `ICM_MEMREQ` waits for the redundant copy, `ICM_COMP` compares and
//!   writes the IOQ (Figure 6 timeline).

use rse_core::{ChkDispatch, MauOp, MauRequest, Module, ModuleCtx, Verdict};
use rse_isa::{Image, ModuleId};
use rse_mem::SparseMemory;
use rse_pipeline::RobId;
use std::any::Any;
use std::collections::HashMap;

/// ICM configuration (§5.2 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmConfig {
    /// Entries in the `Icm_Cache` (checked-instruction words).
    pub cache_entries: usize,
    /// Words fetched from CheckerMemory per miss (the "replacement
    /// size"): this many LRU entries are replaced at once.
    pub refill_batch: usize,
    /// Base address of the CheckerMemory region.
    pub checker_base: u32,
    /// Cycles for the compare stage (`ICM_COMP`).
    pub compare_latency: u64,
}

impl Default for IcmConfig {
    fn default() -> IcmConfig {
        IcmConfig {
            cache_entries: 256,
            refill_batch: 8,
            checker_base: 0x3000_0000,
            compare_latency: 1,
        }
    }
}

/// The CheckerMemory layout produced by the static parse: which program
/// counters are checked, and where their redundant copies live.
#[derive(Debug, Clone, Default)]
pub struct CheckerLayout {
    /// `pc → index` into the contiguous CheckerMemory.
    index_of_pc: HashMap<u32, u32>,
    /// `index → pc` (for batch refills).
    pc_of_index: Vec<u32>,
    base: u32,
}

impl CheckerLayout {
    /// CheckerMemory address of the redundant copy for `pc`.
    pub fn addr_of(&self, pc: u32) -> Option<u32> {
        self.index_of_pc.get(&pc).map(|i| self.base + i * 4)
    }

    /// Number of checked instructions.
    pub fn len(&self) -> usize {
        self.pc_of_index.len()
    }

    /// Whether the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.pc_of_index.is_empty()
    }
}

/// A small LRU stack cache: `pc → redundant word`.
#[derive(Debug)]
struct LruStack {
    capacity: usize,
    /// Most-recently-used first.
    entries: Vec<(u32, u32)>,
}

impl LruStack {
    fn new(capacity: usize) -> LruStack {
        LruStack {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    fn lookup(&mut self, pc: u32) -> Option<u32> {
        let pos = self.entries.iter().position(|(p, _)| *p == pc)?;
        let e = self.entries.remove(pos);
        self.entries.insert(0, e);
        Some(e.1)
    }

    fn insert(&mut self, pc: u32, word: u32) {
        if let Some(pos) = self.entries.iter().position(|(p, _)| *p == pc) {
            self.entries.remove(pos);
        }
        while self.entries.len() >= self.capacity {
            self.entries.pop(); // evict LRU (back of the stack)
        }
        self.entries.insert(0, (pc, word));
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[derive(Debug)]
struct PendingCheck {
    chk_rob: RobId,
    /// Checked instruction's identity (the instruction after the CHECK).
    inst_rob: RobId,
    pc: u32,
    pipeline_word: u32,
    stage: Stage,
}

#[derive(Debug, PartialEq, Eq)]
enum Stage {
    /// Waiting for the checked instruction to appear in `Fetch_Out`.
    Idle,
    /// Redundant copy requested from the MAU.
    MemReq,
    /// Comparison scheduled; result due at the stored cycle.
    Comp { done_at: u64, error: bool },
}

/// ICM performance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IcmStats {
    /// CHECK instructions processed to completion.
    pub checks_completed: u64,
    /// Mismatches (errors) detected.
    pub mismatches: u64,
    /// `Icm_Cache` hits.
    pub cache_hits: u64,
    /// `Icm_Cache` misses (each triggers a batch refill via the MAU).
    pub cache_misses: u64,
}

/// The Instruction Checker Module.
#[derive(Debug)]
pub struct Icm {
    config: IcmConfig,
    layout: CheckerLayout,
    cache: LruStack,
    pending: Vec<PendingCheck>,
    stats: IcmStats,
    /// Integrity seal over the CheckerMemory layout, written whenever the
    /// layout legitimately changes. The §3.4 self-test recomputes it, so
    /// a soft error flipping a layout bit makes the quarantine probe
    /// fail.
    seal: u64,
}

impl Icm {
    /// Creates an ICM with an empty CheckerMemory layout. Use
    /// [`Icm::install_checker_memory`] (or the control-flow convenience
    /// wrapper) after loading the program.
    pub fn new(config: IcmConfig) -> Icm {
        let mut icm = Icm {
            config,
            layout: CheckerLayout::default(),
            cache: LruStack::new(config.cache_entries),
            pending: Vec::new(),
            stats: IcmStats::default(),
            seal: 0,
        };
        icm.seal = icm.layout_seal();
        icm
    }

    /// The integrity checksum over the static-parse layout.
    fn layout_seal(&self) -> u64 {
        let mut bytes = Vec::with_capacity(4 + self.layout.pc_of_index.len() * 4);
        bytes.extend_from_slice(&self.layout.base.to_le_bytes());
        for pc in &self.layout.pc_of_index {
            bytes.extend_from_slice(&pc.to_le_bytes());
        }
        rse_support::rng::fnv1a64(&bytes)
    }

    /// Statically parses `image` and stores a redundant copy of every
    /// instruction selected by `checked` contiguously in CheckerMemory
    /// (written into `mem` at the configured base). This is the paper's
    /// load-time preparation step.
    pub fn install_checker_memory(
        &mut self,
        image: &Image,
        mem: &mut SparseMemory,
        mut checked: impl FnMut(&rse_isa::Inst) -> bool,
    ) {
        let mut layout = CheckerLayout {
            base: self.config.checker_base,
            ..Default::default()
        };
        for (i, &word) in image.text.iter().enumerate() {
            let pc = image.text_base + 4 * i as u32;
            let Ok(inst) = rse_isa::decode(word) else {
                continue;
            };
            if checked(&inst) {
                let idx = layout.pc_of_index.len() as u32;
                layout.index_of_pc.insert(pc, idx);
                layout.pc_of_index.push(pc);
                mem.write_u32(self.config.checker_base + idx * 4, word);
            }
        }
        self.layout = layout;
        self.seal = self.layout_seal();
    }

    /// Installs redundant copies for all control-flow instructions — the
    /// §5.2 evaluation configuration ("the benchmark is instrumented to
    /// check all control-flow instructions").
    pub fn install_for_control_flow(&mut self, image: &Image, mem: &mut SparseMemory) {
        self.install_checker_memory(image, mem, |inst| inst.is_control_flow());
    }

    /// The static-parse layout (inspection).
    pub fn layout(&self) -> &CheckerLayout {
        &self.layout
    }

    /// Module counters.
    pub fn stats(&self) -> IcmStats {
        self.stats
    }

    /// Current `Icm_Cache` occupancy.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Handles arrival of the redundant copy for a pending check.
    fn redundant_copy_arrived(&mut self, now: u64, idx: usize, word: u32) {
        let latency = self.config.compare_latency;
        let p = &mut self.pending[idx];
        let error = word != p.pipeline_word;
        p.stage = Stage::Comp {
            done_at: now + latency,
            error,
        };
    }
}

impl Module for Icm {
    fn id(&self) -> ModuleId {
        ModuleId::ICM
    }

    fn name(&self) -> &'static str {
        "instruction-checker"
    }

    fn on_chk(&mut self, chk: &ChkDispatch, ctx: &mut ModuleCtx<'_>) {
        if chk.spec.op == rse_isa::chk::ops::SELFTEST {
            let verdict = self.self_test();
            ctx.complete_check(chk.rob, verdict);
            return;
        }
        if chk.spec.op != rse_isa::chk::ops::ICM_CHECK_NEXT {
            return;
        }
        // The checked instruction is the one following the CHECK in the
        // dispatched stream: the next sequence number.
        self.pending.push(PendingCheck {
            chk_rob: chk.rob,
            inst_rob: RobId(chk.rob.0 + 1),
            pc: 0,
            pipeline_word: 0,
            stage: Stage::Idle,
        });
    }

    fn on_squash(&mut self, rob: RobId, _ctx: &mut ModuleCtx<'_>) {
        self.pending
            .retain(|p| p.chk_rob != rob && p.inst_rob != rob);
    }

    fn tick(&mut self, ctx: &mut ModuleCtx<'_>) {
        let now = ctx.now;
        // ICM_IDLE: scan Fetch_Out for checked instructions, oldest
        // first. The module is a 3-stage pipeline with a single MEMREQ
        // slot (one outstanding CheckerMemory request): a check that
        // misses the Icm_Cache while a refill is in flight waits in IDLE
        // and re-probes once the batch lands — that is what makes the
        // 8-word batch refill effective.
        let memreq_busy = || self.pending.iter().any(|p| p.stage == Stage::MemReq);
        let mut busy = memreq_busy();
        for i in 0..self.pending.len() {
            if self.pending[i].stage != Stage::Idle {
                continue;
            }
            let inst_rob = self.pending[i].inst_rob;
            let Some(entry) = ctx.queues.fetch_out.get(inst_rob) else {
                continue;
            };
            let (pc, word) = (entry.pc, entry.word);
            self.pending[i].pc = pc;
            self.pending[i].pipeline_word = word;
            if let Some(redundant) = self.cache.lookup(pc) {
                self.stats.cache_hits += 1;
                self.redundant_copy_arrived(now, i, redundant);
            } else if !busy {
                self.stats.cache_misses += 1;
                let addr = self.layout.addr_of(pc).unwrap_or(pc);
                // Batch refill: fetch `refill_batch` consecutive words.
                let bytes = (self.config.refill_batch as u32) * 4;
                ctx.mau.submit(MauRequest {
                    module: ModuleId::ICM,
                    addr,
                    op: MauOp::Load { bytes },
                    tag: self.pending[i].chk_rob.0,
                });
                self.pending[i].stage = Stage::MemReq;
                busy = true;
            } else {
                // MEMREQ occupied: stay in IDLE and re-probe next cycle.
                break;
            }
        }
        // ICM_MEMREQ: collect MAU completions.
        while let Some(comp) = ctx.mau.take_completion(ModuleId::ICM) {
            let Some(idx) = self.pending.iter().position(|p| p.chk_rob.0 == comp.tag) else {
                continue; // squashed while in flight
            };
            // Install the batch into the cache. Words map back to PCs via
            // the contiguous CheckerMemory layout; out-of-layout fallback
            // addresses map one-to-one to the checked PC.
            let my_pc = self.pending[idx].pc;
            let mut my_word = None;
            for (k, chunk) in comp.data.chunks_exact(4).enumerate() {
                let word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                let word_addr = comp.addr + 4 * k as u32;
                let pc = if word_addr >= self.layout.base {
                    let index = (word_addr - self.layout.base) / 4;
                    match self.layout.pc_of_index.get(index as usize) {
                        Some(pc) => *pc,
                        None => continue,
                    }
                } else {
                    word_addr // fallback: redundant copy is program text
                };
                self.cache.insert(pc, word);
                if pc == my_pc {
                    my_word = Some(word);
                }
            }
            let word = my_word.unwrap_or_else(|| {
                // The batch did not cover our word (can only happen for
                // fallback addresses near region ends); treat as match to
                // stay fail-safe rather than flush forever.
                self.pending[idx].pipeline_word
            });
            self.redundant_copy_arrived(now, idx, word);
        }
        // ICM_COMP: deliver verdicts whose compare latency elapsed.
        let mut done = Vec::new();
        for (i, p) in self.pending.iter().enumerate() {
            if let Stage::Comp { done_at, error } = p.stage {
                if done_at <= now {
                    done.push((i, p.chk_rob, error));
                }
            }
        }
        for (i, rob, error) in done.into_iter().rev() {
            self.stats.checks_completed += 1;
            if error {
                self.stats.mismatches += 1;
            }
            ctx.complete_check(rob, if error { Verdict::Fail } else { Verdict::Pass });
            self.pending.remove(i);
        }
    }

    fn self_test(&mut self) -> Verdict {
        // Recompute the layout seal and cross-check the two layout maps:
        // a corrupted CheckerMemory index is exactly the kind of internal
        // error the §3.4 probe must surface.
        let consistent = self
            .layout
            .pc_of_index
            .iter()
            .enumerate()
            .all(|(i, pc)| self.layout.index_of_pc.get(pc) == Some(&(i as u32)));
        if consistent && self.layout_seal() == self.seal {
            Verdict::Pass
        } else {
            Verdict::Fail
        }
    }

    fn corrupt_state(&mut self, seed: u64) -> bool {
        // Flip one bit in a deterministically-picked layout entry (the
        // redundant-copy index RAM) without updating the seal.
        if !self.layout.pc_of_index.is_empty() {
            let idx = (seed as usize) % self.layout.pc_of_index.len();
            let bit = ((seed >> 8) % 32) as u32;
            self.layout.pc_of_index[idx] ^= 1 << bit;
            return true;
        }
        // Empty layout: corrupt the seal itself (a register upset).
        self.seal ^= 1 << (seed % 64);
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_core::{Engine, RseConfig};
    use rse_isa::asm::assemble;
    use rse_mem::{MemConfig, MemorySystem};
    use rse_pipeline::{CheckPolicy, FetchFault, Pipeline, PipelineConfig, StepEvent};

    fn icm_pipeline(src: &str) -> (Pipeline, Engine) {
        let image = assemble(src).expect("assembles");
        let mut cpu = Pipeline::new(
            PipelineConfig {
                check_policy: CheckPolicy::ControlFlow,
                ..PipelineConfig::default()
            },
            MemorySystem::new(MemConfig::with_framework()),
        );
        cpu.load_image(&image);
        let mut icm = Icm::new(IcmConfig::default());
        icm.install_for_control_flow(&image, &mut cpu.mem_mut().memory);
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(icm));
        engine.enable(ModuleId::ICM);
        (cpu, engine)
    }

    const LOOP_SRC: &str = r#"
        main:   li r8, 0
                li r9, 20
        loop:   addi r8, r8, 1
                bne r8, r9, loop
                halt
    "#;

    #[test]
    fn clean_program_passes_all_checks() {
        let (mut cpu, mut engine) = icm_pipeline(LOOP_SRC);
        assert_eq!(cpu.run(&mut engine, 2_000_000), StepEvent::Halted);
        assert_eq!(cpu.regs()[8], 20);
        let icm: &Icm = engine.module_ref(ModuleId::ICM).unwrap();
        assert!(icm.stats().checks_completed >= 20);
        assert_eq!(icm.stats().mismatches, 0);
        assert!(icm.stats().cache_hits > 0, "loop should hit the Icm_Cache");
    }

    #[test]
    fn transient_fault_in_branch_detected_and_recovered() {
        let (mut cpu, mut engine) = icm_pipeline(LOOP_SRC);
        // Corrupt a fetched copy of the bne (a control-flow instruction,
        // hence checked). The redundant copy in CheckerMemory is clean, so
        // the ICM flags a mismatch, the pipeline flushes and refetches the
        // clean word, and the program still computes the right answer.
        cpu.set_fetch_fault(Some(FetchFault::xor(3, 0x0000_0040)));
        assert_eq!(cpu.run(&mut engine, 2_000_000), StepEvent::Halted);
        assert_eq!(cpu.regs()[8], 20, "architectural result must be preserved");
        let icm: &Icm = engine.module_ref(ModuleId::ICM).unwrap();
        assert!(icm.stats().mismatches >= 1);
        assert!(cpu.stats().check_flushes >= 1);
        assert!(engine.safe_mode().is_none());
    }

    #[test]
    fn checker_memory_is_contiguous() {
        let image = assemble(LOOP_SRC).unwrap();
        let mut mem = SparseMemory::new();
        let mut icm = Icm::new(IcmConfig::default());
        icm.install_for_control_flow(&image, &mut mem);
        // Exactly one control-flow instruction (bne) in the program.
        assert_eq!(icm.layout().len(), 1);
        let bne_pc = image.text_base + 3 * 4;
        let addr = icm.layout().addr_of(bne_pc).unwrap();
        assert_eq!(addr, IcmConfig::default().checker_base);
        assert_eq!(mem.read_u32(addr), image.text[3]);
        assert_eq!(icm.layout().addr_of(image.text_base), None);
    }

    /// The Figure 6 timeline: on an `Icm_Cache` hit the check result is
    /// available to the commit stage a small, fixed number of cycles
    /// after the CHECK dispatches (scan + cache + compare + broadcast) —
    /// the pipeline stalls at most that long per checked instruction.
    #[test]
    fn timeline_matches_figure6() {
        // Warm the cache with a first iteration, then measure the stall
        // cost of subsequent (hit-path) checks.
        let (mut cpu, mut engine) = icm_pipeline(
            r#"
            main:   li r8, 0
                    li r9, 30
            loop:   addi r8, r8, 1
                    bne r8, r9, loop
                    halt
            "#,
        );
        assert_eq!(cpu.run(&mut engine, 2_000_000), StepEvent::Halted);
        let icm: &Icm = engine.module_ref(ModuleId::ICM).unwrap();
        let s = icm.stats();
        assert!(s.cache_hits >= 25, "the loop branch must hit after warmup");
        // Per Figure 6 the hit path spans dispatch (t+2) to commit-visible
        // (t+5): ~3-4 cycles of potential stall per check. Amortized, the
        // commit stalls must stay within ~6 cycles per completed check.
        let per_check = cpu.stats().commit_stall_cycles as f64 / s.checks_completed as f64;
        assert!(
            per_check <= 6.0,
            "hit-path stall too large: {per_check:.2} cycles/check"
        );
        // And the check result always arrived before the watchdog window.
        assert!(engine.safe_mode().is_none());
    }

    #[test]
    fn selftest_passes_until_layout_is_corrupted() {
        let image = assemble(LOOP_SRC).unwrap();
        let mut mem = SparseMemory::new();
        let mut icm = Icm::new(IcmConfig::default());
        icm.install_for_control_flow(&image, &mut mem);
        assert_eq!(Module::self_test(&mut icm), Verdict::Pass);
        assert!(Module::corrupt_state(&mut icm, 42));
        assert_eq!(Module::self_test(&mut icm), Verdict::Fail);
        // Re-installing the layout reseals it (repair path).
        icm.install_for_control_flow(&image, &mut mem);
        assert_eq!(Module::self_test(&mut icm), Verdict::Pass);
    }

    #[test]
    fn lru_stack_semantics() {
        let mut c = LruStack::new(2);
        c.insert(0x100, 1);
        c.insert(0x200, 2);
        assert_eq!(c.lookup(0x100), Some(1)); // 0x200 now LRU
        c.insert(0x300, 3); // evicts 0x200
        assert_eq!(c.lookup(0x200), None);
        assert_eq!(c.lookup(0x100), Some(1));
        assert_eq!(c.lookup(0x300), Some(3));
    }

    #[test]
    fn cache_misses_cost_more_than_hits() {
        // A program with many distinct branches defeats a tiny Icm_Cache.
        let mut src = String::from("main: li r8, 0\n");
        for i in 0..40 {
            src.push_str(&format!("b l{i}\nl{i}: addi r8, r8, 1\n"));
        }
        src.push_str("halt\n");
        let image = assemble(&src).unwrap();

        let run_with = |cache_entries: usize| -> (u64, IcmStats) {
            let mut cpu = Pipeline::new(
                PipelineConfig {
                    check_policy: CheckPolicy::ControlFlow,
                    ..PipelineConfig::default()
                },
                MemorySystem::new(MemConfig::with_framework()),
            );
            cpu.load_image(&image);
            let mut icm = Icm::new(IcmConfig {
                cache_entries,
                ..IcmConfig::default()
            });
            icm.install_for_control_flow(&image, &mut cpu.mem_mut().memory);
            let mut engine = Engine::new(RseConfig::default());
            engine.install(Box::new(icm));
            engine.enable(ModuleId::ICM);
            assert_eq!(cpu.run(&mut engine, 5_000_000), StepEvent::Halted);
            let icm: &Icm = engine.module_ref(ModuleId::ICM).unwrap();
            (cpu.stats().cycles, icm.stats())
        };
        let (_big_cycles, big) = run_with(256);
        let (_small_cycles, small) = run_with(2);
        assert!(small.cache_misses >= big.cache_misses);
    }
}
