//! The Page Status Table (PST) — §4.2.1.
//!
//! "An entry in the PST is the tuple (PageID, write-owner, read-owner)…
//! Due to memory access locality, only a small number of 'hot' pages need
//! to be kept in the PST at any given time, and an LRU replacement policy
//! can be used."

use std::collections::HashMap;

/// A guest thread id as tracked by the DDT.
pub type ThreadId = usize;

/// Ownership state of one page: the state nodes of Figure 5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageOwners {
    /// The thread that last wrote the page (the producer).
    pub write_owner: Option<ThreadId>,
    /// The thread that last read the page (the consumer).
    pub read_owner: Option<ThreadId>,
}

/// What the Figure 5 state machine decides for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransitionActions {
    /// `log(producer → consumer)`: record the dependency in the DDM.
    pub log_dependency: Option<(ThreadId, ThreadId)>,
    /// `SavePage`: checkpoint the page before the write proceeds.
    pub save_page: bool,
}

/// Applies one event `(thread, op)` to a page's owner state, returning
/// the actions of Figure 5. `is_write` selects the `w` edges.
pub fn transition(owners: &mut PageOwners, thread: ThreadId, is_write: bool) -> TransitionActions {
    let mut actions = TransitionActions::default();
    if is_write {
        // (t, w): a write by a non-write-owner must checkpoint the page
        // first; the writer becomes both owners.
        if owners.write_owner.is_some_and(|w| w != thread) {
            actions.save_page = true;
        }
        owners.write_owner = Some(thread);
        owners.read_owner = Some(thread);
    } else {
        // (t, r): a read by a non-read-owner makes `thread` the new
        // read-owner, and if another thread last wrote the page, logs the
        // dependency write_owner → thread.
        if owners.read_owner != Some(thread) {
            owners.read_owner = Some(thread);
            if let Some(producer) = owners.write_owner {
                if producer != thread {
                    actions.log_dependency = Some((producer, thread));
                }
            }
        }
    }
    actions
}

/// The Page Status Table: an LRU-bounded map `PageID → PageOwners`.
#[derive(Debug)]
pub struct PageStatusTable {
    capacity: usize,
    entries: HashMap<u32, (PageOwners, u64)>,
    tick: u64,
    /// Entries evicted over the run (lost tracking state).
    pub evictions: u64,
    /// Lookups performed.
    pub lookups: u64,
}

impl PageStatusTable {
    /// Creates a PST with room for `capacity` hot pages.
    pub fn new(capacity: usize) -> PageStatusTable {
        assert!(capacity > 0, "PST capacity must be nonzero");
        PageStatusTable {
            capacity,
            entries: HashMap::new(),
            tick: 0,
            evictions: 0,
            lookups: 0,
        }
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up (or creates) the entry for `page`, updating LRU order,
    /// and passes it to `f`.
    pub fn with_entry<R>(&mut self, page: u32, f: impl FnOnce(&mut PageOwners) -> R) -> R {
        self.tick += 1;
        self.lookups += 1;
        if !self.entries.contains_key(&page) && self.entries.len() >= self.capacity {
            // Evict the LRU page; its ownership state is lost.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(p, _)| *p)
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        let entry = self.entries.entry(page).or_default();
        entry.1 = self.tick;
        f(&mut entry.0)
    }

    /// Reads a page's owners without touching LRU order.
    pub fn peek(&self, page: u32) -> Option<PageOwners> {
        self.entries.get(&page).map(|(o, _)| *o)
    }

    /// Iterates over `(page, owners)` pairs (the recovery retrieval
    /// interface).
    pub fn iter(&self) -> impl Iterator<Item = (u32, PageOwners)> + '_ {
        self.entries.iter().map(|(p, (o, _))| (*p, *o))
    }

    /// Drops every entry (process restart).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Keeps only the entries for which `keep` returns `true` (used by
    /// the recovery algorithm to drop victim-owned pages).
    pub fn retain(&mut self, mut keep: impl FnMut(u32, &PageOwners) -> bool) {
        self.entries.retain(|page, (owners, _)| keep(*page, owners));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(pst: &mut PageStatusTable, page: u32, t: ThreadId, w: bool) -> TransitionActions {
        pst.with_entry(page, |o| transition(o, t, w))
    }

    #[test]
    fn first_writer_claims_ownership_silently() {
        let mut pst = PageStatusTable::new(8);
        let a = apply(&mut pst, 1, 0, true);
        assert!(!a.save_page);
        assert_eq!(a.log_dependency, None);
        assert_eq!(pst.peek(1).unwrap().write_owner, Some(0));
    }

    #[test]
    fn cross_thread_read_logs_dependency() {
        let mut pst = PageStatusTable::new(8);
        apply(&mut pst, 1, 2, true); // t2 writes page 1
        let a = apply(&mut pst, 1, 1, false); // t1 reads it
        assert_eq!(a.log_dependency, Some((2, 1)));
        assert!(!a.save_page);
        assert_eq!(pst.peek(1).unwrap().read_owner, Some(1));
    }

    #[test]
    fn same_thread_read_logs_nothing() {
        let mut pst = PageStatusTable::new(8);
        apply(&mut pst, 1, 2, true);
        let a = apply(&mut pst, 1, 2, false);
        assert_eq!(a.log_dependency, None);
    }

    #[test]
    fn cross_thread_write_saves_page() {
        let mut pst = PageStatusTable::new(8);
        apply(&mut pst, 7, 0, true);
        let a = apply(&mut pst, 7, 1, true);
        assert!(
            a.save_page,
            "non-owner write must checkpoint (Figure 5 SavePage)"
        );
        let o = pst.peek(7).unwrap();
        assert_eq!(o.write_owner, Some(1));
        assert_eq!(o.read_owner, Some(1));
    }

    #[test]
    fn same_thread_write_is_free() {
        let mut pst = PageStatusTable::new(8);
        apply(&mut pst, 7, 0, true);
        let a = apply(&mut pst, 7, 0, true);
        assert!(!a.save_page);
    }

    #[test]
    fn figure5_full_walk() {
        // (t,t) --(s,r)/log(t→s)--> (t,s) --(s,w)/SavePage--> (s,s)
        let (t, s) = (0, 1);
        let mut owners = PageOwners::default();
        assert_eq!(
            transition(&mut owners, t, true),
            TransitionActions::default()
        );
        let a = transition(&mut owners, s, false);
        assert_eq!(a.log_dependency, Some((t, s)));
        let a = transition(&mut owners, s, true);
        assert!(a.save_page);
        assert_eq!(owners.write_owner, Some(s));
        assert_eq!(owners.read_owner, Some(s));
        // (s,s) loops on (s,r)/(s,w) with no action.
        assert_eq!(
            transition(&mut owners, s, false),
            TransitionActions::default()
        );
        assert_eq!(
            transition(&mut owners, s, true),
            TransitionActions::default()
        );
    }

    #[test]
    fn lru_eviction_loses_cold_state() {
        let mut pst = PageStatusTable::new(2);
        apply(&mut pst, 1, 0, true);
        apply(&mut pst, 2, 0, true);
        apply(&mut pst, 1, 0, false); // touch page 1; page 2 is LRU
        apply(&mut pst, 3, 0, true); // evicts page 2
        assert!(pst.peek(2).is_none());
        assert!(pst.peek(1).is_some());
        assert_eq!(pst.evictions, 1);
        assert_eq!(pst.len(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = PageStatusTable::new(0);
    }
}
