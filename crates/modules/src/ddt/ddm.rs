//! The Data Dependency Matrix (DDM) — §4.2.1.
//!
//! "The DDM is an N×N matrix, where N is the number of threads in the
//! process. Each entry (x, y) in the matrix is one bit, which when set to
//! 1 indicates that thread y is data-dependent on thread x. Note that the
//! dependency relation is transitive but not symmetric."

/// An N×N single-bit dependency matrix, row = producer, column =
/// consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyMatrix {
    n: usize,
    rows: Vec<u64>,
}

impl DependencyMatrix {
    /// Maximum thread count per matrix row word.
    const WORD_BITS: usize = 64;

    /// Creates a matrix for up to `n` threads.
    pub fn new(n: usize) -> DependencyMatrix {
        let words_per_row = n.div_ceil(Self::WORD_BITS);
        DependencyMatrix {
            n,
            rows: vec![0; n * words_per_row.max(1)],
        }
    }

    /// Capacity (maximum thread id + 1).
    pub fn capacity(&self) -> usize {
        self.n
    }

    fn words_per_row(&self) -> usize {
        self.n.div_ceil(Self::WORD_BITS).max(1)
    }

    fn index(&self, producer: usize, consumer: usize) -> (usize, u64) {
        assert!(
            producer < self.n && consumer < self.n,
            "thread id out of range"
        );
        let wpr = self.words_per_row();
        (
            producer * wpr + consumer / Self::WORD_BITS,
            1u64 << (consumer % Self::WORD_BITS),
        )
    }

    /// Logs the dependency `producer → consumer` (consumer read data
    /// written by producer). Returns `true` if the bit was newly set.
    pub fn log(&mut self, producer: usize, consumer: usize) -> bool {
        let (w, bit) = self.index(producer, consumer);
        let was = self.rows[w] & bit != 0;
        self.rows[w] |= bit;
        !was
    }

    /// Whether `consumer` directly depends on `producer`.
    pub fn depends(&self, producer: usize, consumer: usize) -> bool {
        let (w, bit) = self.index(producer, consumer);
        self.rows[w] & bit != 0
    }

    /// All threads directly dependent on `producer`.
    pub fn direct_dependents(&self, producer: usize) -> Vec<usize> {
        (0..self.n).filter(|c| self.depends(producer, *c)).collect()
    }

    /// The set of threads that must be terminated when `faulty` crashes:
    /// `faulty` itself plus every thread transitively dependent on it
    /// (§4.2.2: "identify and terminate all threads that are
    /// data-dependent on tf").
    pub fn tainted_by(&self, faulty: usize) -> Vec<usize> {
        let mut tainted = vec![false; self.n];
        let mut stack = vec![faulty];
        tainted[faulty] = true;
        while let Some(p) = stack.pop() {
            #[allow(clippy::needless_range_loop)] // `tainted[c]` is also written
            for c in 0..self.n {
                if !tainted[c] && self.depends(p, c) {
                    tainted[c] = true;
                    stack.push(c);
                }
            }
        }
        (0..self.n).filter(|t| tainted[*t]).collect()
    }

    /// Clears every dependency involving `thread` (used when a thread id
    /// is recycled after recovery).
    pub fn clear_thread(&mut self, thread: usize) {
        for c in 0..self.n {
            let (w, bit) = self.index(thread, c);
            self.rows[w] &= !bit;
        }
        for p in 0..self.n {
            let (w, bit) = self.index(p, thread);
            self.rows[w] &= !bit;
        }
    }

    /// Total number of logged dependency edges.
    pub fn edge_count(&self) -> usize {
        let mut count = 0;
        for p in 0..self.n {
            for c in 0..self.n {
                if self.depends(p, c) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Serializes the matrix into bytes (the DDT retrieval interface).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.rows.len() * 8 + 4);
        out.extend_from_slice(&(self.n as u32).to_le_bytes());
        for w in &self.rows {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_support::prelude::*;

    #[test]
    fn log_and_query() {
        let mut m = DependencyMatrix::new(8);
        assert!(m.log(2, 1));
        assert!(!m.log(2, 1), "second log is idempotent");
        assert!(m.depends(2, 1));
        assert!(!m.depends(1, 2), "dependency is not symmetric");
        assert_eq!(m.edge_count(), 1);
    }

    #[test]
    fn figure8_scenario_taint() {
        // Figure 8: t2 → t1 (t1 read p1 written by t2), t1 → t0, t0 → t1.
        let mut m = DependencyMatrix::new(5);
        m.log(2, 1);
        m.log(1, 0);
        m.log(0, 1);
        // t2 crashes: t0 and t1 are transitively dependent; t3, t4 are not.
        assert_eq!(m.tainted_by(2), vec![0, 1, 2]);
        assert_eq!(m.tainted_by(3), vec![3]);
    }

    #[test]
    fn transitive_chains_and_cycles() {
        let mut m = DependencyMatrix::new(6);
        m.log(0, 1);
        m.log(1, 2);
        m.log(2, 3);
        m.log(3, 1); // cycle back
        assert_eq!(m.tainted_by(0), vec![0, 1, 2, 3]);
        assert_eq!(m.tainted_by(2), vec![1, 2, 3]);
    }

    #[test]
    fn clear_thread_removes_both_directions() {
        let mut m = DependencyMatrix::new(4);
        m.log(0, 1);
        m.log(1, 2);
        m.clear_thread(1);
        assert!(!m.depends(0, 1));
        assert!(!m.depends(1, 2));
        assert_eq!(m.edge_count(), 0);
    }

    #[test]
    fn wide_matrices_cross_word_boundaries() {
        let mut m = DependencyMatrix::new(130);
        assert!(m.log(0, 129));
        assert!(m.log(129, 64));
        assert!(m.depends(0, 129));
        assert!(m.depends(129, 64));
        assert_eq!(m.tainted_by(0), vec![0, 64, 129]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut m = DependencyMatrix::new(4);
        m.log(4, 0);
    }

    proptest! {
        /// tainted_by always contains the faulty thread and is closed
        /// under the dependency relation.
        #[test]
        fn taint_is_transitively_closed(
            edges in rse_support::collection::vec((0usize..16, 0usize..16), 0..60),
            faulty in 0usize..16,
        ) {
            let mut m = DependencyMatrix::new(16);
            for (p, c) in &edges {
                m.log(*p, *c);
            }
            let tainted = m.tainted_by(faulty);
            prop_assert!(tainted.contains(&faulty));
            for &p in &tainted {
                for c in m.direct_dependents(p) {
                    prop_assert!(tainted.contains(&c), "missing dependent {c} of {p}");
                }
            }
        }
    }
}
