//! The Data Dependency Tracker (DDT) — §4.2 of the paper.
//!
//! Tracks runtime data dependencies among the threads of a multithreaded
//! process at page granularity, and checkpoints shared pages (via the
//! SavePage exception) so that after a malicious thread crashes, the
//! healthy surviving threads can keep running while the faulty thread's
//! memory updates are undone.
//!
//! The module operates **asynchronously** (Figure 2(b)): it receives
//! memory-access instructions from `Fetch_Out`, the computed effective
//! address from `Execute_Out`, and logs ownership transitions and
//! dependencies only when the instruction **commits** — "so as not to
//! keep speculative information in the module".
//!
//! When a thread writes a page whose write-owner is another thread, the
//! Figure 5 state machine demands `SavePage`: the module captures the
//! pre-update page image in its internal buffer and raises an exception;
//! the OS exception handler (in `rse-sys`) stores the checkpoint and
//! suspends the process for the duration of the save.

mod ddm;
mod pst;

pub use ddm::DependencyMatrix;
pub use pst::{transition, PageOwners, PageStatusTable, ThreadId, TransitionActions};

use rse_core::{ChkDispatch, MauOp, MauRequest, Module, ModuleCtx, Verdict};
use rse_isa::chk::ops;
use rse_isa::layout::{page_base, page_id, PAGE_SIZE};
use rse_isa::{InstClass, ModuleId};
use rse_pipeline::{CoprocException, ExecuteInfo, RobId};
use std::any::Any;
use std::collections::HashMap;

/// Exception code the DDT raises for a SavePage event; `arg` carries the
/// base address of the page to checkpoint.
pub const SAVE_PAGE_EXCEPTION: u32 = 1;

/// DDT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdtConfig {
    /// Maximum thread count N (the DDM is N×N).
    pub max_threads: usize,
    /// Hot-page capacity of the Page Status Table.
    pub pst_capacity: usize,
    /// Model the 1-cycle logging lag of §4.2.1: if two
    /// dependency-creating accesses commit in the same cycle, the second
    /// dependency is lost (counted in `missed_logs`).
    pub model_log_lag: bool,
}

impl Default for DdtConfig {
    fn default() -> DdtConfig {
        DdtConfig {
            max_threads: 64,
            pst_capacity: 4096,
            model_log_lag: false,
        }
    }
}

/// A page checkpoint captured by the DDT's internal buffer, to be drained
/// by the OS exception handler.
#[derive(Debug, Clone)]
pub struct SavedPage {
    /// Page id (address / page size).
    pub page: u32,
    /// The pre-update page contents.
    pub data: Box<[u8; PAGE_SIZE as usize]>,
    /// The thread whose write triggered the save.
    pub writer: ThreadId,
    /// The previous write-owner (the thread whose data is preserved).
    pub prev_owner: ThreadId,
    /// Cycle of the triggering commit.
    pub saved_at: u64,
}

/// DDT counters (the Figure 9 curves derive from these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DdtStats {
    /// Loads whose commit was tracked.
    pub loads_tracked: u64,
    /// Stores whose commit was tracked.
    pub stores_tracked: u64,
    /// Dependencies logged into the DDM.
    pub dependencies_logged: u64,
    /// SavePage events raised (the "Num. of Saved Pages" curve).
    pub pages_saved: u64,
    /// Dependencies lost to the 1-cycle logging lag (if modeled).
    pub missed_logs: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingAccess {
    page: u32,
    is_store: bool,
}

#[derive(Debug, Clone, Copy)]
enum PendingChkAction {
    SetThread(ThreadId),
}

/// The Data Dependency Tracker module.
#[derive(Debug)]
pub struct Ddt {
    config: DdtConfig,
    pst: PageStatusTable,
    ddm: DependencyMatrix,
    current_thread: Option<ThreadId>,
    /// Duplicated copy of `current_thread` (a shadow register): every
    /// legitimate thread switch writes both, so the §3.4 self-test can
    /// detect a soft error upsetting the thread-id register — the DDT's
    /// most safety-critical state, since a wrong thread id silently
    /// mis-attributes every subsequent dependency.
    thread_shadow: Option<ThreadId>,
    pending_mem: HashMap<RobId, PendingAccess>,
    pending_chk: HashMap<RobId, PendingChkAction>,
    saved_pages: Vec<SavedPage>,
    stats: DdtStats,
    last_log_cycle: Option<u64>,
    /// In-flight retrieval stores (rob of the blocking CHECK).
    retrieval_in_flight: Option<RobId>,
}

impl Ddt {
    /// Creates a DDT module.
    pub fn new(config: DdtConfig) -> Ddt {
        Ddt {
            config,
            pst: PageStatusTable::new(config.pst_capacity),
            ddm: DependencyMatrix::new(config.max_threads),
            current_thread: None,
            thread_shadow: None,
            pending_mem: HashMap::new(),
            pending_chk: HashMap::new(),
            saved_pages: Vec::new(),
            stats: DdtStats::default(),
            last_log_cycle: None,
            retrieval_in_flight: None,
        }
    }

    /// Module counters.
    pub fn stats(&self) -> DdtStats {
        self.stats
    }

    /// The dependency matrix (recovery retrieval).
    pub fn ddm(&self) -> &DependencyMatrix {
        &self.ddm
    }

    /// The page status table (recovery retrieval).
    pub fn pst(&self) -> &PageStatusTable {
        &self.pst
    }

    /// The thread the DDT believes is running.
    pub fn current_thread(&self) -> Option<ThreadId> {
        self.current_thread
    }

    /// Sets the running thread directly (the OS-side equivalent of the
    /// `DDT_SET_THREAD` CHECK, used when switching outside instruction
    /// flow).
    pub fn set_current_thread(&mut self, thread: ThreadId) {
        assert!(
            thread < self.config.max_threads,
            "thread id exceeds DDM capacity"
        );
        self.current_thread = Some(thread);
        self.thread_shadow = Some(thread);
    }

    /// Drains the page checkpoints captured since the last call (the OS
    /// exception handler's retrieval).
    pub fn take_saved_pages(&mut self) -> Vec<SavedPage> {
        std::mem::take(&mut self.saved_pages)
    }

    /// Threads that must be terminated if `faulty` crashes: `faulty` and
    /// all transitive dependents.
    pub fn tainted_by(&self, faulty: ThreadId) -> Vec<ThreadId> {
        self.ddm.tainted_by(faulty)
    }

    /// Clears all per-thread state for a recycled thread id.
    pub fn forget_thread(&mut self, thread: ThreadId) {
        self.ddm.clear_thread(thread);
    }

    /// Drops PST entries owned by any of the given (terminated) threads,
    /// so recycled pages start from a clean ownership state.
    pub fn purge_victim_pages(&mut self, victims: &[ThreadId]) {
        self.pst.retain(|_, owners| {
            !owners.write_owner.is_some_and(|w| victims.contains(&w))
                && !owners.read_owner.is_some_and(|r| victims.contains(&r))
        });
    }

    /// Applies a tracked write by the current thread to `page` directly
    /// (bypassing the pipeline) — for recovery tests and host-side
    /// scenario construction. Returns whether a SavePage would fire.
    pub fn debug_track_write(&mut self, page: u32) -> bool {
        let thread = self.current_thread.expect("set_current_thread first");
        let actions = self.pst.with_entry(page, |o| transition(o, thread, true));
        actions.save_page
    }

    /// Applies a tracked read by the current thread to `page` directly.
    /// Returns the dependency logged, if any.
    pub fn debug_track_read(&mut self, page: u32) -> Option<(ThreadId, ThreadId)> {
        let thread = self.current_thread.expect("set_current_thread first");
        let actions = self.pst.with_entry(page, |o| transition(o, thread, false));
        if let Some((p, c)) = actions.log_dependency {
            self.ddm.log(p, c);
        }
        actions.log_dependency
    }
}

impl Module for Ddt {
    fn id(&self) -> ModuleId {
        ModuleId::DDT
    }

    fn name(&self) -> &'static str {
        "data-dependency-tracker"
    }

    fn on_chk(&mut self, chk: &ChkDispatch, ctx: &mut ModuleCtx<'_>) {
        match chk.spec.op {
            ops::SELFTEST => {
                let verdict = self.self_test();
                ctx.complete_check(chk.rob, verdict);
            }
            ops::DDT_SET_THREAD => {
                // Becomes effective at commit (asynchronous logging).
                self.pending_chk.insert(
                    chk.rob,
                    PendingChkAction::SetThread(chk.spec.param as ThreadId),
                );
            }
            ops::DDT_QUERY_SIZE => {
                // Writes [pst entries, ddm bytes] to the buffer at a0.
                let pst_count = self.pst.len() as u32;
                let ddm_bytes = self.ddm.to_bytes().len() as u32;
                let mut data = Vec::with_capacity(8);
                data.extend_from_slice(&pst_count.to_le_bytes());
                data.extend_from_slice(&ddm_bytes.to_le_bytes());
                ctx.mau_submit(MauRequest {
                    module: ModuleId::DDT,
                    addr: chk.operands[0],
                    op: MauOp::Store { data },
                    tag: chk.rob.0,
                });
                self.retrieval_in_flight = Some(chk.rob);
            }
            ops::DDT_RETRIEVE => {
                // Streams the DDM into the buffer at a0.
                ctx.mau_submit(MauRequest {
                    module: ModuleId::DDT,
                    addr: chk.operands[0],
                    op: MauOp::Store {
                        data: self.ddm.to_bytes(),
                    },
                    tag: chk.rob.0,
                });
                self.retrieval_in_flight = Some(chk.rob);
            }
            _ => {
                if chk.spec.blocking {
                    ctx.complete_check(chk.rob, Verdict::Fail);
                }
            }
        }
    }

    fn on_execute(&mut self, info: &ExecuteInfo, ctx: &mut ModuleCtx<'_>) {
        // The DDT learns the instruction type from Fetch_Out and the
        // effective address from Execute_Out (Figure 4). The access is
        // attributed to a thread at commit time, when the preceding
        // DDT_SET_THREAD (if any) has architecturally taken effect.
        let Some(addr) = info.eff_addr else { return };
        let Some(entry) = ctx.queues.fetch_out.get(info.rob) else {
            return;
        };
        let is_store = match entry.inst.class() {
            InstClass::Load => false,
            InstClass::Store => true,
            _ => return,
        };
        self.pending_mem.insert(
            info.rob,
            PendingAccess {
                page: page_id(addr),
                is_store,
            },
        );
    }

    fn on_commit(&mut self, rob: RobId, ctx: &mut ModuleCtx<'_>) {
        if let Some(action) = self.pending_chk.remove(&rob) {
            match action {
                PendingChkAction::SetThread(tid) => {
                    if tid < self.config.max_threads {
                        self.current_thread = Some(tid);
                        self.thread_shadow = Some(tid);
                    }
                }
            }
        }
        let Some(acc) = self.pending_mem.remove(&rob) else {
            return;
        };
        let Some(thread) = self.current_thread else {
            return;
        };
        if acc.is_store {
            self.stats.stores_tracked += 1;
        } else {
            self.stats.loads_tracked += 1;
        }
        let prev = self.pst.peek(acc.page);
        let actions = self
            .pst
            .with_entry(acc.page, |owners| transition(owners, thread, acc.is_store));
        if let Some((producer, consumer)) = actions.log_dependency {
            let lag_loss = self.config.model_log_lag && self.last_log_cycle == Some(ctx.now);
            if lag_loss {
                // §4.2.1: the module lags the pipeline by one cycle; a
                // dependency-creating access in the same cycle is lost.
                self.stats.missed_logs += 1;
            } else {
                if self.ddm.log(producer, consumer) {
                    self.stats.dependencies_logged += 1;
                }
                self.last_log_cycle = Some(ctx.now);
            }
        }
        if actions.save_page {
            // Capture the pre-update image now — the pipeline applies the
            // store's memory write after the Commit_Out indication.
            let base = page_base(acc.page);
            let data = ctx.mem.memory.snapshot_page(base);
            let prev_owner = prev.and_then(|o| o.write_owner).unwrap_or(thread);
            self.saved_pages.push(SavedPage {
                page: acc.page,
                data,
                writer: thread,
                prev_owner,
                saved_at: ctx.now,
            });
            self.stats.pages_saved += 1;
            ctx.raise_exception(CoprocException {
                module: ModuleId::DDT.number(),
                code: SAVE_PAGE_EXCEPTION,
                arg: base,
            });
        }
    }

    fn on_squash(&mut self, rob: RobId, _ctx: &mut ModuleCtx<'_>) {
        self.pending_mem.remove(&rob);
        self.pending_chk.remove(&rob);
        if self.retrieval_in_flight == Some(rob) {
            self.retrieval_in_flight = None;
        }
    }

    fn tick(&mut self, ctx: &mut ModuleCtx<'_>) {
        if let Some(comp) = ctx.mau.take_completion(ModuleId::DDT) {
            if self.retrieval_in_flight.map(|r| r.0) == Some(comp.tag) {
                let rob = self.retrieval_in_flight.take().expect("checked");
                ctx.complete_check(rob, Verdict::Pass);
            }
        }
    }

    fn self_test(&mut self) -> Verdict {
        // Compare the thread-id register against its shadow copy and
        // check it is within DDM range: a flipped thread id would
        // silently mis-attribute every dependency, so it is the state
        // the probe must be able to see.
        let in_range = self
            .current_thread
            .is_none_or(|t| t < self.config.max_threads);
        if in_range && self.current_thread == self.thread_shadow {
            Verdict::Pass
        } else {
            Verdict::Fail
        }
    }

    fn corrupt_state(&mut self, seed: u64) -> bool {
        // Upset the thread-id register (but not its shadow): pick a
        // different in-range id so the module keeps running — and keeps
        // mis-attributing — until a probe catches the mismatch.
        let n = self.config.max_threads;
        if n < 2 {
            return false;
        }
        let cur = self.current_thread.unwrap_or(0);
        let wrong = (cur + 1 + (seed as usize % (n - 1))) % n;
        self.current_thread = Some(wrong);
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_core::{Engine, RseConfig};
    use rse_isa::asm::assemble;
    use rse_mem::{MemConfig, MemorySystem};
    use rse_pipeline::{Pipeline, PipelineConfig, StepEvent};

    #[test]
    fn selftest_passes_until_thread_register_is_corrupted() {
        let mut ddt = Ddt::new(DdtConfig::default());
        assert_eq!(Module::self_test(&mut ddt), Verdict::Pass);
        ddt.set_current_thread(3);
        assert_eq!(Module::self_test(&mut ddt), Verdict::Pass);
        assert!(Module::corrupt_state(&mut ddt, 5));
        assert_ne!(ddt.current_thread(), Some(3), "register upset");
        assert_eq!(Module::self_test(&mut ddt), Verdict::Fail);
        // A legitimate thread switch rewrites both copies (repair path).
        ddt.set_current_thread(4);
        assert_eq!(Module::self_test(&mut ddt), Verdict::Pass);
    }

    fn run_with_ddt(src: &str) -> (Pipeline, Engine, Vec<rse_pipeline::CoprocException>) {
        let image = assemble(src).expect("assembles");
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::with_framework()),
        );
        cpu.load_image(&image);
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(Ddt::new(DdtConfig::default())));
        engine.enable(ModuleId::DDT);
        let mut exceptions = Vec::new();
        loop {
            match cpu.run(&mut engine, 5_000_000) {
                StepEvent::Halted => break,
                StepEvent::Exception(e) => {
                    // Stand-in for the OS handler: acknowledge and go on.
                    exceptions.push(e);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        (cpu, engine, exceptions)
    }

    /// Two "threads" simulated by switching the DDT thread id via CHECK
    /// instructions around accesses to a shared buffer.
    const SHARING_SRC: &str = r#"
        main:   la   r8, shared
                chk  ddt, nblk, 2, 1   # DDT_SET_THREAD(1)
                li   r9, 0xAA
                sw   r9, 0(r8)          # t1 writes the page
                chk  ddt, nblk, 2, 2   # DDT_SET_THREAD(2)
                lw   r10, 0(r8)         # t2 reads it  -> log(1 -> 2)
                sw   r10, 4(r8)         # t2 writes it -> SavePage
                halt
                .data
                .align 4
        shared: .space 64
    "#;

    #[test]
    fn dependency_logged_and_page_saved() {
        let (_cpu, mut engine, exceptions) = run_with_ddt(SHARING_SRC);
        let ddt: &mut Ddt = engine.module_mut(ModuleId::DDT).unwrap();
        assert!(ddt.ddm().depends(1, 2), "t2 consumed data produced by t1");
        assert!(!ddt.ddm().depends(2, 1));
        assert_eq!(ddt.stats().dependencies_logged, 1);
        assert_eq!(ddt.stats().pages_saved, 1);
        assert_eq!(exceptions.len(), 1);
        assert_eq!(exceptions[0].code, SAVE_PAGE_EXCEPTION);
        let saved = ddt.take_saved_pages();
        assert_eq!(saved.len(), 1);
        assert_eq!(saved[0].writer, 2);
        assert_eq!(saved[0].prev_owner, 1);
    }

    #[test]
    fn saved_page_holds_pre_update_image() {
        let (cpu, mut engine, _) = run_with_ddt(SHARING_SRC);
        let image_base = {
            let ddt: &Ddt = engine.module_ref(ModuleId::DDT).unwrap();
            let pst_pages: Vec<u32> = ddt.pst().iter().map(|(p, _)| p).collect();
            assert_eq!(pst_pages.len(), 1);
            page_base(pst_pages[0])
        };
        let shared_off = {
            // `shared` is the start of .data.
            rse_isa::layout::DATA_BASE - image_base
        };
        let ddt: &mut Ddt = engine.module_mut(ModuleId::DDT).unwrap();
        let saved = ddt.take_saved_pages();
        // In the snapshot, word 0 holds t1's 0xAA but word 1 is still 0
        // (captured before t2's store committed).
        let w0 = u32::from_le_bytes(
            saved[0].data[shared_off as usize..shared_off as usize + 4]
                .try_into()
                .unwrap(),
        );
        let w1 = u32::from_le_bytes(
            saved[0].data[shared_off as usize + 4..shared_off as usize + 8]
                .try_into()
                .unwrap(),
        );
        assert_eq!(w0, 0xAA);
        assert_eq!(w1, 0);
        // Memory itself has both stores.
        assert_eq!(
            cpu.mem().memory.read_u32(rse_isa::layout::DATA_BASE + 4),
            0xAA
        );
    }

    #[test]
    fn private_access_never_saves_or_logs() {
        let src = r#"
        main:   la   r8, buf
                chk  ddt, nblk, 2, 1
                li   r9, 5
                sw   r9, 0(r8)
                lw   r10, 0(r8)
                sw   r10, 4(r8)
                halt
                .data
        buf:    .space 32
        "#;
        let (_cpu, engine, exceptions) = run_with_ddt(src);
        let ddt: &Ddt = engine.module_ref(ModuleId::DDT).unwrap();
        assert_eq!(ddt.stats().dependencies_logged, 0);
        assert_eq!(ddt.stats().pages_saved, 0);
        assert!(exceptions.is_empty());
    }

    #[test]
    fn no_tracking_until_thread_set() {
        let src = r#"
        main:   la   r8, buf
                li   r9, 5
                sw   r9, 0(r8)
                lw   r10, 0(r8)
                halt
                .data
        buf:    .space 32
        "#;
        let (_cpu, engine, _) = run_with_ddt(src);
        let ddt: &Ddt = engine.module_ref(ModuleId::DDT).unwrap();
        assert_eq!(ddt.stats().loads_tracked + ddt.stats().stores_tracked, 0);
        assert!(ddt.pst().is_empty());
    }

    #[test]
    fn taint_matches_figure8_through_module() {
        let mut ddt = Ddt::new(DdtConfig::default());
        // Build Figure 8 directly on the module's structures.
        ddt.set_current_thread(0);
        // t2 -> t1, t1 -> t0, t0 -> t1 (via ddm access for unit scope).
        ddt.ddm.log(2, 1);
        ddt.ddm.log(1, 0);
        ddt.ddm.log(0, 1);
        assert_eq!(ddt.tainted_by(2), vec![0, 1, 2]);
        assert_eq!(ddt.tainted_by(4), vec![4]);
        ddt.forget_thread(1);
        assert_eq!(ddt.tainted_by(2), vec![2]);
    }

    #[test]
    fn retrieval_check_stores_ddm_to_memory() {
        let src = r#"
        main:   la   r8, shared
                chk  ddt, nblk, 2, 1
                li   r9, 1
                sw   r9, 0(r8)
                chk  ddt, nblk, 2, 2
                lw   r10, 0(r8)
                la   r4, outbuf          # a0 = retrieval buffer
                chk  ddt, blk, 4, 0      # DDT_RETRIEVE
                halt
                .data
                .align 4
        shared: .space 16
        outbuf: .space 1024
        "#;
        let (cpu, _engine, _) = run_with_ddt(src);
        let image = assemble(src).unwrap();
        let outbuf = image.symbol("outbuf").unwrap();
        // First word of the serialized DDM is N (max_threads).
        assert_eq!(
            cpu.mem().memory.read_u32(outbuf),
            DdtConfig::default().max_threads as u32
        );
    }
}
