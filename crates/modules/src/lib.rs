//! # rse-modules — the four hardware modules of the paper
//!
//! §4 of *"An Architectural Framework for Providing Reliability and
//! Security Support"* (DSN 2004) describes four modules embedded in the
//! RSE framework. Each is implemented here against the
//! [`rse_core::Module`] interface:
//!
//! * [`icm::Icm`] — the **Instruction Checker Module** (§4.3):
//!   preemptively checks an instruction's binary against a redundant copy
//!   kept in a contiguous CheckerMemory, through a 256-entry LRU
//!   `Icm_Cache` with 8-entry batch refill; a 3-stage internal pipeline
//!   (IDLE → MEMREQ → COMP) following the Figure 6 timeline,
//! * [`mlr::Mlr`] — the **Memory Layout Randomization** module (§4.1):
//!   parses the executable's special header, randomizes the
//!   position-independent region bases with the clock-cycle counter,
//!   copies the GOT to a random location and rewrites the PLT (4 entries
//!   at a time, as in Figure 3(B)),
//! * [`ddt::Ddt`] — the **Data Dependency Tracker** (§4.2): the page
//!   status table and the N×N data-dependency matrix, driving SavePage
//!   exceptions so the OS can checkpoint shared pages and recover healthy
//!   threads after a malicious-thread crash,
//! * [`ahbm::Ahbm`] — the **Adaptive Heartbeat Monitor** (§4.4): a CAM of
//!   monitored entities, per-entity counters, and a Jacobson-style
//!   adaptive-timeout estimator.
//!
//! A fifth module extends the paper's set for the adversarial
//! arms-race campaigns:
//!
//! * [`dsm::Dsm`] — the **Dynamic Sequence Monitor**: basic-block
//!   signatures (word count + XOR) checked along committed control
//!   flow, closing the in-flight instruction-skip blind spot the ICM's
//!   per-word comparison cannot see (R5Detect's signature-monitoring
//!   idea recast onto the Commit_Out tap).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ahbm;
pub mod ddt;
pub mod dsm;
pub mod icm;
pub mod mlr;

pub use ahbm::{
    q16, Ahbm, AhbmConfig, IntervalEstimator, PeerConfig, PeerEvent, PeerId, PeerMonitor,
    PeerState, Q16_ONE,
};
pub use ddt::{Ddt, DdtConfig, SavedPage, ThreadId, SAVE_PAGE_EXCEPTION};
pub use dsm::{BlockSig, Dsm, DsmStats};
pub use icm::{Icm, IcmConfig};
pub use mlr::{Mlr, MlrConfig, RandomizedBases};
