//! The Memory Layout Randomization (MLR) module — §4.1 of the paper.
//!
//! Hardware implementation of Transparent Runtime Randomization: at
//! process load time the module randomizes the bases of the
//! position-independent regions (stack, heap, shared libraries) and
//! relocates the position-dependent GOT, rewriting the PLT to match.
//!
//! The randomization task is split between the program loader (software,
//! in `rse-sys`) and this module, exactly as in Figure 3:
//!
//! 1. the loader assembles the *special header* in memory and passes its
//!    location via `MLR_EXEC_HDR`;
//! 2. `MLR_PI_RAND` makes the module read and parse the header via the
//!    MAU, add the clock-cycle-counter randomness to each region base,
//!    and write the randomized bases back to memory right after the
//!    header, where the loader picks them up;
//! 3. `MLR_GOT_OLD`/`MLR_GOT_NEW`/`MLR_COPY_GOT` copy the GOT through the
//!    module's internal GOT buffer to its new random location;
//! 4. `MLR_PLT_INFO`/`MLR_WRITE_PLT` pull the PLT into the PLT buffer,
//!    rewrite every entry's GOT pointer (4 entries per cycle — the four
//!    parallel adders of Figure 3(B)), and write it back.
//!
//! All these CHECKs are blocking: the loader's CHECK instruction does not
//! commit until the hardware operation finishes, which is how Table 5
//! measures the hardware randomization time.

use rse_core::{ChkDispatch, MauOp, MauRequest, Module, ModuleCtx, Verdict};
use rse_isa::chk::ops;
use rse_isa::image::{ExecHeader, HEADER_WORDS};
use rse_isa::layout::PAGE_SIZE;
use rse_isa::ModuleId;
use rse_pipeline::RobId;
use rse_support::rng::splitmix64;
use std::any::Any;

/// MLR configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlrConfig {
    /// Mask applied to the raw random value before page alignment: the
    /// randomization range for each region (default 16 MB).
    pub range_mask: u32,
    /// Cycles of register-transfer work to parse the header and compute
    /// the randomized bases (the adder tree of Figure 3(B)).
    pub parse_cycles: u64,
    /// PLT entries rewritten per cycle (the paper uses 4 parallel adders).
    pub plt_rewrite_parallelism: u32,
    /// Optional fixed seed overriding the clock-cycle-counter entropy,
    /// for reproducible experiments.
    pub seed: Option<u64>,
}

impl Default for MlrConfig {
    fn default() -> MlrConfig {
        MlrConfig {
            range_mask: 0x00FF_FFFF,
            parse_cycles: 4,
            plt_rewrite_parallelism: 4,
            seed: None,
        }
    }
}

/// The randomized region bases produced by `MLR_PI_RAND`, written to the
/// three words following the special header in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RandomizedBases {
    /// Randomized shared-library base.
    pub shared_lib: u32,
    /// Randomized stack base (top; offsets apply downward).
    pub stack: u32,
    /// Randomized heap base.
    pub heap: u32,
}

impl RandomizedBases {
    /// Byte offset of the result block relative to the header location.
    pub const RESULT_OFFSET: u32 = (HEADER_WORDS as u32) * 4;
}

/// MLR counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MlrStats {
    /// `MLR_PI_RAND` operations completed.
    pub pi_randomizations: u64,
    /// GOT copies completed.
    pub got_copies: u64,
    /// PLT rewrites completed.
    pub plt_rewrites: u64,
    /// PLT entries rewritten in total.
    pub plt_entries_rewritten: u64,
    /// Runtime re-randomizations performed (§4.1 "Runtime
    /// re-randomization").
    pub rerandomizations: u64,
}

#[derive(Debug)]
enum Op {
    /// Waiting for the header load, then computing, then storing results.
    PiRand { rob: RobId, stage: PiStage },
    /// GOT copy: load old → buffer → store new.
    CopyGot { rob: RobId, loaded: bool },
    /// PLT rewrite: load PLT → rewrite → store back.
    WritePlt { rob: RobId, stage: PltStage },
}

#[derive(Debug)]
enum PiStage {
    LoadHeader,
    Compute { until: u64 },
    StoreResults,
}

#[derive(Debug)]
enum PltStage {
    Load,
    Rewrite { until: u64 },
    Store,
}

/// The Memory Layout Randomization module.
#[derive(Debug)]
pub struct Mlr {
    config: MlrConfig,
    // Figure 3(B) registers, latched by the parameter CHECKs.
    hdr_location: u32,
    hdr_size: u32,
    got_old: u32,
    got_size: u32,
    got_new: u32,
    plt_location: u32,
    plt_size: u32,
    /// Internal GOT buffer (4 KB block in the paper).
    got_buffer: Vec<u8>,
    /// Internal PLT buffer (4 KB block in the paper).
    plt_buffer: Vec<u8>,
    current: Option<Op>,
    header: Option<ExecHeader>,
    /// The most recent randomization result.
    pub last_bases: Option<RandomizedBases>,
    stats: MlrStats,
    rng: u64,
    rng_seeded: bool,
    /// Integrity seal over the Figure 3(B) latched registers, rewritten
    /// at every legitimate latch. The §3.4 self-test recomputes it, so a
    /// soft error flipping a latched address makes the quarantine probe
    /// fail.
    seal: u64,
}

impl Mlr {
    /// Creates an MLR module.
    pub fn new(config: MlrConfig) -> Mlr {
        let mut mlr = Mlr {
            config,
            hdr_location: 0,
            hdr_size: 0,
            got_old: 0,
            got_size: 0,
            got_new: 0,
            plt_location: 0,
            plt_size: 0,
            got_buffer: Vec::new(),
            plt_buffer: Vec::new(),
            current: None,
            header: None,
            last_bases: None,
            stats: MlrStats::default(),
            rng: 0,
            rng_seeded: false,
            seal: 0,
        };
        mlr.reseal();
        mlr
    }

    /// Module counters.
    pub fn stats(&self) -> MlrStats {
        self.stats
    }

    /// Recomputes the integrity seal over the latched registers.
    fn register_seal(&self) -> u64 {
        let regs = [
            self.hdr_location,
            self.hdr_size,
            self.got_old,
            self.got_size,
            self.got_new,
            self.plt_location,
            self.plt_size,
        ];
        let mut bytes = [0u8; 28];
        for (i, r) in regs.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&r.to_le_bytes());
        }
        rse_support::rng::fnv1a64(&bytes)
    }

    fn reseal(&mut self) {
        self.seal = self.register_seal();
    }

    fn next_offset(&mut self, now: u64) -> u32 {
        if !self.rng_seeded {
            // "computes the randomized address values by adding the value
            // from the clock cycle counter" — the cycle counter seeds the
            // entropy (overridable for reproducible experiments).
            self.rng = self.config.seed.unwrap_or(now | 1);
            self.rng_seeded = true;
        }
        let raw = splitmix64(&mut self.rng) as u32;
        // Page-aligned, non-zero offset within the configured range.
        let off = (raw & self.config.range_mask) & !(PAGE_SIZE - 1);
        if off == 0 {
            PAGE_SIZE
        } else {
            off
        }
    }

    /// Picks a fresh randomized base for a live segment — the hardware
    /// half of the paper's §4.1 *runtime re-randomization* proposal. The
    /// kernel stops the process, calls this to obtain the new base, moves
    /// the segment, and rewrites the compiler-registered pointers (see
    /// `rse_sys::rerand`). The new base is page-aligned and guaranteed to
    /// differ from the old one.
    pub fn pick_rerandomized_base(&mut self, old_base: u32, len: u32, now: u64) -> u32 {
        let _ = len;
        self.stats.rerandomizations += 1;
        loop {
            let candidate = old_base
                .wrapping_sub((self.config.range_mask / 2) & !(PAGE_SIZE - 1))
                .wrapping_add(self.next_offset(now));
            if candidate != old_base && candidate.is_multiple_of(PAGE_SIZE) {
                return candidate;
            }
        }
    }

    fn rewrite_plt_buffer(&mut self) -> u64 {
        // Each PLT entry is two words: a code word and a GOT pointer.
        // Pointers into the old GOT are redirected to the new GOT.
        let mut rewritten = 0u64;
        let entries = self.plt_buffer.len() / 8;
        for e in 0..entries {
            let off = e * 8 + 4;
            let ptr = u32::from_le_bytes(self.plt_buffer[off..off + 4].try_into().expect("4B"));
            if ptr >= self.got_old && ptr < self.got_old.wrapping_add(self.got_size) {
                let new_ptr = ptr - self.got_old + self.got_new;
                self.plt_buffer[off..off + 4].copy_from_slice(&new_ptr.to_le_bytes());
                rewritten += 1;
            }
        }
        self.stats.plt_entries_rewritten += rewritten;
        entries as u64
    }
}

impl Module for Mlr {
    fn id(&self) -> ModuleId {
        ModuleId::MLR
    }

    fn name(&self) -> &'static str {
        "memory-layout-randomization"
    }

    fn on_chk(&mut self, chk: &ChkDispatch, ctx: &mut ModuleCtx<'_>) {
        let [a0, a1] = chk.operands;
        match chk.spec.op {
            ops::SELFTEST => {
                let verdict = self.self_test();
                ctx.complete_check(chk.rob, verdict);
            }
            ops::MLR_EXEC_HDR => {
                self.hdr_location = a0;
                self.hdr_size = a1;
                self.reseal();
                ctx.complete_check(chk.rob, Verdict::Pass);
            }
            ops::MLR_GOT_OLD => {
                self.got_old = a0;
                self.got_size = a1;
                self.reseal();
                ctx.complete_check(chk.rob, Verdict::Pass);
            }
            ops::MLR_GOT_NEW => {
                self.got_new = a0;
                self.reseal();
                ctx.complete_check(chk.rob, Verdict::Pass);
            }
            ops::MLR_PLT_INFO => {
                self.plt_location = a0;
                self.plt_size = a1;
                self.reseal();
                ctx.complete_check(chk.rob, Verdict::Pass);
            }
            ops::MLR_PI_RAND => {
                ctx.mau_submit(MauRequest {
                    module: ModuleId::MLR,
                    addr: self.hdr_location,
                    op: MauOp::Load {
                        bytes: (HEADER_WORDS as u32) * 4,
                    },
                    tag: chk.rob.0,
                });
                self.current = Some(Op::PiRand {
                    rob: chk.rob,
                    stage: PiStage::LoadHeader,
                });
            }
            ops::MLR_COPY_GOT => {
                ctx.mau_submit(MauRequest {
                    module: ModuleId::MLR,
                    addr: self.got_old,
                    op: MauOp::Load {
                        bytes: self.got_size,
                    },
                    tag: chk.rob.0,
                });
                self.current = Some(Op::CopyGot {
                    rob: chk.rob,
                    loaded: false,
                });
            }
            ops::MLR_WRITE_PLT => {
                ctx.mau_submit(MauRequest {
                    module: ModuleId::MLR,
                    addr: self.plt_location,
                    op: MauOp::Load {
                        bytes: self.plt_size,
                    },
                    tag: chk.rob.0,
                });
                self.current = Some(Op::WritePlt {
                    rob: chk.rob,
                    stage: PltStage::Load,
                });
            }
            _ => {
                // Unknown operation: fail the check so software notices.
                ctx.complete_check(chk.rob, Verdict::Fail);
            }
        }
    }

    fn on_squash(&mut self, rob: RobId, _ctx: &mut ModuleCtx<'_>) {
        let owns = match &self.current {
            Some(Op::PiRand { rob: r, .. })
            | Some(Op::CopyGot { rob: r, .. })
            | Some(Op::WritePlt { rob: r, .. }) => *r == rob,
            None => false,
        };
        if owns {
            self.current = None;
        }
    }

    fn tick(&mut self, ctx: &mut ModuleCtx<'_>) {
        let now = ctx.now;
        let completion = ctx.mau.take_completion(ModuleId::MLR);
        let Some(op) = self.current.take() else {
            return;
        };
        match op {
            Op::PiRand { rob, stage } => match stage {
                PiStage::LoadHeader => {
                    if let Some(comp) = completion {
                        let words: Vec<u32> = comp
                            .data
                            .chunks_exact(4)
                            .map(|c| u32::from_le_bytes(c.try_into().expect("4B")))
                            .collect();
                        match ExecHeader::from_words(&words) {
                            Ok(h) => {
                                self.header = Some(h);
                                self.current = Some(Op::PiRand {
                                    rob,
                                    stage: PiStage::Compute {
                                        until: now + self.config.parse_cycles,
                                    },
                                });
                            }
                            Err(_) => {
                                // Malformed header: report an error.
                                ctx.complete_check(rob, Verdict::Fail);
                            }
                        }
                    } else {
                        self.current = Some(Op::PiRand {
                            rob,
                            stage: PiStage::LoadHeader,
                        });
                    }
                }
                PiStage::Compute { until } => {
                    if now < until {
                        self.current = Some(Op::PiRand {
                            rob,
                            stage: PiStage::Compute { until },
                        });
                        return;
                    }
                    let h = self.header.expect("header parsed");
                    let bases = RandomizedBases {
                        shared_lib: h.shared_lib_base.wrapping_add(self.next_offset(now)),
                        stack: h.stack_base.wrapping_sub(self.next_offset(now)),
                        heap: h.heap_base.wrapping_add(self.next_offset(now)),
                    };
                    self.last_bases = Some(bases);
                    let mut data = Vec::with_capacity(12);
                    data.extend_from_slice(&bases.shared_lib.to_le_bytes());
                    data.extend_from_slice(&bases.stack.to_le_bytes());
                    data.extend_from_slice(&bases.heap.to_le_bytes());
                    ctx.mau_submit(MauRequest {
                        module: ModuleId::MLR,
                        addr: self.hdr_location + RandomizedBases::RESULT_OFFSET,
                        op: MauOp::Store { data },
                        tag: rob.0,
                    });
                    self.current = Some(Op::PiRand {
                        rob,
                        stage: PiStage::StoreResults,
                    });
                }
                PiStage::StoreResults => {
                    if completion.is_some() {
                        self.stats.pi_randomizations += 1;
                        ctx.complete_check(rob, Verdict::Pass);
                    } else {
                        self.current = Some(Op::PiRand {
                            rob,
                            stage: PiStage::StoreResults,
                        });
                    }
                }
            },
            Op::CopyGot { rob, loaded } => {
                if let Some(comp) = completion {
                    if !loaded {
                        // "copies the GOT entries to the internal GOT
                        // buffer, and then back to the new location".
                        self.got_buffer = comp.data;
                        ctx.mau_submit(MauRequest {
                            module: ModuleId::MLR,
                            addr: self.got_new,
                            op: MauOp::Store {
                                data: self.got_buffer.clone(),
                            },
                            tag: rob.0,
                        });
                        self.current = Some(Op::CopyGot { rob, loaded: true });
                    } else {
                        self.stats.got_copies += 1;
                        ctx.complete_check(rob, Verdict::Pass);
                    }
                } else {
                    self.current = Some(Op::CopyGot { rob, loaded });
                }
            }
            Op::WritePlt { rob, stage } => match stage {
                PltStage::Load => {
                    if let Some(comp) = completion {
                        self.plt_buffer = comp.data;
                        let entries = self.rewrite_plt_buffer();
                        let cycles = entries
                            .div_ceil(self.config.plt_rewrite_parallelism as u64)
                            .max(1);
                        self.current = Some(Op::WritePlt {
                            rob,
                            stage: PltStage::Rewrite {
                                until: now + cycles,
                            },
                        });
                    } else {
                        self.current = Some(Op::WritePlt {
                            rob,
                            stage: PltStage::Load,
                        });
                    }
                }
                PltStage::Rewrite { until } => {
                    if now < until {
                        self.current = Some(Op::WritePlt {
                            rob,
                            stage: PltStage::Rewrite { until },
                        });
                        return;
                    }
                    ctx.mau_submit(MauRequest {
                        module: ModuleId::MLR,
                        addr: self.plt_location,
                        op: MauOp::Store {
                            data: self.plt_buffer.clone(),
                        },
                        tag: rob.0,
                    });
                    self.current = Some(Op::WritePlt {
                        rob,
                        stage: PltStage::Store,
                    });
                }
                PltStage::Store => {
                    if completion.is_some() {
                        self.stats.plt_rewrites += 1;
                        ctx.complete_check(rob, Verdict::Pass);
                    } else {
                        self.current = Some(Op::WritePlt {
                            rob,
                            stage: PltStage::Store,
                        });
                    }
                }
            },
        }
    }

    fn self_test(&mut self) -> Verdict {
        if self.register_seal() == self.seal {
            Verdict::Pass
        } else {
            Verdict::Fail
        }
    }

    fn corrupt_state(&mut self, seed: u64) -> bool {
        // Flip one bit in a deterministically-picked latched register
        // without resealing; also upset a GOT-buffer byte if one is held.
        let bit = 1u32 << ((seed >> 4) % 32);
        match seed % 7 {
            0 => self.hdr_location ^= bit,
            1 => self.hdr_size ^= bit,
            2 => self.got_old ^= bit,
            3 => self.got_size ^= bit,
            4 => self.got_new ^= bit,
            5 => self.plt_location ^= bit,
            _ => self.plt_size ^= bit,
        }
        if !self.got_buffer.is_empty() {
            let idx = (seed as usize >> 9) % self.got_buffer.len();
            self.got_buffer[idx] ^= 1 << ((seed >> 16) % 8);
        }
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_core::{Engine, RseConfig};
    use rse_isa::asm::assemble;
    use rse_isa::layout;
    use rse_mem::{MemConfig, MemorySystem};
    use rse_pipeline::{Pipeline, PipelineConfig, StepEvent};

    fn mlr_pipeline_config() -> PipelineConfig {
        PipelineConfig {
            chk_serialize_mask: 1 << ModuleId::MLR.number(),
            ..PipelineConfig::default()
        }
    }

    fn engine_with_mlr(seed: Option<u64>) -> Engine {
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(Mlr::new(MlrConfig {
            seed,
            ..MlrConfig::default()
        })));
        engine.enable(ModuleId::MLR);
        engine
    }

    /// Guest program performing the Figure 3(A) PI-randomization
    /// handshake: header already placed in `.data` by the "loader".
    const PI_SRC: &str = r#"
        main:   la  r4, header       # a0 = header location
                li  r5, 64           # a1 = header size
                chk mlr, blk, 2, 0   # MLR_EXEC_HDR
                chk mlr, blk, 3, 0   # MLR_PI_RAND
                la  r8, header+64    # results follow the header
                lw  r9, 0(r8)        # randomized shlib base
                lw  r10, 4(r8)       # randomized stack base
                lw  r11, 8(r8)       # randomized heap base
                halt
                .data
                .align 4
        header: .word 0x52534530     # magic "RSE0"
                .word 0x00400000, 4096      # code start/len
                .word 0x10000000, 512, 0    # data start/len, bss
                .word 0x0F000000            # shared lib base
                .word 0x7FFFF000            # stack base
                .word 0x18000000            # heap base
                .word 0, 0, 0, 0            # got/plt
                .word 0x00400000            # entry
                .word 0, 0                  # pad to 16 words
        results:.space 12
    "#;

    fn run_pi(seed: Option<u64>) -> (Pipeline, Engine) {
        let image = assemble(PI_SRC).expect("assembles");
        let mut cpu = Pipeline::new(
            mlr_pipeline_config(),
            MemorySystem::new(MemConfig::with_framework()),
        );
        cpu.load_image(&image);
        let mut engine = engine_with_mlr(seed);
        assert_eq!(cpu.run(&mut engine, 5_000_000), StepEvent::Halted);
        (cpu, engine)
    }

    #[test]
    fn pi_randomization_moves_all_regions() {
        let (cpu, engine) = run_pi(Some(42));
        let shlib = cpu.regs()[9];
        let stack = cpu.regs()[10];
        let heap = cpu.regs()[11];
        assert_ne!(shlib, layout::SHLIB_BASE);
        assert_ne!(stack, layout::STACK_BASE);
        assert_ne!(heap, layout::HEAP_BASE);
        // Offsets are page-aligned and displace in the right direction.
        assert_eq!(
            shlib % layout::PAGE_SIZE,
            layout::SHLIB_BASE % layout::PAGE_SIZE
        );
        assert!(shlib > layout::SHLIB_BASE);
        assert!(stack < layout::STACK_BASE);
        assert!(heap > layout::HEAP_BASE);
        let mlr: &Mlr = engine.module_ref(ModuleId::MLR).unwrap();
        assert_eq!(mlr.stats().pi_randomizations, 1);
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let (a, _) = run_pi(Some(1));
        let (b, _) = run_pi(Some(2));
        assert_ne!(
            (a.regs()[9], a.regs()[10], a.regs()[11]),
            (b.regs()[9], b.regs()[10], b.regs()[11]),
            "two loads must not share a layout"
        );
    }

    #[test]
    fn same_seed_is_reproducible() {
        let (a, _) = run_pi(Some(7));
        let (b, _) = run_pi(Some(7));
        assert_eq!(a.regs()[9], b.regs()[9]);
        assert_eq!(a.regs()[10], b.regs()[10]);
    }

    #[test]
    fn got_copy_and_plt_rewrite() {
        // 4 GOT entries at got_old; a 2-entry PLT pointing into the GOT.
        let src = r#"
        main:   la  r4, got_old
                li  r5, 16
                chk mlr, blk, 4, 0    # MLR_GOT_OLD
                la  r4, got_new
                chk mlr, blk, 5, 0    # MLR_GOT_NEW
                chk mlr, blk, 6, 0    # MLR_COPY_GOT
                la  r4, plt
                li  r5, 16
                chk mlr, blk, 7, 0    # MLR_PLT_INFO
                chk mlr, blk, 8, 0    # MLR_WRITE_PLT
                la  r8, got_new
                lw  r9, 0(r8)         # first copied GOT word
                la  r8, plt
                lw  r10, 4(r8)        # first rewritten PLT pointer
                halt
                .data
                .align 4
        got_old: .word 0x11112222, 0x33334444, 0x55556666, 0x77778888
        got_new: .space 16
        plt:     .word 0x08000000, got_old
                 .word 0x08000000, got_old+8
        "#;
        let image = assemble(src).unwrap();
        let got_old = image.symbol("got_old").unwrap();
        let got_new = image.symbol("got_new").unwrap();
        let mut cpu = Pipeline::new(
            mlr_pipeline_config(),
            MemorySystem::new(MemConfig::with_framework()),
        );
        cpu.load_image(&image);
        let mut engine = engine_with_mlr(Some(3));
        assert_eq!(cpu.run(&mut engine, 5_000_000), StepEvent::Halted);
        // GOT copied verbatim.
        assert_eq!(cpu.regs()[9], 0x1111_2222);
        // PLT pointer redirected from got_old to got_new.
        assert_eq!(cpu.regs()[10], got_new);
        let mem = cpu.mem();
        let plt = image.symbol("plt").unwrap();
        assert_eq!(mem.memory.read_u32(plt + 12), got_new + 8);
        // Code words untouched.
        assert_eq!(mem.memory.read_u32(plt), 0x0800_0000);
        let mlr: &Mlr = engine.module_ref(ModuleId::MLR).unwrap();
        assert_eq!(mlr.stats().got_copies, 1);
        assert_eq!(mlr.stats().plt_rewrites, 1);
        assert_eq!(mlr.stats().plt_entries_rewritten, 2);
        assert_eq!(
            mem.memory.read_u32(got_old + 12),
            0x7777_8888,
            "old GOT intact"
        );
    }

    #[test]
    fn bad_header_fails_check_and_recovers_via_quarantine() {
        // Header magic is wrong: MLR_PI_RAND reports an error; the CHECK
        // flush-loops until the watchdog's burst detector quarantines the
        // MLR, whose CHECKs then commit as NOPs so the program finishes.
        let src = r#"
        main:   la  r4, header
                li  r5, 64
                chk mlr, blk, 2, 0
                chk mlr, blk, 3, 0
                li  r8, 1
                halt
                .data
                .align 4
        header: .word 0xBADC0DE
                .space 76
        "#;
        let image = assemble(src).unwrap();
        let mut cpu = Pipeline::new(
            mlr_pipeline_config(),
            MemorySystem::new(MemConfig::with_framework()),
        );
        cpu.load_image(&image);
        let mut cfg = RseConfig::default();
        cfg.watchdog.burst_threshold = 3;
        let mut engine = Engine::new(cfg);
        engine.install(Box::new(Mlr::new(MlrConfig::default())));
        engine.enable(ModuleId::MLR);
        assert_eq!(cpu.run(&mut engine, 5_000_000), StepEvent::Halted);
        assert_eq!(cpu.regs()[8], 1, "program completes under quarantine");
        assert!(engine.module_health(ModuleId::MLR).is_down());
        assert_eq!(engine.safe_mode(), None);
        assert!(engine.stats().chk_nop_committed >= 1);
    }

    #[test]
    fn selftest_passes_until_state_is_corrupted() {
        let mut mlr = Mlr::new(MlrConfig::default());
        assert_eq!(Module::self_test(&mut mlr), Verdict::Pass);
        assert!(Module::corrupt_state(&mut mlr, 0x1234_5678_9ABC_DEF0));
        assert_eq!(Module::self_test(&mut mlr), Verdict::Fail);
    }
}
