//! The Dynamic Sequence Monitor (DSM) — basic-block signature checking
//! along committed control flow.
//!
//! The ICM (§4.3) compares the binary of each *checked* instruction
//! against a redundant copy — it verifies that the words which execute
//! are the right words, but not that *every* word of a block executed.
//! An in-flight skip (a fetched word replaced by a NOP, InjectV's skip
//! class) commits a perfectly well-formed NOP and sails past the ICM:
//! the one honest blind spot of the single-shot attack taxonomy.
//!
//! The DSM closes it with the signature-monitoring idea of the
//! R5Detect line of work, recast onto the framework's input queues:
//!
//! * At load time the program text is statically parsed into basic
//!   blocks (leaders = entry point, direct branch/jump targets, and the
//!   word after every control transfer). Each block ending in a
//!   control-flow terminator at `pc` gets a signature
//!   `(word_count, xor_of_words)` over the block's instruction words.
//! * At run time the module taps `Commit_Out`: for every committed
//!   instruction it reads the `Fetch_Out` entry (the word *as the
//!   pipeline executed it*, post any in-flight tampering) and folds it
//!   into a running accumulator that re-arms at every block leader.
//! * When a terminator commits, the accumulated `(count, xor)` must
//!   equal the static signature. A skipped word changes the XOR, a
//!   replayed word changes the count, a mid-block hijack enters without
//!   re-arming — all diverge, and the DSM raises a CHK anomaly
//!   (`mismatches` in [`DsmStats`]).
//!
//! Detection is at commit time — architecturally too late for the
//! inline flush-refetch repair the ICM enjoys — so containment is by
//! checkpoint rollback: the campaign engine rolls the guest back and
//! re-executes when the DSM flags a run whose final state diverged.

use rse_core::{ChkDispatch, Module, ModuleCtx, Verdict};
use rse_isa::{Image, Inst, ModuleId};
use rse_pipeline::RobId;
use std::any::Any;
use std::collections::{HashMap, HashSet};

/// The static signature of one basic block, keyed by its terminator pc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSig {
    /// Instruction words in the block (leader through terminator).
    pub words: u32,
    /// XOR of the block's instruction words.
    pub xor: u32,
}

/// DSM performance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsmStats {
    /// Blocks whose committed signature was checked against the static
    /// signature.
    pub blocks_checked: u64,
    /// Signature mismatches (the CHK anomaly count).
    pub mismatches: u64,
    /// Terminators that committed while the accumulator was disarmed
    /// (control entered the block off any static leader — counted, not
    /// checked, to stay fail-safe on partial blocks).
    pub blocks_unchecked: u64,
}

/// The Dynamic Sequence Monitor.
#[derive(Debug)]
pub struct Dsm {
    /// `terminator pc → signature`, from the static parse.
    sigs: HashMap<u32, BlockSig>,
    /// Terminator pcs in ascending order (deterministic corruption and
    /// seal computation).
    sig_pcs: Vec<u32>,
    /// Block-leader pcs: where the runtime accumulator re-arms.
    leaders: HashSet<u32>,
    armed: bool,
    acc_words: u32,
    acc_xor: u32,
    /// Last committed pc: a same-pc commit while armed is a replayed
    /// duplicate, which must fold into the accumulator rather than
    /// re-arm it (legitimate flow only revisits a pc after its block
    /// closed at a terminator).
    last_pc: Option<u32>,
    stats: DsmStats,
    /// Integrity seal over the signature table, recomputed by the §3.4
    /// self-test so the quarantine probe surfaces a corrupted table.
    seal: u64,
}

impl Default for Dsm {
    fn default() -> Dsm {
        Dsm::new()
    }
}

impl Dsm {
    /// Creates a DSM with an empty signature table. Use
    /// [`Dsm::install_signatures`] after loading the program.
    pub fn new() -> Dsm {
        let mut dsm = Dsm {
            sigs: HashMap::new(),
            sig_pcs: Vec::new(),
            leaders: HashSet::new(),
            armed: false,
            acc_words: 0,
            acc_xor: 0,
            last_pc: None,
            stats: DsmStats::default(),
            seal: 0,
        };
        dsm.seal = dsm.table_seal();
        dsm
    }

    /// The integrity checksum over the signature table.
    fn table_seal(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.sig_pcs.len() * 12);
        for pc in &self.sig_pcs {
            let sig = self.sigs.get(pc).copied().unwrap_or(BlockSig {
                words: u32::MAX,
                xor: u32::MAX,
            });
            bytes.extend_from_slice(&pc.to_le_bytes());
            bytes.extend_from_slice(&sig.words.to_le_bytes());
            bytes.extend_from_slice(&sig.xor.to_le_bytes());
        }
        let mut leaders: Vec<u32> = self.leaders.iter().copied().collect();
        leaders.sort_unstable();
        for l in leaders {
            bytes.extend_from_slice(&l.to_le_bytes());
        }
        rse_support::rng::fnv1a64(&bytes)
    }

    /// Statically parses `image` into basic blocks and installs their
    /// signatures. Leaders are the entry point, every direct
    /// branch/jump target, and the word following each control
    /// transfer; a block's signature covers leader through terminator.
    pub fn install_signatures(&mut self, image: &Image) {
        let mut leaders = HashSet::new();
        leaders.insert(image.text_base);
        leaders.insert(image.entry);
        for (i, &word) in image.text.iter().enumerate() {
            let pc = image.text_base + 4 * i as u32;
            let Ok(inst) = rse_isa::decode(word) else {
                continue;
            };
            if inst.is_control_flow() {
                if let Some(target) = inst.direct_target(pc) {
                    leaders.insert(target);
                }
                leaders.insert(pc.wrapping_add(4));
            }
        }
        let mut sigs = HashMap::new();
        let mut sig_pcs = Vec::new();
        let (mut words, mut xor) = (0u32, 0u32);
        for (i, &word) in image.text.iter().enumerate() {
            let pc = image.text_base + 4 * i as u32;
            if leaders.contains(&pc) {
                words = 0;
                xor = 0;
            }
            words += 1;
            xor ^= word;
            let Ok(inst) = rse_isa::decode(word) else {
                continue;
            };
            if inst.is_control_flow() || matches!(inst, Inst::Halt) {
                sigs.insert(pc, BlockSig { words, xor });
                sig_pcs.push(pc);
            }
        }
        self.sigs = sigs;
        self.sig_pcs = sig_pcs;
        self.leaders = leaders;
        self.armed = false;
        self.acc_words = 0;
        self.acc_xor = 0;
        self.last_pc = None;
        self.seal = self.table_seal();
    }

    /// Number of signed basic blocks.
    pub fn table_len(&self) -> usize {
        self.sig_pcs.len()
    }

    /// The static signature recorded for the terminator at `pc`.
    pub fn sig_of(&self, pc: u32) -> Option<BlockSig> {
        self.sigs.get(&pc).copied()
    }

    /// Module counters.
    pub fn stats(&self) -> DsmStats {
        self.stats
    }
}

impl Module for Dsm {
    fn id(&self) -> ModuleId {
        ModuleId::DSM
    }

    fn name(&self) -> &'static str {
        "dynamic-sequence-monitor"
    }

    fn on_chk(&mut self, chk: &ChkDispatch, ctx: &mut ModuleCtx<'_>) {
        if chk.spec.op == rse_isa::chk::ops::SELFTEST {
            let verdict = self.self_test();
            ctx.complete_check(chk.rob, verdict);
        }
    }

    fn on_commit(&mut self, rob: RobId, ctx: &mut ModuleCtx<'_>) {
        if self.sigs.is_empty() {
            return;
        }
        let Some(entry) = ctx.queues.fetch_out.get(rob) else {
            return;
        };
        let (pc, word) = (entry.pc, entry.word);
        let duplicate = self.armed && self.last_pc == Some(pc);
        if self.leaders.contains(&pc) && !duplicate {
            self.armed = true;
            self.acc_words = 0;
            self.acc_xor = 0;
        }
        self.last_pc = Some(pc);
        if self.armed {
            self.acc_words += 1;
            self.acc_xor ^= word;
        }
        if let Some(sig) = self.sigs.get(&pc) {
            if self.armed {
                self.stats.blocks_checked += 1;
                if sig.words != self.acc_words || sig.xor != self.acc_xor {
                    self.stats.mismatches += 1;
                }
            } else {
                self.stats.blocks_unchecked += 1;
            }
            // Re-arm at the next committed leader (the fall-through word
            // and every direct target are leaders by construction).
            self.armed = false;
        }
    }

    fn self_test(&mut self) -> Verdict {
        let consistent = self.sig_pcs.len() == self.sigs.len()
            && self.sig_pcs.iter().all(|pc| self.sigs.contains_key(pc));
        if consistent && self.table_seal() == self.seal {
            Verdict::Pass
        } else {
            Verdict::Fail
        }
    }

    fn corrupt_state(&mut self, seed: u64) -> bool {
        // Flip one bit of a deterministically-picked signature (the
        // signature RAM) without updating the seal.
        if !self.sig_pcs.is_empty() {
            let pc = self.sig_pcs[(seed as usize) % self.sig_pcs.len()];
            if let Some(sig) = self.sigs.get_mut(&pc) {
                let bit = ((seed >> 8) % 32) as u32;
                if (seed >> 16) & 1 == 0 {
                    sig.xor ^= 1 << bit;
                } else {
                    sig.words ^= 1 << bit;
                }
                return true;
            }
        }
        // Empty table: corrupt the seal itself (a register upset).
        self.seal ^= 1 << (seed % 64);
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_core::{Engine, RseConfig};
    use rse_isa::asm::assemble;
    use rse_mem::{MemConfig, MemorySystem};
    use rse_pipeline::{FetchFault, FetchTamper, Pipeline, PipelineConfig, StepEvent};

    const LOOP_SRC: &str = r#"
        main:   li r8, 0
                li r9, 20
        loop:   addi r8, r8, 1
                bne r8, r9, loop
                halt
    "#;

    fn dsm_pipeline(src: &str) -> (Pipeline, Engine) {
        let image = assemble(src).expect("assembles");
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::with_framework()),
        );
        cpu.load_image(&image);
        let mut dsm = Dsm::new();
        dsm.install_signatures(&image);
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(dsm));
        engine.enable(ModuleId::DSM);
        (cpu, engine)
    }

    #[test]
    fn static_signatures_cover_every_terminator() {
        let image = assemble(LOOP_SRC).unwrap();
        let mut dsm = Dsm::new();
        dsm.install_signatures(&image);
        // Two terminators: the bne and the halt.
        assert_eq!(dsm.table_len(), 2);
        let bne_pc = image.text_base + 3 * 4;
        // The loop block is `addi; bne`: two words, XOR of the two.
        let sig = dsm.sig_of(bne_pc).unwrap();
        assert_eq!(sig.words, 2);
        assert_eq!(sig.xor, image.text[2] ^ image.text[3]);
    }

    #[test]
    fn clean_program_checks_every_block_without_anomaly() {
        let (mut cpu, mut engine) = dsm_pipeline(LOOP_SRC);
        assert_eq!(cpu.run(&mut engine, 2_000_000), StepEvent::Halted);
        assert_eq!(cpu.regs()[8], 20);
        let dsm: &Dsm = engine.module_ref(ModuleId::DSM).unwrap();
        assert!(dsm.stats().blocks_checked >= 20, "{:?}", dsm.stats());
        assert_eq!(dsm.stats().mismatches, 0);
    }

    #[test]
    fn in_flight_skip_breaks_the_block_signature() {
        let (mut cpu, mut engine) = dsm_pipeline(LOOP_SRC);
        // NOP the first fetch of the loop-body addi: the ICM's word
        // check would pass (a NOP is a well-formed word) but the block
        // XOR at the bne no longer matches.
        cpu.set_fetch_fault(Some(FetchFault {
            index: 2,
            tamper: FetchTamper::Nop,
        }));
        assert_eq!(cpu.run(&mut engine, 2_000_000), StepEvent::Halted);
        let dsm: &Dsm = engine.module_ref(ModuleId::DSM).unwrap();
        assert!(dsm.stats().mismatches >= 1, "{:?}", dsm.stats());
    }

    #[test]
    fn in_flight_replay_breaks_the_block_word_count() {
        let (mut cpu, mut engine) = dsm_pipeline(LOOP_SRC);
        cpu.set_fetch_fault(Some(FetchFault {
            index: 2,
            tamper: FetchTamper::Replay,
        }));
        let _ = cpu.run(&mut engine, 2_000_000);
        let dsm: &Dsm = engine.module_ref(ModuleId::DSM).unwrap();
        assert!(dsm.stats().mismatches >= 1, "{:?}", dsm.stats());
    }

    #[test]
    fn selftest_passes_until_table_is_corrupted() {
        let image = assemble(LOOP_SRC).unwrap();
        let mut dsm = Dsm::new();
        dsm.install_signatures(&image);
        assert_eq!(Module::self_test(&mut dsm), Verdict::Pass);
        assert!(Module::corrupt_state(&mut dsm, 42));
        assert_eq!(Module::self_test(&mut dsm), Verdict::Fail);
        // Re-installing the table reseals it (repair path).
        dsm.install_signatures(&image);
        assert_eq!(Module::self_test(&mut dsm), Verdict::Pass);
    }
}
