//! Outcome taxonomy, recovery verdicts, JSON-lines records, and the
//! detection-coverage histogram.
//!
//! The taxonomy is the standard DSN-campaign classification, refined with
//! the framework's own detectors: a run is *detected* when an RSE module
//! flagged the error (and the record then also says whether the recovery
//! path restored a correct final state), *watchdog-timeout* when the
//! §3.4 self-checking mechanism decoupled the framework, *crash-trap*
//! when the guest died through a generic trap, *hang* when the
//! cycle-budget detector fired, *SDC* when the run completed with a wrong
//! result, and *masked* when the fault had no architectural effect.

use rse_isa::ModuleId;
use std::collections::BTreeMap;

/// Short stable tag for a module (used inside outcome tags and fault
/// descriptions, here and in the adversarial campaign engine).
pub fn module_tag(id: ModuleId) -> String {
    if id == ModuleId::ICM {
        "ICM".into()
    } else if id == ModuleId::MLR {
        "MLR".into()
    } else if id == ModuleId::DDT {
        "DDT".into()
    } else if id == ModuleId::AHBM {
        "AHBM".into()
    } else if id == ModuleId::DSM {
        "DSM".into()
    } else {
        format!("M{}", id.number())
    }
}

/// Static mechanism name for a bounded rollback retry that succeeded on
/// the `k`-th re-execution attempt (1-based): `recovered:retry<k>`.
/// [`RecoveryStatus::Succeeded`] carries a `&'static str`, so the names
/// come from a fixed table; budgets beyond the table saturate at the
/// last entry (budgets that large are rejected by the CLI validator
/// anyway).
pub fn retry_mechanism(k: u32) -> &'static str {
    const RETRIES: [&str; 8] = [
        "retry1", "retry2", "retry3", "retry4", "retry5", "retry6", "retry7", "retry8",
    ];
    RETRIES[(k as usize).clamp(1, RETRIES.len()) - 1]
}

/// How one fault-injection run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The run completed with the golden architectural result.
    Masked,
    /// Silent data corruption: completed, but the result differs from
    /// the golden run and nothing detected it.
    Sdc,
    /// An RSE module detected the error (ICM mismatch, DDT-mediated
    /// crash recovery, ...).
    DetectedByModule(ModuleId),
    /// The §3.4 self-checking watchdog decoupled the framework.
    WatchdogTimeout,
    /// The per-module health machine took the named module down
    /// (Quarantined or Disabled) and it stayed down through the end of
    /// the run: the guest ran to completion in degraded mode with that
    /// module's CHECKs muxed to committed NOPs.
    Degraded(ModuleId),
    /// A module was quarantined mid-run but a backoff probe re-enabled
    /// it before the end: the fault was contained and healed without
    /// ever decoupling the framework.
    Contained,
    /// The guest died through a generic trap (unexpected syscall /
    /// exception / process kill), not through an RSE detector.
    CrashTrap,
    /// The cycle-budget hang detector fired.
    Hang,
    /// Fleet outcome: the named node was declared dead and its workload
    /// completed correctly on a successor node restored from the dead
    /// node's last replicated checkpoint.
    Failover(u16),
    /// Fleet outcome: a peer monitor declared a node dead while it was in
    /// fact running and reachable (no crash, hang, partition, or
    /// heartbeat-loss burst explains the declaration).
    FalseSuspicion,
    /// Fleet outcome: two unfenced nodes both executed the same workload
    /// past its failover point — the fencing protocol failed.
    SplitBrain,
    /// Fleet outcome: a node died but its workload could not be completed
    /// anywhere (e.g. it crashed before replicating any checkpoint).
    Unrecovered,
}

impl Outcome {
    /// Stable machine-readable tag (JSONL field, histogram key).
    pub fn tag(&self) -> String {
        match self {
            Outcome::Masked => "masked".into(),
            Outcome::Sdc => "sdc".into(),
            Outcome::DetectedByModule(id) => format!("detected:{}", module_tag(*id)),
            Outcome::WatchdogTimeout => "watchdog-timeout".into(),
            Outcome::Degraded(id) => format!("degraded:{}", module_tag(*id)),
            Outcome::Contained => "contained".into(),
            Outcome::CrashTrap => "crash-trap".into(),
            Outcome::Hang => "hang".into(),
            Outcome::Failover(node) => format!("failover:n{node}"),
            Outcome::FalseSuspicion => "false-suspicion".into(),
            Outcome::SplitBrain => "split-brain".into(),
            Outcome::Unrecovered => "unrecovered".into(),
        }
    }

    /// Whether an RSE module detected the fault.
    pub fn is_detected(&self) -> bool {
        matches!(self, Outcome::DetectedByModule(_))
    }

    /// Whether the per-module health machine confined the fault
    /// (degraded-mode completion or probe-healed containment).
    pub fn is_confined(&self) -> bool {
        matches!(self, Outcome::Degraded(_) | Outcome::Contained)
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.tag())
    }
}

/// Whether (and how) the run's error was repaired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryStatus {
    /// Nothing to recover: the fault was masked, or it produced SDC
    /// (undetected — by definition unrecoverable).
    NotNeeded,
    /// Recovery completed and re-execution reached the golden state.
    Succeeded {
        /// Which mechanism repaired the run: `flush-refetch` (the ICM's
        /// inline pipeline flush), `safe-mode-decouple` (the watchdog's
        /// fail-safe), `checkpoint-rollback` (system software restoring
        /// the checkpoint store and re-executing), or
        /// `ddt-checkpoint-rollback` (the OS recovery algorithm of
        /// §4.2.2).
        mechanism: &'static str,
    },
    /// Recovery was attempted but could not restore a correct state;
    /// the framework halts in safe mode with the recorded cause.
    FailedSafeHalt {
        /// Why recovery failed.
        cause: String,
    },
}

impl RecoveryStatus {
    /// Stable machine-readable tag.
    pub fn tag(&self) -> String {
        match self {
            RecoveryStatus::NotNeeded => "not-needed".into(),
            RecoveryStatus::Succeeded { mechanism } => format!("recovered:{mechanism}"),
            RecoveryStatus::FailedSafeHalt { .. } => "failed-safe-halt".into(),
        }
    }
}

impl std::fmt::Display for RecoveryStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.tag())
    }
}

/// One campaign run, fully described — a line of the JSONL report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Workload name.
    pub workload: &'static str,
    /// Fault-model name.
    pub model: &'static str,
    /// Run index within its campaign cell.
    pub run: u32,
    /// The replay seed (expands to the exact fault via
    /// [`crate::FaultPlan::sample`]).
    pub seed: u64,
    /// Outcome classification.
    pub outcome: Outcome,
    /// Recovery verdict.
    pub recovery: RecoveryStatus,
    /// Cycles the faulty run consumed.
    pub cycles: u64,
    /// Compact description of the injected fault(s).
    pub faults: String,
}

/// Minimal JSON string escaper (the only non-trivial characters our
/// fields can contain are quotes and backslashes, but control characters
/// are handled for safety).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl RunRecord {
    /// Serializes the record as one minified JSON object (integers and
    /// strings only — bit-stable across hosts, suitable for golden
    /// diffing).
    pub fn to_json(&self) -> String {
        let recovery_detail = match &self.recovery {
            RecoveryStatus::FailedSafeHalt { cause } => {
                format!(",\"recovery_cause\":\"{}\"", json_escape(cause))
            }
            _ => String::new(),
        };
        format!(
            "{{\"workload\":\"{}\",\"model\":\"{}\",\"run\":{},\"seed\":{},\
             \"outcome\":\"{}\",\"recovery\":\"{}\"{},\"cycles\":{},\"faults\":\"{}\"}}",
            json_escape(self.workload),
            json_escape(self.model),
            self.run,
            self.seed,
            self.outcome.tag(),
            self.recovery.tag(),
            recovery_detail,
            self.cycles,
            json_escape(&self.faults),
        )
    }
}

/// Outcome histogram keyed by stable tags (BTreeMap ⇒ deterministic
/// iteration order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<String, u64>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram over a record slice.
    pub fn from_records(records: &[RunRecord]) -> Histogram {
        let mut h = Histogram::default();
        for r in records {
            h.add(&r.outcome);
        }
        h
    }

    /// Adds one outcome.
    pub fn add(&mut self, outcome: &Outcome) {
        *self.counts.entry(outcome.tag()).or_insert(0) += 1;
        self.total += 1;
    }

    /// Count for a tag.
    pub fn count(&self, tag: &str) -> u64 {
        self.counts.get(tag).copied().unwrap_or(0)
    }

    /// Total runs.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Runs detected by any RSE module.
    pub fn detected(&self) -> u64 {
        self.counts
            .iter()
            .filter(|(k, _)| k.starts_with("detected:"))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Fleet runs that ended in checkpoint failover (every `failover:*`).
    pub fn failovers(&self) -> u64 {
        self.counts
            .iter()
            .filter(|(k, _)| k.starts_with("failover:"))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Runs confined by the per-module health machine (every
    /// `degraded:*` plus `contained`).
    pub fn confined(&self) -> u64 {
        self.counts
            .iter()
            .filter(|(k, _)| k.starts_with("degraded:") || *k == "contained")
            .map(|(_, v)| *v)
            .sum()
    }

    /// `(tag, count)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Renders the detection-coverage table: one row per (workload, model)
/// cell with its outcome mix and the count of successful recoveries.
pub fn coverage_table(records: &[RunRecord]) -> String {
    let mut cells: BTreeMap<(&str, &str), (Histogram, u64)> = BTreeMap::new();
    for r in records {
        let entry = cells.entry((r.workload, r.model)).or_default();
        entry.0.add(&r.outcome);
        if matches!(r.recovery, RecoveryStatus::Succeeded { .. }) {
            entry.1 += 1;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<16} {:>5} {:>7} {:>5} {:>9} {:>5} {:>9} {:>5} {:>5} {:>10}\n",
        "workload",
        "model",
        "runs",
        "masked",
        "sdc",
        "detected",
        "wdog",
        "confined",
        "crash",
        "hang",
        "recovered"
    ));
    for ((workload, model), (h, recovered)) in &cells {
        out.push_str(&format!(
            "{:<14} {:<16} {:>5} {:>7} {:>5} {:>9} {:>5} {:>9} {:>5} {:>5} {:>10}\n",
            workload,
            model,
            h.total(),
            h.count("masked"),
            h.count("sdc"),
            h.detected(),
            h.count("watchdog-timeout"),
            h.confined(),
            h.count("crash-trap"),
            h.count("hang"),
            recovered,
        ));
    }
    let all = Histogram::from_records(records);
    let recovered_total: u64 = cells.values().map(|(_, r)| *r).sum();
    out.push_str(&format!(
        "{:<14} {:<16} {:>5} {:>7} {:>5} {:>9} {:>5} {:>9} {:>5} {:>5} {:>10}\n",
        "TOTAL",
        "",
        all.total(),
        all.count("masked"),
        all.count("sdc"),
        all.detected(),
        all.count("watchdog-timeout"),
        all.confined(),
        all.count("crash-trap"),
        all.count("hang"),
        recovered_total,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(outcome: Outcome, recovery: RecoveryStatus) -> RunRecord {
        RunRecord {
            workload: "alu_loop",
            model: "reg-single",
            run: 0,
            seed: 99,
            outcome,
            recovery,
            cycles: 1234,
            faults: "reg[9]^=0x00000400@c12".into(),
        }
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(Outcome::Masked.tag(), "masked");
        assert_eq!(Outcome::Sdc.tag(), "sdc");
        assert_eq!(
            Outcome::DetectedByModule(ModuleId::ICM).tag(),
            "detected:ICM"
        );
        assert_eq!(
            Outcome::DetectedByModule(ModuleId::DDT).tag(),
            "detected:DDT"
        );
        assert_eq!(
            Outcome::DetectedByModule(ModuleId::new(9)).tag(),
            "detected:M9"
        );
        assert_eq!(Outcome::WatchdogTimeout.tag(), "watchdog-timeout");
        assert_eq!(Outcome::Degraded(ModuleId::ICM).tag(), "degraded:ICM");
        assert_eq!(Outcome::Degraded(ModuleId::AHBM).tag(), "degraded:AHBM");
        assert_eq!(Outcome::Contained.tag(), "contained");
        assert!(Outcome::Degraded(ModuleId::MLR).is_confined());
        assert!(Outcome::Contained.is_confined());
        assert!(!Outcome::WatchdogTimeout.is_confined());
        assert_eq!(Outcome::CrashTrap.tag(), "crash-trap");
        assert_eq!(Outcome::Hang.tag(), "hang");
        assert_eq!(Outcome::Failover(3).tag(), "failover:n3");
        assert_eq!(Outcome::FalseSuspicion.tag(), "false-suspicion");
        assert_eq!(Outcome::SplitBrain.tag(), "split-brain");
        assert_eq!(Outcome::Unrecovered.tag(), "unrecovered");
        assert_eq!(RecoveryStatus::NotNeeded.tag(), "not-needed");
        assert_eq!(
            RecoveryStatus::Succeeded {
                mechanism: "checkpoint-rollback"
            }
            .tag(),
            "recovered:checkpoint-rollback"
        );
        assert_eq!(
            RecoveryStatus::FailedSafeHalt { cause: "x".into() }.tag(),
            "failed-safe-halt"
        );
    }

    #[test]
    fn json_is_minified_and_escaped() {
        let mut r = record(Outcome::Masked, RecoveryStatus::NotNeeded);
        r.faults = "a\"b\\c".into();
        let j = r.to_json();
        assert!(j.starts_with("{\"workload\":\"alu_loop\""), "{j}");
        assert!(j.contains("\"faults\":\"a\\\"b\\\\c\""), "{j}");
        assert!(!j.contains('\n'));
    }

    #[test]
    fn failed_recovery_records_its_cause() {
        let r = record(
            Outcome::DetectedByModule(ModuleId::ICM),
            RecoveryStatus::FailedSafeHalt {
                cause: "missing checkpoint".into(),
            },
        );
        assert!(r
            .to_json()
            .contains("\"recovery_cause\":\"missing checkpoint\""));
    }

    #[test]
    fn histogram_counts_and_detects() {
        let records = vec![
            record(Outcome::Masked, RecoveryStatus::NotNeeded),
            record(Outcome::Masked, RecoveryStatus::NotNeeded),
            record(
                Outcome::DetectedByModule(ModuleId::ICM),
                RecoveryStatus::Succeeded {
                    mechanism: "flush-refetch",
                },
            ),
            record(Outcome::Sdc, RecoveryStatus::NotNeeded),
            record(
                Outcome::Degraded(ModuleId::ICM),
                RecoveryStatus::Succeeded {
                    mechanism: "quarantine-nop-mux",
                },
            ),
            record(
                Outcome::Contained,
                RecoveryStatus::Succeeded {
                    mechanism: "probe-re-enable",
                },
            ),
            record(
                Outcome::Failover(2),
                RecoveryStatus::Succeeded {
                    mechanism: "fleet-checkpoint-failover",
                },
            ),
        ];
        let h = Histogram::from_records(&records);
        assert_eq!(h.total(), 7);
        assert_eq!(h.count("masked"), 2);
        assert_eq!(h.count("sdc"), 1);
        assert_eq!(h.detected(), 1);
        assert_eq!(h.confined(), 2);
        assert_eq!(h.failovers(), 1);
        assert_eq!(h.count("failover:n2"), 1);
        let table = coverage_table(&records);
        assert!(table.contains("alu_loop"), "{table}");
        assert!(table.contains("TOTAL"), "{table}");
        assert!(table.contains("confined"), "{table}");
    }

    #[test]
    fn display_matches_tag() {
        assert_eq!(Outcome::Hang.to_string(), "hang");
        assert_eq!(RecoveryStatus::NotNeeded.to_string(), "not-needed");
    }
}
