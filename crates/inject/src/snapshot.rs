//! Whole-machine architectural snapshots with a stable digest.
//!
//! The campaign compares faulty runs against golden references by
//! digesting the *architectural* state: registers, resume PC, and every
//! mapped memory page in sorted-page order. The sorted order matters —
//! `SparseMemory` is hash-map backed, so naive iteration is
//! nondeterministic across processes, which would break the campaign's
//! byte-for-byte reproducibility guarantee.

use rse_mem::{SparseMemory, PAGE_BYTES};

/// A complete architectural snapshot: register file, PC, and all mapped
/// memory pages (sorted by page id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchSnapshot {
    /// Architectural register values.
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// `(page id, page bytes)` pairs, ascending by page id.
    pub pages: Vec<(u32, Box<[u8; PAGE_BYTES]>)>,
}

impl ArchSnapshot {
    /// Captures the current architectural state.
    ///
    /// All-zero pages are skipped: sparse memory reads unmapped pages as
    /// zero, so a mapped-but-zero page is architecturally identical to
    /// an unmapped one. Skipping them makes the snapshot (and therefore
    /// [`ArchSnapshot::digest`]) *canonical* — capture/restore/capture
    /// round trips are bit-identical even when the interim mutation
    /// mapped fresh pages that the restore then zeroes.
    pub fn capture(regs: &[u32; 32], pc: u32, mem: &SparseMemory) -> ArchSnapshot {
        let pages = mem
            .mapped_page_ids_sorted()
            .into_iter()
            .filter_map(|id| {
                let bytes = mem
                    .page_bytes(id)
                    .expect("page id from mapped_page_ids_sorted is mapped");
                if bytes.iter().all(|&b| b == 0) {
                    None
                } else {
                    Some((id, Box::new(*bytes)))
                }
            })
            .collect();
        ArchSnapshot {
            regs: *regs,
            pc,
            pages,
        }
    }

    /// Restores the snapshot's memory image into `mem`: pages that were
    /// mapped since the capture but are absent from the snapshot are
    /// zeroed, then every snapshot page is written back. Registers and
    /// PC are the caller's to restore (they live in the pipeline).
    pub fn restore_memory(&self, mem: &mut SparseMemory) {
        let zero = [0u8; PAGE_BYTES];
        for id in mem.mapped_page_ids_sorted() {
            if self.pages.binary_search_by_key(&id, |(p, _)| *p).is_err() {
                mem.restore_page(id.wrapping_mul(PAGE_BYTES as u32), &zero);
            }
        }
        for (id, bytes) in &self.pages {
            mem.restore_page(id.wrapping_mul(PAGE_BYTES as u32), bytes);
        }
    }

    /// FNV-1a digest over the full snapshot. Stable across hosts and
    /// processes.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for r in self.regs {
            h.write_u32(r);
        }
        h.write_u32(self.pc);
        for (id, bytes) in &self.pages {
            h.write_u32(*id);
            h.write_bytes(bytes.as_ref());
        }
        h.finish()
    }
}

/// A tiny FNV-1a 64-bit hasher (self-contained: the campaign must not
/// depend on `std::hash`'s unstable default hasher).
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a digest of a string (used for seed derivation from workload
/// names).
pub(crate) fn fnv_str(s: &str) -> u64 {
    let mut h = Fnv::new();
    h.write_bytes(s.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with(data: &[(u32, u32)]) -> SparseMemory {
        let mut m = SparseMemory::new();
        for &(addr, val) in data {
            m.write_u32(addr, val);
        }
        m
    }

    #[test]
    fn capture_restore_round_trips() {
        let mem = mem_with(&[(0x1000, 0xAABB_CCDD), (0x40_0000, 17), (0x7FFF_F000, 3)]);
        let regs = [7u32; 32];
        let snap = ArchSnapshot::capture(&regs, 0x40_0004, &mem);

        let mut mutated = mem_with(&[(0x1000, 0xDEAD_BEEF), (0x40_0000, 0), (0x7FFF_F000, 9)]);
        mutated.write_u32(0x9000_0000, 1234); // page mapped after capture
        snap.restore_memory(&mut mutated);

        let back = ArchSnapshot::capture(&regs, 0x40_0004, &mutated);
        // The extra page is zeroed, so digests over the snapshot pages
        // agree and the extra page contributes zero content.
        assert_eq!(mutated.read_u32(0x1000), 0xAABB_CCDD);
        assert_eq!(mutated.read_u32(0x40_0000), 17);
        assert_eq!(mutated.read_u32(0x7FFF_F000), 3);
        assert_eq!(mutated.read_u32(0x9000_0000), 0);
        for (id, bytes) in &snap.pages {
            let restored = back
                .pages
                .iter()
                .find(|(p, _)| p == id)
                .expect("page survives restore");
            assert_eq!(bytes, &restored.1, "page {id} differs");
        }
    }

    #[test]
    fn digest_is_sensitive_to_every_component() {
        let mem = mem_with(&[(0x1000, 1)]);
        let regs = [0u32; 32];
        let base = ArchSnapshot::capture(&regs, 0x40_0000, &mem).digest();

        let mut regs2 = regs;
        regs2[5] = 1;
        assert_ne!(
            ArchSnapshot::capture(&regs2, 0x40_0000, &mem).digest(),
            base
        );
        assert_ne!(ArchSnapshot::capture(&regs, 0x40_0004, &mem).digest(), base);
        let mem2 = mem_with(&[(0x1000, 2)]);
        assert_ne!(
            ArchSnapshot::capture(&regs, 0x40_0000, &mem2).digest(),
            base
        );
    }

    #[test]
    fn digest_is_stable_across_insertion_orders() {
        // Same pages inserted in different orders must digest equally —
        // this is exactly the HashMap-iteration hazard the sorted page
        // walk exists to neutralize.
        let a = mem_with(&[(0x1000, 1), (0x5000, 2), (0x9000, 3)]);
        let b = mem_with(&[(0x9000, 3), (0x1000, 1), (0x5000, 2)]);
        let regs = [0u32; 32];
        assert_eq!(
            ArchSnapshot::capture(&regs, 0, &a).digest(),
            ArchSnapshot::capture(&regs, 0, &b).digest()
        );
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv_str(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv_str("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv_str("foobar"), 0x8594_4171_f739_67e8);
    }
}
