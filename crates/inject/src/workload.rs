//! The campaign workload corpus.
//!
//! One workload per harness flavor, kept deliberately small so a
//! multi-hundred-run campaign finishes in seconds while still exercising
//! every detection and recovery path of the framework:
//!
//! * **bare** workloads run on the pipeline with an empty engine — they
//!   measure the *undetected* outcome mix (masked vs. SDC vs. crash vs.
//!   hang), the campaign's control group,
//! * the **ICM** workload runs under `CheckPolicy::ControlFlow` with the
//!   Instruction Checker Module installed — fetch-path and text-memory
//!   corruption become detectable,
//! * the **DDT + OS** workload is a two-thread guest whose worker thread
//!   audits a canary region and crashes on corruption — the DDT's
//!   dependency tracking plus the OS SavePage checkpoints then roll the
//!   shared state back (§4.2.2).

/// Which simulation harness a workload runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Harness {
    /// Pipeline + empty engine: no detection support at all.
    Bare,
    /// `CheckPolicy::ControlFlow` + ICM module installed and enabled.
    Icm,
    /// Guest OS + DDT module: multithreaded, checkpointed, recoverable.
    DdtOs,
    /// Guest OS + MLR module: the guest's explicit `chk mlr` handshake
    /// randomizes its memory layout at load (seeded per run by the
    /// adversarial campaigns). Judged by guest output like `DdtOs`.
    MlrOs,
    /// Guest OS + empty engine: the *undefended* twin of `MlrOs` and
    /// `NxOs`. The guest's `chk mlr` ops pass through untouched, so it
    /// falls back to the nominal (attacker-known) layout.
    OsBare,
    /// Guest OS + DDT with non-executable-page enforcement armed: the
    /// pipeline's executable range is pinned to the text segment, so an
    /// instruction committing from a data page trips the NX trap.
    NxOs,
    /// Pipeline + DSM module installed and enabled: basic-block
    /// signatures checked along committed control flow, closing the
    /// in-flight instruction-skip blind spot of the per-word ICM check.
    Dsm,
}

impl Harness {
    /// The harness's primary module — the target of the module-directed
    /// fault models (`None` for undefended harnesses). The module-bearing
    /// harnesses also install two bystander modules so per-module
    /// containment is observable: one quarantined module stays below the
    /// half-installed escalation threshold.
    pub fn target_module(self) -> Option<rse_isa::ModuleId> {
        match self {
            Harness::Bare | Harness::OsBare => None,
            Harness::Icm => Some(rse_isa::ModuleId::ICM),
            Harness::DdtOs | Harness::NxOs => Some(rse_isa::ModuleId::DDT),
            Harness::MlrOs => Some(rse_isa::ModuleId::MLR),
            Harness::Dsm => Some(rse_isa::ModuleId::DSM),
        }
    }

    /// Whether this harness runs under the guest OS (judged by guest
    /// output) rather than by bare result-digest comparison.
    pub fn is_os(self) -> bool {
        matches!(
            self,
            Harness::DdtOs | Harness::MlrOs | Harness::OsBare | Harness::NxOs
        )
    }
}

/// One guest program in the campaign corpus.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Stable workload name (used in records and seed derivation).
    pub name: &'static str,
    /// Assembly source.
    pub source: &'static str,
    /// Harness flavor.
    pub harness: Harness,
    /// Architectural registers that carry the program's result (golden
    /// comparison set).
    pub result_regs: &'static [usize],
    /// `(symbol, bytes)` of the in-memory result buffer, if any.
    pub result_buf: Option<(&'static str, u32)>,
    /// `(symbol, bytes)` of the buffer targeted by the `MemData` fault
    /// model, if the workload has one.
    pub data_fault_buf: Option<(&'static str, u32)>,
}

/// An arithmetic loop with a register-dense live set: the classic
/// register-file upset target. Results land in `r8`/`r9`/`r11` and the
/// `out` buffer.
const ALU_LOOP_SRC: &str = r#"
    main:   li   r8, 0
            li   r9, 1
            li   r10, 200
    loop:   add  r8, r8, r9
            addi r9, r9, 3
            xor  r11, r11, r8
            addi r10, r10, -1
            bne  r10, r0, loop
            la   r12, out
            sw   r8, 0(r12)
            sw   r9, 4(r12)
            sw   r11, 8(r12)
            halt

            .data
            .align 4
    out:    .space 16
"#;

/// Fill a 32-word buffer, burn a delay window (so mid-run memory flips
/// land between the fill and the readback), then checksum it — the
/// memory-data upset target.
const MEM_CHECKSUM_SRC: &str = r#"
    main:   la   r8, buf
            li   r9, 32
            li   r10, 4660
            move r11, r8
    fill:   sw   r10, 0(r11)
            addi r10, r10, 47
            addi r11, r11, 4
            addi r9, r9, -1
            bne  r9, r0, fill
            li   r12, 400
    dly:    addi r12, r12, -1
            bne  r12, r0, dly
            li   r9, 32
            move r11, r8
            li   r13, 0
    sum:    lw   r10, 0(r11)
            add  r13, r13, r10
            addi r11, r11, 4
            addi r9, r9, -1
            bne  r9, r0, sum
            la   r12, out
            sw   r13, 0(r12)
            halt

            .data
            .align 4
    buf:    .space 128
    out:    .space 8
"#;

/// A branch-dense loop: every iteration commits three control-flow
/// instructions, all of them ICM-checked under `CheckPolicy::ControlFlow`.
/// Fetch-path and text-segment corruption of a branch word is caught by
/// the redundant CheckerMemory copy.
const ICM_LOOP_SRC: &str = r#"
    main:   li   r8, 0
            li   r9, 0
            li   r10, 60
    loop:   addi r8, r8, 1
            andi r11, r8, 1
            beq  r11, r0, even
            addi r9, r9, 5
            b    next
    even:   addi r9, r9, 2
    next:   bne  r8, r10, loop
            la   r12, out
            sw   r9, 0(r12)
            halt

            .data
            .align 4
    out:    .space 8
"#;

/// The DDT recovery scenario. The main thread seeds a shared page with 7
/// and spawns a worker; the worker overwrites it with 13 (a cross-thread
/// write, so the SavePage handler checkpoints the pre-image) and then
/// audits a zero-initialized canary region every scheduling round. A
/// memory upset in the canary makes the worker CRASH; the DDT-driven
/// recovery terminates the worker and restores the shared page from the
/// earliest checkpoint. The main thread finally reports what it sees:
///
/// * `2` — fault-free: the worker's 13 survived,
/// * `1` — the worker crashed and recovery rolled the page back to 7,
/// * `0` — anything else (silent corruption of the protocol).
const DDT_RECOVER_SRC: &str = r#"
    main:   la   r8, shared
            li   r9, 7
            sw   r9, 0(r8)
            li   r2, 16
            la   r4, worker
            li   r5, 0
            syscall
            li   r10, 40
    mwait:  li   r2, 18
            syscall
            addi r10, r10, -1
            bne  r10, r0, mwait
            la   r8, stop
            li   r9, 1
            sw   r9, 0(r8)
            li   r10, 8
    mwait2: li   r2, 18
            syscall
            addi r10, r10, -1
            bne  r10, r0, mwait2
            la   r8, shared
            lw   r9, 0(r8)
            li   r11, 7
            beq  r9, r11, rolled
            li   r11, 13
            beq  r9, r11, normal
            li   r4, 0
            b    report
    rolled: li   r4, 1
            b    report
    normal: li   r4, 2
    report: li   r2, 2
            syscall
            li   r2, 1
            li   r4, 0
            syscall

    worker: la   r8, shared
            li   r9, 13
            sw   r9, 0(r8)
    wloop:  la   r8, canary
            lw   r9, 0(r8)
            lw   r10, 4(r8)
            or   r9, r9, r10
            lw   r10, 8(r8)
            or   r9, r9, r10
            lw   r10, 12(r8)
            or   r9, r9, r10
            bne  r9, r0, die
            la   r8, stop
            lw   r10, 0(r8)
            bne  r10, r0, wdone
            li   r2, 18
            syscall
            b    wloop
    wdone:  li   r2, 17
            syscall
    die:    li   r2, 50
            syscall

            .data
            .align 4
    shared: .space 4096
    stop:   .space 4096
    canary: .space 4096
"#;

/// The fleet heartbeat guest: compute units interleaved with safe-point
/// syscalls. Every unit ends in `syscall` with `r2 = 99` — the fleet node
/// driver interprets the pause as a heartbeat-plus-checkpoint safe point
/// (the pipeline's architectural context is exact only while paused at a
/// syscall, so this is where `ArchSnapshot`s are captured and heartbeats
/// are emitted), then resumes the guest. Results land in `r8`/`r9`/`r11`
/// and the `out` buffer, exactly like `alu_loop`.
const BEAT_LOOP_SRC: &str = r#"
    main:   li   r8, 0
            li   r9, 1
            li   r11, 0
            li   r14, 96
    unit:   li   r10, 24
    inner:  add  r8, r8, r9
            addi r9, r9, 3
            xor  r11, r11, r8
            addi r10, r10, -1
            bne  r10, r0, inner
            li   r2, 99
            syscall
            addi r14, r14, -1
            bne  r14, r0, unit
            la   r12, out
            sw   r8, 0(r12)
            sw   r9, 4(r12)
            sw   r11, 8(r12)
            halt

            .data
            .align 4
    out:    .space 16
"#;

/// The heartbeat-emitting guest every fleet node runs. Deliberately *not*
/// part of [`corpus`]: its safe-point syscalls require the fleet node
/// driver (the bare campaign harness treats an unexpected syscall as a
/// crash), and adding it to the corpus would change the pinned
/// single-node campaign goldens.
pub fn fleet_workload() -> &'static Workload {
    &FLEET_WORKLOAD
}

static FLEET_WORKLOAD: Workload = Workload {
    name: "beat_loop",
    source: BEAT_LOOP_SRC,
    harness: Harness::Bare,
    result_regs: &[8, 9, 11],
    result_buf: Some(("out", 16)),
    data_fault_buf: None,
};

const CORPUS: [Workload; 4] = [
    Workload {
        name: "alu_loop",
        source: ALU_LOOP_SRC,
        harness: Harness::Bare,
        result_regs: &[8, 9, 11],
        result_buf: Some(("out", 16)),
        data_fault_buf: Some(("out", 16)),
    },
    Workload {
        name: "mem_checksum",
        source: MEM_CHECKSUM_SRC,
        harness: Harness::Bare,
        result_regs: &[13],
        result_buf: Some(("out", 4)),
        data_fault_buf: Some(("buf", 128)),
    },
    Workload {
        name: "icm_loop",
        source: ICM_LOOP_SRC,
        harness: Harness::Icm,
        result_regs: &[8, 9],
        result_buf: Some(("out", 4)),
        data_fault_buf: None,
    },
    Workload {
        name: "ddt_recover",
        source: DDT_RECOVER_SRC,
        harness: Harness::DdtOs,
        result_regs: &[],
        result_buf: None,
        data_fault_buf: Some(("canary", 16)),
    },
];

/// The campaign corpus.
pub fn corpus() -> &'static [Workload] {
    &CORPUS
}

/// Looks a workload up by its stable name.
pub fn by_name(name: &str) -> Option<&'static Workload> {
    CORPUS.iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_assembles() {
        for w in corpus() {
            let image = rse_isa::asm::assemble(w.source)
                .unwrap_or_else(|e| panic!("workload {} fails to assemble: {e:?}", w.name));
            if let Some((sym, _)) = w.result_buf {
                assert!(image.symbol(sym).is_some(), "{}: missing {sym}", w.name);
            }
            if let Some((sym, _)) = w.data_fault_buf {
                assert!(image.symbol(sym).is_some(), "{}: missing {sym}", w.name);
            }
        }
    }

    #[test]
    fn fleet_workload_assembles_and_stays_out_of_the_corpus() {
        let w = fleet_workload();
        let image = rse_isa::asm::assemble(w.source).expect("beat_loop assembles");
        assert!(image.symbol("out").is_some());
        assert!(by_name(w.name).is_none(), "beat_loop must not join CORPUS");
        assert_eq!(w.harness, Harness::Bare);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        for w in corpus() {
            assert_eq!(by_name(w.name).unwrap().name, w.name);
        }
        assert!(by_name("nope").is_none());
        assert_eq!(corpus().len(), 4);
    }
}
