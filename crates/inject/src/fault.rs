//! Fault models and the deterministic injection-point sampler.
//!
//! A campaign run is parameterized by a [`FaultModel`] and a single `u64`
//! seed. [`FaultPlan::sample`] expands the seed — via the in-repo
//! `splitmix64` chain — into concrete injection coordinates (*cycle*,
//! *location*, *bit mask*) scaled to the workload's golden-run
//! [`RunProfile`]. The expansion is a pure function, so any run of any
//! campaign can be replayed exactly from its recorded seed.

use crate::workload::{Harness, Workload};
use rse_core::{ChkFault, Engine, IoqFault};
use rse_isa::ModuleId;
use rse_pipeline::{FetchFault, FetchTamper, Pipeline, SoftFault};
use rse_support::rng::splitmix64;

/// The soft-error fault models of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultModel {
    /// No fault at all — the control group. Every run must classify as
    /// `Masked`; anything else is a campaign-engine bug.
    Control,
    /// Single bit flip in one architectural register.
    RegSingle,
    /// Double bit flip in one architectural register (same word, two
    /// distinct bits — the multi-bit upset the paper's parity-per-word
    /// schemes miss).
    RegDouble,
    /// Single bit flip in the workload's data buffer.
    MemData,
    /// Single bit flip in the text segment — persistent, because fetch
    /// re-reads memory: the ICM's redundant-copy target.
    MemText,
    /// One fetched instruction word corrupted in transit (I-cache →
    /// pipeline), a 1–2 bit transient.
    FetchWord,
    /// One CHECK dispatch dropped between the Fetch_Out scan and the
    /// module — the framework-side delivery fault of §3.4.
    ChkDrop,
    /// One CHECK dispatch delivered with a corrupted wide operand.
    ChkGarble,
    /// The target module's `checkValid` line stuck at 0: its blocking
    /// CHECKs never complete, so the per-module watchdog attributes the
    /// stall and quarantines exactly that module (§3.4 containment).
    ModValidStuck0,
    /// The target module's `checkValid` line stuck at 1: premature
    /// passes on its blocking CHECKs, caught by the premature-pass
    /// detector and again contained to the one module.
    ModValidStuck1,
    /// Internal-state corruption inside the target module (seal or
    /// shadow-register upset). The module misbehaves until a SELFTEST
    /// probe fails; containment plus probed re-enable govern recovery.
    ModStateCorrupt,
    /// One MAU response destined for the target module dropped in
    /// transit — the memory-access-unit delivery fault.
    MauDrop,
}

impl FaultModel {
    /// Every model, in stable order (the order is part of the seed
    /// derivation and must never change).
    pub const ALL: [FaultModel; 12] = [
        FaultModel::Control,
        FaultModel::RegSingle,
        FaultModel::RegDouble,
        FaultModel::MemData,
        FaultModel::MemText,
        FaultModel::FetchWord,
        FaultModel::ChkDrop,
        FaultModel::ChkGarble,
        FaultModel::ModValidStuck0,
        FaultModel::ModValidStuck1,
        FaultModel::ModStateCorrupt,
        FaultModel::MauDrop,
    ];

    /// Stable model name (JSONL field, CLI argument).
    pub fn name(self) -> &'static str {
        match self {
            FaultModel::Control => "control",
            FaultModel::RegSingle => "reg-single",
            FaultModel::RegDouble => "reg-double",
            FaultModel::MemData => "mem-data",
            FaultModel::MemText => "mem-text",
            FaultModel::FetchWord => "fetch-word",
            FaultModel::ChkDrop => "chk-drop",
            FaultModel::ChkGarble => "chk-garble",
            FaultModel::ModValidStuck0 => "mod-valid-stuck0",
            FaultModel::ModValidStuck1 => "mod-valid-stuck1",
            FaultModel::ModStateCorrupt => "mod-state",
            FaultModel::MauDrop => "mau-drop",
        }
    }

    /// Parses a model name (the inverse of [`FaultModel::name`]).
    pub fn from_name(name: &str) -> Option<FaultModel> {
        FaultModel::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// One-line human description (`--list-models` output).
    pub fn describe(self) -> &'static str {
        match self {
            FaultModel::Control => "no fault: the golden-reference control group",
            FaultModel::RegSingle => "single bit flip in one architectural register",
            FaultModel::RegDouble => "double bit flip in one architectural register",
            FaultModel::MemData => "bit flip in a declared data buffer word",
            FaultModel::MemText => "bit flip in a program-text word",
            FaultModel::FetchWord => "one fetched instruction word corrupted in flight",
            FaultModel::ChkDrop => "one CHECK dispatch silently dropped",
            FaultModel::ChkGarble => "one CHECK dispatch payload garbled",
            FaultModel::ModValidStuck0 => "module IOQ valid line stuck at 0",
            FaultModel::ModValidStuck1 => "module IOQ valid line stuck at 1",
            FaultModel::ModStateCorrupt => "module-private state corrupted at a cycle",
            FaultModel::MauDrop => "one MAU response to a module dropped",
        }
    }

    /// Position in [`FaultModel::ALL`] (seed-derivation index).
    pub fn index(self) -> u64 {
        FaultModel::ALL
            .iter()
            .position(|m| *m == self)
            .expect("model present in ALL") as u64
    }

    /// Whether this model can target the given workload. `MemData` needs
    /// a declared data buffer; the CHECK-path models need a harness that
    /// dispatches CHECK instructions.
    pub fn applicable(self, workload: &Workload) -> bool {
        match self {
            FaultModel::MemData => workload.data_fault_buf.is_some(),
            FaultModel::ChkDrop | FaultModel::ChkGarble => workload.harness == Harness::Icm,
            FaultModel::ModValidStuck0
            | FaultModel::ModValidStuck1
            | FaultModel::ModStateCorrupt => workload.harness.target_module().is_some(),
            FaultModel::MauDrop => workload.harness == Harness::Icm,
            _ => true,
        }
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Golden-run measurements the sampler scales injection points to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProfile {
    /// Cycles of the fault-free reference run.
    pub cycles: u64,
    /// Instruction words fetched during the reference run.
    pub fetched: u64,
    /// Correct-path CHECKs routed to modules during the reference run.
    pub chk_routed: u64,
    /// `[start, end)` of the text segment.
    pub text_range: (u32, u32),
    /// `[start, end)` of the declared data-fault buffer, if any.
    pub data_range: Option<(u32, u32)>,
    /// The harness's primary module — the target of the module-directed
    /// fault models (`None` for bare workloads).
    pub target_module: Option<ModuleId>,
    /// MAU requests completed for the target module during the reference
    /// run (the `MauDrop` sampling space).
    pub mau_completions: u64,
}

/// One concrete scheduled fault, ready to arm on the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedFault {
    /// A register or memory bit flip at a scheduled cycle.
    Soft(SoftFault),
    /// A fetched-word corruption.
    Fetch(FetchFault),
    /// A CHECK-dispatch delivery fault.
    Chk(ChkFault),
    /// A stuck IOQ status line scoped to one module.
    ModuleIoq {
        /// The faulted module.
        module: ModuleId,
        /// Which line is stuck, and at which level.
        fault: IoqFault,
    },
    /// A scheduled internal-state corruption inside one module.
    ModuleCorrupt {
        /// The faulted module.
        module: ModuleId,
        /// Cycle at which the corruption lands.
        at_cycle: u64,
        /// Seed steering which internal word/bit is upset.
        seed: u64,
    },
    /// One MAU response for `module` dropped (the `index`-th completion).
    MauDrop {
        /// The module whose response is dropped.
        module: ModuleId,
        /// Zero-based index into the module's MAU completion stream.
        index: u64,
    },
}

/// The fully expanded injection plan for one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The faults to arm (empty for the control model).
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// Deterministically expands `seed` into concrete injection
    /// coordinates for `model`, scaled to `profile`. Pure: same inputs →
    /// same plan, forever.
    pub fn sample(model: FaultModel, seed: u64, profile: &RunProfile) -> FaultPlan {
        let mut s = seed;
        let mut next = move || splitmix64(&mut s);
        let cycle = |r: u64| 1 + r % profile.cycles.max(1);
        let faults = match model {
            FaultModel::Control => Vec::new(),
            FaultModel::RegSingle => {
                let at_cycle = cycle(next());
                let reg = 1 + (next() % 31) as u8;
                let xor_mask = 1u32 << (next() % 32);
                vec![PlannedFault::Soft(SoftFault::Reg {
                    at_cycle,
                    reg,
                    xor_mask,
                })]
            }
            FaultModel::RegDouble => {
                let at_cycle = cycle(next());
                let reg = 1 + (next() % 31) as u8;
                let b1 = (next() % 32) as u32;
                let b2 = (b1 + 1 + (next() % 31) as u32) % 32;
                let xor_mask = (1u32 << b1) | (1u32 << b2);
                vec![PlannedFault::Soft(SoftFault::Reg {
                    at_cycle,
                    reg,
                    xor_mask,
                })]
            }
            FaultModel::MemData | FaultModel::MemText => {
                let (lo, hi) = match model {
                    FaultModel::MemData => profile
                        .data_range
                        .expect("MemData requires a data range (gated by applicable())"),
                    _ => profile.text_range,
                };
                let words = (u64::from(hi.saturating_sub(lo)) / 4).max(1);
                let at_cycle = cycle(next());
                let addr = lo + 4 * (next() % words) as u32;
                let xor_mask = 1u32 << (next() % 32);
                vec![PlannedFault::Soft(SoftFault::Mem {
                    at_cycle,
                    addr,
                    xor_mask,
                })]
            }
            FaultModel::FetchWord => {
                let index = next() % profile.fetched.max(1);
                let b1 = (next() % 32) as u32;
                let mut xor_mask = 1u32 << b1;
                if next() % 2 == 1 {
                    xor_mask |= 1u32 << ((b1 + 1 + (next() % 31) as u32) % 32);
                }
                vec![PlannedFault::Fetch(FetchFault::xor(index, xor_mask))]
            }
            FaultModel::ChkDrop => {
                if profile.chk_routed == 0 {
                    Vec::new()
                } else {
                    let index = next() % profile.chk_routed;
                    vec![PlannedFault::Chk(ChkFault::Drop { index })]
                }
            }
            FaultModel::ChkGarble => {
                if profile.chk_routed == 0 {
                    Vec::new()
                } else {
                    let index = next() % profile.chk_routed;
                    let xor_mask = 1u32 << (next() % 32);
                    vec![PlannedFault::Chk(ChkFault::Garble { index, xor_mask })]
                }
            }
            FaultModel::ModValidStuck0 | FaultModel::ModValidStuck1 => {
                match profile.target_module {
                    None => Vec::new(),
                    Some(module) => {
                        let fault = if model == FaultModel::ModValidStuck0 {
                            IoqFault::ValidStuck0
                        } else {
                            IoqFault::ValidStuck1
                        };
                        // Burn one draw so sibling models diverge even
                        // though the stuck-at point itself is static.
                        let _ = next();
                        vec![PlannedFault::ModuleIoq { module, fault }]
                    }
                }
            }
            FaultModel::ModStateCorrupt => match profile.target_module {
                None => Vec::new(),
                Some(module) => {
                    let at_cycle = cycle(next());
                    let seed = next();
                    vec![PlannedFault::ModuleCorrupt {
                        module,
                        at_cycle,
                        seed,
                    }]
                }
            },
            FaultModel::MauDrop => match profile.target_module {
                None => Vec::new(),
                Some(module) => {
                    if profile.mau_completions == 0 {
                        Vec::new()
                    } else {
                        let index = next() % profile.mau_completions;
                        vec![PlannedFault::MauDrop { module, index }]
                    }
                }
            },
        };
        FaultPlan { faults }
    }

    /// Arms every planned fault on the harness.
    pub fn arm(&self, cpu: &mut Pipeline, engine: &mut Engine) {
        for fault in &self.faults {
            match *fault {
                PlannedFault::Soft(sf) => cpu.schedule_fault(sf),
                PlannedFault::Fetch(ff) => cpu.set_fetch_fault(Some(ff)),
                PlannedFault::Chk(cf) => engine.inject_chk_fault(Some(cf)),
                PlannedFault::ModuleIoq { module, fault } => {
                    engine.inject_module_ioq_fault(Some((module, fault)));
                }
                PlannedFault::ModuleCorrupt {
                    module,
                    at_cycle,
                    seed,
                } => engine.schedule_module_corruption(module, at_cycle, seed),
                PlannedFault::MauDrop { module, index } => {
                    engine.inject_mau_drop(Some((module, index)));
                }
            }
        }
    }

    /// Compact human/JSONL description of the plan, e.g.
    /// `reg[9]^=0x00100000@c1234`.
    pub fn describe(&self) -> String {
        if self.faults.is_empty() {
            return "none".into();
        }
        let parts: Vec<String> = self
            .faults
            .iter()
            .map(|f| match *f {
                PlannedFault::Soft(SoftFault::Reg {
                    at_cycle,
                    reg,
                    xor_mask,
                }) => format!("reg[{reg}]^={xor_mask:#010x}@c{at_cycle}"),
                PlannedFault::Soft(SoftFault::Mem {
                    at_cycle,
                    addr,
                    xor_mask,
                }) => format!("mem[{addr:#010x}]^={xor_mask:#010x}@c{at_cycle}"),
                PlannedFault::Soft(SoftFault::Write {
                    at_cycle,
                    addr,
                    value,
                }) => format!("mem[{addr:#010x}]:={value:#010x}@c{at_cycle}"),
                PlannedFault::Fetch(FetchFault { index, tamper }) => match tamper {
                    FetchTamper::Xor(xor_mask) => format!("fetch[{index}]^={xor_mask:#010x}"),
                    FetchTamper::Nop => format!("fetch[{index}]=nop"),
                    FetchTamper::Replay => format!("fetch[{index}]=replay"),
                },
                PlannedFault::Chk(ChkFault::Drop { index }) => format!("chk-drop[{index}]"),
                PlannedFault::Chk(ChkFault::Garble { index, xor_mask }) => {
                    format!("chk-garble[{index}]^={xor_mask:#010x}")
                }
                PlannedFault::ModuleIoq { module, fault } => {
                    let line = match fault {
                        IoqFault::ValidStuck0 => "valid-stuck0",
                        IoqFault::ValidStuck1 => "valid-stuck1",
                        IoqFault::CheckStuck0 => "check-stuck0",
                        IoqFault::CheckStuck1 => "check-stuck1",
                    };
                    format!(
                        "ioq[{}]={line}",
                        crate::outcome::module_tag(module).to_lowercase()
                    )
                }
                PlannedFault::ModuleCorrupt {
                    module,
                    at_cycle,
                    seed,
                } => format!(
                    "corrupt[{}]@c{at_cycle}#{seed:#018x}",
                    crate::outcome::module_tag(module).to_lowercase()
                ),
                PlannedFault::MauDrop { module, index } => format!(
                    "mau-drop[{}][{index}]",
                    crate::outcome::module_tag(module).to_lowercase()
                ),
            })
            .collect();
        parts.join("; ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> RunProfile {
        RunProfile {
            cycles: 10_000,
            fetched: 2_500,
            chk_routed: 120,
            text_range: (0x0040_0000, 0x0040_0100),
            data_range: Some((0x1000_0000, 0x1000_0080)),
            target_module: Some(ModuleId::ICM),
            mau_completions: 40,
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        for model in FaultModel::ALL {
            let a = FaultPlan::sample(model, 0xDEAD_BEEF, &profile());
            let b = FaultPlan::sample(model, 0xDEAD_BEEF, &profile());
            assert_eq!(a, b, "{model} not deterministic");
        }
    }

    #[test]
    fn different_seeds_give_different_points() {
        let plans: Vec<FaultPlan> = (0..16)
            .map(|s| FaultPlan::sample(FaultModel::RegSingle, s, &profile()))
            .collect();
        let distinct = plans
            .iter()
            .filter(|p| plans.iter().filter(|q| q == p).count() == 1)
            .count();
        assert!(distinct >= 12, "seed expansion barely varies: {distinct}");
    }

    #[test]
    fn control_is_empty_and_others_are_not() {
        assert!(FaultPlan::sample(FaultModel::Control, 7, &profile())
            .faults
            .is_empty());
        for model in FaultModel::ALL.into_iter().skip(1) {
            assert_eq!(
                FaultPlan::sample(model, 7, &profile()).faults.len(),
                1,
                "{model}"
            );
        }
    }

    #[test]
    fn samples_respect_ranges() {
        for seed in 0..64 {
            let p = FaultPlan::sample(FaultModel::MemData, seed, &profile());
            let PlannedFault::Soft(SoftFault::Mem { addr, at_cycle, .. }) = p.faults[0] else {
                panic!("wrong fault kind");
            };
            assert!((0x1000_0000..0x1000_0080).contains(&addr));
            assert_eq!(addr % 4, 0);
            assert!((1..=10_000).contains(&at_cycle));

            let p = FaultPlan::sample(FaultModel::MemText, seed, &profile());
            let PlannedFault::Soft(SoftFault::Mem { addr, .. }) = p.faults[0] else {
                panic!("wrong fault kind");
            };
            assert!((0x0040_0000..0x0040_0100).contains(&addr));

            let p = FaultPlan::sample(FaultModel::RegSingle, seed, &profile());
            let PlannedFault::Soft(SoftFault::Reg { reg, xor_mask, .. }) = p.faults[0] else {
                panic!("wrong fault kind");
            };
            assert!((1..32).contains(&reg), "r0 must never be sampled");
            assert_eq!(xor_mask.count_ones(), 1);

            let p = FaultPlan::sample(FaultModel::RegDouble, seed, &profile());
            let PlannedFault::Soft(SoftFault::Reg { xor_mask, .. }) = p.faults[0] else {
                panic!("wrong fault kind");
            };
            assert_eq!(xor_mask.count_ones(), 2, "double flip must be 2 bits");

            let p = FaultPlan::sample(FaultModel::FetchWord, seed, &profile());
            let PlannedFault::Fetch(FetchFault { index, tamper }) = p.faults[0] else {
                panic!("wrong fault kind");
            };
            assert!(index < 2_500);
            let FetchTamper::Xor(xor_mask) = tamper else {
                panic!("FetchWord samples XOR tampers only");
            };
            assert!((1..=2).contains(&xor_mask.count_ones()));

            let p = FaultPlan::sample(FaultModel::ChkDrop, seed, &profile());
            let PlannedFault::Chk(ChkFault::Drop { index }) = p.faults[0] else {
                panic!("wrong fault kind");
            };
            assert!(index < 120);
        }
    }

    #[test]
    fn chk_models_degrade_gracefully_without_chks() {
        let p = RunProfile {
            chk_routed: 0,
            ..profile()
        };
        assert!(FaultPlan::sample(FaultModel::ChkDrop, 3, &p)
            .faults
            .is_empty());
        assert!(FaultPlan::sample(FaultModel::ChkGarble, 3, &p)
            .faults
            .is_empty());
    }

    #[test]
    fn module_models_degrade_gracefully_without_target() {
        let p = RunProfile {
            target_module: None,
            ..profile()
        };
        for model in [
            FaultModel::ModValidStuck0,
            FaultModel::ModValidStuck1,
            FaultModel::ModStateCorrupt,
            FaultModel::MauDrop,
        ] {
            assert!(
                FaultPlan::sample(model, 3, &p).faults.is_empty(),
                "{model} sampled a fault without a target module"
            );
        }
        let p = RunProfile {
            mau_completions: 0,
            ..profile()
        };
        assert!(FaultPlan::sample(FaultModel::MauDrop, 3, &p)
            .faults
            .is_empty());
    }

    #[test]
    fn module_models_sample_and_describe() {
        let p = FaultPlan::sample(FaultModel::ModValidStuck0, 11, &profile());
        assert_eq!(
            p.faults,
            vec![PlannedFault::ModuleIoq {
                module: ModuleId::ICM,
                fault: IoqFault::ValidStuck0,
            }]
        );
        assert_eq!(p.describe(), "ioq[icm]=valid-stuck0");

        let p = FaultPlan::sample(FaultModel::ModStateCorrupt, 11, &profile());
        let PlannedFault::ModuleCorrupt {
            module, at_cycle, ..
        } = p.faults[0]
        else {
            panic!("wrong fault kind");
        };
        assert_eq!(module, ModuleId::ICM);
        assert!((1..=10_000).contains(&at_cycle));
        assert!(
            p.describe().starts_with("corrupt[icm]@c"),
            "{}",
            p.describe()
        );

        let p = FaultPlan::sample(FaultModel::MauDrop, 11, &profile());
        let PlannedFault::MauDrop { module, index } = p.faults[0] else {
            panic!("wrong fault kind");
        };
        assert_eq!(module, ModuleId::ICM);
        assert!(index < 40);
        assert!(
            p.describe().starts_with("mau-drop[icm]["),
            "{}",
            p.describe()
        );
    }

    #[test]
    fn names_round_trip() {
        for model in FaultModel::ALL {
            assert_eq!(FaultModel::from_name(model.name()), Some(model));
            assert_eq!(FaultModel::ALL[model.index() as usize], model);
        }
        assert_eq!(FaultModel::from_name("bogus"), None);
    }

    #[test]
    fn describe_is_compact() {
        let plan = FaultPlan::sample(FaultModel::RegSingle, 1, &profile());
        let d = plan.describe();
        assert!(d.starts_with("reg["), "{d}");
        assert!(d.contains("@c"), "{d}");
        assert_eq!(FaultPlan::default().describe(), "none");
    }
}
