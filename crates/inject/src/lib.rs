//! # rse-inject — deterministic soft-error fault-injection campaigns
//!
//! The evaluation methodology of *"An Architectural Framework for
//! Providing Reliability and Security Support"* (DSN 2004) rests on
//! fault-injection campaigns: transient soft errors are injected into a
//! running guest, and each run is classified by where the error surfaced
//! — masked, silent data corruption, detected by an RSE module, caught by
//! the self-checking watchdog, crashed, or hung. This crate is the
//! campaign engine.
//!
//! Pieces:
//!
//! * [`fault`] — the fault models (register single/double bit flips,
//!   memory bit flips in text and data, instruction-word corruption at
//!   fetch, dropped/garbled CHECK dispatches) and the deterministic
//!   injection-point sampler: one `u64` seed fully determines *when*,
//!   *where*, and *which bits*, replayable forever,
//! * [`workload`] — a small corpus of guest programs, one per harness
//!   flavor (bare pipeline, ICM-protected, DDT + guest OS),
//! * [`snapshot`] — whole-machine architectural snapshots with a stable
//!   digest, used for golden-run comparison and rollback verification,
//! * [`outcome`] — the outcome taxonomy ([`Outcome`]), the recovery
//!   verdict ([`RecoveryStatus`]), JSON-lines records and the
//!   detection-coverage histogram,
//! * [`campaign`] — the runner: golden reference execution, faulty run,
//!   classification against the golden state, and the recovery path
//!   (checkpoint rollback + re-execution when a detection fired but the
//!   architectural state diverged).
//!
//! Everything is deterministic: same spec + same base seed → byte-for-byte
//! identical JSONL, on any host. The only randomness source is the
//! in-repo `rse_support::rng::splitmix64`.
//!
//! # Example
//!
//! ```
//! use rse_inject::{run_one_by_name, FaultModel};
//!
//! // Replay a single run of the campaign: seed → fault → outcome.
//! let record = run_one_by_name("alu_loop", FaultModel::Control, 42).unwrap();
//! assert_eq!(record.outcome.tag(), "masked"); // no fault injected
//! let again = run_one_by_name("alu_loop", FaultModel::Control, 42).unwrap();
//! assert_eq!(record.to_json(), again.to_json());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod fault;
pub mod outcome;
pub mod snapshot;
pub mod workload;

pub use campaign::{
    build_harness, build_harness_seeded, capture_checkpoints, derive_seed, detecting_module, drive,
    fault_budget, reference, result_digest, result_digest_parts, rollback_and_rerun,
    rollback_and_rerun_bounded, rollback_and_rerun_tiered, run_campaign, run_campaign_with,
    run_one, run_one_by_name, run_one_with, run_sharded, to_jsonl, BuiltHarness, CampaignCell,
    CampaignOptions, CampaignSpec, PreRunCheckpoints, RawEnd, RefState,
};
pub use fault::{FaultModel, FaultPlan, PlannedFault, RunProfile};
pub use outcome::{
    coverage_table, module_tag, retry_mechanism, Histogram, Outcome, RecoveryStatus, RunRecord,
};
pub use snapshot::ArchSnapshot;
pub use workload::{by_name, corpus, fleet_workload, Harness, Workload};
