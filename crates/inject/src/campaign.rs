//! The campaign runner: golden reference execution, faulty runs,
//! outcome classification, and the checkpoint-recovery path.
//!
//! Per run the engine:
//!
//! 1. executes (or reuses) the **golden reference** for the workload and
//!    derives the [`RunProfile`] the sampler scales to,
//! 2. builds a fresh harness, **checkpoints every mapped page** into a
//!    [`CheckpointStore`] (the system-software shadow of the OS SavePage
//!    store), arms the sampled faults, and runs under a cycle budget,
//! 3. classifies the end state against the golden result — `Masked`,
//!    `SDC`, `DetectedByModule`, `WatchdogTimeout`, `CrashTrap`, `Hang`,
//! 4. when a detection fired but the architectural result diverged,
//!    exercises the **recovery path**: roll memory back from the
//!    checkpoint store, reset the context to the process entry, and
//!    re-execute; a re-run that reaches the golden digest is recorded as
//!    `recovered:checkpoint-rollback`, anything else as a safe-mode halt
//!    with the recorded cause.
//!
//! The DDT workload delegates recovery to the guest OS (§4.2.2): the
//! crash of the auditing worker triggers the dependency-directed
//! rollback, and the record is judged by the main thread's final report.

use crate::fault::{FaultModel, FaultPlan, RunProfile};
use crate::outcome::{Outcome, RecoveryStatus, RunRecord};
use crate::snapshot::{fnv_str, Fnv};
use crate::workload::{by_name, corpus, Harness, Workload};
use rse_core::{Engine, RseConfig, WatchdogConfig};
use rse_isa::asm::assemble;
use rse_isa::layout::{page_base, STACK_BASE};
use rse_isa::{Image, ModuleId, Reg};
use rse_mem::{MemConfig, MemorySystem, SparseMemory};
use rse_modules::ahbm::{Ahbm, AhbmConfig};
use rse_modules::ddt::{Ddt, DdtConfig};
use rse_modules::dsm::Dsm;
use rse_modules::icm::{Icm, IcmConfig};
use rse_modules::mlr::{Mlr, MlrConfig};
use rse_pipeline::{
    CheckPolicy, CpuContext, ExecEvent, NullCoProcessor, Pipeline, PipelineConfig, StepEvent,
};
use rse_support::rng::splitmix64;
use rse_sys::checkpoint::{Checkpoint, CheckpointConfig, CheckpointStore};
use rse_sys::tiered::{TieredDriver, Window};
use rse_sys::{loader, Os, OsConfig, OsExit};
use std::collections::BTreeMap;

/// Cycle budget for golden reference runs.
const REF_BUDGET: u64 = 50_000_000;

/// What the DDT workload's main thread prints after a successful
/// DDT-driven rollback (see the workload source).
const DDT_RECOVERED_OUTPUT: &[i32] = &[1];

/// Golden-run state a campaign cell classifies against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefState {
    /// Sampler profile measured on the fault-free run.
    pub profile: RunProfile,
    /// Golden result digest (registers + result buffer; bare/ICM
    /// harnesses only).
    pub digest: u64,
    /// Golden guest output (DDT/OS harness only).
    pub output: Vec<i32>,
}

/// Derives the per-run seed from the campaign base seed, the workload
/// name, the fault model, and the run index. Pure and stable: the JSONL
/// `seed` field plus [`FaultPlan::sample`] replays the exact fault.
pub fn derive_seed(base_seed: u64, workload: &str, model: FaultModel, run: u32) -> u64 {
    let mut s = base_seed ^ fnv_str(workload);
    splitmix64(&mut s);
    s ^= model.index().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s);
    s ^= u64::from(run);
    splitmix64(&mut s)
}

/// A ready-to-run simulation harness: pipeline + RSE engine, built per
/// the workload's [`Harness`] flavor (with the harness's primary module
/// and the MLR/AHBM bystanders installed for non-bare flavors). Public so
/// the fleet simulator (`rse-fleet`) can stamp out one full
/// pipeline+RSE instance per node from the same corpus machinery.
pub struct BuiltHarness {
    /// The simulated processor, image loaded.
    pub cpu: Pipeline,
    /// The RSE engine (empty for bare workloads).
    pub engine: Engine,
}

/// Builds the harness for `w` with the given watchdog cycle budget.
/// Equivalent to [`build_harness_seeded`] with no per-run MLR seed —
/// [`Harness::MlrOs`] workloads then randomize with a fixed seed derived
/// from the workload name, so golden references stay reproducible.
pub fn build_harness(w: &Workload, image: &Image, cycle_budget: u64) -> BuiltHarness {
    build_harness_seeded(w, image, cycle_budget, None)
}

/// Builds the harness for `w`, threading a per-run MLR layout seed into
/// [`Harness::MlrOs`] flavors (the adversarial campaigns randomize the
/// victim's layout fresh every run; `None` falls back to the pinned
/// per-workload seed the golden reference uses). The seed is ignored by
/// every other harness flavor.
pub fn build_harness_seeded(
    w: &Workload,
    image: &Image,
    cycle_budget: u64,
    mlr_seed: Option<u64>,
) -> BuiltHarness {
    let rse_cfg = RseConfig {
        watchdog: WatchdogConfig {
            cycle_budget,
            ..WatchdogConfig::default()
        },
        ..RseConfig::default()
    };
    match w.harness {
        Harness::Bare => {
            let mut cpu = Pipeline::new(
                PipelineConfig::default(),
                MemorySystem::new(MemConfig::with_framework()),
            );
            cpu.load_image(image);
            BuiltHarness {
                cpu,
                engine: Engine::new(rse_cfg),
            }
        }
        Harness::Dsm => {
            let mut cpu = Pipeline::new(
                PipelineConfig::default(),
                MemorySystem::new(MemConfig::with_framework()),
            );
            cpu.load_image(image);
            let mut dsm = Dsm::new();
            dsm.install_signatures(image);
            let mut engine = Engine::new(rse_cfg);
            engine.install(Box::new(dsm));
            engine.enable(ModuleId::DSM);
            install_bystanders(&mut engine);
            BuiltHarness { cpu, engine }
        }
        Harness::Icm => {
            let mut cpu = Pipeline::new(
                PipelineConfig {
                    check_policy: CheckPolicy::ControlFlow,
                    ..PipelineConfig::default()
                },
                MemorySystem::new(MemConfig::with_framework()),
            );
            cpu.load_image(image);
            let mut icm = Icm::new(IcmConfig::default());
            icm.install_for_control_flow(image, &mut cpu.mem_mut().memory);
            let mut engine = Engine::new(rse_cfg);
            engine.install(Box::new(icm));
            engine.enable(ModuleId::ICM);
            install_bystanders(&mut engine);
            BuiltHarness { cpu, engine }
        }
        Harness::DdtOs | Harness::NxOs => {
            let mut cpu = Pipeline::new(
                PipelineConfig::default(),
                MemorySystem::new(MemConfig::with_framework()),
            );
            loader::load_process(&mut cpu, image);
            if w.harness == Harness::NxOs {
                // §4.2: the DDT marks non-code pages non-executable; the
                // pipeline enforces the range at commit.
                cpu.set_exec_range(Some((image.text_base, image.text_end())));
            }
            let mut ddt = Ddt::new(DdtConfig::default());
            ddt.set_current_thread(0);
            let mut engine = Engine::new(rse_cfg);
            engine.install(Box::new(ddt));
            engine.enable(ModuleId::DDT);
            install_bystanders(&mut engine);
            BuiltHarness { cpu, engine }
        }
        Harness::MlrOs => {
            let mut cpu = Pipeline::new(
                PipelineConfig {
                    chk_serialize_mask: 1 << ModuleId::MLR.number(),
                    ..PipelineConfig::default()
                },
                MemorySystem::new(MemConfig::with_framework()),
            );
            loader::load_process(&mut cpu, image);
            // The golden reference pins the layout seed to the workload
            // name; adversarial runs re-seed per run. `| 1` keeps the
            // seed nonzero so `Some(0)` never aliases "no entropy".
            let seed = mlr_seed.unwrap_or_else(|| fnv_str(w.name)) | 1;
            let mut engine = Engine::new(rse_cfg);
            engine.install(Box::new(Mlr::new(MlrConfig {
                seed: Some(seed),
                ..MlrConfig::default()
            })));
            engine.enable(ModuleId::MLR);
            engine.install(Box::new(Ahbm::new(AhbmConfig::default())));
            engine.enable(ModuleId::AHBM);
            engine.install(Box::new(Icm::new(IcmConfig::default())));
            engine.enable(ModuleId::ICM);
            BuiltHarness { cpu, engine }
        }
        Harness::OsBare => {
            let mut cpu = Pipeline::new(
                PipelineConfig {
                    // Same pipeline shape as `MlrOs` so the undefended
                    // twin differs only in the installed modules; with no
                    // MLR the blocking `chk mlr` ops pass straight
                    // through and the result words stay zero.
                    chk_serialize_mask: 1 << ModuleId::MLR.number(),
                    ..PipelineConfig::default()
                },
                MemorySystem::new(MemConfig::with_framework()),
            );
            loader::load_process(&mut cpu, image);
            BuiltHarness {
                cpu,
                engine: Engine::new(rse_cfg),
            }
        }
    }
}

/// Installs the MLR and AHBM alongside the harness's primary module so
/// every non-bare harness carries three modules. With three installed
/// slots, one quarantined-or-disabled module stays below the
/// half-installed escalation threshold — the campaign then observes
/// genuine per-module containment instead of an immediate global trip.
fn install_bystanders(engine: &mut Engine) {
    engine.install(Box::new(Mlr::new(MlrConfig::default())));
    engine.enable(ModuleId::MLR);
    engine.install(Box::new(Ahbm::new(AhbmConfig::default())));
    engine.enable(ModuleId::AHBM);
}

/// How a bare/ICM drive loop ended. Public so the adversarial campaign
/// engine (`rse-attack`) drives its non-OS victims through the same
/// loop the injection campaigns use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawEnd {
    /// The guest committed `halt`.
    Halted,
    /// The guest trapped in a way a bare harness cannot service.
    Crash(&'static str),
    /// The cycle budget ran out.
    TimedOut,
}

/// Runs a bare/ICM harness until it halts, traps, or exhausts the
/// absolute cycle `deadline`.
pub fn drive(cpu: &mut Pipeline, engine: &mut Engine, deadline: u64) -> RawEnd {
    let remaining = deadline.saturating_sub(cpu.now());
    if remaining == 0 {
        return RawEnd::TimedOut;
    }
    match cpu.run(engine, remaining) {
        StepEvent::Halted => RawEnd::Halted,
        StepEvent::Timeout => RawEnd::TimedOut,
        StepEvent::Syscall => RawEnd::Crash("unexpected syscall trap"),
        StepEvent::Exception(_) => RawEnd::Crash("unexpected coprocessor exception"),
    }
}

/// Which checker module, if any, flagged a mismatch this run: the ICM's
/// per-word comparison first, then the DSM's basic-block signature
/// check. Public so the adversarial campaign engine classifies
/// detections with the same priority order.
pub fn detecting_module(engine: &Engine) -> Option<ModuleId> {
    if engine
        .module_ref::<Icm>(ModuleId::ICM)
        .is_some_and(|icm| icm.stats().mismatches > 0)
    {
        return Some(ModuleId::ICM);
    }
    if engine
        .module_ref::<Dsm>(ModuleId::DSM)
        .is_some_and(|dsm| dsm.stats().mismatches > 0)
    {
        return Some(ModuleId::DSM);
    }
    None
}

/// Digest of the workload-declared result set: the named registers plus
/// the result buffer bytes. Public so the fleet simulator can judge a
/// failed-over workload's completion against the same golden digest.
pub fn result_digest(w: &Workload, cpu: &Pipeline, image: &Image) -> u64 {
    result_digest_parts(w, cpu.regs(), &cpu.mem().memory, image)
}

/// [`result_digest`] over raw architectural state: works against either
/// execution tier (the functional interpreter exposes the same register
/// file and [`SparseMemory`] as the pipeline).
pub fn result_digest_parts(
    w: &Workload,
    regs: &[u32; 32],
    mem: &SparseMemory,
    image: &Image,
) -> u64 {
    let mut h = Fnv::new();
    for &r in w.result_regs {
        h.write_u32(regs[r]);
    }
    if let Some((sym, len)) = w.result_buf {
        let addr = image.symbol(sym).expect("result_buf symbol exists");
        for i in 0..len {
            h.write_bytes(&[mem.read_u8(addr + i)]);
        }
    }
    h.finish()
}

fn sampler_profile(w: &Workload, image: &Image, cpu: &Pipeline, engine: &Engine) -> RunProfile {
    let data_range = w.data_fault_buf.map(|(sym, len)| {
        let addr = image.symbol(sym).expect("data_fault_buf symbol exists");
        (addr, addr + len)
    });
    let target_module = w.harness.target_module();
    let mau_completions = target_module.map_or(0, |m| engine.mau().finished_for(m));
    RunProfile {
        cycles: cpu.stats().cycles,
        fetched: cpu.stats().fetched,
        chk_routed: engine.stats().chk_routed,
        text_range: (image.text_base, image.text_end()),
        data_range,
        target_module,
        mau_completions,
    }
}

/// Executes the golden reference run for a workload.
///
/// # Panics
///
/// Panics if the fault-free workload does not complete cleanly — that is
/// a corpus bug, not a campaign outcome.
pub fn reference(w: &Workload) -> RefState {
    let image = assemble(w.source).expect("corpus workload assembles");
    let mut b = build_harness(w, &image, u64::MAX);
    match w.harness {
        Harness::Bare | Harness::Icm | Harness::Dsm => {
            let end = drive(&mut b.cpu, &mut b.engine, REF_BUDGET);
            assert_eq!(end, RawEnd::Halted, "golden run of {} must halt", w.name);
            assert!(
                b.engine.safe_mode().is_none(),
                "golden run of {} tripped the watchdog",
                w.name
            );
            RefState {
                profile: sampler_profile(w, &image, &b.cpu, &b.engine),
                digest: result_digest(w, &b.cpu, &image),
                output: Vec::new(),
            }
        }
        Harness::DdtOs | Harness::MlrOs | Harness::OsBare | Harness::NxOs => {
            let mut os = Os::new(OsConfig::default());
            let exit = os.run(&mut b.cpu, &mut b.engine, REF_BUDGET);
            assert_eq!(
                exit,
                OsExit::Exited { code: 0 },
                "golden run of {} must exit cleanly",
                w.name
            );
            assert_eq!(
                os.stats().recoveries,
                0,
                "golden run of {} must not need recovery",
                w.name
            );
            RefState {
                profile: sampler_profile(w, &image, &b.cpu, &b.engine),
                digest: 0,
                output: os.output.clone(),
            }
        }
    }
}

/// System-software pre-run checkpoint: every mapped page snapshotted
/// into a [`CheckpointStore`], in sorted-page order. Public so the
/// adversarial campaign engine reuses the same rollback machinery.
pub struct PreRunCheckpoints {
    /// The checkpoint store holding every pre-run page image.
    pub store: CheckpointStore,
    /// The snapshotted page ids, sorted.
    pub pages: Vec<u32>,
}

/// Snapshots every mapped page of `mem` into a fresh checkpoint store.
pub fn capture_checkpoints(mem: &SparseMemory) -> PreRunCheckpoints {
    let pages = mem.mapped_page_ids_sorted();
    let mut store = CheckpointStore::new(CheckpointConfig::default());
    for &page in &pages {
        store.store(Checkpoint {
            page,
            data: mem.snapshot_page(page_base(page)),
            saved_at: 0,
            writer: 0,
        });
    }
    PreRunCheckpoints { store, pages }
}

/// Rolls the process back to its pre-run checkpoints and re-executes.
/// Returns the re-executed result digest, or the failure cause.
pub fn rollback_and_rerun(
    w: &Workload,
    image: &Image,
    pre: &PreRunCheckpoints,
    budget: u64,
) -> Result<u64, String> {
    let mut b = build_harness(w, image, budget);
    // Memory is repopulated *strictly from the checkpoint store*: a
    // missing page means recovery has insufficient information, exactly
    // the §4.2.2 whole-process-termination case.
    for &page in &pre.pages {
        let cp = pre
            .store
            .earliest_for(page)
            .ok_or_else(|| format!("missing checkpoint for page {page:#x}"))?;
        b.cpu
            .mem_mut()
            .memory
            .restore_page(page_base(page), &cp.data);
    }
    b.cpu.mem_mut().invalidate_caches();
    let mut regs = [0u32; 32];
    regs[Reg::SP.index()] = STACK_BASE - 16;
    b.cpu.set_context(&CpuContext {
        regs,
        pc: image.entry,
    });
    match drive(&mut b.cpu, &mut b.engine, budget) {
        RawEnd::Halted => Ok(result_digest(w, &b.cpu, image)),
        RawEnd::TimedOut => Err("re-execution after rollback did not complete".into()),
        RawEnd::Crash(why) => Err(format!("re-execution after rollback crashed: {why}")),
    }
}

/// Tiered variant of [`rollback_and_rerun`]: the re-execution is
/// fault-free and architecturally deterministic, judged only by its
/// result digest — exactly the case where the functional tier is exact
/// by the differential invariant (golden ≡ pipeline). The
/// [`TieredDriver`] runs it under [`Window::none`], never entering the
/// cycle-accurate tier, which is where the tiered campaign's speedup
/// comes from while leaving every JSONL byte (outcomes, cycle counts,
/// error strings) identical.
pub fn rollback_and_rerun_tiered(
    w: &Workload,
    image: &Image,
    pre: &PreRunCheckpoints,
    budget: u64,
) -> Result<u64, String> {
    let mut d = TieredDriver::new(
        image,
        PipelineConfig::default(),
        MemConfig::with_framework(),
    );
    for &page in &pre.pages {
        let cp = pre
            .store
            .earliest_for(page)
            .ok_or_else(|| format!("missing checkpoint for page {page:#x}"))?;
        d.memory_mut().restore_page(page_base(page), &cp.data);
    }
    let mut regs = [0u32; 32];
    regs[Reg::SP.index()] = STACK_BASE - 16;
    d.install_context(&CpuContext {
        regs,
        pc: image.entry,
    });
    // `budget` is a cycle budget (4×ref cycles + slack); with a 4-wide
    // commit the same number safely over-covers the run's instruction
    // count, so it doubles as functional fuel.
    match d.run(&mut NullCoProcessor, &Window::none(), budget) {
        ExecEvent::Halted => Ok(result_digest_parts(w, d.regs(), d.memory(), image)),
        ExecEvent::OutOfFuel => Err("re-execution after rollback did not complete".into()),
        ExecEvent::Syscall => {
            Err("re-execution after rollback crashed: unexpected syscall trap".into())
        }
        ExecEvent::Exception(_) => {
            Err("re-execution after rollback crashed: unexpected coprocessor exception".into())
        }
    }
}

/// Bounded checkpoint-rollback with an adversary in the recovery
/// window: re-executes from the pre-run checkpoints up to `max_rerun`
/// times, letting `strike` re-arm an attack into each attempt (the
/// recovery-window strike of the adversarial campaigns). An attempt
/// succeeds when the guest halts with the `golden` digest — the strike
/// either missed or was absorbed — and the 1-based attempt number is
/// returned so the caller can record `recovered:retry<k>`. When every
/// attempt diverges, crashes, or times out, the rollback escalates to a
/// safe halt instead of retrying forever; the cause names `--max-rerun`
/// the way the re-randomization CLI names `--validate-period`, so the
/// operator knows which budget tripped.
pub fn rollback_and_rerun_bounded(
    w: &Workload,
    image: &Image,
    pre: &PreRunCheckpoints,
    budget: u64,
    golden: u64,
    max_rerun: u32,
    mut strike: impl FnMut(u32, &mut Pipeline, &mut Engine),
) -> Result<u32, String> {
    let mut last = String::from("rollback never attempted");
    for attempt in 1..=max_rerun.max(1) {
        let mut b = build_harness(w, image, budget);
        for &page in &pre.pages {
            let cp = pre
                .store
                .earliest_for(page)
                .ok_or_else(|| format!("missing checkpoint for page {page:#x}"))?;
            b.cpu
                .mem_mut()
                .memory
                .restore_page(page_base(page), &cp.data);
        }
        b.cpu.mem_mut().invalidate_caches();
        let mut regs = [0u32; 32];
        regs[Reg::SP.index()] = STACK_BASE - 16;
        b.cpu.set_context(&CpuContext {
            regs,
            pc: image.entry,
        });
        strike(attempt, &mut b.cpu, &mut b.engine);
        last = match drive(&mut b.cpu, &mut b.engine, budget) {
            RawEnd::Halted if result_digest(w, &b.cpu, image) == golden => return Ok(attempt),
            RawEnd::Halted => "re-executed state diverged from golden".into(),
            RawEnd::TimedOut => "re-execution after rollback did not complete".into(),
            RawEnd::Crash(why) => format!("re-execution after rollback crashed: {why}"),
        };
    }
    Err(format!(
        "retry budget exhausted after {} rollback attempts (last: {last}); \
         raise --max-rerun only if the recovery window is known to clear",
        max_rerun.max(1)
    ))
}

/// The cycle budget a faulted run gets: 4x the golden run plus slack,
/// so hangs are detectable without ever truncating a legitimate run.
pub fn fault_budget(r: &RefState) -> u64 {
    r.profile.cycles.saturating_mul(4) + 200_000
}

/// Executes one fault-injection run and classifies it. Equivalent to
/// [`run_one_with`] with default (untiered) options.
pub fn run_one(w: &Workload, model: FaultModel, run: u32, seed: u64, r: &RefState) -> RunRecord {
    run_one_with(w, model, run, seed, r, &CampaignOptions::default())
}

/// Executes one fault-injection run and classifies it.
///
/// With [`CampaignOptions::tiered`] set, the checkpoint-rollback
/// re-execution (the only deterministic, fault-free segment of a run)
/// executes on the functional tier via the [`TieredDriver`]; the faulty
/// run itself stays fully cycle-accurate so classification and the
/// recorded cycle counts are bit-for-bit unchanged.
pub fn run_one_with(
    w: &Workload,
    model: FaultModel,
    run: u32,
    seed: u64,
    r: &RefState,
    opts: &CampaignOptions,
) -> RunRecord {
    let image = assemble(w.source).expect("corpus workload assembles");
    let plan = FaultPlan::sample(model, seed, &r.profile);
    let budget = fault_budget(r);
    let (outcome, recovery, cycles) = match w.harness {
        Harness::Bare | Harness::Icm | Harness::Dsm => {
            let mut b = build_harness(w, &image, budget);
            let pre = capture_checkpoints(&b.cpu.mem().memory);
            plan.arm(&mut b.cpu, &mut b.engine);
            let end = drive(&mut b.cpu, &mut b.engine, budget);
            if end == RawEnd::TimedOut {
                // Latch the watchdog's one-shot hang detector.
                b.engine.poll_hang(b.cpu.now());
            }
            let detected_by = detecting_module(&b.engine);
            let detected = detected_by.is_some();
            let digest = result_digest(w, &b.cpu, &image);
            let down_target = w
                .harness
                .target_module()
                .filter(|&m| b.engine.module_health(m).is_down());
            let outcome = if let Some(m) = down_target {
                Outcome::Degraded(m)
            } else if let Some(m) = detected_by {
                Outcome::DetectedByModule(m)
            } else if b.engine.safe_mode().is_some() {
                Outcome::WatchdogTimeout
            } else if b.engine.stats().quarantines > 0 {
                Outcome::Contained
            } else {
                match end {
                    RawEnd::TimedOut => Outcome::Hang,
                    RawEnd::Crash(_) => Outcome::CrashTrap,
                    RawEnd::Halted => {
                        if digest == r.digest {
                            Outcome::Masked
                        } else {
                            Outcome::Sdc
                        }
                    }
                }
            };
            let recovery = match outcome {
                Outcome::Masked | Outcome::Sdc => RecoveryStatus::NotNeeded,
                Outcome::Degraded(_) if end == RawEnd::Halted && digest == r.digest => {
                    RecoveryStatus::Succeeded {
                        mechanism: "quarantine-nop-mux",
                    }
                }
                Outcome::Contained if end == RawEnd::Halted && digest == r.digest => {
                    RecoveryStatus::Succeeded {
                        mechanism: "probe-re-enable",
                    }
                }
                _ if end == RawEnd::Halted && digest == r.digest => RecoveryStatus::Succeeded {
                    mechanism: if detected {
                        "flush-refetch"
                    } else {
                        "safe-mode-decouple"
                    },
                },
                _ => match if opts.tiered {
                    rollback_and_rerun_tiered(w, &image, &pre, budget)
                } else {
                    rollback_and_rerun(w, &image, &pre, budget)
                } {
                    Ok(d) if d == r.digest => RecoveryStatus::Succeeded {
                        mechanism: "checkpoint-rollback",
                    },
                    Ok(_) => RecoveryStatus::FailedSafeHalt {
                        cause: "re-executed state diverged from golden".into(),
                    },
                    Err(cause) => RecoveryStatus::FailedSafeHalt { cause },
                },
            };
            (outcome, recovery, b.cpu.now())
        }
        Harness::DdtOs | Harness::MlrOs | Harness::OsBare | Harness::NxOs => {
            let mut b = build_harness(w, &image, budget);
            plan.arm(&mut b.cpu, &mut b.engine);
            let mut os = Os::new(OsConfig::default());
            let exit = os.run(&mut b.cpu, &mut b.engine, budget);
            if exit == OsExit::Timeout {
                b.engine.poll_hang(b.cpu.now());
            }
            let detected = os.stats().recoveries > 0;
            let down_target = w
                .harness
                .target_module()
                .filter(|&m| b.engine.module_health(m).is_down());
            let outcome = if let Some(m) = down_target {
                Outcome::Degraded(m)
            } else if detected {
                Outcome::DetectedByModule(ModuleId::DDT)
            } else if b.engine.safe_mode().is_some() {
                Outcome::WatchdogTimeout
            } else if b.engine.stats().quarantines > 0 {
                Outcome::Contained
            } else {
                match &exit {
                    OsExit::Timeout => Outcome::Hang,
                    OsExit::ProcessKilled { .. } => Outcome::CrashTrap,
                    OsExit::Exited { code: 0 } if os.output == r.output => Outcome::Masked,
                    _ => Outcome::Sdc,
                }
            };
            let run_ok = exit == (OsExit::Exited { code: 0 }) && os.output == r.output;
            let recovery = match outcome {
                Outcome::Degraded(_) if run_ok => RecoveryStatus::Succeeded {
                    mechanism: "quarantine-nop-mux",
                },
                Outcome::Contained if run_ok => RecoveryStatus::Succeeded {
                    mechanism: "probe-re-enable",
                },
                Outcome::Degraded(_) | Outcome::Contained => RecoveryStatus::FailedSafeHalt {
                    cause: format!(
                        "degraded-mode run diverged (output {:?}, exit {:?})",
                        os.output, exit
                    ),
                },
                Outcome::DetectedByModule(_) => {
                    if exit == (OsExit::Exited { code: 0 }) && os.output == DDT_RECOVERED_OUTPUT {
                        RecoveryStatus::Succeeded {
                            mechanism: "ddt-checkpoint-rollback",
                        }
                    } else {
                        RecoveryStatus::FailedSafeHalt {
                            cause: format!(
                                "post-recovery run diverged (output {:?}, exit {:?})",
                                os.output, exit
                            ),
                        }
                    }
                }
                _ => RecoveryStatus::NotNeeded,
            };
            (outcome, recovery, b.cpu.now())
        }
    };
    RunRecord {
        workload: w.name,
        model: model.name(),
        run,
        seed,
        outcome,
        recovery,
        cycles,
        faults: plan.describe(),
    }
}

/// Convenience: reference + single run for a named workload. Returns
/// `None` for an unknown workload name.
pub fn run_one_by_name(name: &str, model: FaultModel, seed: u64) -> Option<RunRecord> {
    let w = by_name(name)?;
    let r = reference(w);
    Some(run_one(w, model, 0, seed, &r))
}

/// One campaign cell: `runs` injections of `model` into `workload`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignCell {
    /// Workload name (must resolve via [`by_name`]).
    pub workload: &'static str,
    /// Fault model.
    pub model: FaultModel,
    /// Number of runs.
    pub runs: u32,
}

/// A full campaign specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Base seed every per-run seed is derived from.
    pub base_seed: u64,
    /// The cells, executed in order.
    pub cells: Vec<CampaignCell>,
}

impl CampaignSpec {
    /// The pinned 64-run CI smoke campaign: every fault model exercised
    /// across the corpus.
    pub fn smoke(base_seed: u64) -> CampaignSpec {
        let cell = |workload, model, runs| CampaignCell {
            workload,
            model,
            runs,
        };
        CampaignSpec {
            base_seed,
            cells: vec![
                cell("alu_loop", FaultModel::RegSingle, 8),
                cell("alu_loop", FaultModel::MemData, 8),
                cell("mem_checksum", FaultModel::RegDouble, 8),
                cell("mem_checksum", FaultModel::MemData, 8),
                cell("icm_loop", FaultModel::FetchWord, 8),
                cell("icm_loop", FaultModel::MemText, 8),
                cell("icm_loop", FaultModel::ChkDrop, 4),
                cell("icm_loop", FaultModel::ChkGarble, 4),
                cell("ddt_recover", FaultModel::MemData, 8),
            ],
        }
    }

    /// The zero-fault control campaign: every workload under the
    /// `control` model. All runs must classify as `masked`.
    pub fn control(base_seed: u64, runs: u32) -> CampaignSpec {
        CampaignSpec {
            base_seed,
            cells: corpus()
                .iter()
                .map(|w| CampaignCell {
                    workload: w.name,
                    model: FaultModel::Control,
                    runs,
                })
                .collect(),
        }
    }

    /// The quarantine matrix: every module-targeted fault model against
    /// the two module-bearing workloads. This is the degraded-mode
    /// coverage campaign — it measures how often a faulted module is
    /// contained (quarantine → NOP mux → guest completes) or healed
    /// (backoff probe re-enables it) instead of decoupling the whole
    /// framework.
    pub fn quarantine(base_seed: u64, runs: u32) -> CampaignSpec {
        const MODULE_MODELS: [FaultModel; 4] = [
            FaultModel::ModValidStuck0,
            FaultModel::ModValidStuck1,
            FaultModel::ModStateCorrupt,
            FaultModel::MauDrop,
        ];
        let mut cells = Vec::new();
        for name in ["icm_loop", "ddt_recover"] {
            let w = by_name(name).expect("corpus workload");
            for model in MODULE_MODELS {
                if model.applicable(w) {
                    cells.push(CampaignCell {
                        workload: w.name,
                        model,
                        runs,
                    });
                }
            }
        }
        CampaignSpec { base_seed, cells }
    }

    /// The full cross product: every applicable (workload, model) pair,
    /// `runs` injections each.
    pub fn full(base_seed: u64, runs: u32) -> CampaignSpec {
        let mut cells = Vec::new();
        for w in corpus() {
            for model in FaultModel::ALL {
                if model.applicable(w) {
                    cells.push(CampaignCell {
                        workload: w.name,
                        model,
                        runs,
                    });
                }
            }
        }
        CampaignSpec { base_seed, cells }
    }

    /// Total runs in the spec.
    pub fn total_runs(&self) -> u64 {
        self.cells.iter().map(|c| u64::from(c.runs)).sum()
    }
}

/// Execution options for a campaign. Tiering and sharding never change
/// a single output byte — they only change how fast the same records
/// are produced. The rollback retry budget *is* part of the replay
/// contract: it bounds how many re-executions a recovery-window
/// adversary can force before the run escalates to a safe halt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignOptions {
    /// Run deterministic fault-free segments (checkpoint-rollback
    /// re-execution) on the functional tier.
    pub tiered: bool,
    /// Worker threads for run-level sharding; `0` or `1` runs
    /// sequentially.
    pub threads: usize,
    /// Rollback retry budget for recovery-window strikes (the
    /// `--max-rerun` flag; see [`rse_sys::recovery::validate_max_rerun`]).
    pub max_rerun: u32,
}

impl Default for CampaignOptions {
    fn default() -> CampaignOptions {
        CampaignOptions {
            tiered: false,
            threads: 1,
            max_rerun: rse_sys::DEFAULT_MAX_RERUN,
        }
    }
}

/// Executes a campaign: golden references are computed once per
/// workload, then every cell's runs execute in order. Equivalent to
/// [`run_campaign_with`] with default (sequential, untiered) options.
///
/// # Panics
///
/// Panics if a cell names an unknown workload or an inapplicable fault
/// model — specs are validated eagerly so a bad campaign never half-runs.
pub fn run_campaign(spec: &CampaignSpec) -> Vec<RunRecord> {
    run_campaign_with(spec, &CampaignOptions::default())
}

/// Executes a campaign under [`CampaignOptions`].
///
/// Sharding is run-level and embarrassingly parallel: every `(cell,
/// run)` job's seed is precomputed from the spec alone, the golden
/// references are computed once up front, worker `t` of `T` takes jobs
/// `t, t+T, t+2T, …` (round-robin, so long cells spread across
/// workers), and the results are merged back by global run index. The
/// merged record vector — and therefore [`to_jsonl`] — is byte-for-byte
/// identical for every thread count.
///
/// # Panics
///
/// Panics as [`run_campaign`] does on an invalid spec, and propagates
/// any worker panic.
pub fn run_campaign_with(spec: &CampaignSpec, opts: &CampaignOptions) -> Vec<RunRecord> {
    for cell in &spec.cells {
        let w = by_name(cell.workload)
            .unwrap_or_else(|| panic!("unknown workload {:?}", cell.workload));
        assert!(
            cell.model.applicable(w),
            "model {} is not applicable to workload {}",
            cell.model,
            w.name
        );
    }
    let mut refs: BTreeMap<&str, RefState> = BTreeMap::new();
    for cell in &spec.cells {
        let w = by_name(cell.workload).expect("validated above");
        refs.entry(w.name).or_insert_with(|| reference(w));
    }
    let jobs: Vec<(&'static Workload, FaultModel, u32, u64)> = spec
        .cells
        .iter()
        .flat_map(|cell| {
            let w = by_name(cell.workload).expect("validated above");
            (0..cell.runs).map(move |run| {
                (
                    w,
                    cell.model,
                    run,
                    derive_seed(spec.base_seed, w.name, cell.model, run),
                )
            })
        })
        .collect();
    run_sharded(&jobs, opts.threads, |_, &(w, model, run, seed)| {
        run_one_with(w, model, run, seed, &refs[w.name], opts)
    })
}

/// Runs `jobs` through `f`, sharding across `threads` worker threads.
///
/// Sharding is run-level and embarrassingly parallel: worker `t` of `T`
/// takes jobs `t, t+T, t+2T, …` (round-robin, so long cells spread
/// across workers) and the results merge back by job index — the result
/// vector is identical at every thread count. `0` or `1` threads runs
/// inline. Shared by the injection and adversarial campaign runners.
///
/// # Panics
///
/// Propagates any worker panic.
pub fn run_sharded<J: Sync, R: Send>(
    jobs: &[J],
    threads: usize,
    f: impl Fn(usize, &J) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(jobs.len().max(1));
    if threads == 1 {
        return jobs.iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let f = &f;
            handles.push(scope.spawn(move || {
                jobs.iter()
                    .enumerate()
                    .skip(t)
                    .step_by(threads)
                    .map(|(i, j)| (i, f(i, j)))
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            for (i, rec) in handle.join().expect("campaign worker panicked") {
                slots[i] = Some(rec);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job produced a record"))
        .collect()
}

/// Serializes records as JSON lines (one record per line, trailing
/// newline).
pub fn to_jsonl(records: &[RunRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_well_spread() {
        let a = derive_seed(1, "alu_loop", FaultModel::RegSingle, 0);
        assert_eq!(a, derive_seed(1, "alu_loop", FaultModel::RegSingle, 0));
        assert_ne!(a, derive_seed(2, "alu_loop", FaultModel::RegSingle, 0));
        assert_ne!(a, derive_seed(1, "mem_checksum", FaultModel::RegSingle, 0));
        assert_ne!(a, derive_seed(1, "alu_loop", FaultModel::RegDouble, 0));
        assert_ne!(a, derive_seed(1, "alu_loop", FaultModel::RegSingle, 1));
    }

    #[test]
    fn smoke_spec_is_64_runs() {
        assert_eq!(CampaignSpec::smoke(0).total_runs(), 64);
    }

    #[test]
    fn full_spec_skips_inapplicable_models() {
        let spec = CampaignSpec::full(0, 1);
        assert!(spec
            .cells
            .iter()
            .all(|c| c.model.applicable(by_name(c.workload).unwrap())));
        // icm_loop has no data buffer; bare workloads have no CHECKs.
        assert!(!spec
            .cells
            .iter()
            .any(|c| c.workload == "icm_loop" && c.model == FaultModel::MemData));
        assert!(!spec
            .cells
            .iter()
            .any(|c| c.workload == "alu_loop" && c.model == FaultModel::ChkDrop));
    }

    #[test]
    #[should_panic(expected = "not applicable")]
    fn bad_spec_is_rejected_eagerly() {
        run_campaign(&CampaignSpec {
            base_seed: 0,
            cells: vec![CampaignCell {
                workload: "alu_loop",
                model: FaultModel::ChkDrop,
                runs: 1,
            }],
        });
    }

    #[test]
    fn control_runs_are_all_masked() {
        let records = run_campaign(&CampaignSpec::control(7, 2));
        assert_eq!(records.len(), 8);
        for r in &records {
            assert_eq!(r.outcome, Outcome::Masked, "{}", r.to_json());
            assert_eq!(r.recovery, RecoveryStatus::NotNeeded);
            assert_eq!(r.faults, "none");
        }
    }

    #[test]
    fn quarantine_spec_covers_module_models() {
        let spec = CampaignSpec::quarantine(0, 2);
        assert_eq!(spec.cells.len(), 7, "{:?}", spec.cells);
        assert_eq!(spec.total_runs(), 14);
        assert!(spec
            .cells
            .iter()
            .all(|c| c.model.applicable(by_name(c.workload).unwrap())));
        // MauDrop needs the ICM harness's MAU traffic.
        assert!(!spec
            .cells
            .iter()
            .any(|c| c.workload == "ddt_recover" && c.model == FaultModel::MauDrop));
    }

    #[test]
    fn stuck_valid_line_is_confined_to_the_module() {
        let w = by_name("icm_loop").unwrap();
        let r = reference(w);
        let seed = derive_seed(3, w.name, FaultModel::ModValidStuck0, 0);
        let rec = run_one(w, FaultModel::ModValidStuck0, 0, seed, &r);
        assert!(
            rec.outcome.is_confined(),
            "expected containment, got {}",
            rec.to_json()
        );
    }

    /// A mixed mini-campaign (injections across the three harness
    /// flavors) whose outputs the tiered and sharded paths must
    /// reproduce byte-for-byte.
    fn mini_spec() -> CampaignSpec {
        CampaignSpec {
            base_seed: 0xD5B,
            cells: vec![
                CampaignCell {
                    workload: "alu_loop",
                    model: FaultModel::RegSingle,
                    runs: 3,
                },
                // With base seed 0xD5B, mem-text run 1 classifies as a
                // hang that recovers via checkpoint-rollback — the exact
                // segment the tiered path moves to the functional tier
                // (see the pinned smoke golden).
                CampaignCell {
                    workload: "icm_loop",
                    model: FaultModel::MemText,
                    runs: 2,
                },
                CampaignCell {
                    workload: "ddt_recover",
                    model: FaultModel::MemData,
                    runs: 2,
                },
            ],
        }
    }

    #[test]
    fn tiered_campaign_is_byte_identical() {
        let spec = mini_spec();
        let records = run_campaign(&spec);
        assert!(
            records
                .iter()
                .any(|r| r.to_json().contains("recovered:checkpoint-rollback")),
            "mini spec must exercise the rollback re-run the tiered path replaces"
        );
        let base = to_jsonl(&records);
        let tiered = to_jsonl(&run_campaign_with(
            &spec,
            &CampaignOptions {
                tiered: true,
                ..CampaignOptions::default()
            },
        ));
        assert_eq!(base, tiered);
    }

    #[test]
    fn sharded_campaign_is_byte_identical() {
        let spec = mini_spec();
        let base = to_jsonl(&run_campaign(&spec));
        for threads in [3, 16] {
            let sharded = to_jsonl(&run_campaign_with(
                &spec,
                &CampaignOptions {
                    tiered: true,
                    threads,
                    ..CampaignOptions::default()
                },
            ));
            assert_eq!(base, sharded, "threads={threads}");
        }
    }

    #[test]
    fn references_are_reproducible() {
        for w in corpus() {
            let a = reference(w);
            let b = reference(w);
            assert_eq!(a, b, "reference for {} is nondeterministic", w.name);
            assert!(a.profile.cycles > 0);
            assert!(a.profile.fetched > 0);
        }
    }
}
