//! Property tests for the recovery substrate: a checkpoint taken before
//! arbitrary corruption must restore the machine state bit-identically.
//!
//! Two layers are exercised:
//!
//! * `ArchSnapshot` — the campaign's whole-machine capture/restore,
//! * `CheckpointStore` — the OS-level per-page pre-image store the
//!   §4.2.2 rollback path replays from.

use rse_inject::ArchSnapshot;
use rse_mem::{SparseMemory, PAGE_BYTES};
use rse_support::prelude::*;
use rse_sys::checkpoint::{Checkpoint, CheckpointConfig, CheckpointStore};

/// Builds a memory image from `(addr, val)` word writes (addresses are
/// word-aligned and confined to a few pages so runs stay fast).
fn mem_from(writes: &[(u32, u32)]) -> SparseMemory {
    let mut m = SparseMemory::new();
    for &(addr, val) in writes {
        m.write_u32(addr & 0x000F_FFFC, val);
    }
    m
}

proptest! {
    /// capture → arbitrary mutation (including writes to brand-new
    /// pages) → restore → recapture is bit-identical: equal snapshots
    /// and equal digests.
    #[test]
    fn snapshot_restore_round_trips_bit_identically(
        init in rse_support::collection::vec((any::<u32>(), any::<u32>()), 1..40),
        mutations in rse_support::collection::vec((any::<u32>(), any::<u32>()), 0..40),
        regs in rse_support::collection::vec(any::<u32>(), 32..33),
        pc in any::<u32>(),
    ) {
        let mut mem = mem_from(&init);
        let mut reg_file = [0u32; 32];
        reg_file.copy_from_slice(&regs);
        let snap = ArchSnapshot::capture(&reg_file, pc, &mem);
        let digest = snap.digest();

        // Corrupt arbitrarily: overwrite existing words and map fresh
        // pages the snapshot has never seen.
        for &(addr, val) in &mutations {
            mem.write_u32(addr & 0x001F_FFFC, val);
        }

        snap.restore_memory(&mut mem);
        let back = ArchSnapshot::capture(&reg_file, pc, &mem);
        prop_assert_eq!(back.digest(), digest, "digest drifted across restore");

        // Every snapshot page survives byte-for-byte.
        for (id, bytes) in &snap.pages {
            let restored = back.pages.iter().find(|(p, _)| p == id);
            prop_assert!(restored.is_some(), "page {} vanished", id);
            prop_assert_eq!(&restored.unwrap().1, bytes, "page {} bytes differ", id);
        }
        // Pages mapped by the mutation but absent from the snapshot are
        // zeroed, so they contribute nothing to the architectural state.
        for (id, bytes) in &back.pages {
            if snap.pages.iter().all(|(p, _)| p != id) {
                prop_assert!(bytes.iter().all(|&b| b == 0),
                    "post-snapshot page {} not zeroed", id);
            }
        }
    }

    /// The digest is order-insensitive in the right way: two captures of
    /// the same logical state (different write orders) always agree.
    #[test]
    fn digest_ignores_write_order(
        writes in rse_support::collection::vec((any::<u32>(), any::<u32>()), 1..30),
    ) {
        let mem_fwd = mem_from(&writes);
        let rev: Vec<(u32, u32)> = writes.iter().rev().copied().collect();
        // Re-apply forward afterwards so duplicate addresses resolve to
        // the same final value in both images.
        let mut mem_rev = mem_from(&rev);
        for &(addr, val) in &writes {
            mem_rev.write_u32(addr & 0x000F_FFFC, val);
        }
        let regs = [0u32; 32];
        prop_assert_eq!(
            ArchSnapshot::capture(&regs, 0, &mem_fwd).digest(),
            ArchSnapshot::capture(&regs, 0, &mem_rev).digest()
        );
    }

    /// OS-level pre-image round trip: store a checkpoint of a page,
    /// corrupt the page arbitrarily, restore from `earliest_for`, and
    /// the page is bit-identical to the pre-image. Later checkpoints of
    /// the same page never displace the earliest one (§4.2.2 semantics:
    /// recovery rolls back to the *oldest* consistent state).
    #[test]
    fn checkpoint_store_restores_earliest_pre_image(
        page in 0u32..64,
        init in rse_support::collection::vec((0u32..(PAGE_BYTES as u32 / 4), any::<u32>()), 1..32),
        corrupt in rse_support::collection::vec((0u32..(PAGE_BYTES as u32 / 4), any::<u32>()), 1..32),
        later in rse_support::collection::vec((0u32..(PAGE_BYTES as u32 / 4), any::<u32>()), 0..8),
    ) {
        let base = page * PAGE_BYTES as u32;
        let mut mem = SparseMemory::new();
        for &(word, val) in &init {
            mem.write_u32(base + word * 4, val);
        }
        let pre_image = mem.snapshot_page(base);

        let mut store = CheckpointStore::new(CheckpointConfig::default());
        store.store(Checkpoint { page, data: pre_image.clone(), saved_at: 1, writer: 0 });

        // Corrupt, then store a *later* (already-corrupt) checkpoint.
        for &(word, val) in &corrupt {
            mem.write_u32(base + word * 4, val);
        }
        if !later.is_empty() {
            let mut stale = mem.snapshot_page(base);
            for &(word, val) in &later {
                let i = (word * 4) as usize;
                stale[i..i + 4].copy_from_slice(&val.to_le_bytes());
            }
            store.store(Checkpoint { page, data: stale, saved_at: 2, writer: 1 });
        }

        let cp = store.earliest_for(page).expect("checkpoint survives");
        prop_assert_eq!(cp.saved_at, 1, "earliest checkpoint displaced");
        mem.restore_page(base, &cp.data);
        prop_assert_eq!(mem.snapshot_page(base), pre_image, "pre-image not restored");
    }
}
