//! The maze-routing kernel (the *vpr Route* phase of Table 4).
//!
//! A breadth-first wavefront router on a `width × width` grid with
//! obstacles: for each two-terminal net, BFS computes shortest-path
//! distances from the source until the sink is reached, then the path is
//! backtraced and its cells marked used, constraining later nets — the
//! classic maze-router structure of VPR's routing phase.

use crate::DataRng;

/// Routing workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteParams {
    /// Grid side length.
    pub width: u32,
    /// Number of nets to route, in order.
    pub nets: usize,
    /// Percentage of obstacle cells.
    pub block_pct: u32,
    /// Data-generation seed.
    pub seed: u64,
}

impl Default for RouteParams {
    fn default() -> RouteParams {
        RouteParams {
            width: 24,
            nets: 12,
            block_pct: 15,
            seed: 0x707E,
        }
    }
}

impl RouteParams {
    /// The Table 4 configuration: grid+distance+queue arrays ≈ 300 KB,
    /// streamed per net, exceeding the L2 D-cache.
    pub fn table4() -> RouteParams {
        RouteParams {
            width: 160,
            nets: 20,
            block_pct: 12,
            seed: 0x707E,
        }
    }
}

/// Generated routing problem.
#[derive(Debug, Clone)]
pub struct RouteData {
    /// Grid cells: 0 free, 1 blocked.
    pub grid: Vec<u32>,
    /// Source cell per net.
    pub srcs: Vec<u32>,
    /// Sink cell per net.
    pub snks: Vec<u32>,
}

/// Generates the grid and net terminals (terminals are free cells,
/// source ≠ sink).
pub fn generate(p: &RouteParams) -> RouteData {
    let mut rng = DataRng(p.seed);
    let cells = (p.width * p.width) as usize;
    let mut grid: Vec<u32> = (0..cells)
        .map(|_| u32::from(rng.below(100) < p.block_pct))
        .collect();
    let mut srcs = Vec::with_capacity(p.nets);
    let mut snks = Vec::with_capacity(p.nets);
    for _ in 0..p.nets {
        let s = rng.below(cells as u32);
        let mut t = rng.below(cells as u32);
        while t == s {
            t = rng.below(cells as u32);
        }
        grid[s as usize] = 0;
        grid[t as usize] = 0;
        srcs.push(s);
        snks.push(t);
    }
    RouteData { grid, srcs, snks }
}

/// Host-side reference; returns `(nets_routed, total_wirelength)` —
/// exactly what the guest prints.
pub fn reference(p: &RouteParams) -> (u32, u32) {
    let mut d = generate(p);
    let w = p.width as usize;
    let cells = w * w;
    let mut routed = 0u32;
    let mut total_wl = 0u32;
    for n in 0..p.nets {
        let (src, sink) = (d.srcs[n] as usize, d.snks[n] as usize);
        if d.grid[src] != 0 || d.grid[sink] != 0 {
            continue;
        }
        let mut dist = vec![-1i32; cells];
        let mut queue = Vec::with_capacity(cells);
        dist[src] = 0;
        queue.push(src);
        let mut head = 0;
        while head < queue.len() {
            let c = queue[head];
            head += 1;
            if c == sink {
                break;
            }
            let dd = dist[c];
            let x = c % w;
            // Neighbor order: left, right, up, down (matches the guest).
            let mut cand = [None; 4];
            if x != 0 {
                cand[0] = Some(c - 1);
            }
            if x != w - 1 {
                cand[1] = Some(c + 1);
            }
            if c >= w {
                cand[2] = Some(c - w);
            }
            if c < w * (w - 1) {
                cand[3] = Some(c + w);
            }
            for nb in cand.into_iter().flatten() {
                if d.grid[nb] == 0 && dist[nb] == -1 {
                    dist[nb] = dd + 1;
                    queue.push(nb);
                }
            }
        }
        if dist[sink] == -1 {
            continue;
        }
        routed += 1;
        total_wl += dist[sink] as u32;
        // Backtrace, marking the path used (sink inclusive, source not).
        let mut c = sink;
        while c != src {
            d.grid[c] = 2;
            let want = dist[c] - 1;
            let x = c % w;
            let mut cand = [None; 4];
            if x != 0 {
                cand[0] = Some(c - 1);
            }
            if x != w - 1 {
                cand[1] = Some(c + 1);
            }
            if c >= w {
                cand[2] = Some(c - w);
            }
            if c < w * (w - 1) {
                cand[3] = Some(c + w);
            }
            let Some(next) = cand.into_iter().flatten().find(|&nb| dist[nb] == want) else {
                break;
            };
            c = next;
        }
    }
    (routed, total_wl)
}

fn words(name: &str, values: &[u32]) -> String {
    let mut out = format!("{name}:");
    for (i, v) in values.iter().enumerate() {
        if i % 8 == 0 {
            out.push_str("\n        .word ");
        } else {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
    out.push('\n');
    out
}

/// Generates the guest assembly. The program prints the number of routed
/// nets and the total wirelength (two `PRINT_INT`s).
pub fn source(p: &RouteParams) -> String {
    let d = generate(p);
    let w = p.width;
    let cells = w * w;
    let data = [
        words("grid", &d.grid),
        words("srcs", &d.srcs),
        words("snks", &d.snks),
    ]
    .concat();
    format!(
        r#"
# BFS maze router: {w}x{w} grid, {nets} nets
main:   li   s5, 0              # routed nets
        li   s6, 0              # total wirelength
        li   s0, 0              # net index
netloop:
        sll  t0, s0, 2
        la   t1, srcs
        add  t1, t1, t0
        lw   s3, 0(t1)          # src
        la   t1, snks
        add  t1, t1, t0
        lw   s4, 0(t1)          # sink
        # terminals must be free
        la   t1, grid
        sll  t0, s3, 2
        add  t0, t1, t0
        lw   t0, 0(t0)
        bne  t0, r0, netnext
        sll  t0, s4, 2
        add  t0, t1, t0
        lw   t0, 0(t0)
        bne  t0, r0, netnext
        # dist[*] = -1
        la   t0, dist
        li   t1, {cells}
        li   t2, -1
di:     sw   t2, 0(t0)
        addi t0, t0, 4
        addi t1, t1, -1
        bne  t1, r0, di
        # dist[src] = 0; queue = [src]
        la   t0, dist
        sll  t1, s3, 2
        add  t1, t0, t1
        sw   r0, 0(t1)
        la   t0, queue
        sw   s3, 0(t0)
        li   s1, 0              # qhead
        li   s2, 1              # qtail
bfs:    beq  s1, s2, bfsdone
        la   t0, queue
        sll  t1, s1, 2
        add  t1, t0, t1
        lw   t8, 0(t1)          # c
        addi s1, s1, 1
        beq  t8, s4, bfsdone
        la   t0, dist
        sll  t1, t8, 2
        add  t1, t0, t1
        lw   t9, 0(t1)          # d
        li   t0, {w}
        rem  t2, t8, t0         # x
        beq  t2, r0, noleft
        addi r4, t8, -1
        jal  try
noleft: li   t0, {w_1}
        beq  t2, t0, noright
        addi r4, t8, 1
        jal  try
noright:li   t0, {w}
        blt  t8, t0, noup
        li   t0, {w}
        sub  r4, t8, t0
        jal  try
noup:   li   t0, {wm}
        bge  t8, t0, nodown
        li   t0, {w}
        add  r4, t8, t0
        jal  try
nodown: b    bfs

try:    # expand neighbor a0 if free and unvisited
        la   t3, grid
        sll  t4, r4, 2
        add  t5, t3, t4
        lw   t5, 0(t5)
        bne  t5, r0, tryout
        la   t3, dist
        add  t5, t3, t4
        lw   t6, 0(t5)
        li   t7, -1
        bne  t6, t7, tryout
        addi t6, t9, 1
        sw   t6, 0(t5)
        la   t3, queue
        sll  t4, s2, 2
        add  t4, t3, t4
        sw   r4, 0(t4)
        addi s2, s2, 1
tryout: jr   ra

bfsdone:
        la   t0, dist
        sll  t1, s4, 2
        add  t1, t0, t1
        lw   t2, 0(t1)
        li   t3, -1
        beq  t2, t3, netnext
        add  s6, s6, t2         # wirelength
        addi s5, s5, 1          # routed
        # backtrace from sink, marking cells used
        move t8, s4
bt:     beq  t8, s3, netnext
        la   t0, grid
        sll  t1, t8, 2
        add  t1, t0, t1
        li   t2, 2
        sw   t2, 0(t1)
        la   t0, dist
        sll  t1, t8, 2
        add  t1, t0, t1
        lw   t9, 0(t1)
        addi t9, t9, -1         # want dist == d-1
        li   r3, 0              # found flag
        li   t0, {w}
        rem  t2, t8, t0
        beq  t2, r0, b1
        addi r4, t8, -1
        jal  btry
        bne  r3, r0, bt
b1:     li   t0, {w_1}
        beq  t2, t0, b2
        addi r4, t8, 1
        jal  btry
        bne  r3, r0, bt
b2:     li   t0, {w}
        blt  t8, t0, b3
        li   t0, {w}
        sub  r4, t8, t0
        jal  btry
        bne  r3, r0, bt
b3:     li   t0, {wm}
        bge  t8, t0, b4
        li   t0, {w}
        add  r4, t8, t0
        jal  btry
        bne  r3, r0, bt
b4:     b    netnext            # no predecessor found: give up

btry:   # if dist[a0] == t9 then step there (t8 = a0, flag = 1)
        la   t4, dist
        sll  t5, r4, 2
        add  t5, t4, t5
        lw   t5, 0(t5)
        bne  t5, t9, btryout
        move t8, r4
        addi r3, r0, 1
btryout:jr   ra

netnext:addi s0, s0, 1
        li   t0, {nets}
        bne  s0, t0, netloop
        move r4, s5
        li   r2, 2              # print routed nets
        syscall
        move r4, s6
        li   r2, 2              # print total wirelength
        syscall
        halt

        .data
        .align 4
{data}
dist:   .space {dist_bytes}
queue:  .space {dist_bytes}
"#,
        nets = p.nets,
        w_1 = w - 1,
        wm = w * (w - 1),
        dist_bytes = cells * 4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_core::{Engine, RseConfig};
    use rse_isa::asm::assemble;
    use rse_mem::{MemConfig, MemorySystem};
    use rse_pipeline::{Pipeline, PipelineConfig};
    use rse_sys::{Os, OsConfig, OsExit};

    fn run(p: &RouteParams) -> Vec<i32> {
        let image = assemble(&source(p)).expect("route assembles");
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::baseline()),
        );
        rse_sys::loader::load_process(&mut cpu, &image);
        let mut engine = Engine::new(RseConfig::default());
        let mut os = Os::new(OsConfig::default());
        let exit = os.run(&mut cpu, &mut engine, 500_000_000);
        assert_eq!(exit, OsExit::Exited { code: 0 });
        os.output
    }

    #[test]
    fn small_route_matches_host_reference() {
        let p = RouteParams {
            width: 8,
            nets: 4,
            block_pct: 10,
            seed: 3,
        };
        let (routed, wl) = reference(&p);
        assert_eq!(run(&p), vec![routed as i32, wl as i32]);
        assert!(routed > 0);
    }

    #[test]
    fn default_route_matches_host_reference() {
        let p = RouteParams::default();
        let (routed, wl) = reference(&p);
        assert_eq!(run(&p), vec![routed as i32, wl as i32]);
        assert!(routed >= p.nets as u32 / 2, "most nets should route");
        assert!(wl > 0);
    }

    #[test]
    fn congestion_blocks_later_nets() {
        // With many nets on a small grid, earlier paths block later nets.
        let p = RouteParams {
            width: 8,
            nets: 24,
            block_pct: 10,
            seed: 11,
        };
        let (routed, _) = reference(&p);
        assert!(routed < 24, "contention should defeat some nets");
    }
}
