//! The multithreaded network server of the Figure 9 DDT experiment.
//!
//! §4.2: "in the case of a multithreaded Apache web server, threads
//! independently serve web requests, and dependency occurs only when two
//! threads read from and write to the same memory page." §5.4: "We vary
//! the number of threads and measure the time for the server to handle
//! one hundred requests."
//!
//! Structure: `main` spawns a pool of worker threads and waits. Each
//! worker loops: receive a request (blocking on simulated network
//! latency, which is where thread-level I/O parallelism comes from),
//! compute on a *private* per-thread buffer, and every
//! `shared_every`-th request append to a **shared** log slot and update
//! shared statistics under a lock — the cross-thread page writes that
//! drive the DDT's dependency logging and SavePage checkpoints.

/// Server workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerParams {
    /// Worker threads in the pool (Figure 9 sweeps 1…10).
    pub threads: u32,
    /// LCG iterations of per-request compute.
    pub work: u32,
    /// Every n-th request touches the shared log/stats pages.
    pub shared_every: u32,
    /// Shared log slots (spread over `slots/8` pages).
    pub slots: u32,
}

impl Default for ServerParams {
    fn default() -> ServerParams {
        ServerParams {
            threads: 4,
            work: 1200,
            shared_every: 8,
            slots: 32,
        }
    }
}

/// Maximum worker threads the generated image supports (private-buffer
/// sizing).
pub const MAX_THREADS: u32 = 16;

/// Generates the guest assembly for the server.
pub fn source(p: &ServerParams) -> String {
    assert!(
        p.threads >= 1 && p.threads <= MAX_THREADS,
        "1..=16 threads supported"
    );
    let slot_stride = 512u32; // 8 slots per 4 KB page
    format!(
        r#"
# multithreaded server: {threads} workers, work={work}, share 1/{shared_every}
main:   li   s0, {threads}
        li   s1, 0
spawn:  li   r2, 16             # THREAD_SPAWN(worker, tid)
        la   r4, worker
        move r5, s1
        syscall
        addi s1, s1, 1
        bne  s1, s0, spawn
wait:   la   t0, done_count
        lw   t1, 0(t0)
        li   t2, {threads}
        beq  t1, t2, fin
        li   r2, 18             # YIELD
        syscall
        b    wait
fin:    la   t0, stats
        lw   r4, 0(t0)
        li   r2, 2              # print processed count
        syscall
        halt

worker: move s7, r4             # worker index (private buffer selector)
        li   s6, 0              # local processed counter
        li   s5, 0              # local shared-batch counter
        # private buffer base = privbuf + tid * 4096
        li   t0, 4096
        mul  t0, s7, t0
        la   t1, privbuf
        add  s4, t1, t0
wloop:  li   r2, 32             # NET_RECV
        syscall
        li   t0, -1
        beq  r2, t0, wdone
        move s0, r2             # request id
        # per-request compute: LCG chain over the private buffer
        la   t0, config
        lw   t1, 0(t0)          # work amount (shared read-only page)
        move t2, s0
        li   t3, 0
comp:   li   t4, 1664525
        mul  t2, t2, t4
        li   t4, 1013904223
        add  t2, t2, t4
        add  t3, t3, t2
        # store into the private buffer (rotating 64 words)
        andi t5, t3, 0xFC
        add  t6, s4, t5
        sw   t2, 0(t6)
        addi t1, t1, -1
        bne  t1, r0, comp
        addi s6, s6, 1
        addi s5, s5, 1
        # every shared_every-th request: publish to the shared log
        li   t0, {shared_every}
        bne  s5, t0, send
        li   s5, 0
        li   r2, 48             # LOCK 1
        li   r4, 1
        syscall
        # shared log slot = req % slots; statistics are batched locally
        # and flushed at thread exit (one shared write per publish).
        li   t0, {slots}
        rem  t1, s0, t0
        li   t0, {slot_stride}
        mul  t1, t1, t0
        la   t2, logbuf
        add  t2, t2, t1
        sw   t3, 0(t2)          # write digest into the shared slot
        sw   s0, 4(t2)
        li   r2, 49             # UNLOCK 1
        li   r4, 1
        syscall
send:   li   r2, 33             # NET_SEND
        move r4, s0
        syscall
        b    wloop
wdone:  # flush the locally batched statistics and retire
        li   r2, 48
        li   r4, 1
        syscall
        la   t2, stats
        lw   t4, 0(t2)
        add  t4, t4, s6
        sw   t4, 0(t2)
        li   r2, 49
        li   r4, 1
        syscall
        li   r2, 48             # LOCK 2 around done_count
        li   r4, 2
        syscall
        la   t0, done_count
        lw   t1, 0(t0)
        addi t1, t1, 1
        sw   t1, 0(t0)
        li   r2, 49
        li   r4, 2
        syscall
        li   r2, 17             # THREAD_EXIT
        syscall

        .data
        .align 4
config: .word {work}
        .space 4092             # keep config on its own (read-only) page
stats:  .word 0
done_count: .word 0
        .space 4088             # stats page
logbuf: .space {log_bytes}
privbuf: .space {priv_bytes}
"#,
        threads = p.threads,
        work = p.work,
        shared_every = p.shared_every,
        slots = p.slots,
        log_bytes = p.slots * slot_stride,
        priv_bytes = MAX_THREADS * 4096,
    )
}

/// Generates a single-threaded request-serving loop distilled from the
/// server worker: the same per-request LCG compute kernel over a private
/// buffer, with one marker syscall (YIELD, harmless under the OS) per
/// completed request and a final processed-count print.
///
/// This is the *witness guest* of the fleet chaos campaigns: it runs on
/// the tiered driver's functional tier with no OS underneath (every
/// syscall surfaces as an `ExecEvent::Syscall` the host resumes), so the
/// clock delta between consecutive syscalls is the measured
/// guest-progress quantum one request costs — the unit the 1k-node
/// traffic model charges per served request.
pub fn request_loop_source(p: &ServerParams, max_requests: u32) -> String {
    assert!(max_requests >= 1, "at least one request");
    format!(
        r#"
# request loop: {max_requests} requests, work={work}
main:   li   s0, {max_requests}
        li   s1, 0              # requests served
        la   s4, buf
rloop:  la   t0, config
        lw   t1, 0(t0)          # work amount
        move t2, s1             # request id seeds the LCG
        li   t3, 0
comp:   li   t4, 1664525
        mul  t2, t2, t4
        li   t4, 1013904223
        add  t2, t2, t4
        add  t3, t3, t2
        andi t5, t3, 0xFC
        add  t6, s4, t5
        sw   t2, 0(t6)
        addi t1, t1, -1
        bne  t1, r0, comp
        addi s1, s1, 1
        li   r2, 18             # YIELD: the request-boundary safe point
        syscall
        bne  s1, s0, rloop
        move r4, s1
        li   r2, 2              # print processed count
        syscall
        halt

        .data
        .align 4
config: .word {work}
        .space 4092             # keep config on its own page
buf:    .space 4096
"#,
        max_requests = max_requests,
        work = p.work,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_core::{Engine, RseConfig};
    use rse_isa::asm::assemble;
    use rse_isa::ModuleId;
    use rse_mem::{MemConfig, MemorySystem};
    use rse_modules::ddt::{Ddt, DdtConfig};
    use rse_pipeline::{Pipeline, PipelineConfig};
    use rse_sys::{Os, OsConfig, OsExit};

    fn run(p: &ServerParams, requests: u64, with_ddt: bool) -> (Pipeline, Engine, Os) {
        let image = assemble(&source(p)).expect("server assembles");
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::with_framework()),
        );
        rse_sys::loader::load_process(&mut cpu, &image);
        let mut engine = Engine::new(RseConfig::default());
        if with_ddt {
            let mut ddt = Ddt::new(DdtConfig::default());
            ddt.set_current_thread(0);
            engine.install(Box::new(ddt));
            engine.enable(ModuleId::DDT);
        }
        let mut os = Os::new(OsConfig {
            num_requests: requests,
            ..OsConfig::default()
        });
        let exit = os.run(&mut cpu, &mut engine, 1_000_000_000);
        assert_eq!(exit, OsExit::Exited { code: 0 }, "server did not finish");
        (cpu, engine, os)
    }

    #[test]
    fn serves_all_requests() {
        let p = ServerParams {
            threads: 3,
            ..ServerParams::default()
        };
        let (_, _, os) = run(&p, 20, false);
        assert_eq!(os.output, vec![20]);
        assert_eq!(os.stats().requests_delivered, 20);
        assert_eq!(os.stats().responses_sent, 20);
        assert_eq!(os.stats().threads_spawned, 3);
    }

    #[test]
    fn more_threads_overlap_io() {
        let p1 = ServerParams {
            threads: 1,
            ..ServerParams::default()
        };
        let p4 = ServerParams {
            threads: 4,
            ..ServerParams::default()
        };
        let (c1, _, _) = run(&p1, 24, false);
        let (c4, _, _) = run(&p4, 24, false);
        assert!(
            c4.stats().cycles < c1.stats().cycles,
            "4 threads ({}) should beat 1 thread ({})",
            c4.stats().cycles,
            c1.stats().cycles
        );
    }

    #[test]
    fn ddt_tracks_sharing_and_saves_pages() {
        let p = ServerParams {
            threads: 4,
            ..ServerParams::default()
        };
        let (_, mut engine, os) = run(&p, 32, true);
        let ddt: &mut Ddt = engine.module_mut(ModuleId::DDT).unwrap();
        assert!(
            ddt.stats().pages_saved > 0,
            "cross-thread writes must checkpoint"
        );
        assert!(ddt.stats().dependencies_logged > 0);
        assert_eq!(os.stats().pages_checkpointed, ddt.stats().pages_saved);
        assert!(!os.checkpoints.is_empty());
    }

    #[test]
    fn request_loop_serves_and_prints_the_count() {
        let p = ServerParams {
            work: 60,
            ..ServerParams::default()
        };
        let image = assemble(&request_loop_source(&p, 7)).expect("request loop assembles");
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::with_framework()),
        );
        rse_sys::loader::load_process(&mut cpu, &image);
        let mut engine = Engine::new(RseConfig::default());
        let mut os = Os::new(OsConfig::default());
        let exit = os.run(&mut cpu, &mut engine, 1_000_000_000);
        assert_eq!(exit, OsExit::Exited { code: 0 });
        assert_eq!(os.output, vec![7]);
    }

    #[test]
    fn request_loop_quanta_are_uniform_per_request() {
        let p = ServerParams {
            work: 60,
            ..ServerParams::default()
        };
        let image = assemble(&request_loop_source(&p, 5)).expect("request loop assembles");
        let q = rse_sys::tiered::syscall_quanta(
            &image,
            PipelineConfig::default(),
            MemConfig::with_framework(),
            64,
        );
        // One YIELD per request plus the final print.
        assert_eq!(q.len(), 6);
        // Requests 1..n are byte-identical spans; request 0 adds the
        // prologue. Heavier work must cost more progress.
        assert!(q[1] > 0);
        assert_eq!(q[1..5], [q[1], q[1], q[1], q[1]]);
        assert!(q[0] >= q[1]);
        let heavy = ServerParams { work: 120, ..p };
        let heavy_image = assemble(&request_loop_source(&heavy, 5)).unwrap();
        let hq = rse_sys::tiered::syscall_quanta(
            &heavy_image,
            PipelineConfig::default(),
            MemConfig::with_framework(),
            64,
        );
        assert!(hq[1] > q[1], "work=120 ({}) vs work=60 ({})", hq[1], q[1]);
    }

    #[test]
    fn single_thread_never_saves_pages() {
        let p = ServerParams {
            threads: 1,
            ..ServerParams::default()
        };
        let (_, engine, _) = run(&p, 16, true);
        let ddt: &Ddt = engine.module_ref(ModuleId::DDT).unwrap();
        assert_eq!(ddt.stats().pages_saved, 0, "one writer owns everything");
    }
}
