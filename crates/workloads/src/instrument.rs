//! Static binary instrumentation for the cache-overhead experiment
//! (§5.1 of the paper).
//!
//! Runtime CHECK embedding (the pipeline's fetch-time injection) does not
//! perturb the I-cache, so the paper measures the cache effect of CHECK
//! instructions separately by rewriting the code segment, placing a NOP
//! (standing in for a CHECK) before every checked instruction and
//! running the *baseline* simulator. We reproduce both variants at the
//! assembly level, where the assembler re-resolves all branch targets.

/// What to insert before each control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticInsert {
    /// A real CHECK instruction (`chk icm, blk, 2, 0`).
    Chk,
    /// A NOP (the paper's measurement stand-in; identical fetch
    /// footprint, no module interaction).
    Nop,
}

const CONTROL_FLOW_MNEMONICS: &[&str] = &[
    "beq", "bne", "blt", "bge", "ble", "bgt", "beqz", "bnez", "b", "j", "jal", "jr", "jalr", "ret",
];

fn is_control_flow_line(line: &str) -> bool {
    // Strip comment and any leading labels.
    let mut body = line.split(['#', ';']).next().unwrap_or("").trim();
    while let Some(colon) = body.find(':') {
        let (head, tail) = body.split_at(colon);
        if head.trim().contains(char::is_whitespace) {
            break;
        }
        body = tail[1..].trim_start();
    }
    let Some(mnemonic) = body.split_whitespace().next() else {
        return false;
    };
    CONTROL_FLOW_MNEMONICS.contains(&mnemonic.to_ascii_lowercase().as_str())
}

/// Inserts the chosen instruction before every control-flow instruction
/// in `source`. Labels remain attached to the inserted instruction so
/// that branches *to* a checked instruction reach its CHECK first,
/// exactly as a static binary rewriter would arrange.
pub fn instrument_control_flow(source: &str, what: StaticInsert) -> String {
    let inserted = match what {
        StaticInsert::Chk => "chk icm, blk, 2, 0",
        StaticInsert::Nop => "nop",
    };
    let mut out = String::with_capacity(source.len() * 2);
    for line in source.lines() {
        if is_control_flow_line(line) {
            // Move any leading label onto the inserted instruction.
            let mut body = line.split(['#', ';']).next().unwrap_or("").trim_start();
            let mut labels = String::new();
            while let Some(colon) = body.find(':') {
                let (head, tail) = body.split_at(colon);
                if head.trim().contains(char::is_whitespace) {
                    break;
                }
                labels.push_str(head.trim());
                labels.push_str(": ");
                body = tail[1..].trim_start();
            }
            out.push_str(&format!("{labels}{inserted}\n"));
            out.push_str(&format!("        {body}\n"));
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Counts control-flow instruction lines (for sanity checks and
/// experiment reporting).
pub fn count_control_flow(source: &str) -> usize {
    source.lines().filter(|l| is_control_flow_line(l)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_isa::asm::assemble;

    const SRC: &str = r#"
        main:   li   r8, 0
                li   r9, 10
        loop:   addi r8, r8, 1
                bne  r8, r9, loop
                halt
    "#;

    #[test]
    fn inserts_before_branches_only() {
        let out = instrument_control_flow(SRC, StaticInsert::Nop);
        assert_eq!(count_control_flow(SRC), 1);
        let base = assemble(SRC).unwrap();
        let inst = assemble(&out).unwrap();
        assert_eq!(inst.text.len(), base.text.len() + 1);
    }

    #[test]
    fn branch_targets_still_resolve_and_program_is_equivalent() {
        use rse_mem::{MemConfig, MemorySystem};
        use rse_pipeline::{NullCoProcessor, Pipeline, PipelineConfig, StepEvent};
        for what in [StaticInsert::Nop, StaticInsert::Chk] {
            let out = instrument_control_flow(SRC, what);
            let image = assemble(&out).unwrap();
            let mut cpu = Pipeline::new(
                PipelineConfig::default(),
                MemorySystem::new(MemConfig::baseline()),
            );
            cpu.load_image(&image);
            // Without an engine, CHKs behave as NOPs (gate passes).
            assert_eq!(cpu.run(&mut NullCoProcessor, 1_000_000), StepEvent::Halted);
            assert_eq!(cpu.regs()[8], 10);
        }
    }

    #[test]
    fn labels_move_to_the_inserted_instruction() {
        let src = "x: beq r0, r0, x\n";
        let out = instrument_control_flow(src, StaticInsert::Nop);
        let image = assemble(&out).unwrap();
        // The label now addresses the NOP, one word before the beq.
        assert_eq!(image.symbol("x").unwrap(), image.text_base);
        assert_eq!(image.text.len(), 2);
    }

    #[test]
    fn comments_and_data_untouched() {
        let src = "# b not-a-branch\nmain: halt\n.data\nw: .word 5 # jr inside comment\n";
        let out = instrument_control_flow(src, StaticInsert::Nop);
        assert_eq!(count_control_flow(&out), 0);
        assert!(assemble(&out).is_ok());
    }
}
