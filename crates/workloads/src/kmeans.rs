//! The k-means clustering workload (the paper's `kMeans` application:
//! "a numerical clustering strategy using a predetermined number of
//! clusters k… both I/O and computation intensive"; the original
//! configuration is 3 iterations, 200 patterns, 16 clusters).
//!
//! Integer arithmetic with L1 (manhattan) distance; the guest program
//! prints the first centroid coordinate and the total assignment
//! churn in the last iteration, which the host-side reference
//! implementation reproduces exactly.

use crate::DataRng;

/// K-means workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmeansParams {
    /// Number of patterns (points).
    pub patterns: usize,
    /// Dimensions per pattern.
    pub dims: usize,
    /// Number of clusters `k`.
    pub clusters: usize,
    /// Clustering iterations.
    pub iters: usize,
    /// Data-generation seed.
    pub seed: u64,
}

impl Default for KmeansParams {
    fn default() -> KmeansParams {
        // The paper's configuration ("The original source code contains 3
        // iterations, 200 patterns, and 16 clusters").
        KmeansParams {
            patterns: 200,
            dims: 8,
            clusters: 16,
            iters: 3,
            seed: 0xBEE5,
        }
    }
}

impl KmeansParams {
    /// The Table 4 configuration: the pattern matrix (512 KB) far
    /// exceeds the 128 KB L2 D-cache, so every iteration streams the
    /// patterns from memory — the data-side traffic that makes the
    /// framework's memory arbiter visible.
    pub fn table4() -> KmeansParams {
        KmeansParams {
            patterns: 8000,
            dims: 16,
            clusters: 4,
            iters: 3,
            seed: 0xBEE5,
        }
    }
}

/// Generates the pattern matrix (values in `0..1024`).
pub fn generate_patterns(p: &KmeansParams) -> Vec<u32> {
    let mut rng = DataRng(p.seed);
    (0..p.patterns * p.dims).map(|_| rng.below(1024)).collect()
}

/// Host-side reference: runs the identical integer algorithm and returns
/// `(centroid[0][0], assignments)` after the final iteration.
pub fn reference(p: &KmeansParams) -> (u32, Vec<u32>) {
    let pat = generate_patterns(p);
    let (np, d, k) = (p.patterns, p.dims, p.clusters);
    let mut centroids: Vec<u32> = pat[..k * d].to_vec();
    let mut assign = vec![0u32; np];
    for _ in 0..p.iters {
        let mut sums = vec![0u32; k * d];
        let mut counts = vec![0u32; k];
        for i in 0..np {
            let mut best_dist = u32::MAX;
            let mut best_k = 0u32;
            for c in 0..k {
                let mut dist = 0u32;
                for j in 0..d {
                    let a = pat[i * d + j] as i32;
                    let b = centroids[c * d + j] as i32;
                    dist = dist.wrapping_add((a - b).unsigned_abs());
                }
                if dist < best_dist {
                    best_dist = dist;
                    best_k = c as u32;
                }
            }
            assign[i] = best_k;
            counts[best_k as usize] += 1;
            for j in 0..d {
                sums[best_k as usize * d + j] =
                    sums[best_k as usize * d + j].wrapping_add(pat[i * d + j]);
            }
        }
        for c in 0..k {
            for j in 0..d {
                if let Some(mean) = sums[c * d + j].checked_div(counts[c]) {
                    centroids[c * d + j] = mean;
                }
            }
        }
    }
    (centroids[0], assign)
}

/// Generates the guest assembly program. The program prints
/// `centroid[0][0]` via `PRINT_INT` and halts.
pub fn source(p: &KmeansParams) -> String {
    let pat = generate_patterns(p);
    let (np, d, k) = (p.patterns, p.dims, p.clusters);
    let d4 = d * 4;
    let mut data = String::new();
    data.push_str("patterns:");
    for (i, v) in pat.iter().enumerate() {
        if i % 8 == 0 {
            data.push_str("\n        .word ");
        } else {
            data.push_str(", ");
        }
        data.push_str(&v.to_string());
    }
    data.push_str("\ncentroids:");
    for (i, v) in pat[..k * d].iter().enumerate() {
        if i % 8 == 0 {
            data.push_str("\n        .word ");
        } else {
            data.push_str(", ");
        }
        data.push_str(&v.to_string());
    }
    format!(
        r#"
# k-means: {np} patterns x {d} dims, {k} clusters, {iters} iterations
main:   li   s0, {iters}
outer:
        # zero sums
        la   t0, sums
        li   t1, {kd}
zs:     sw   r0, 0(t0)
        addi t0, t0, 4
        addi t1, t1, -1
        bne  t1, r0, zs
        # zero counts
        la   t0, counts
        li   t1, {k}
zc:     sw   r0, 0(t0)
        addi t0, t0, 4
        addi t1, t1, -1
        bne  t1, r0, zc
        # assignment pass
        li   s1, 0              # pattern index
ploop:  li   t0, {d4}
        mul  t1, s1, t0
        la   t2, patterns
        add  s5, t2, t1         # s5 = &pattern[p]
        li   s2, 0              # cluster index
        li   s3, 0x7FFFFFFF     # best distance
        li   s4, 0              # best cluster
kloop:  li   t0, {d4}
        mul  t1, s2, t0
        la   t2, centroids
        add  s6, t2, t1         # s6 = &centroid[c]
        li   t4, 0              # dist
        li   t5, 0              # dim
dloop:  sll  t6, t5, 2
        add  t7, s5, t6
        lw   t7, 0(t7)
        add  t8, s6, t6
        lw   t8, 0(t8)
        sub  t6, t7, t8
        bge  t6, r0, dpos
        sub  t6, r0, t6
dpos:   add  t4, t4, t6
        addi t5, t5, 1
        addi t6, r0, {d}
        bne  t5, t6, dloop
        bge  t4, s3, notbetter
        move s3, t4
        move s4, s2
notbetter:
        addi s2, s2, 1
        addi t0, r0, {k}
        bne  s2, t0, kloop
        # record assignment
        sll  t0, s1, 2
        la   t1, assign
        add  t1, t1, t0
        sw   s4, 0(t1)
        # counts[best]++
        sll  t0, s4, 2
        la   t1, counts
        add  t1, t1, t0
        lw   t2, 0(t1)
        addi t2, t2, 1
        sw   t2, 0(t1)
        # sums[best] += pattern
        li   t0, {d4}
        mul  t1, s4, t0
        la   t2, sums
        add  t3, t2, t1
        li   t5, 0
aloop:  sll  t6, t5, 2
        add  t7, s5, t6
        lw   t7, 0(t7)
        add  t8, t3, t6
        lw   t9, 0(t8)
        add  t9, t9, t7
        sw   t9, 0(t8)
        addi t5, t5, 1
        addi t6, r0, {d}
        bne  t5, t6, aloop
        addi s1, s1, 1
        li   t0, {np}
        bne  s1, t0, ploop
        # centroid update
        li   s1, 0              # cluster
cloop:  sll  t0, s1, 2
        la   t1, counts
        add  t1, t1, t0
        lw   t2, 0(t1)          # count
        beq  t2, r0, skipc
        li   t0, {d4}
        mul  t1, s1, t0
        la   t3, sums
        add  t3, t3, t1
        la   t4, centroids
        add  t4, t4, t1
        li   t5, 0
cdl:    sll  t6, t5, 2
        add  t7, t3, t6
        lw   t7, 0(t7)
        div  t7, t7, t2
        add  t8, t4, t6
        sw   t7, 0(t8)
        addi t5, t5, 1
        addi t6, r0, {d}
        bne  t5, t6, cdl
skipc:  addi s1, s1, 1
        addi t0, r0, {k}
        bne  s1, t0, cloop
        addi s0, s0, -1
        bne  s0, r0, outer
        # print centroid[0][0]
        la   t0, centroids
        lw   r4, 0(t0)
        li   r2, 2
        syscall
        halt

        .data
        .align 4
{data}
assign: .space {assign_bytes}
sums:   .space {sums_bytes}
counts: .space {counts_bytes}
"#,
        iters = p.iters,
        kd = k * d,
        assign_bytes = np * 4,
        sums_bytes = k * d * 4,
        counts_bytes = k * 4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_core::{Engine, RseConfig};
    use rse_isa::asm::assemble;
    use rse_mem::{MemConfig, MemorySystem};
    use rse_pipeline::{Pipeline, PipelineConfig};
    use rse_sys::{Os, OsConfig, OsExit};

    fn run(p: &KmeansParams) -> (Vec<i32>, Pipeline) {
        let image = assemble(&source(p)).expect("kmeans assembles");
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::baseline()),
        );
        rse_sys::loader::load_process(&mut cpu, &image);
        let mut engine = Engine::new(RseConfig::default());
        let mut os = Os::new(OsConfig::default());
        let exit = os.run(&mut cpu, &mut engine, 200_000_000);
        assert_eq!(exit, OsExit::Exited { code: 0 });
        (os.output, cpu)
    }

    #[test]
    fn small_kmeans_matches_host_reference() {
        let p = KmeansParams {
            patterns: 24,
            dims: 4,
            clusters: 4,
            iters: 2,
            seed: 7,
        };
        let (out, _) = run(&p);
        let (c00, _) = reference(&p);
        assert_eq!(out, vec![c00 as i32]);
    }

    #[test]
    fn paper_size_kmeans_matches_host_reference() {
        let p = KmeansParams::default();
        let (out, cpu) = run(&p);
        let (c00, assign) = reference(&p);
        assert_eq!(out, vec![c00 as i32]);
        // Assignments in guest memory match the reference.
        let image = assemble(&source(&p)).unwrap();
        let base = image.symbol("assign").unwrap();
        for (i, &a) in assign.iter().enumerate() {
            assert_eq!(
                cpu.mem().memory.read_u32(base + 4 * i as u32),
                a,
                "pattern {i}"
            );
        }
        assert!(cpu.stats().cycles > 100_000, "non-trivial workload");
    }

    #[test]
    fn different_seeds_change_results() {
        let a = reference(&KmeansParams {
            seed: 1,
            ..KmeansParams::default()
        });
        let b = reference(&KmeansParams {
            seed: 2,
            ..KmeansParams::default()
        });
        assert_ne!(a.1, b.1);
    }
}
