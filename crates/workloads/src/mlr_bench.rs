//! The Table 5 microbenchmarks: GOT relocation + PLT rewriting, in a
//! pure-software (TRR) version and an RSE (MLR module) version.
//!
//! §5.3 of the paper: "The proposed approach embeds the dynamic linking
//! mechanism and the randomization algorithm inside a target application,
//! creating an application private dynamic loader… The program has two
//! versions, one for the pure software implementation and one for the RSE
//! module implementation."
//!
//! * The software version copies the old GOT to the new location and
//!   rewrites every PLT entry in loops — "the GOT-copying and
//!   PLT-rewriting involves a loop for each entry of the table".
//! * The RSE version allocates the new GOT in software and then issues
//!   the Figure 3 CHECK sequence; the MLR module does the copying and
//!   rewriting in hardware through the MAU.

/// Table 5 microbenchmark parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlrBenchParams {
    /// Number of GOT entries (the paper sweeps 128…1024).
    pub got_entries: u32,
}

impl MlrBenchParams {
    /// The paper's sweep points (Table 5 rows).
    pub fn paper_sweep() -> Vec<MlrBenchParams> {
        [128u32, 256, 384, 512, 640, 768, 896, 1024]
            .into_iter()
            .map(|got_entries| MlrBenchParams { got_entries })
            .collect()
    }
}

fn table_data(n: u32) -> String {
    // GOT entries point into a pretend shared-library region; each PLT
    // entry is (code word, pointer to its GOT slot).
    let mut data = String::new();
    data.push_str("got_old:");
    for i in 0..n {
        if i % 8 == 0 {
            data.push_str("\n        .word ");
        } else {
            data.push_str(", ");
        }
        data.push_str(&format!("{:#x}", 0x0F00_0000u32 + 16 * i));
    }
    data.push_str(&format!("\ngot_new: .space {}\n", n * 4));
    data.push_str("plt:\n");
    for i in 0..n {
        data.push_str(&format!("        .word 0x08000000, got_old+{}\n", 4 * i));
    }
    data
}

/// The pure-software TRR version: copy the GOT and rewrite the PLT with
/// explicit loops.
pub fn trr_source(p: &MlrBenchParams) -> String {
    let n = p.got_entries;
    format!(
        r#"
# TRR (software) GOT copy + PLT rewrite, {n} entries
main:   # copy GOT old -> new
        la   t0, got_old
        la   t1, got_new
        li   t2, {n}
cg:     lw   t3, 0(t0)
        sw   t3, 0(t1)
        addi t0, t0, 4
        addi t1, t1, 4
        addi t2, t2, -1
        bne  t2, r0, cg
        # rewrite PLT pointers: old GOT -> new GOT
        la   t0, plt
        li   t2, {n}
        la   t3, got_old
        la   t4, got_new
rp:     lw   t5, 4(t0)
        sub  t6, t5, t3
        add  t6, t4, t6
        sw   t6, 4(t0)
        addi t0, t0, 8
        addi t2, t2, -1
        bne  t2, r0, rp
        halt

        .data
        .align 4
{data}
"#,
        data = table_data(n),
    )
}

/// The RSE version: the Figure 3 CHECK-instruction sequence driving the
/// MLR module.
pub fn rse_source(p: &MlrBenchParams) -> String {
    let n = p.got_entries;
    format!(
        r#"
# RSE (MLR module) GOT copy + PLT rewrite, {n} entries
main:   la   r4, got_old        # a0 = old GOT
        li   r5, {got_bytes}    # a1 = size
        chk  mlr, blk, 4, 0     # MLR_GOT_OLD
        la   r4, got_new
        chk  mlr, blk, 5, 0     # MLR_GOT_NEW
        chk  mlr, blk, 6, 0     # MLR_COPY_GOT
        la   r4, plt
        li   r5, {plt_bytes}
        chk  mlr, blk, 7, 0     # MLR_PLT_INFO
        chk  mlr, blk, 8, 0     # MLR_WRITE_PLT
        halt

        .data
        .align 4
{data}
"#,
        got_bytes = n * 4,
        plt_bytes = n * 8,
        data = table_data(n),
    )
}

/// Host-side postcondition check: was the GOT copied and the PLT
/// redirected? Returns `(got_ok, plt_ok)` against the guest memory.
pub fn verify_relocation(
    mem: &rse_mem::MemorySystem,
    image: &rse_isa::Image,
    p: &MlrBenchParams,
) -> (bool, bool) {
    let got_old = image.symbol("got_old").expect("got_old symbol");
    let got_new = image.symbol("got_new").expect("got_new symbol");
    let plt = image.symbol("plt").expect("plt symbol");
    let n = p.got_entries;
    let got_ok = (0..n)
        .all(|i| mem.memory.read_u32(got_new + 4 * i) == mem.memory.read_u32(got_old + 4 * i));
    let plt_ok = (0..n).all(|i| mem.memory.read_u32(plt + 8 * i + 4) == got_new + 4 * i);
    (got_ok, plt_ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_core::{Engine, RseConfig};
    use rse_isa::asm::assemble;
    use rse_isa::ModuleId;
    use rse_mem::{MemConfig, MemorySystem};
    use rse_modules::mlr::{Mlr, MlrConfig};
    use rse_pipeline::{Pipeline, PipelineConfig, StepEvent};

    fn run_trr(p: &MlrBenchParams) -> (Pipeline, rse_isa::Image) {
        let image = assemble(&trr_source(p)).expect("trr assembles");
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::with_framework()),
        );
        cpu.load_image(&image);
        let mut engine = Engine::new(RseConfig::default());
        assert_eq!(cpu.run(&mut engine, 50_000_000), StepEvent::Halted);
        (cpu, image)
    }

    fn run_rse(p: &MlrBenchParams) -> (Pipeline, rse_isa::Image) {
        let image = assemble(&rse_source(p)).expect("rse assembles");
        let mut cpu = Pipeline::new(
            PipelineConfig {
                chk_serialize_mask: 1 << ModuleId::MLR.number(),
                ..PipelineConfig::default()
            },
            MemorySystem::new(MemConfig::with_framework()),
        );
        cpu.load_image(&image);
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(Mlr::new(MlrConfig::default())));
        engine.enable(ModuleId::MLR);
        assert_eq!(cpu.run(&mut engine, 50_000_000), StepEvent::Halted);
        (cpu, image)
    }

    #[test]
    fn both_versions_produce_identical_relocation() {
        let p = MlrBenchParams { got_entries: 128 };
        let (trr, trr_img) = run_trr(&p);
        let (rse, rse_img) = run_rse(&p);
        assert_eq!(verify_relocation(trr.mem(), &trr_img, &p), (true, true));
        assert_eq!(verify_relocation(rse.mem(), &rse_img, &p), (true, true));
    }

    #[test]
    fn rse_version_is_faster_and_flat_in_instructions() {
        // The Table 5 shape: the hardware version wins in cycles, and its
        // instruction count does not grow with the table size while the
        // software version's does.
        let small = MlrBenchParams { got_entries: 128 };
        let large = MlrBenchParams { got_entries: 1024 };
        let (trr_s, _) = run_trr(&small);
        let (trr_l, _) = run_trr(&large);
        let (rse_s, _) = run_rse(&small);
        let (rse_l, _) = run_rse(&large);
        // Software instruction count grows roughly linearly.
        assert!(
            trr_l.stats().committed_program() > 6 * trr_s.stats().committed_program(),
            "TRR instructions must grow with the table"
        );
        // Hardware version executes the same handful of instructions.
        assert_eq!(
            rse_s.stats().committed_program(),
            rse_l.stats().committed_program()
        );
        // And is faster at every size.
        assert!(rse_s.stats().cycles < trr_s.stats().cycles);
        assert!(rse_l.stats().cycles < trr_l.stats().cycles);
    }
}
