//! # rse-workloads — evaluation workloads as guest programs
//!
//! The paper evaluates the RSE with SPEC2000 `vpr` (placement and
//! routing), a k-means clustering application, and a multithreaded
//! network server. This crate generates kernel-faithful guest-assembly
//! equivalents, parameterized so the benchmark harness can sweep sizes:
//!
//! * [`place`] — a simulated-annealing placement kernel (the *vpr
//!   Placement* phase): random cell swaps on a grid, net wirelength
//!   cost, temperature-scheduled uphill acceptance,
//! * [`route`] — a BFS maze-routing kernel (the *vpr Route* phase):
//!   wavefront expansion over a grid with obstacles, path backtrace
//!   marking used cells,
//! * [`kmeans`] — integer k-means clustering (patterns × dims × clusters
//!   × iterations; the ISA is integer-only, see `DESIGN.md`),
//! * [`mlr_bench`] — the Table 5 microbenchmarks: the pure-software TRR
//!   GOT-copy + PLT-rewrite loop and the RSE CHECK-instruction version,
//! * [`server`] — the multithreaded network server of the Figure 9 DDT
//!   experiment: a worker-thread pool serving requests against a mix of
//!   private and shared pages.
//!
//! Every generator returns assembler source; a host-side **reference
//! implementation** of the same integer algorithm accompanies each
//! kernel so tests can verify the simulated result exactly.
//!
//! [`instrument`] provides the *static* CHECK/NOP insertion pass used by
//! the Table 4 cache-overhead experiment (the paper's "rewrite the code
//! segment inserting NOP instructions wherever a CHECK instruction has
//! to be placed").

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod instrument;
pub mod kmeans;
pub mod mlr_bench;
pub mod place;
pub mod route;
pub mod server;

/// A deterministic host-side generator for workload data: a thin
/// wrapper holding a raw [`rse_support::rng::SplitMix64`] state (the
/// single PRNG family used across the workspace; see `DESIGN.md`).
#[derive(Debug, Clone)]
pub struct DataRng(pub u64);

impl DataRng {
    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        rse_support::rng::splitmix64(&mut self.0)
    }

    /// Uniform value in `0..bound`.
    pub fn below(&mut self, bound: u32) -> u32 {
        (self.next_u64() % bound as u64) as u32
    }
}

impl rse_support::rng::Rng for DataRng {
    fn next_u64(&mut self) -> u64 {
        DataRng::next_u64(self)
    }
}

/// The 32-bit LCG used *inside* guest kernels (and mirrored by the host
/// references): `s = s*1664525 + 1013904223`.
pub fn lcg_step(s: u32) -> u32 {
    s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223)
}
