//! The simulated-annealing placement kernel (the *vpr Placement* phase
//! of the paper's Table 4 benchmark).
//!
//! `cells` cells live at positions on a `grid × grid` board; two-point
//! nets connect random cell pairs. Each iteration picks two cells with
//! the guest LCG, evaluates the wirelength of one **net sample block**
//! before and after swapping the cells, and accepts the move if it
//! improves the sampled cost or passes a temperature-scheduled uphill
//! test — the incremental-cost structure of VPR's placer.
//!
//! The sample blocks are generated as *fully unrolled straight-line
//! code* (net endpoints baked in as immediates), dispatched through a
//! jump table. This mirrors the large, low-reuse instruction footprint
//! of the real `vpr` binary: cycling through `blocks` blocks of ~6 KB
//! each defeats the 8 KB L1 I-cache and (for enough blocks) the 64 KB
//! L2, producing the instruction-fetch memory traffic that makes the
//! framework's memory arbiter visible (Table 4's vpr-place row).

use crate::{lcg_step, DataRng};

/// Placement workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaceParams {
    /// Number of cells.
    pub cells: usize,
    /// Nets per sample block (each block is unrolled code).
    pub nets_per_block: usize,
    /// Number of sample blocks; total nets = `blocks × nets_per_block`.
    pub blocks: usize,
    /// Grid side length (positions are in `0..grid`).
    pub grid: u32,
    /// Annealing iterations (moves attempted).
    pub iters: u32,
    /// Data-generation seed.
    pub seed: u64,
    /// Guest LCG seed.
    pub lcg_seed: u32,
}

impl Default for PlaceParams {
    fn default() -> PlaceParams {
        PlaceParams {
            cells: 128,
            nets_per_block: 32,
            blocks: 4,
            grid: 32,
            iters: 150,
            seed: 0x9A7CE,
            lcg_seed: 12345,
        }
    }
}

impl PlaceParams {
    /// The Table 4 configuration: an instruction footprint of
    /// `blocks × ~6 KB` ≈ 72 KB (past both I-cache levels) and a few
    /// thousand moves.
    pub fn table4() -> PlaceParams {
        PlaceParams {
            cells: 512,
            nets_per_block: 128,
            blocks: 12,
            grid: 64,
            iters: 2000,
            seed: 0x9A7CE,
            lcg_seed: 12345,
        }
    }

    /// Total number of nets.
    pub fn nets(&self) -> usize {
        self.blocks * self.nets_per_block
    }
}

/// Generated initial data: positions and net endpoints.
#[derive(Debug, Clone)]
pub struct PlaceData {
    /// X coordinate per cell.
    pub pos_x: Vec<u32>,
    /// Y coordinate per cell.
    pub pos_y: Vec<u32>,
    /// First endpoint (cell index) per net.
    pub net_a: Vec<u32>,
    /// Second endpoint per net.
    pub net_b: Vec<u32>,
}

/// Generates the initial placement and netlist.
pub fn generate(p: &PlaceParams) -> PlaceData {
    let mut rng = DataRng(p.seed);
    PlaceData {
        pos_x: (0..p.cells).map(|_| rng.below(p.grid)).collect(),
        pos_y: (0..p.cells).map(|_| rng.below(p.grid)).collect(),
        net_a: (0..p.nets()).map(|_| rng.below(p.cells as u32)).collect(),
        net_b: (0..p.nets()).map(|_| rng.below(p.cells as u32)).collect(),
    }
}

fn net_len(d: &PlaceData, n: usize) -> u32 {
    let (a, b) = (d.net_a[n] as usize, d.net_b[n] as usize);
    (d.pos_x[a] as i32 - d.pos_x[b] as i32).unsigned_abs()
        + (d.pos_y[a] as i32 - d.pos_y[b] as i32).unsigned_abs()
}

fn full_cost(d: &PlaceData) -> u32 {
    (0..d.net_a.len()).map(|n| net_len(d, n)).sum()
}

fn block_cost(d: &PlaceData, p: &PlaceParams, block: usize) -> u32 {
    let start = block * p.nets_per_block;
    (start..start + p.nets_per_block)
        .map(|n| net_len(d, n))
        .sum()
}

/// Host-side reference of the exact guest algorithm; returns the final
/// full wirelength the guest prints.
pub fn reference(p: &PlaceParams) -> u32 {
    let mut d = generate(p);
    let mut s = p.lcg_seed;
    let mut remaining = p.iters;
    while remaining != 0 {
        let block = (remaining % p.blocks as u32) as usize;
        s = lcg_step(s);
        let i = ((s >> 16) % p.cells as u32) as usize;
        s = lcg_step(s);
        let j = ((s >> 16) % p.cells as u32) as usize;
        let before = block_cost(&d, p, block);
        d.pos_x.swap(i, j);
        d.pos_y.swap(i, j);
        let after = block_cost(&d, p, block);
        let accept = if after < before {
            true
        } else {
            s = lcg_step(s);
            let r = (s >> 8) & 0xFF;
            let thresh = remaining.wrapping_mul(256) / p.iters;
            r < thresh
        };
        if !accept {
            d.pos_x.swap(i, j);
            d.pos_y.swap(i, j);
        }
        remaining -= 1;
    }
    full_cost(&d)
}

fn words(name: &str, values: &[u32]) -> String {
    let mut out = format!("{name}:");
    for (i, v) in values.iter().enumerate() {
        if i % 8 == 0 {
            out.push_str("\n        .word ");
        } else {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
    out.push('\n');
    out
}

/// Emits one unrolled sample block: straight-line wirelength of its nets,
/// accumulated in `r2`. Positions are addressed as immediate offsets off
/// the `s6` (pos_x) and `s7` (pos_y) base registers.
fn emit_block(out: &mut String, d: &PlaceData, p: &PlaceParams, block: usize) {
    out.push_str(&format!("blk{block}: li   r2, 0\n"));
    let start = block * p.nets_per_block;
    for n in start..start + p.nets_per_block {
        let a_off = 4 * d.net_a[n];
        let b_off = 4 * d.net_b[n];
        // Branchless |a-b| (sra/xor/sub), as a compiler would emit it:
        // keeps the unrolled blocks free of data-dependent branches.
        out.push_str(&format!(
            "        lw   t0, {a_off}(s6)
        lw   t1, {b_off}(s6)
        sub  t0, t0, t1
        sra  t2, t0, 31
        xor  t0, t0, t2
        sub  t0, t0, t2
        add  r2, r2, t0
        lw   t0, {a_off}(s7)
        lw   t1, {b_off}(s7)
        sub  t0, t0, t1
        sra  t2, t0, 31
        xor  t0, t0, t2
        sub  t0, t0, t2
        add  r2, r2, t0\n"
        ));
    }
    out.push_str("        jr   ra\n");
}

/// Generates the guest assembly. The program prints the final full
/// wirelength.
pub fn source(p: &PlaceParams) -> String {
    assert!(
        p.cells * 4 <= 0x7FFF,
        "cell offsets must fit 16-bit immediates"
    );
    let d = generate(p);
    let data = [
        words("posx", &d.pos_x),
        words("posy", &d.pos_y),
        words("neta", &d.net_a),
        words("netb", &d.net_b),
    ]
    .concat();
    let mut jtab = String::from("jtab:");
    for b in 0..p.blocks {
        jtab.push_str(&format!("\n        .word blk{b}"));
    }
    jtab.push('\n');
    let mut blocks_code = String::new();
    for b in 0..p.blocks {
        emit_block(&mut blocks_code, &d, p, b);
    }
    format!(
        r#"
# simulated-annealing placement: {cells} cells, {nets} nets in {blocks} sample blocks
main:   li   s0, {iters}        # remaining moves
        li   s1, {lcg_seed}     # LCG state
        la   s6, posx
        la   s7, posy
iter:   # block index = remaining % blocks
        li   t0, {blocks}
        rem  t0, s0, t0
        sll  t0, t0, 2
        la   t1, jtab
        add  t1, t1, t0
        lw   t2, 0(t1)
        # pick i (s3) and j (s4)
        jal  lcg
        srl  t0, s1, 16
        li   t1, {cells}
        rem  s3, t0, t1
        jal  lcg
        srl  t0, s1, 16
        li   t1, {cells}
        rem  s4, t0, t1
        jalr r31, t2            # before = block cost
        move s5, r2
        jal  swap
        # recompute the block entry for the second call
        li   t0, {blocks}
        rem  t0, s0, t0
        sll  t0, t0, 2
        la   t1, jtab
        add  t1, t1, t0
        lw   t2, 0(t1)
        jalr r31, t2            # after = block cost
        blt  r2, s5, next       # improved: accept
        # uphill: accept if ((lcg>>8)&0xFF) < remaining*256/iters
        jal  lcg
        srl  t0, s1, 8
        andi t0, t0, 0xFF
        li   t1, 256
        mul  t2, s0, t1
        li   t1, {iters}
        div  t2, t2, t1
        blt  t0, t2, next
        jal  swap               # revert
next:   addi s0, s0, -1
        bne  s0, r0, iter
        # final: full wirelength over all nets (rolled loop)
        li   s5, 0
        li   t0, 0
        la   t1, neta
        la   t2, netb
floop:  sll  t3, t0, 2
        add  t4, t1, t3
        lw   t4, 0(t4)
        add  t5, t2, t3
        lw   t5, 0(t5)
        sll  t4, t4, 2
        sll  t5, t5, 2
        add  t6, s6, t4
        lw   t6, 0(t6)
        add  t7, s6, t5
        lw   t7, 0(t7)
        sub  t6, t6, t7
        bge  t6, r0, fx
        sub  t6, r0, t6
fx:     add  s5, s5, t6
        add  t6, s7, t4
        lw   t6, 0(t6)
        add  t7, s7, t5
        lw   t7, 0(t7)
        sub  t6, t6, t7
        bge  t6, r0, fy
        sub  t6, r0, t6
fy:     add  s5, s5, t6
        addi t0, t0, 1
        li   t3, {nets}
        bne  t0, t3, floop
        move r4, s5
        li   r2, 2              # PRINT_INT final cost
        syscall
        halt

lcg:    # s1 = s1*1664525 + 1013904223
        li   t9, 1664525
        mul  s1, s1, t9
        li   t9, 1013904223
        add  s1, s1, t9
        jr   ra

swap:   # swap cell s3 and s4 positions (x and y)
        sll  t0, s3, 2
        sll  t1, s4, 2
        add  t3, s6, t0
        add  t4, s6, t1
        lw   t5, 0(t3)
        lw   t6, 0(t4)
        sw   t6, 0(t3)
        sw   t5, 0(t4)
        add  t3, s7, t0
        add  t4, s7, t1
        lw   t5, 0(t3)
        lw   t6, 0(t4)
        sw   t6, 0(t3)
        sw   t5, 0(t4)
        jr   ra

{blocks_code}
        .data
        .align 4
{jtab}
{data}
"#,
        cells = p.cells,
        nets = p.nets(),
        blocks = p.blocks,
        iters = p.iters,
        lcg_seed = p.lcg_seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_core::{Engine, RseConfig};
    use rse_isa::asm::assemble;
    use rse_mem::{MemConfig, MemorySystem};
    use rse_pipeline::{Pipeline, PipelineConfig};
    use rse_sys::{Os, OsConfig, OsExit};

    fn run(p: &PlaceParams) -> Vec<i32> {
        let image = assemble(&source(p)).expect("place assembles");
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::baseline()),
        );
        rse_sys::loader::load_process(&mut cpu, &image);
        let mut engine = Engine::new(RseConfig::default());
        let mut os = Os::new(OsConfig::default());
        let exit = os.run(&mut cpu, &mut engine, 500_000_000);
        assert_eq!(exit, OsExit::Exited { code: 0 });
        os.output
    }

    #[test]
    fn small_place_matches_host_reference() {
        let p = PlaceParams {
            cells: 16,
            nets_per_block: 8,
            blocks: 2,
            grid: 8,
            iters: 25,
            ..PlaceParams::default()
        };
        assert_eq!(run(&p), vec![reference(&p) as i32]);
    }

    #[test]
    fn default_place_matches_host_reference() {
        let p = PlaceParams::default();
        assert_eq!(run(&p), vec![reference(&p) as i32]);
    }

    #[test]
    fn annealing_improves_cost() {
        let p = PlaceParams {
            iters: 600,
            ..PlaceParams::default()
        };
        let initial = full_cost(&generate(&p));
        let final_cost = reference(&p);
        assert!(
            final_cost < initial,
            "annealing should reduce wirelength ({final_cost} vs {initial})"
        );
    }

    #[test]
    fn table4_configuration_has_large_code_footprint() {
        let p = PlaceParams::table4();
        let image = assemble(&source(&p)).expect("table4 place assembles");
        // Instruction footprint must exceed the 64 KB L2 I-cache to
        // produce the instruction-side memory traffic of vpr.
        assert!(
            image.text.len() * 4 > 64 * 1024,
            "{} bytes",
            image.text.len() * 4
        );
    }
}
