//! The property-test case runner: deterministic case generation, greedy
//! choice-stream shrinking, and seed-based failure reproduction.
//!
//! # Model
//!
//! Every generated value is a pure function of the sequence of 64-bit
//! draws (the *choice stream*) a strategy consumed while generating it.
//! [`TestRng`] records that stream. When a case fails, the runner does
//! not shrink the value — it shrinks the **stream** (truncate, delete
//! chunks, zero chunks, halve values) and replays each candidate stream
//! through the same strategy, keeping any mutation that still fails.
//! Draws past the end of a replayed stream yield `0`, which every
//! strategy maps to its simplest value. This is the internal-reduction
//! approach of Hypothesis, and it gives universal shrinking without
//! per-type shrinkers.
//!
//! # Reproduction
//!
//! Case seeds derive from a per-property master seed. By default the
//! master seed is a stable hash of the property name, so `cargo test`
//! is fully deterministic run to run. On failure the runner panics with
//! a message containing `RSE_PT_SEED=<seed>`; exporting that variable
//! (or setting [`Config::seed`]) re-runs the identical case sequence,
//! re-shrinks deterministically, and lands on the same minimal
//! counterexample. Set `RSE_PT_RANDOM=1` to explore with a fresh
//! time-derived seed instead (the failure message still pins the seed).

use crate::rng::{splitmix64, RangeSample, Rng, SplitMix64, Xoshiro256StarStar};
use crate::strategy::Strategy;
use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Runner configuration. `ProptestConfig` is an alias kept for
/// port-compatibility with the retired external dependency.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum number of candidate executions spent shrinking a
    /// failure.
    pub max_shrink_iters: u32,
    /// Explicit master seed; overrides both the default (a stable hash
    /// of the property name) and the `RSE_PT_SEED` environment
    /// variable.
    pub seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 256,
            max_shrink_iters: 4096,
            seed: None,
        }
    }
}

impl Config {
    /// A default configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Port-compatibility alias: call sites ported from the external
/// `proptest` crate read `ProptestConfig::with_cases(n)`.
pub type ProptestConfig = Config;

/// A recording/replaying draw source handed to strategies.
///
/// In *fresh* mode, draws come from a seeded xoshiro256\*\* stream. In
/// *replay* mode, draws come from a fixed stream (a possibly mutated
/// recording of a previous run), padded with zeros once exhausted.
/// Either way every draw is recorded, so the consumed stream of any run
/// can itself be replayed or mutated.
pub struct TestRng {
    replay: Vec<u64>,
    pos: usize,
    fresh: Option<Xoshiro256StarStar>,
    recorded: Vec<u64>,
}

impl TestRng {
    /// A recording generator over a fresh xoshiro256\*\* stream.
    pub fn fresh(seed: u64) -> TestRng {
        TestRng {
            replay: Vec::new(),
            pos: 0,
            fresh: Some(Xoshiro256StarStar::from_seed(seed)),
            recorded: Vec::new(),
        }
    }

    /// A generator replaying `stream`, padding with zero draws once the
    /// stream is exhausted.
    pub fn replay(stream: Vec<u64>) -> TestRng {
        TestRng {
            replay: stream,
            pos: 0,
            fresh: None,
            recorded: Vec::new(),
        }
    }

    /// The draws consumed so far.
    pub fn recorded(&self) -> &[u64] {
        &self.recorded
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        let v = if self.pos < self.replay.len() {
            self.replay[self.pos]
        } else {
            match &mut self.fresh {
                Some(rng) => rng.next_u64(),
                None => 0,
            }
        };
        self.pos += 1;
        self.recorded.push(v);
        v
    }
}

impl TestRng {
    /// Convenience forwarding so strategy code can call `gen_range`
    /// without importing [`Rng`].
    pub fn gen_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        Rng::gen_range(self, range)
    }
}

// ---------------------------------------------------------------------
// Quiet panic capture: while probing candidate cases (during shrinking
// and for the initial failure detection) the default panic hook would
// spam hundreds of backtraces. A process-wide hook delegates to the
// original hook unless the current thread is inside a probe.

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

/// Runs `f`, returning its panic payload rendered to a string if it
/// panicked. Panic output is suppressed.
fn probe<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    QUIET.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    QUIET.with(|q| q.set(false));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    })
}

// ---------------------------------------------------------------------
// Seeds

/// FNV-1a, used to give every property a distinct stable default seed.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn master_seed(name: &str, config: &Config) -> u64 {
    if let Some(seed) = config.seed {
        return seed;
    }
    if let Ok(s) = std::env::var("RSE_PT_SEED") {
        let s = s.trim();
        let parsed = if let Some(hex) = s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            s.parse()
        };
        match parsed {
            Ok(seed) => return seed,
            Err(_) => panic!("RSE_PT_SEED={s:?} is not a valid u64"),
        }
    }
    if std::env::var_os("RSE_PT_RANDOM").is_some() {
        let mut state = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED)
            ^ hash_name(name);
        return splitmix64(&mut state);
    }
    hash_name(name)
}

// ---------------------------------------------------------------------
// The runner

/// Runs `test` against `config.cases` values generated by `strategy`.
///
/// On failure, greedily shrinks the failing choice stream and panics
/// with the minimal counterexample, the failure message it produces,
/// and an `RSE_PT_SEED=…` line that reproduces the run.
///
/// This is the function the [`proptest!`](crate::proptest) macro
/// expands to; it can also be called directly.
pub fn run<S>(name: &str, config: &Config, strategy: &S, test: impl Fn(S::Value))
where
    S: Strategy,
    S::Value: Debug,
{
    install_quiet_hook();
    let master = master_seed(name, config);
    let mut case_seeder = SplitMix64::new(master);
    for case in 0..config.cases {
        let case_seed = case_seeder.next_u64();
        let mut rng = TestRng::fresh(case_seed);
        let value = strategy.generate(&mut rng);
        let stream = rng.recorded().to_vec();
        if let Err(first_msg) = probe(|| test(value)) {
            let (min_stream, min_msg, steps) =
                shrink(strategy, &test, stream, first_msg, config.max_shrink_iters);
            let min_value = strategy.generate(&mut TestRng::replay(min_stream));
            panic!(
                "property `{name}` failed (case {case} of {cases}, master seed \
                 {master:#018x}).\n\
                 reproduce with: RSE_PT_SEED={master} cargo test {name}\n\
                 minimal failing input after {steps} shrink step(s):\n\
                 {min_value:#?}\n\
                 failure: {min_msg}",
                cases = config.cases,
            );
        }
    }
}

/// Greedy stream shrinking: repeated passes of truncation, chunk
/// deletion, chunk zeroing, and per-draw value minimization, accepting
/// any candidate that still fails, until a fixpoint or the iteration
/// budget is reached. Returns `(stream, failure message, accepted
/// steps)`.
fn shrink<S>(
    strategy: &S,
    test: &impl Fn(S::Value),
    stream: Vec<u64>,
    msg: String,
    budget: u32,
) -> (Vec<u64>, String, u32)
where
    S: Strategy,
    S::Value: Debug,
{
    let mut best = stream;
    let mut best_msg = msg;
    let steps = Cell::new(0u32);
    let left = Cell::new(budget);

    // Probes one candidate; on failure (i.e. the property still fails)
    // adopts it as the new best.
    let attempt = |cand: Vec<u64>, best: &mut Vec<u64>, best_msg: &mut String| -> bool {
        if left.get() == 0 || cand == *best {
            return false;
        }
        left.set(left.get() - 1);
        let value = strategy.generate(&mut TestRng::replay(cand.clone()));
        match probe(|| test(value)) {
            Err(m) => {
                *best = cand;
                *best_msg = m;
                steps.set(steps.get() + 1);
                true
            }
            Ok(()) => false,
        }
    };

    loop {
        let mut improved = false;

        // Pass 1: drop whole tail fractions (1/1, 1/2, 1/4, …).
        let mut frac = 1usize;
        while frac <= 8 && !best.is_empty() {
            let keep = best.len() - best.len() / frac;
            let cand = best[..keep].to_vec();
            if attempt(cand, &mut best, &mut best_msg) {
                improved = true;
            } else {
                frac *= 2;
            }
        }

        // Pass 2: delete interior chunks, large to small.
        for size in [8usize, 4, 2, 1] {
            let mut i = 0;
            while i + size <= best.len() {
                let mut cand = best.clone();
                cand.drain(i..i + size);
                if attempt(cand, &mut best, &mut best_msg) {
                    improved = true;
                    // Deleting shifted the stream; retry at same index.
                } else {
                    i += 1;
                }
            }
        }

        // Pass 3: zero interior chunks.
        for size in [8usize, 4, 2, 1] {
            let mut i = 0;
            while i + size <= best.len() {
                if best[i..i + size].iter().all(|&v| v == 0) {
                    i += 1;
                    continue;
                }
                let mut cand = best.clone();
                for v in &mut cand[i..i + size] {
                    *v = 0;
                }
                if attempt(cand, &mut best, &mut best_msg) {
                    improved = true;
                }
                i += 1;
            }
        }

        // Pass 4: minimize individual draws (halve, then decrement).
        for i in 0..best.len() {
            while best[i] > 0 {
                let mut cand = best.clone();
                cand[i] /= 2;
                if !attempt(cand, &mut best, &mut best_msg) {
                    break;
                }
                improved = true;
            }
            if best[i] > 0 {
                let mut cand = best.clone();
                cand[i] -= 1;
                if attempt(cand, &mut best, &mut best_msg) {
                    improved = true;
                }
            }
        }

        if !improved || left.get() == 0 {
            break;
        }
    }
    (best, best_msg, steps.get())
}

// ---------------------------------------------------------------------
// Macros

/// Declares property tests. Port-compatible subset of the external
/// `proptest!` macro:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in collection::vec(any::<u8>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
///
/// Each argument must be `ident in strategy-expr`. The body runs once
/// per generated case; use `prop_assert!`/`prop_assert_eq!`/
/// `prop_assert_ne!` (or plain `assert!`/`panic!`) to fail a case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::pt::Config::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strat,)+);
            $crate::pt::run(
                stringify!($name),
                &__config,
                &__strategy,
                move |($($arg,)+)| $body,
            );
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    (($cfg:expr);) => {};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Fails the current property case unless `left == right`. Operands
/// are taken by reference (they remain usable afterwards).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            );
        }
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "property assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "property assertion failed: `{} != {}`\n  both: {:?}\n {}",
                stringify!($left), stringify!($right), l, format!($($fmt)+)
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{any, collection, Strategy};

    /// Extracts the `RSE_PT_SEED=<n>` value from a failure message.
    fn seed_from_message(msg: &str) -> u64 {
        let tail = msg
            .split("RSE_PT_SEED=")
            .nth(1)
            .expect("message names a seed");
        let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().expect("seed parses")
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run(
            "passing_property",
            &Config::with_cases(57),
            &(0u32..1000),
            |v| {
                counter.set(counter.get() + 1);
                assert!(v < 1000);
            },
        );
        count += counter.get();
        assert_eq!(count, 57);
    }

    /// The acceptance demonstration: a deliberately broken property
    /// ("all generated u32 are < 1000" over 0..5000) must fail, shrink
    /// to the boundary counterexample 1000, and print a seed.
    #[test]
    fn broken_property_shrinks_to_minimal_counterexample() {
        let result = probe(|| {
            run(
                "broken_property_demo",
                &Config::default(),
                &(0u32..5000),
                |v| prop_assert!(v < 1000),
            );
        });
        let msg = result.expect_err("property must fail");
        assert!(
            msg.contains("minimal failing input"),
            "no shrink report in: {msg}"
        );
        assert!(
            msg.contains("1000"),
            "did not shrink to boundary 1000: {msg}"
        );
        assert!(
            msg.contains("RSE_PT_SEED="),
            "no reproduction seed in: {msg}"
        );
    }

    /// Vector counterexamples shrink in both length and element values.
    #[test]
    fn vec_counterexample_shrinks_structurally() {
        let strategy = collection::vec(any::<u16>(), 0..50);
        let result = probe(|| {
            run(
                "vec_sum_small",
                &Config::default(),
                &strategy,
                |v: Vec<u16>| {
                    let sum: u64 = v.iter().map(|&x| x as u64).sum();
                    prop_assert!(sum < 500);
                },
            );
        });
        let msg = result.expect_err("property must fail");
        // Re-derive the minimal vector by replaying the printed seed.
        let seed = seed_from_message(&msg);
        let result2 = probe(|| {
            run(
                "vec_sum_small",
                &Config {
                    seed: Some(seed),
                    ..Config::default()
                },
                &collection::vec(any::<u16>(), 0..50),
                |v: Vec<u16>| {
                    let sum: u64 = v.iter().map(|&x| x as u64).sum();
                    prop_assert!(sum < 500);
                },
            );
        });
        let msg2 = result2.expect_err("reproduction must fail too");
        assert_eq!(
            msg, msg2,
            "seeded re-run did not reproduce the identical report"
        );
        // A minimal counterexample for sum >= 500 is a single element;
        // greedy stream shrinking must reach exactly one element.
        let body = msg.split("shrink step(s):").nth(1).unwrap();
        let ones = body.matches(',').count();
        assert!(
            body.contains('[') && ones <= 1,
            "expected a 1-element vector counterexample, got: {body}"
        );
    }

    /// Seeded runs are identical; the seed printed on failure
    /// reproduces the same minimal counterexample via `Config::seed`
    /// (the programmatic equivalent of `RSE_PT_SEED`).
    #[test]
    fn failure_seed_reproduces_identical_failure() {
        let go = |cfg: Config| {
            probe(move || {
                run("seed_repro_demo", &cfg, &(0u64..1 << 40), |v| {
                    prop_assert!(v < 12345, "value {v} too large");
                })
            })
            .expect_err("must fail")
        };
        let first = go(Config::default());
        let seed = seed_from_message(&first);
        let second = go(Config {
            seed: Some(seed),
            ..Config::default()
        });
        assert_eq!(first, second);
        // And the shrinker reaches the boundary exactly.
        assert!(
            first.contains("12345"),
            "expected boundary 12345 in: {first}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The macro façade itself: multiple args, trailing comma,
        /// config line, doc comments.
        #[test]
        fn macro_facade_generates_in_range(
            a in 1u32..50,
            b in collection::vec(any::<bool>(), 0..8),
        ) {
            prop_assert!((1..50).contains(&a));
            prop_assert!(b.len() < 8);
        }
    }

    #[test]
    fn prop_assert_eq_takes_by_reference() {
        let v = vec![1, 2, 3];
        let w = vec![1, 2, 3];
        prop_assert_eq!(v, w);
        // Still usable: the macros borrow.
        assert_eq!(v.len() + w.len(), 6);
        prop_assert_ne!(v[0], 9);
    }

    #[test]
    fn replay_pads_with_zero() {
        let mut rng = TestRng::replay(vec![7, 8]);
        assert_eq!(rng.next_u64(), 7);
        assert_eq!(rng.next_u64(), 8);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.recorded(), &[7, 8, 0]);
    }

    #[test]
    fn fresh_recording_replays_identically() {
        let strategy = collection::vec((0u32..100, any::<bool>()), 1..20);
        let mut rng = TestRng::fresh(1234);
        let original = strategy.generate(&mut rng);
        let replayed = strategy.generate(&mut TestRng::replay(rng.recorded().to_vec()));
        assert_eq!(original, replayed);
    }
}
