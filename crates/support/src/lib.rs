//! # rse-support — hermetic verification support
//!
//! The workspace builds and tests **fully offline**: no external
//! registry crates appear anywhere in the dependency graph (see
//! `DESIGN.md`, "Hermetic dependencies"). This crate supplies, from
//! in-repo code only, the three capabilities that previously pulled in
//! external dependencies:
//!
//! * [`rng`] — deterministic PRNGs (SplitMix64 seeder + xoshiro256\*\*
//!   core) behind a [`rng::Rng`] trait covering the
//!   `gen_range`/`fill_bytes`/`shuffle` surface the codebase uses
//!   (replaces `rand`),
//! * [`pt`] + [`strategy`] — a property-testing harness: composable
//!   generators, a case runner with configurable case counts, greedy
//!   choice-stream shrinking, and `RSE_PT_SEED` failure reproduction
//!   (replaces `proptest`; the macro and strategy surface is shaped so
//!   existing tests ported mechanically),
//! * [`bench`] — a benchmark timer with warmup, calibrated samples,
//!   median/p95 statistics and a JSON-lines emitter (replaces
//!   `criterion`).
//!
//! Test files normally start with `use rse_support::prelude::*;`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod pt;
pub mod rng;
pub mod strategy;

pub use strategy::collection;

/// Everything a property-test file needs: the [`strategy::Strategy`]
/// trait and constructors, the runner [`pt::Config`] types, and the
/// `proptest!`/`prop_assert*!`/`prop_oneof!` macros.
pub mod prelude {
    pub use crate::pt::{Config, ProptestConfig, TestRng};
    pub use crate::rng::Rng;
    pub use crate::strategy::{any, collection, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
