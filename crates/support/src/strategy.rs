//! Composable value generators for the property-testing harness.
//!
//! A [`Strategy`] turns draws from a [`TestRng`] into a value. The API
//! is deliberately shaped like the external `proptest` crate's strategy
//! layer — `any::<T>()`, integer ranges, tuples, [`Strategy::prop_map`],
//! `prop_oneof!`, `Just`, and `collection::vec` — so the workspace's
//! property tests ported mechanically when the external dependency was
//! removed (see `DESIGN.md`, "Hermetic dependencies").
//!
//! Unlike `proptest`, shrinking is not implemented per-strategy: the
//! runner in [`crate::pt`] shrinks the underlying *choice stream* (the
//! sequence of 64-bit draws) and replays it through the same strategy,
//! in the style of Hypothesis' internal reduction. Strategies therefore
//! only need to be monotone-ish: smaller draws should map to simpler
//! values, which every combinator here guarantees.

use crate::pt::TestRng;
use crate::rng::{RangeSample, Rng};
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of type [`Strategy::Value`] from a
/// replayable stream of random draws.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value, consuming draws from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`, whose arms
    /// have distinct concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between alternatives (the engine behind
/// `prop_oneof!`). A zero draw selects the first arm, so strategies
/// shrink toward their first alternative.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union from the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "anything goes" strategy, used by
/// [`any`]`::<T>()`.
pub trait Arbitrary {
    /// Produces an arbitrary value of `Self` from raw draws.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// See [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating arbitrary values of `T` — zero draws map to
/// the all-zero value, so `any::<T>()` shrinks toward `0`/`false`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Integer ranges are strategies: `0u8..32` generates uniformly within
/// the half-open range and shrinks toward the range start.
impl<T: RangeSample> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`collection::vec`), mirroring
/// `proptest::collection`.
pub mod collection {
    use super::*;

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `elem`. The length draw comes first, so stream shrinking
    /// naturally shortens the vector.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Uniform choice among the arms, all yielding the same value type.
/// Shrinks toward the **first** arm — put the simplest case first.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pt::TestRng;

    #[test]
    fn range_strategy_in_bounds() {
        let mut rng = TestRng::fresh(1);
        for _ in 0..500 {
            let v = (5u32..9).generate(&mut rng);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn zero_stream_yields_minimal_values() {
        // Replaying an empty stream pads with zero draws: every
        // combinator must bottom out at its simplest value.
        let mut rng = TestRng::replay(Vec::new());
        assert_eq!((3u8..10).generate(&mut rng), 3);
        assert_eq!(any::<u32>().generate(&mut rng), 0);
        assert!(!any::<bool>().generate(&mut rng));
        let s = prop_oneof![Just(7u8), (1u8..5).prop_map(|x| x + 100)];
        assert_eq!(s.generate(&mut rng), 7, "union shrinks to first arm");
        let v = collection::vec(any::<u8>(), 0..10).generate(&mut rng);
        assert!(v.is_empty(), "vec shrinks to minimum length");
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = TestRng::fresh(3);
        let s = (0u8..4, any::<bool>(), 0u16..100).prop_map(|(a, b, c)| (a as u32, b, c));
        for _ in 0..100 {
            let (a, _b, c) = s.generate(&mut rng);
            assert!(a < 4);
            assert!(c < 100);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = collection::vec((any::<u8>(), 0u32..1000), 0..20);
        let a = s.generate(&mut TestRng::fresh(99));
        let b = s.generate(&mut TestRng::fresh(99));
        let c = s.generate(&mut TestRng::fresh(100));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds agreed (astronomically unlikely)");
    }
}
