//! A lightweight benchmark timer replacing the external `criterion`
//! dependency: warmup, iteration calibration, N timed samples,
//! median/p95/min/mean statistics, a plain-text report, and a
//! JSON-lines emitter for machine consumption.
//!
//! Usage (a `[[bench]]` target with `harness = false`):
//!
//! ```ignore
//! use rse_support::bench::{black_box, Harness};
//!
//! fn main() {
//!     let mut h = Harness::from_env();
//!     h.bench_function("cache/stream", |b| {
//!         b.iter(|| black_box(expensive()));
//!     });
//!     h.finish();
//! }
//! ```
//!
//! Environment knobs: `RSE_BENCH_SAMPLES` (default 30),
//! `RSE_BENCH_JSON=<path>` appends one JSON object per benchmark as a
//! line to `<path>`.

pub use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Timing parameters for one harness.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Wall-clock time spent warming up before sampling.
    pub warmup: Duration,
    /// Number of timed samples.
    pub samples: usize,
    /// Target duration of one sample; iterations per sample are
    /// calibrated so a sample takes roughly this long.
    pub target_sample: Duration,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            warmup: Duration::from_millis(60),
            samples: 30,
            target_sample: Duration::from_millis(2),
        }
    }
}

/// Per-iteration statistics of one benchmark, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Median over samples.
    pub median_ns: f64,
    /// 95th percentile over samples.
    pub p95_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
}

impl Stats {
    /// Computes statistics from per-iteration sample times.
    fn from_samples(mut ns: Vec<f64>, iters: u64) -> Stats {
        assert!(!ns.is_empty());
        ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let n = ns.len();
        let median = if n % 2 == 1 {
            ns[n / 2]
        } else {
            (ns[n / 2 - 1] + ns[n / 2]) / 2.0
        };
        let p95_idx = ((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1;
        Stats {
            median_ns: median,
            p95_ns: ns[p95_idx],
            mean_ns: ns.iter().sum::<f64>() / n as f64,
            min_ns: ns[0],
            samples: n,
            iters_per_sample: iters,
        }
    }

    /// The benchmark result as one JSON object (hand-rolled; the
    /// workspace is dependency-free by policy).
    pub fn json_line(&self, name: &str) -> String {
        format!(
            "{{\"name\":\"{}\",\"median_ns\":{:.1},\"p95_ns\":{:.1},\"mean_ns\":{:.1},\
             \"min_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
            escape_json(name),
            self.median_ns,
            self.p95_ns,
            self.mean_ns,
            self.min_ns,
            self.samples,
            self.iters_per_sample,
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats nanoseconds human-readably.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else {
        format!("{:8.2} ms", ns / 1_000_000.0)
    }
}

/// The measurement loop handed to benchmark closures.
pub struct Bencher {
    config: BenchConfig,
    stats: Option<Stats>,
}

impl Bencher {
    /// Calibrates, warms up, then takes `config.samples` timed samples
    /// of repeated calls to `f`, keeping per-iteration times.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibrate iterations per sample from a single probe call.
        let t0 = Instant::now();
        black_box(f());
        let probe_ns = t0.elapsed().as_nanos().max(1) as u64;
        let iters = (self.config.target_sample.as_nanos() as u64 / probe_ns).clamp(1, 10_000_000);

        // Warm up for the configured wall-clock budget.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.config.warmup {
            black_box(f());
        }

        let mut samples = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.stats = Some(Stats::from_samples(samples, iters));
    }
}

/// The top-level benchmark driver: runs benchmark closures, prints a
/// fixed-width report as it goes, and optionally appends JSON lines.
pub struct Harness {
    config: BenchConfig,
    json_path: Option<String>,
    results: Vec<(String, Stats)>,
    header_printed: bool,
}

impl Harness {
    /// A harness with explicit configuration.
    pub fn new(config: BenchConfig) -> Harness {
        Harness {
            config,
            json_path: None,
            results: Vec::new(),
            header_printed: false,
        }
    }

    /// A harness configured from the environment (`RSE_BENCH_SAMPLES`,
    /// `RSE_BENCH_JSON`).
    pub fn from_env() -> Harness {
        let mut config = BenchConfig::default();
        if let Some(n) = std::env::var("RSE_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
        {
            config.samples = n;
        }
        let mut h = Harness::new(config);
        h.json_path = std::env::var("RSE_BENCH_JSON").ok();
        h
    }

    /// Runs one benchmark and records/prints its result.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            config: self.config,
            stats: None,
        };
        f(&mut b);
        let stats = b
            .stats
            .unwrap_or_else(|| panic!("benchmark `{name}` never called Bencher::iter"));
        if !self.header_printed {
            println!(
                "{:<44} {:>11} {:>11} {:>11}",
                "benchmark", "median", "p95", "min"
            );
            self.header_printed = true;
        }
        println!(
            "{:<44} {} {} {}",
            name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            fmt_ns(stats.min_ns)
        );
        if let Some(path) = &self.json_path {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(file, "{}", stats.json_line(name));
            }
        }
        self.results.push((name.to_string(), stats));
    }

    /// Opens a named group: benchmark names gain a `group/` prefix and
    /// the group can override the sample count (mirrors the criterion
    /// `benchmark_group`/`sample_size` surface).
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            prefix: name.to_string(),
            samples: None,
        }
    }

    /// All recorded results.
    pub fn results(&self) -> &[(String, Stats)] {
        &self.results
    }

    /// Median-time speedup of `contender` over `baseline` (how many
    /// times faster the contender ran). `None` until both benchmarks
    /// have been recorded.
    pub fn speedup(&self, baseline: &str, contender: &str) -> Option<f64> {
        let median = |n: &str| {
            self.results
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, s)| s.median_ns)
        };
        Some(median(baseline)? / median(contender)?)
    }

    /// Finishes the run (prints a terse footer).
    pub fn finish(self) {
        println!("\n{} benchmark(s) complete", self.results.len());
    }
}

/// A named benchmark group; see [`Harness::benchmark_group`].
pub struct Group<'a> {
    harness: &'a mut Harness,
    prefix: String,
    samples: Option<usize>,
}

impl Group<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = Some(samples);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.prefix, name);
        let saved = self.harness.config.samples;
        if let Some(n) = self.samples {
            self.harness.config.samples = n;
        }
        self.harness.bench_function(&full, f);
        self.harness.config.samples = saved;
    }

    /// Closes the group (no-op; provided for criterion parity).
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BenchConfig {
        BenchConfig {
            warmup: Duration::from_millis(1),
            samples: 5,
            target_sample: Duration::from_micros(50),
        }
    }

    #[test]
    fn stats_median_p95_min() {
        let s = Stats::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0], 10);
        assert_eq!(s.median_ns, 3.0);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.p95_ns, 5.0);
        assert_eq!(s.mean_ns, 3.0);
        let even = Stats::from_samples(vec![1.0, 2.0, 3.0, 4.0], 1);
        assert_eq!(even.median_ns, 2.5);
    }

    #[test]
    fn json_line_shape_and_escaping() {
        let s = Stats::from_samples(vec![2.0], 7);
        let line = s.json_line("group/name \"x\"");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\\\"x\\\""));
        assert!(line.contains("\"iters_per_sample\":7"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn harness_runs_and_records() {
        let mut h = Harness::new(quick());
        h.bench_function("tiny/add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(black_box(3));
                x
            });
        });
        let mut g = h.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("mul", |b| {
            let mut x = 1u64;
            b.iter(|| {
                x = x.wrapping_mul(black_box(5));
                x
            });
        });
        g.finish();
        assert_eq!(h.results().len(), 2);
        assert_eq!(h.results()[1].0, "grp/mul");
        assert_eq!(h.results()[1].1.samples, 3);
        for (_, s) in h.results() {
            assert!(s.median_ns > 0.0 && s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns);
        }
        let ratio = h.speedup("tiny/add", "grp/mul").unwrap();
        assert!(ratio > 0.0 && ratio.is_finite());
        assert!(h.speedup("tiny/add", "missing").is_none());
    }
}
