//! Deterministic pseudo-random number generation.
//!
//! Two generators cover every randomness need of the workspace:
//!
//! * [`SplitMix64`] — a tiny, fast, full-period 64-bit generator. Used
//!   as the *seeder* for [`Xoshiro256StarStar`] and directly wherever a
//!   simple deterministic stream suffices (workload data generation,
//!   the MLR's randomized-offset draw, jitter in the AHBM evaluation).
//! * [`Xoshiro256StarStar`] — xoshiro256\*\*, a 256-bit-state generator
//!   with excellent statistical quality; the core generator behind the
//!   property-testing harness in [`crate::pt`].
//!
//! Both are pure integer state machines: identical seeds produce
//! identical streams on every host, which is the foundation of the
//! repository's hermetic-reproduction policy (see `DESIGN.md`).

use std::ops::Range;

/// The SplitMix64 additive constant (golden-ratio based).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64: `state += gamma; output = mix(state)`.
///
/// The output function is Stafford's "mix13" finalizer. This generator
/// is equidistributed over its full 2^64 period and is the standard
/// choice for expanding a 64-bit seed into larger state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose *state* starts at `seed` (the first
    /// output mixes `seed + GOLDEN_GAMMA`).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The raw internal state (useful for embedding the generator in a
    /// struct that persists a plain `u64`).
    pub fn state(&self) -> u64 {
        self.state
    }
}

/// FNV-1a over a byte slice — a tiny, dependency-free integrity
/// checksum used by the module self-tests (§3.4 quarantine probes) to
/// seal critical internal state.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Advances a raw SplitMix64 state by one step and returns the output.
///
/// Free-function form for call sites that store the state as a bare
/// `u64` field.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// xoshiro256\*\* 1.0 by Blackman & Vigna: 256-bit state, period
/// 2^256 − 1, output scrambled with the `**` multiplier pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the 256-bit state from a 64-bit seed via SplitMix64, per
    /// the generator authors' recommendation. The all-zero state (which
    /// would be a fixed point) cannot arise from this expansion.
    pub fn from_seed(seed: u64) -> Xoshiro256StarStar {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        Xoshiro256StarStar { s }
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Integer types that can be drawn uniformly from a half-open range.
pub trait RangeSample: Copy {
    /// Maps one 64-bit draw into `range` (modulo reduction — uniform
    /// enough for simulation/test purposes, and monotone in the draw,
    /// which the shrinker in [`crate::pt`] relies on).
    fn sample(draw: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(draw: u64, range: Range<$t>) -> $t {
                let lo = range.start as i128;
                let hi = range.end as i128;
                assert!(hi > lo, "gen_range: empty range");
                let width = (hi - lo) as u128;
                (lo + (draw as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The generator interface used across the workspace — the
/// `gen_range`/`fill_bytes`/`shuffle` surface previously supplied by
/// the external `rand` crate, as default methods over [`next_u64`].
///
/// [`next_u64`]: Rng::next_u64
pub trait Rng {
    /// The next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next 32 raw bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// A fair coin flip.
    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills `dest` with raw stream bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` if empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First three outputs from state 0 (widely published vector).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn splitmix_free_function_matches_struct() {
        let mut state = 0xDEAD_BEEFu64;
        let mut sm = SplitMix64::new(0xDEAD_BEEF);
        for _ in 0..16 {
            assert_eq!(splitmix64(&mut state), sm.next_u64());
        }
        assert_eq!(state, sm.state());
    }

    #[test]
    fn xoshiro_streams_differ_by_seed_and_repeat_by_seed() {
        let mut a = Xoshiro256StarStar::from_seed(1);
        let mut b = Xoshiro256StarStar::from_seed(2);
        let mut a2 = Xoshiro256StarStar::from_seed(1);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let xs2: Vec<u64> = (0..32).map(|_| a2.next_u64()).collect();
        assert_ne!(xs, ys);
        assert_eq!(xs, xs2);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = Xoshiro256StarStar::from_seed(42);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..10);
            assert!((3..10).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values hit: {seen:?}");
        // Signed ranges.
        for _ in 0..100 {
            let v = rng.gen_range(-5i16..5);
            assert!((-5..5).contains(&v));
        }
        // Full-width range does not overflow.
        let _ = rng.gen_range(1u64..u64::MAX);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(7);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity (astronomically unlikely)"
        );
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = SplitMix64::new(9);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }
}
