//! Property tests of the per-module health state machine: under any
//! event sequence and any containment configuration, the machine only
//! moves along the legal §3.4 edges and `Disabled` is absorbing.

use rse_core::health::legal_edge;
use rse_core::{AnomalyKind, HealthConfig, HealthEvent, HealthState, ModuleHealth};
use rse_support::prelude::*;

/// Decodes one `(selector, dt)` pair of the generated trace into a
/// health event. The selectors are weighted toward anomalies so traces
/// actually reach `Quarantined`/`Disabled` instead of idling.
fn decode(selector: u8) -> HealthEvent {
    match selector {
        0 => HealthEvent::Anomaly(AnomalyKind::Timeout),
        1 => HealthEvent::Anomaly(AnomalyKind::ErrorBurst),
        2 => HealthEvent::Anomaly(AnomalyKind::PrematurePass),
        3 => HealthEvent::ProbeSuccess,
        4 => HealthEvent::ProbeFailure,
        _ => HealthEvent::Quiet,
    }
}

proptest! {
    /// Every transition the machine takes is a legal edge of the
    /// `Healthy → Suspect → Quarantined → Disabled` diagram (including
    /// the healing back-edges), and once `Disabled` is reached no event
    /// whatsoever leaves it.
    #[test]
    fn health_machine_moves_only_along_legal_edges(
        trace in rse_support::collection::vec((0u8..6, 1u64..500), 1..400),
        quarantine_threshold in 1u32..5,
        max_probe_attempts in 1u32..5,
        suspect_decay in 1u64..2_000,
    ) {
        let config = HealthConfig {
            quarantine_threshold,
            probe_base: 16,
            probe_timeout: 8,
            max_probe_attempts,
            suspect_decay,
        };
        let mut h = ModuleHealth::new();
        let mut now = 0u64;
        let mut disabled_seen = false;
        for (selector, dt) in trace {
            now += dt;
            let (from, to) = h.apply(&config, now, decode(selector));
            prop_assert!(
                legal_edge(from, to),
                "illegal edge {:?} -> {:?} on {:?}", from, to, decode(selector)
            );
            prop_assert_eq!(to, h.state());
            if disabled_seen {
                prop_assert_eq!(to, HealthState::Disabled, "Disabled must be absorbing");
            }
            if to == HealthState::Disabled {
                disabled_seen = true;
            }
        }
    }

    /// The disable limit is exact: from `Quarantined`, `k` consecutive
    /// probe failures (with `k = max_probe_attempts`) reach `Disabled`,
    /// and no earlier; a probe success instead restores `Healthy` and
    /// resets the attempt counter.
    #[test]
    fn probe_accounting_is_exact(
        quarantine_threshold in 1u32..4,
        k in 1u32..6,
        heal_instead in any::<bool>(),
    ) {
        let config = HealthConfig {
            quarantine_threshold,
            probe_base: 16,
            probe_timeout: 8,
            max_probe_attempts: k,
            suspect_decay: 1_000,
        };
        let mut h = ModuleHealth::new();
        let mut now = 0u64;
        for _ in 0..quarantine_threshold {
            now += 1;
            h.apply(&config, now, HealthEvent::Anomaly(AnomalyKind::Timeout));
        }
        prop_assert_eq!(h.state(), HealthState::Quarantined);

        if heal_instead {
            // Fail k-1 probes (one short of the limit), then succeed.
            for _ in 0..k - 1 {
                now += 1;
                h.apply(&config, now, HealthEvent::ProbeFailure);
                prop_assert_eq!(h.state(), HealthState::Quarantined);
            }
            now += 1;
            h.apply(&config, now, HealthEvent::ProbeSuccess);
            prop_assert_eq!(h.state(), HealthState::Healthy);
            prop_assert_eq!(h.probe_attempts(), 0);
        } else {
            for i in 0..k {
                prop_assert_eq!(h.state(), HealthState::Quarantined, "failed early at {}", i);
                now += 1;
                h.apply(&config, now, HealthEvent::ProbeFailure);
            }
            prop_assert_eq!(h.state(), HealthState::Disabled);
            // Absorbing under every event kind.
            for selector in 0u8..6 {
                now += 1;
                h.apply(&config, now, decode(selector));
                prop_assert_eq!(h.state(), HealthState::Disabled);
            }
        }
    }
}
