//! The self-checking mechanism of the framework (§3.4, Table 2).
//!
//! A watchdog monitors transitions on the `check`/`checkValid` bits of
//! every IOQ entry:
//!
//! * a missing 0→1 `checkValid` transition within the timeout means a
//!   module is not making progress (or the bit is stuck at 0);
//! * repeated error indications (`check` 0→1, observed as commit-stage
//!   flushes) within the timeout window mean a module is raising false
//!   alarms (or the bit is stuck at 1);
//! * a blocking-CHECK entry whose `checkValid` reads 1 although no module
//!   wrote a result indicates `checkValid` stuck at 1.
//!
//! Each anomaly is **attributed to the owning module** (the IOQ entry
//! records which module a CHECK addresses) and drives that module's
//! [`ModuleHealth`] state machine: `Healthy → Suspect → Quarantined →
//! Disabled`. A quarantined module is decoupled by the §3.4 output
//! multiplexer — its CHECKs commit as NOPs (`checkValid=1, check=0`)
//! while the pipeline and the *other* modules keep running — and is
//! probed for re-enable with exponential backoff (see [`crate::health`]).
//!
//! Global safe mode (the whole framework forced to constant `10`)
//! remains only as the escalation of last resort: it is taken when an
//! anomaly cannot be attributed to any module (the fault sits on the
//! shared output wires), or when at least half of the installed modules
//! have been permanently `Disabled`.

use crate::health::{AnomalyKind, HealthConfig, HealthEvent, HealthState, ModuleHealth};
use crate::ioq::{Ioq, IoqEntryKind};
use rse_isa::ModuleId;
use rse_pipeline::RobId;
use std::collections::{HashMap, VecDeque};

/// Watchdog parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Cycles a blocking CHECK may sit without a `checkValid` 0→1
    /// transition before the owning module is charged a timeout anomaly.
    /// The timer re-arms: a still-stuck entry is charged again every
    /// `timeout` cycles, so a persistent fault escalates `Suspect` to
    /// `Quarantined` even with a single CHECK in flight.
    pub timeout: u64,
    /// Number of flushes (error indications) within one timeout window
    /// that charge the owning module an error-burst anomaly.
    pub burst_threshold: usize,
    /// Number of blocking-CHECK commits that passed without any module
    /// having written a result before `checkValid` is declared stuck at 1
    /// for the owning module.
    pub premature_pass_threshold: usize,
    /// Cycle budget for the guest run: once the cycle counter reaches
    /// this value the watchdog's hang detector fires (exactly once; see
    /// [`Watchdog::poll_hang`]). `u64::MAX` disables the detector —
    /// the default, since only fault-injection campaigns budget runs.
    pub cycle_budget: u64,
    /// Per-module containment parameters (quarantine threshold, probe
    /// backoff, disable limit).
    pub health: HealthConfig,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            timeout: 10_000,
            burst_threshold: 8,
            premature_pass_threshold: 8,
            cycle_budget: u64::MAX,
            health: HealthConfig::default(),
        }
    }
}

/// Why the framework decoupled itself from the pipeline (global safe
/// mode — the escalation of last resort).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafeModeCause {
    /// A module never completed a blocking CHECK (Table 2: "module does
    /// not make progress", or `checkValid` stuck at 0).
    NoProgress {
        /// The CHECK instruction that timed out.
        rob: RobId,
    },
    /// Error indications arrived in a burst (Table 2: false alarm, or
    /// `check` stuck at 1).
    ErrorBurst,
    /// Blocking CHECKs passed commit without module results (Table 2:
    /// `checkValid` stuck at 1).
    PrematurePass,
}

impl std::fmt::Display for SafeModeCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SafeModeCause::NoProgress { rob } => write!(
                f,
                "no progress on blocking CHECK (ROB #{}): module stuck or checkValid stuck at 0",
                rob.0
            ),
            SafeModeCause::ErrorBurst => {
                write!(
                    f,
                    "error-indication burst: false alarms or check stuck at 1"
                )
            }
            SafeModeCause::PrematurePass => write!(
                f,
                "blocking CHECKs passed without module results: checkValid stuck at 1"
            ),
        }
    }
}

/// The self-checking watchdog: per-module anomaly accounting feeding the
/// containment state machines, plus the legacy global decoupling switch.
#[derive(Debug)]
pub struct Watchdog {
    config: WatchdogConfig,
    safe_mode: Option<SafeModeCause>,
    /// Unattributed flush timestamps (symptoms on shared wires, e.g. a
    /// `check` stuck at 1 observed on non-CHECK entries). These trip
    /// global safe mode directly.
    flush_times: VecDeque<u64>,
    /// Unattributed premature passes.
    premature_passes: usize,
    /// Per-slot containment state machines.
    health: [ModuleHealth; ModuleId::SLOTS],
    /// Which slots have a module installed (the escalation denominator).
    installed: [bool; ModuleId::SLOTS],
    /// Per-module flush timestamps within the burst window.
    module_flushes: [VecDeque<u64>; ModuleId::SLOTS],
    /// Per-module premature-pass counters.
    module_prematures: [usize; ModuleId::SLOTS],
    /// The most recent timed-out CHECK per module (carried into the
    /// `NoProgress` cause on escalation).
    last_timeout_rob: [Option<RobId>; ModuleId::SLOTS],
    /// Last cycle at which a still-live entry was charged a timeout, so
    /// the timer re-arms instead of firing every cycle.
    timeout_marks: HashMap<RobId, u64>,
    hang_fired: bool,
    /// Total global safe-mode entries (0 or 1 per run; kept as a counter
    /// for the fault-injection campaign's bookkeeping).
    pub trips: u64,
    /// Total hang-detector firings (0 or 1 per run — see
    /// [`Watchdog::poll_hang`]'s one-shot guarantee).
    pub hangs: u64,
}

impl Watchdog {
    /// Creates a watchdog in coupled (normal) mode with every slot
    /// healthy.
    pub fn new(config: WatchdogConfig) -> Watchdog {
        Watchdog {
            config,
            safe_mode: None,
            flush_times: VecDeque::new(),
            premature_passes: 0,
            health: [ModuleHealth::new(); ModuleId::SLOTS],
            installed: [false; ModuleId::SLOTS],
            module_flushes: std::array::from_fn(|_| VecDeque::new()),
            module_prematures: [0; ModuleId::SLOTS],
            last_timeout_rob: [None; ModuleId::SLOTS],
            timeout_marks: HashMap::new(),
            hang_fired: false,
            trips: 0,
            hangs: 0,
        }
    }

    /// The active global safe-mode cause, if the framework has decoupled.
    pub fn safe_mode(&self) -> Option<SafeModeCause> {
        self.safe_mode
    }

    /// Whether the whole framework is decoupled (global safe mode).
    pub fn is_decoupled(&self) -> bool {
        self.safe_mode.is_some()
    }

    /// Marks a slot as occupied; installed slots form the denominator of
    /// the ≥-half-disabled escalation rule.
    pub fn note_installed(&mut self, id: ModuleId) {
        self.installed[id.index()] = true;
    }

    /// The containment state machine of a slot.
    pub fn module_health(&self, id: ModuleId) -> &ModuleHealth {
        &self.health[id.index()]
    }

    /// The containment state of a slot.
    pub fn module_state(&self, id: ModuleId) -> HealthState {
        self.health[id.index()].state()
    }

    /// Whether a slot is decoupled by the per-module multiplexer
    /// (`Quarantined` or `Disabled`).
    pub fn module_down(&self, id: ModuleId) -> bool {
        self.health[id.index()].state().is_down()
    }

    /// Installed slots whose state machine has reached `Disabled`.
    pub fn disabled_count(&self) -> usize {
        (0..ModuleId::SLOTS)
            .filter(|&i| self.installed[i] && self.health[i].state() == HealthState::Disabled)
            .count()
    }

    /// Number of installed slots.
    pub fn installed_count(&self) -> usize {
        self.installed.iter().filter(|i| **i).count()
    }

    fn trip(&mut self, cause: SafeModeCause) {
        if self.safe_mode.is_none() {
            self.safe_mode = Some(cause);
            self.trips += 1;
        }
    }

    /// Charges an anomaly to a module's state machine.
    fn anomaly(&mut self, id: ModuleId, now: u64, kind: AnomalyKind) {
        let (from, to) =
            self.health[id.index()].apply(&self.config.health, now, HealthEvent::Anomaly(kind));
        debug_assert!(
            crate::health::legal_edge(from, to),
            "illegal health edge {from} -> {to}"
        );
    }

    /// Records a commit-stage flush (an error indication reaching the
    /// pipeline). `src` is the module whose CHECK flushed, if the entry
    /// was a CHECK; unattributed flushes (shared-wire symptoms) count
    /// toward the global burst detector instead.
    pub fn record_flush(&mut self, now: u64, src: Option<ModuleId>) {
        match src {
            Some(id) if !self.module_down(id) => {
                let window_start = now.saturating_sub(self.config.timeout);
                let window = &mut self.module_flushes[id.index()];
                window.push_back(now);
                while window.front().is_some_and(|t| *t < window_start) {
                    window.pop_front();
                }
                if window.len() >= self.config.burst_threshold {
                    window.clear();
                    self.anomaly(id, now, AnomalyKind::ErrorBurst);
                }
            }
            Some(_) => {} // already muxed out; racing report ignored
            None => {
                self.flush_times.push_back(now);
                let window_start = now.saturating_sub(self.config.timeout);
                while self.flush_times.front().is_some_and(|t| *t < window_start) {
                    self.flush_times.pop_front();
                }
                if self.flush_times.len() >= self.config.burst_threshold {
                    self.trip(SafeModeCause::ErrorBurst);
                }
            }
        }
    }

    /// Records a blocking CHECK that passed the commit gate although no
    /// module ever wrote its result (a stuck-at-1 `checkValid` symptom),
    /// attributed to the owning module when known.
    pub fn record_premature_pass(&mut self, now: u64, src: Option<ModuleId>) {
        match src {
            Some(id) if !self.module_down(id) => {
                self.module_prematures[id.index()] += 1;
                if self.module_prematures[id.index()] >= self.config.premature_pass_threshold {
                    self.module_prematures[id.index()] = 0;
                    self.anomaly(id, now, AnomalyKind::PrematurePass);
                }
            }
            Some(_) => {}
            None => {
                self.premature_passes += 1;
                if self.premature_passes >= self.config.premature_pass_threshold {
                    self.trip(SafeModeCause::PrematurePass);
                }
            }
        }
    }

    /// Records a CHECK of `id` that committed cleanly (module wrote a
    /// passing result): resets the module's burst window and
    /// premature-pass counter, so sporadic symptoms interleaved with
    /// healthy behavior do not accumulate across the whole run.
    pub fn record_clean_commit(&mut self, _now: u64, id: ModuleId) {
        self.module_flushes[id.index()].clear();
        self.module_prematures[id.index()] = 0;
    }

    /// Whether a quarantined module's next self-test probe may launch.
    pub fn probe_due(&self, id: ModuleId, now: u64) -> bool {
        self.health[id.index()].probe_due(now)
    }

    /// Marks a probe as launched for `id`.
    pub fn probe_launched(&mut self, id: ModuleId) {
        self.health[id.index()].note_probe_launched();
    }

    /// A self-test probe for `id` succeeded: the module leaves
    /// quarantine and is re-coupled.
    pub fn probe_succeeded(&mut self, id: ModuleId, now: u64) {
        let (from, to) =
            self.health[id.index()].apply(&self.config.health, now, HealthEvent::ProbeSuccess);
        debug_assert!(crate::health::legal_edge(from, to));
        // A fresh start: past symptoms do not count against the healed
        // module.
        self.module_flushes[id.index()].clear();
        self.module_prematures[id.index()] = 0;
    }

    /// A self-test probe for `id` failed (wrong verdict or probe
    /// timeout). After `k` consecutive failures the slot is permanently
    /// `Disabled`; if that leaves at least half of the installed modules
    /// disabled, the framework escalates to global safe mode.
    pub fn probe_failed(&mut self, id: ModuleId, now: u64) {
        let (from, to) =
            self.health[id.index()].apply(&self.config.health, now, HealthEvent::ProbeFailure);
        debug_assert!(crate::health::legal_edge(from, to));
        if to == HealthState::Disabled && from != HealthState::Disabled {
            let installed = self.installed_count();
            if installed > 0 && 2 * self.disabled_count() >= installed {
                let cause = match self.health[id.index()].last_cause() {
                    Some(AnomalyKind::Timeout) | None => SafeModeCause::NoProgress {
                        rob: self.last_timeout_rob[id.index()].unwrap_or(RobId(0)),
                    },
                    Some(AnomalyKind::ErrorBurst) => SafeModeCause::ErrorBurst,
                    Some(AnomalyKind::PrematurePass) => SafeModeCause::PrematurePass,
                };
                self.trip(cause);
            }
        }
    }

    /// Polls the cycle-budget hang detector. Returns `true` **exactly
    /// once** — on the first poll at or past the configured
    /// `cycle_budget` — and `false` forever after. The one-shot latch
    /// means a hung guest (e.g. an infinite loop created by an injected
    /// fault) is classified as `Hang` once per run, not re-reported on
    /// every subsequent step; campaigns can therefore never wedge and
    /// never double-count a hang.
    pub fn poll_hang(&mut self, now: u64) -> bool {
        if self.hang_fired || now < self.config.cycle_budget {
            return false;
        }
        self.hang_fired = true;
        self.hangs += 1;
        true
    }

    /// Whether the hang detector has already fired for this run.
    pub fn hang_fired(&self) -> bool {
        self.hang_fired
    }

    /// One cycle of transition monitoring over the IOQ: charge timeout
    /// anomalies to the owning modules and decay quiet `Suspect` slots
    /// back to `Healthy`.
    pub fn tick(&mut self, now: u64, ioq: &Ioq) {
        if self.safe_mode.is_some() {
            return;
        }
        let mut live: Vec<RobId> = Vec::new();
        let mut fired: Vec<(ModuleId, RobId)> = Vec::new();
        for (rob, kind, allocated_at, check_valid, _wrote) in ioq.watchdog_view() {
            live.push(rob);
            let IoqEntryKind::BlockingChk(id) = kind else {
                continue;
            };
            if check_valid || self.module_down(id) {
                continue;
            }
            // Re-arming timer: charge at `allocated_at + timeout + 1`,
            // then again every `timeout` cycles while still stuck.
            let armed_since = self
                .timeout_marks
                .get(&rob)
                .copied()
                .unwrap_or(allocated_at);
            if now.saturating_sub(armed_since) > self.config.timeout {
                fired.push((id, rob));
            }
        }
        for (id, rob) in fired {
            self.timeout_marks.insert(rob, now);
            self.last_timeout_rob[id.index()] = Some(rob);
            self.anomaly(id, now, AnomalyKind::Timeout);
        }
        if !self.timeout_marks.is_empty() {
            self.timeout_marks.retain(|rob, _| live.contains(rob));
        }
        // Quiet decay: a Suspect slot with no anomalies for a full decay
        // window returns to Healthy.
        for i in 0..ModuleId::SLOTS {
            if self.health[i].state() == HealthState::Suspect {
                let (from, to) = self.health[i].apply(&self.config.health, now, HealthEvent::Quiet);
                debug_assert!(crate::health::legal_edge(from, to));
            }
        }
    }
}

impl Default for Watchdog {
    fn default() -> Watchdog {
        Watchdog::new(WatchdogConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ICM: ModuleId = ModuleId::ICM;
    const MLR: ModuleId = ModuleId::MLR;

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            timeout: 100,
            burst_threshold: 3,
            premature_pass_threshold: 3,
            health: HealthConfig {
                quarantine_threshold: 2,
                probe_base: 50,
                probe_timeout: 25,
                max_probe_attempts: 2,
                suspect_decay: 1_000,
            },
            ..WatchdogConfig::default()
        }
    }

    fn wd() -> Watchdog {
        let mut wd = Watchdog::new(cfg());
        wd.note_installed(ICM);
        wd
    }

    #[test]
    fn timeout_fires_first_at_boundary_plus_one() {
        // Satellite: the timeout boundary is exclusive — an entry
        // allocated at cycle 0 with timeout T is charged at T+1, not T.
        let mut wd = wd();
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(5), IoqEntryKind::BlockingChk(ICM));
        wd.tick(100, &ioq);
        assert_eq!(wd.module_state(ICM), HealthState::Healthy);
        wd.tick(101, &ioq);
        assert_eq!(wd.module_state(ICM), HealthState::Suspect);
        assert_eq!(
            wd.module_health(ICM).last_cause(),
            Some(AnomalyKind::Timeout)
        );
        assert!(!wd.is_decoupled(), "one suspect module must not decouple");
    }

    #[test]
    fn rearmed_timeout_escalates_to_quarantine() {
        // The same stuck entry is charged again every `timeout` cycles,
        // so a single in-flight CHECK still reaches Quarantined.
        let mut wd = wd();
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(5), IoqEntryKind::BlockingChk(ICM));
        wd.tick(101, &ioq);
        assert_eq!(wd.module_state(ICM), HealthState::Suspect);
        wd.tick(201, &ioq);
        assert_eq!(wd.module_state(ICM), HealthState::Suspect, "timer re-armed");
        wd.tick(202, &ioq);
        assert_eq!(wd.module_state(ICM), HealthState::Quarantined);
        assert!(!wd.is_decoupled());
    }

    #[test]
    fn completed_checks_do_not_time_out() {
        let mut wd = wd();
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(5), IoqEntryKind::BlockingChk(ICM));
        ioq.complete(10, RobId(5), false);
        wd.tick(500, &ioq);
        assert_eq!(wd.module_state(ICM), HealthState::Healthy);
    }

    #[test]
    fn plain_entries_never_time_out() {
        let mut wd = wd();
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(1), IoqEntryKind::Plain);
        wd.tick(10_000, &ioq);
        assert_eq!(wd.module_state(ICM), HealthState::Healthy);
        assert!(!wd.is_decoupled());
    }

    #[test]
    fn attributed_error_burst_quarantines_only_that_module() {
        let mut wd = wd();
        wd.note_installed(MLR);
        for t in [10, 20, 30, 40, 50, 60] {
            wd.record_flush(t, Some(ICM));
        }
        assert_eq!(wd.module_state(ICM), HealthState::Quarantined);
        assert_eq!(wd.module_state(MLR), HealthState::Healthy);
        assert!(!wd.is_decoupled());
        assert_eq!(
            wd.module_health(ICM).last_cause(),
            Some(AnomalyKind::ErrorBurst)
        );
    }

    #[test]
    fn spread_out_flushes_do_not_charge_anomalies() {
        let mut wd = wd();
        for i in 0..10 {
            wd.record_flush(i * 1000, Some(ICM));
        }
        assert_eq!(wd.module_state(ICM), HealthState::Healthy);
    }

    #[test]
    fn clean_commit_resets_burst_window() {
        // Satellite: two flushes, a clean commit, then two more flushes
        // must not add up to one four-flush burst.
        let mut wd = wd();
        wd.record_flush(10, Some(ICM));
        wd.record_flush(20, Some(ICM));
        wd.record_clean_commit(30, ICM);
        wd.record_flush(40, Some(ICM));
        wd.record_flush(50, Some(ICM));
        assert_eq!(wd.module_state(ICM), HealthState::Healthy);
        // Without the reset the third flush in-window would have charged
        // an anomaly at t=40 already.
        wd.record_flush(60, Some(ICM));
        assert_eq!(wd.module_state(ICM), HealthState::Suspect);
    }

    #[test]
    fn clean_commit_resets_premature_counter() {
        let mut wd = wd();
        wd.record_premature_pass(1, Some(ICM));
        wd.record_premature_pass(2, Some(ICM));
        wd.record_clean_commit(3, ICM);
        wd.record_premature_pass(4, Some(ICM));
        wd.record_premature_pass(5, Some(ICM));
        assert_eq!(wd.module_state(ICM), HealthState::Healthy);
        wd.record_premature_pass(6, Some(ICM));
        assert_eq!(wd.module_state(ICM), HealthState::Suspect);
        assert_eq!(
            wd.module_health(ICM).last_cause(),
            Some(AnomalyKind::PrematurePass)
        );
    }

    #[test]
    fn unattributed_flush_burst_trips_global_safe_mode() {
        // Symptoms on shared wires (no owning module) still decouple the
        // whole framework, as in the original §3.4 design.
        let mut wd = wd();
        wd.record_flush(10, None);
        wd.record_flush(20, None);
        assert!(!wd.is_decoupled());
        wd.record_flush(30, None);
        assert_eq!(wd.safe_mode(), Some(SafeModeCause::ErrorBurst));
        assert_eq!(wd.trips, 1);
    }

    #[test]
    fn unattributed_premature_passes_trip_global_safe_mode() {
        let mut wd = wd();
        wd.record_premature_pass(1, None);
        wd.record_premature_pass(2, None);
        wd.record_premature_pass(3, None);
        assert_eq!(wd.safe_mode(), Some(SafeModeCause::PrematurePass));
    }

    #[test]
    fn probe_lifecycle_heals_a_transient_fault() {
        let mut wd = wd();
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(5), IoqEntryKind::BlockingChk(ICM));
        wd.tick(101, &ioq);
        wd.tick(202, &ioq);
        assert_eq!(wd.module_state(ICM), HealthState::Quarantined);
        // First probe due after the base backoff.
        assert!(!wd.probe_due(ICM, 251));
        assert!(wd.probe_due(ICM, 252));
        wd.probe_launched(ICM);
        assert!(
            !wd.probe_due(ICM, 300),
            "in-flight probe is not re-launched"
        );
        wd.probe_succeeded(ICM, 300);
        assert_eq!(wd.module_state(ICM), HealthState::Healthy);
        assert_eq!(wd.module_health(ICM).reenables, 1);
        assert_eq!(wd.module_health(ICM).probes_launched, 1);
    }

    #[test]
    fn k_failed_probes_disable_and_single_module_escalates() {
        // With one installed module, disabling it leaves ≥ half of the
        // installed modules down: global safe mode is the last resort.
        let mut wd = wd();
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(7), IoqEntryKind::BlockingChk(ICM));
        wd.tick(101, &ioq);
        wd.tick(202, &ioq);
        wd.probe_launched(ICM);
        wd.probe_failed(ICM, 300); // attempt 1 of k=2
        assert_eq!(wd.module_state(ICM), HealthState::Quarantined);
        assert!(!wd.is_decoupled());
        wd.probe_launched(ICM);
        wd.probe_failed(ICM, 500); // attempt 2: Disabled + escalation
        assert_eq!(wd.module_state(ICM), HealthState::Disabled);
        assert_eq!(
            wd.safe_mode(),
            Some(SafeModeCause::NoProgress { rob: RobId(7) })
        );
    }

    #[test]
    fn minority_disabled_does_not_escalate() {
        let mut wd = Watchdog::new(cfg());
        for id in [ModuleId::ICM, ModuleId::MLR, ModuleId::AHBM] {
            wd.note_installed(id);
        }
        for t in [10, 20, 30, 40, 50, 60] {
            wd.record_flush(t, Some(ICM));
        }
        wd.probe_launched(ICM);
        wd.probe_failed(ICM, 100);
        wd.probe_launched(ICM);
        wd.probe_failed(ICM, 200);
        assert_eq!(wd.module_state(ICM), HealthState::Disabled);
        assert_eq!(wd.disabled_count(), 1);
        assert_eq!(wd.installed_count(), 3);
        assert!(
            !wd.is_decoupled(),
            "1 of 3 disabled is below the ≥-half escalation threshold"
        );
    }

    #[test]
    fn half_disabled_escalates_with_module_cause() {
        let mut wd = Watchdog::new(cfg());
        wd.note_installed(ICM);
        wd.note_installed(MLR);
        for t in [10, 20, 30, 40, 50, 60] {
            wd.record_flush(t, Some(MLR));
        }
        wd.probe_launched(MLR);
        wd.probe_failed(MLR, 100);
        wd.probe_launched(MLR);
        wd.probe_failed(MLR, 200);
        // 1 of 2 disabled: 2*1 >= 2 → escalate, carrying the module's
        // last anomaly cause.
        assert_eq!(wd.safe_mode(), Some(SafeModeCause::ErrorBurst));
    }

    #[test]
    fn suspect_decays_quiet_via_tick() {
        let mut wd = wd();
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(5), IoqEntryKind::BlockingChk(ICM));
        wd.tick(101, &ioq);
        assert_eq!(wd.module_state(ICM), HealthState::Suspect);
        ioq.complete(102, RobId(5), false);
        wd.tick(500, &ioq);
        assert_eq!(wd.module_state(ICM), HealthState::Suspect);
        wd.tick(101 + 1_000, &ioq);
        assert_eq!(wd.module_state(ICM), HealthState::Healthy);
    }

    #[test]
    fn down_module_is_not_recharged() {
        let mut wd = wd();
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(5), IoqEntryKind::BlockingChk(ICM));
        wd.tick(101, &ioq);
        wd.tick(202, &ioq);
        assert_eq!(wd.module_state(ICM), HealthState::Quarantined);
        let q = wd.module_health(ICM).quarantines;
        // Stuck entry still live; further ticks and flushes must not
        // re-enter quarantine or pile up anomalies.
        wd.tick(400, &ioq);
        wd.record_flush(401, Some(ICM));
        assert_eq!(wd.module_health(ICM).quarantines, q);
    }

    #[test]
    fn poll_hang_is_one_shot_under_repeated_polls() {
        // Satellite: repeated polls past the budget stay silent after the
        // first firing, including polls at the exact budget boundary.
        let mut wd = Watchdog::new(WatchdogConfig {
            cycle_budget: 1_000,
            ..cfg()
        });
        assert!(!wd.poll_hang(0));
        assert!(!wd.poll_hang(999));
        assert!(!wd.hang_fired());
        // First poll at/past the budget fires...
        assert!(wd.poll_hang(1_000));
        assert!(wd.hang_fired());
        // ...and every subsequent poll is silent (one-shot), even at the
        // boundary value itself and far beyond.
        assert!(!wd.poll_hang(1_000));
        for t in 1_001..1_100 {
            assert!(!wd.poll_hang(t));
        }
        assert!(!wd.poll_hang(u64::MAX));
        assert_eq!(wd.hangs, 1);
    }

    #[test]
    fn hang_detector_disabled_by_default() {
        let mut wd = Watchdog::default();
        assert!(!wd.poll_hang(u64::MAX - 1));
        assert_eq!(wd.hangs, 0);
    }

    #[test]
    fn safe_mode_causes_render_human_readably() {
        assert_eq!(
            SafeModeCause::NoProgress { rob: RobId(7) }.to_string(),
            "no progress on blocking CHECK (ROB #7): module stuck or checkValid stuck at 0"
        );
        assert!(SafeModeCause::ErrorBurst.to_string().contains("burst"));
        assert!(SafeModeCause::PrematurePass
            .to_string()
            .contains("checkValid stuck at 1"));
    }

    #[test]
    fn same_cycle_multi_module_timeouts_charge_in_rob_order() {
        // Satellite regression: when several modules' blocking CHECKs
        // time out in the same cycle, the charge order is ascending ROB
        // order — never HashMap iteration order. Allocate in descending
        // ROB order to stress it.
        let run = || {
            let mut wd = wd();
            wd.note_installed(MLR);
            wd.note_installed(ModuleId::AHBM);
            let mut ioq = Ioq::new(16);
            ioq.allocate(0, RobId(30), IoqEntryKind::BlockingChk(ModuleId::AHBM));
            ioq.allocate(0, RobId(20), IoqEntryKind::BlockingChk(MLR));
            ioq.allocate(0, RobId(10), IoqEntryKind::BlockingChk(ICM));
            // The watchdog's view of the IOQ is sorted by ROB id.
            let robs: Vec<u64> = ioq.watchdog_view().map(|(r, ..)| r.0).collect();
            assert_eq!(robs, vec![10, 20, 30]);
            wd.tick(101, &ioq);
            (
                wd.module_state(ICM),
                wd.module_state(MLR),
                wd.module_state(ModuleId::AHBM),
                wd.last_timeout_rob,
            )
        };
        let (icm, mlr, ahbm, last) = run();
        // All three faulted the same cycle: every transition is the
        // legal Healthy -> Suspect edge, charged to the right module.
        assert_eq!(icm, HealthState::Suspect);
        assert_eq!(mlr, HealthState::Suspect);
        assert_eq!(ahbm, HealthState::Suspect);
        assert!(crate::health::legal_edge(HealthState::Healthy, icm));
        assert_eq!(last[ICM.index()], Some(RobId(10)));
        assert_eq!(last[MLR.index()], Some(RobId(20)));
        assert_eq!(last[ModuleId::AHBM.index()], Some(RobId(30)));
        // And the whole thing replays identically.
        assert_eq!((icm, mlr, ahbm, last), run());
    }

    #[test]
    fn same_cycle_escalations_stay_on_legal_edges() {
        // Two modules escalate Suspect -> Quarantined in the same tick;
        // the health machine's debug assertions verify each edge, and
        // both land down without tripping global safe mode.
        let mut wd = wd();
        wd.note_installed(MLR);
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(2), IoqEntryKind::BlockingChk(MLR));
        ioq.allocate(0, RobId(1), IoqEntryKind::BlockingChk(ICM));
        wd.tick(101, &ioq); // both Suspect
        wd.tick(201, &ioq); // timers re-arm
        wd.tick(202, &ioq); // both Quarantined, same cycle
        assert_eq!(wd.module_state(ICM), HealthState::Quarantined);
        assert_eq!(wd.module_state(MLR), HealthState::Quarantined);
        assert!(crate::health::legal_edge(
            HealthState::Suspect,
            HealthState::Quarantined
        ));
        assert!(!wd.is_decoupled(), "per-module containment, not safe mode");
    }

    #[test]
    fn poll_hang_budget_is_exactly_one_shot_at_boundary() {
        // Satellite regression: the budget boundary is inclusive, the
        // firing is one-shot, and a disabled budget (u64::MAX) never
        // fires no matter how far the clock runs.
        let mut wd = Watchdog::new(WatchdogConfig {
            cycle_budget: 500,
            ..cfg()
        });
        assert!(!wd.poll_hang(499));
        assert!(wd.poll_hang(500), "fires exactly at the budget");
        assert!(!wd.poll_hang(500), "same-cycle re-poll stays silent");
        assert!(!wd.poll_hang(501));
        assert_eq!(wd.hangs, 1);
        let mut off = Watchdog::new(WatchdogConfig {
            cycle_budget: u64::MAX,
            ..cfg()
        });
        assert!(!off.poll_hang(u64::MAX - 1));
        assert_eq!(off.hangs, 0);
    }

    #[test]
    fn first_global_cause_wins() {
        let mut wd = wd();
        for i in 0..5 {
            wd.record_flush(i, None);
        }
        for i in 0..5 {
            wd.record_premature_pass(i, None);
        }
        assert_eq!(wd.safe_mode(), Some(SafeModeCause::ErrorBurst));
        assert_eq!(wd.trips, 1);
    }
}
