//! The self-checking mechanism of the framework (§3.4, Table 2).
//!
//! A watchdog monitors transitions on the `check`/`checkValid` bits of
//! every IOQ entry:
//!
//! * a missing 0→1 `checkValid` transition within the timeout means a
//!   module is not making progress (or the bit is stuck at 0);
//! * repeated error indications (`check` 0→1, observed as commit-stage
//!   flushes) within the timeout window mean a module is raising false
//!   alarms (or the bit is stuck at 1);
//! * a blocking-CHECK entry whose `checkValid` reads 1 although no module
//!   wrote a result indicates `checkValid` stuck at 1.
//!
//! On any of these, the framework is **decoupled**: it switches to a safe
//! mode in which the outputs are forced to `checkValid=1, check=0` so the
//! pipeline always commits (the multiplexer mechanism of §3.4).

use crate::ioq::{Ioq, IoqEntryKind};
use rse_pipeline::RobId;
use std::collections::VecDeque;

/// Watchdog parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Cycles a blocking CHECK may sit without a `checkValid` 0→1
    /// transition before the module is declared stuck.
    pub timeout: u64,
    /// Number of flushes (error indications) within one timeout window
    /// that declare the module erroneous.
    pub burst_threshold: usize,
    /// Number of blocking-CHECK commits that passed without any module
    /// having written a result before `checkValid` is declared stuck at 1.
    pub premature_pass_threshold: usize,
    /// Cycle budget for the guest run: once the cycle counter reaches
    /// this value the watchdog's hang detector fires (exactly once; see
    /// [`Watchdog::poll_hang`]). `u64::MAX` disables the detector —
    /// the default, since only fault-injection campaigns budget runs.
    pub cycle_budget: u64,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            timeout: 10_000,
            burst_threshold: 8,
            premature_pass_threshold: 8,
            cycle_budget: u64::MAX,
        }
    }
}

/// Why the framework decoupled itself from the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafeModeCause {
    /// A module never completed a blocking CHECK (Table 2: "module does
    /// not make progress", or `checkValid` stuck at 0).
    NoProgress {
        /// The CHECK instruction that timed out.
        rob: RobId,
    },
    /// Error indications arrived in a burst (Table 2: false alarm, or
    /// `check` stuck at 1).
    ErrorBurst,
    /// Blocking CHECKs passed commit without module results (Table 2:
    /// `checkValid` stuck at 1).
    PrematurePass,
}

impl std::fmt::Display for SafeModeCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SafeModeCause::NoProgress { rob } => write!(
                f,
                "no progress on blocking CHECK (ROB #{}): module stuck or checkValid stuck at 0",
                rob.0
            ),
            SafeModeCause::ErrorBurst => {
                write!(
                    f,
                    "error-indication burst: false alarms or check stuck at 1"
                )
            }
            SafeModeCause::PrematurePass => write!(
                f,
                "blocking CHECKs passed without module results: checkValid stuck at 1"
            ),
        }
    }
}

/// The self-checking watchdog.
#[derive(Debug)]
pub struct Watchdog {
    config: WatchdogConfig,
    safe_mode: Option<SafeModeCause>,
    flush_times: VecDeque<u64>,
    premature_passes: usize,
    hang_fired: bool,
    /// Total safe-mode entries (0 or 1 per run; kept as a counter for the
    /// fault-injection campaign's bookkeeping).
    pub trips: u64,
    /// Total hang-detector firings (0 or 1 per run — see
    /// [`Watchdog::poll_hang`]'s one-shot guarantee).
    pub hangs: u64,
}

impl Watchdog {
    /// Creates a watchdog in coupled (normal) mode.
    pub fn new(config: WatchdogConfig) -> Watchdog {
        Watchdog {
            config,
            safe_mode: None,
            flush_times: VecDeque::new(),
            premature_passes: 0,
            hang_fired: false,
            trips: 0,
            hangs: 0,
        }
    }

    /// The active safe-mode cause, if the framework has decoupled.
    pub fn safe_mode(&self) -> Option<SafeModeCause> {
        self.safe_mode
    }

    /// Whether the framework is decoupled.
    pub fn is_decoupled(&self) -> bool {
        self.safe_mode.is_some()
    }

    fn trip(&mut self, cause: SafeModeCause) {
        if self.safe_mode.is_none() {
            self.safe_mode = Some(cause);
            self.trips += 1;
        }
    }

    /// Records a commit-stage flush (an error indication reaching the
    /// pipeline). Trips [`SafeModeCause::ErrorBurst`] if more than the
    /// configured number land within one timeout window.
    pub fn record_flush(&mut self, now: u64) {
        self.flush_times.push_back(now);
        let window_start = now.saturating_sub(self.config.timeout);
        while self.flush_times.front().is_some_and(|t| *t < window_start) {
            self.flush_times.pop_front();
        }
        if self.flush_times.len() >= self.config.burst_threshold {
            self.trip(SafeModeCause::ErrorBurst);
        }
    }

    /// Records a blocking CHECK that passed the commit gate although no
    /// module ever wrote its result (a stuck-at-1 `checkValid` symptom).
    pub fn record_premature_pass(&mut self, _now: u64) {
        self.premature_passes += 1;
        if self.premature_passes >= self.config.premature_pass_threshold {
            self.trip(SafeModeCause::PrematurePass);
        }
    }

    /// Polls the cycle-budget hang detector. Returns `true` **exactly
    /// once** — on the first poll at or past the configured
    /// `cycle_budget` — and `false` forever after. The one-shot latch
    /// means a hung guest (e.g. an infinite loop created by an injected
    /// fault) is classified as `Hang` once per run, not re-reported on
    /// every subsequent step; campaigns can therefore never wedge and
    /// never double-count a hang.
    pub fn poll_hang(&mut self, now: u64) -> bool {
        if self.hang_fired || now < self.config.cycle_budget {
            return false;
        }
        self.hang_fired = true;
        self.hangs += 1;
        true
    }

    /// Whether the hang detector has already fired for this run.
    pub fn hang_fired(&self) -> bool {
        self.hang_fired
    }

    /// One cycle of transition monitoring over the IOQ.
    pub fn tick(&mut self, now: u64, ioq: &Ioq) {
        if self.safe_mode.is_some() {
            return;
        }
        for (rob, kind, allocated_at, check_valid, _wrote) in ioq.watchdog_view() {
            if matches!(kind, IoqEntryKind::BlockingChk(_))
                && !check_valid
                && now.saturating_sub(allocated_at) > self.config.timeout
            {
                self.trip(SafeModeCause::NoProgress { rob });
                return;
            }
        }
    }
}

impl Default for Watchdog {
    fn default() -> Watchdog {
        Watchdog::new(WatchdogConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_isa::ModuleId;

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            timeout: 100,
            burst_threshold: 3,
            premature_pass_threshold: 3,
            ..WatchdogConfig::default()
        }
    }

    #[test]
    fn no_progress_trips_after_timeout() {
        let mut wd = Watchdog::new(cfg());
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(5), IoqEntryKind::BlockingChk(ModuleId::ICM));
        wd.tick(100, &ioq);
        assert!(!wd.is_decoupled());
        wd.tick(101, &ioq);
        assert_eq!(
            wd.safe_mode(),
            Some(SafeModeCause::NoProgress { rob: RobId(5) })
        );
    }

    #[test]
    fn completed_checks_do_not_trip() {
        let mut wd = Watchdog::new(cfg());
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(5), IoqEntryKind::BlockingChk(ModuleId::ICM));
        ioq.complete(10, RobId(5), false);
        wd.tick(500, &ioq);
        assert!(!wd.is_decoupled());
    }

    #[test]
    fn plain_entries_never_time_out() {
        let mut wd = Watchdog::new(cfg());
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(1), IoqEntryKind::Plain);
        wd.tick(10_000, &ioq);
        assert!(!wd.is_decoupled());
    }

    #[test]
    fn error_burst_trips() {
        let mut wd = Watchdog::new(cfg());
        wd.record_flush(10);
        wd.record_flush(20);
        assert!(!wd.is_decoupled());
        wd.record_flush(30);
        assert_eq!(wd.safe_mode(), Some(SafeModeCause::ErrorBurst));
    }

    #[test]
    fn spread_out_flushes_do_not_trip() {
        let mut wd = Watchdog::new(cfg());
        for i in 0..10 {
            wd.record_flush(i * 1000);
        }
        assert!(!wd.is_decoupled());
    }

    #[test]
    fn premature_passes_trip() {
        let mut wd = Watchdog::new(cfg());
        wd.record_premature_pass(1);
        wd.record_premature_pass(2);
        wd.record_premature_pass(3);
        assert_eq!(wd.safe_mode(), Some(SafeModeCause::PrematurePass));
    }

    #[test]
    fn hang_detector_fires_exactly_once() {
        let mut wd = Watchdog::new(WatchdogConfig {
            cycle_budget: 1_000,
            ..cfg()
        });
        assert!(!wd.poll_hang(0));
        assert!(!wd.poll_hang(999));
        assert!(!wd.hang_fired());
        // First poll at/past the budget fires...
        assert!(wd.poll_hang(1_000));
        assert!(wd.hang_fired());
        // ...and every subsequent poll is silent (one-shot), even though
        // the budget stays exceeded: a hung guest is classified once.
        for t in 1_001..1_100 {
            assert!(!wd.poll_hang(t));
        }
        assert_eq!(wd.hangs, 1);
    }

    #[test]
    fn hang_detector_disabled_by_default() {
        let mut wd = Watchdog::default();
        assert!(!wd.poll_hang(u64::MAX - 1));
        assert_eq!(wd.hangs, 0);
    }

    #[test]
    fn safe_mode_causes_render_human_readably() {
        assert_eq!(
            SafeModeCause::NoProgress { rob: RobId(7) }.to_string(),
            "no progress on blocking CHECK (ROB #7): module stuck or checkValid stuck at 0"
        );
        assert!(SafeModeCause::ErrorBurst.to_string().contains("burst"));
        assert!(SafeModeCause::PrematurePass
            .to_string()
            .contains("checkValid stuck at 1"));
    }

    #[test]
    fn first_cause_wins() {
        let mut wd = Watchdog::new(cfg());
        for i in 0..5 {
            wd.record_flush(i);
        }
        for i in 0..5 {
            wd.record_premature_pass(i);
        }
        assert_eq!(wd.safe_mode(), Some(SafeModeCause::ErrorBurst));
        assert_eq!(wd.trips, 1);
    }
}
