//! The input interface of the framework: the five input queues of §3.1.
//!
//! Each queue has one entry per reorder-buffer slot, indexed by the
//! instruction's unique identifier (the paper uses the ROB entry number;
//! we use the dispatch sequence [`RobId`]). `Commit_Out` carries the
//! commit/squash indications used to free entries in the other queues —
//! modeled here as the `retire` operation plus counters.

use rse_isa::Inst;
use rse_pipeline::RobId;
use std::collections::HashMap;

/// One entry of the `Fetch_Out` queue: the fetched instruction as the
/// pipeline saw it.
#[derive(Debug, Clone, Copy)]
pub struct FetchOutEntry {
    /// Program counter.
    pub pc: u32,
    /// Raw instruction word (post any in-flight corruption — exactly what
    /// the pipeline is executing; the ICM compares this against the
    /// redundant copy).
    pub word: u32,
    /// Decoded instruction.
    pub inst: Inst,
    /// Whether the pipeline flagged it as wrong-path.
    pub wrong_path: bool,
}

/// One entry of the `Execute_Out` queue: execute-stage outputs.
#[derive(Debug, Clone, Copy)]
pub struct ExecuteOutEntry {
    /// ALU result or address-generation output.
    pub result: u32,
    /// Effective address for memory operations.
    pub eff_addr: Option<u32>,
}

/// A bounded, ROB-indexed input queue.
#[derive(Debug)]
pub struct InputQueue<T> {
    name: &'static str,
    entries: HashMap<RobId, T>,
    capacity: usize,
    /// Total entries ever written.
    pub writes: u64,
    /// Maximum simultaneous occupancy observed.
    pub high_water: usize,
}

impl<T> InputQueue<T> {
    /// Creates a queue with `capacity` entries.
    pub fn new(name: &'static str, capacity: usize) -> InputQueue<T> {
        InputQueue {
            name,
            entries: HashMap::new(),
            capacity,
            writes: 0,
            high_water: 0,
        }
    }

    /// The queue's name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Writes the entry for `rob`.
    ///
    /// # Panics
    ///
    /// Panics on overflow — the pipeline guarantees at most ROB-many
    /// in-flight instructions.
    pub fn insert(&mut self, rob: RobId, value: T) {
        assert!(
            self.entries.len() < self.capacity || self.entries.contains_key(&rob),
            "{} queue overflow",
            self.name
        );
        self.entries.insert(rob, value);
        self.writes += 1;
        self.high_water = self.high_water.max(self.entries.len());
    }

    /// Reads the entry for `rob`.
    pub fn get(&self, rob: RobId) -> Option<&T> {
        self.entries.get(&rob)
    }

    /// Frees the entry for `rob` (driven by `Commit_Out`).
    pub fn remove(&mut self, rob: RobId) -> Option<T> {
        self.entries.remove(&rob)
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(rob, entry)` pairs (the modules' scan mechanism)
    /// in ascending ROB order — module scans must behave identically
    /// run to run, so hash-map iteration order never leaks out.
    pub fn iter(&self) -> impl Iterator<Item = (RobId, &T)> {
        let mut view: Vec<_> = self.entries.iter().map(|(k, v)| (*k, v)).collect();
        view.sort_unstable_by_key(|&(k, _)| k);
        view.into_iter()
    }
}

/// The complete input interface of the RSE.
#[derive(Debug)]
pub struct InputQueues {
    /// `Fetch_Out`: currently fetched (dispatched) instructions.
    pub fetch_out: InputQueue<FetchOutEntry>,
    /// `Regfile_Data`: operand values of each instruction.
    pub regfile_data: InputQueue<[u32; 2]>,
    /// `Execute_Out`: ALU results / generated addresses.
    pub execute_out: InputQueue<ExecuteOutEntry>,
    /// `Memory_Out`: values loaded from memory.
    pub memory_out: InputQueue<u32>,
    /// `Commit_Out` commit indications seen.
    pub commits_seen: u64,
    /// `Commit_Out` squash indications seen.
    pub squashes_seen: u64,
}

impl InputQueues {
    /// Creates the five queues, each with `entries` slots.
    pub fn new(entries: usize) -> InputQueues {
        InputQueues {
            fetch_out: InputQueue::new("Fetch_Out", entries),
            regfile_data: InputQueue::new("Regfile_Data", entries),
            execute_out: InputQueue::new("Execute_Out", entries),
            memory_out: InputQueue::new("Memory_Out", entries),
            commits_seen: 0,
            squashes_seen: 0,
        }
    }

    /// Frees every queue's entry for `rob` in response to a `Commit_Out`
    /// indication.
    pub fn retire(&mut self, rob: RobId, squashed: bool) {
        self.fetch_out.remove(rob);
        self.regfile_data.remove(rob);
        self.execute_out.remove(rob);
        self.memory_out.remove(rob);
        if squashed {
            self.squashes_seen += 1;
        } else {
            self.commits_seen += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_isa::Inst;

    fn fe(pc: u32) -> FetchOutEntry {
        FetchOutEntry {
            pc,
            word: 0,
            inst: Inst::Nop,
            wrong_path: false,
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut q = InputQueue::new("Fetch_Out", 4);
        q.insert(RobId(1), fe(0x100));
        assert_eq!(q.get(RobId(1)).unwrap().pc, 0x100);
        assert_eq!(q.len(), 1);
        assert!(q.remove(RobId(1)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = InputQueue::new("Regfile_Data", 4);
        for i in 0..3 {
            q.insert(RobId(i), [0, 0]);
        }
        q.remove(RobId(0));
        q.remove(RobId(1));
        assert_eq!(q.high_water, 3);
        assert_eq!(q.writes, 3);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = InputQueue::new("Memory_Out", 2);
        q.insert(RobId(1), 0u32);
        q.insert(RobId(2), 0u32);
        q.insert(RobId(3), 0u32);
    }

    #[test]
    fn retire_clears_all_queues() {
        let mut qs = InputQueues::new(16);
        qs.fetch_out.insert(RobId(7), fe(0x40));
        qs.regfile_data.insert(RobId(7), [1, 2]);
        qs.execute_out.insert(
            RobId(7),
            ExecuteOutEntry {
                result: 9,
                eff_addr: None,
            },
        );
        qs.memory_out.insert(RobId(7), 42);
        qs.retire(RobId(7), false);
        assert!(qs.fetch_out.is_empty());
        assert!(qs.memory_out.is_empty());
        assert_eq!(qs.commits_seen, 1);
        qs.retire(RobId(8), true);
        assert_eq!(qs.squashes_seen, 1);
    }

    #[test]
    fn reinsert_same_rob_is_update_not_overflow() {
        let mut q = InputQueue::new("Execute_Out", 1);
        q.insert(
            RobId(1),
            ExecuteOutEntry {
                result: 1,
                eff_addr: None,
            },
        );
        q.insert(
            RobId(1),
            ExecuteOutEntry {
                result: 2,
                eff_addr: None,
            },
        );
        assert_eq!(q.get(RobId(1)).unwrap().result, 2);
    }
}
