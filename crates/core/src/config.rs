//! Engine configuration.

use crate::watchdog::WatchdogConfig;

/// Configuration of the RSE framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RseConfig {
    /// Entries in each input queue and in the IOQ. "The number of entries
    /// in each input queue is equal to the number of entries in the
    /// re-order buffer in the pipeline" (§3.1) — 16 in the paper.
    pub queue_entries: usize,
    /// Width of one input-queue entry, in bits (32 for the simulated
    /// processor; enters the hardware cost model).
    pub entry_bits: u32,
    /// Self-checking watchdog parameters (§3.4).
    pub watchdog: WatchdogConfig,
    /// Extra delay, in cycles, between a module writing its result and
    /// the commit unit observing it (the module→IOQ broadcast of Table 3:
    /// 1 cycle).
    pub ioq_broadcast_delay: u64,
    /// Delay between dispatch and a module observing the CHECK in the
    /// `Fetch_Out` queue (the scan delay of Table 3: 1 cycle).
    pub fetch_scan_delay: u64,
}

impl Default for RseConfig {
    fn default() -> RseConfig {
        RseConfig {
            queue_entries: 16,
            entry_bits: 32,
            watchdog: WatchdogConfig::default(),
            ioq_broadcast_delay: 1,
            fetch_scan_delay: 1,
        }
    }
}

impl RseConfig {
    /// The paper's configuration (identical to `default`).
    pub fn paper() -> RseConfig {
        RseConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RseConfig::default();
        assert_eq!(c.queue_entries, 16);
        assert_eq!(c.entry_bits, 32);
        assert_eq!(c.ioq_broadcast_delay, 1);
        assert_eq!(c.fetch_scan_delay, 1);
    }
}
