//! The hardware-module interface: what a reliability/security module
//! embedded in the RSE looks like.
//!
//! "Irrespective of its functionality, each module has (i) a hardware
//! mechanism to scan the Fetch_Out queue to acquire any CHECK
//! instruction intended for this module, and (ii) a memory buffer to hold
//! data accessed from memory" (§3.2). Here the engine performs the scan
//! and delivers [`Module::on_chk`]; the memory buffer is whatever state
//! the module keeps, filled through the MAU.

use crate::mau::{Mau, MauRequest};
use crate::queues::InputQueues;
use rse_isa::{ChkSpec, ModuleId};
use rse_mem::MemorySystem;
use rse_pipeline::{CoprocException, DispatchInfo, ExecuteInfo, RobId};
use std::any::Any;
use std::collections::VecDeque;

/// Result of a check executed by a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No error detected: the instruction may commit (`check = 0`).
    Pass,
    /// Error detected: the pipeline must flush (`check = 1`).
    Fail,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Pass => write!(f, "pass (check=0: commit proceeds)"),
            Verdict::Fail => write!(f, "fail (check=1: pipeline flush)"),
        }
    }
}

/// A CHECK instruction delivered to its module after the Fetch_Out scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChkDispatch {
    /// Identity of the CHECK instruction in the pipeline.
    pub rob: RobId,
    /// PC of the CHECK instruction.
    pub pc: u32,
    /// The decoded CHECK fields.
    pub spec: ChkSpec,
    /// Wide operands (`a0`, `a1` at dispatch).
    pub operands: [u32; 2],
    /// Whether the pipeline flagged the CHECK as wrong-path.
    pub wrong_path: bool,
}

/// The services the engine exposes to a module during a callback.
#[derive(Debug)]
pub struct ModuleCtx<'a> {
    /// Current cycle.
    pub now: u64,
    /// The shared memory system. Functional reads/writes are permitted
    /// (register-transfer semantics); *timed* traffic should go through
    /// [`ModuleCtx::mau`].
    pub mem: &'a mut MemorySystem,
    /// The Memory Access Unit, shared by all modules.
    pub mau: &'a mut Mau,
    /// Read access to the engine's input queues.
    pub queues: &'a InputQueues,
    pub(crate) ioq_writes: &'a mut Vec<(u64, RobId, bool)>,
    pub(crate) exceptions: &'a mut VecDeque<CoprocException>,
    pub(crate) broadcast_delay: u64,
}

impl ModuleCtx<'_> {
    /// Writes the check result for `rob` into the IOQ. The result becomes
    /// visible to the commit unit after the module→IOQ broadcast delay
    /// (1 cycle, Table 3).
    pub fn complete_check(&mut self, rob: RobId, verdict: Verdict) {
        let at = self.now + self.broadcast_delay;
        self.ioq_writes.push((at, rob, verdict == Verdict::Fail));
    }

    /// Submits a memory request to the MAU.
    pub fn mau_submit(&mut self, request: MauRequest) {
        self.mau.submit(request);
    }

    /// Raises an exception toward the operating system (e.g. the DDT's
    /// SavePage).
    pub fn raise_exception(&mut self, exception: CoprocException) {
        self.exceptions.push_back(exception);
    }
}

/// A hardware module embedded in the RSE.
///
/// Callbacks mirror the input queues of Figure 1; all have empty default
/// implementations so a module only taps the signals it needs. State
/// must be either architectural-only or cleaned up on
/// [`Module::on_squash`] — "no speculative state is maintained in the
/// RSE modules" (§3.1).
pub trait Module: Any {
    /// The module slot this module occupies.
    fn id(&self) -> ModuleId;

    /// Human-readable module name.
    fn name(&self) -> &'static str;

    /// A CHECK instruction addressed to this module was acquired from
    /// the `Fetch_Out` queue.
    fn on_chk(&mut self, chk: &ChkDispatch, ctx: &mut ModuleCtx<'_>);

    /// Any instruction was dispatched (the module's Fetch_Out /
    /// Regfile_Data tap).
    fn on_dispatch(&mut self, info: &DispatchInfo, ctx: &mut ModuleCtx<'_>) {
        let _ = (info, ctx);
    }

    /// Any instruction finished execution (Execute_Out / Memory_Out tap).
    fn on_execute(&mut self, info: &ExecuteInfo, ctx: &mut ModuleCtx<'_>) {
        let _ = (info, ctx);
    }

    /// An instruction committed (Commit_Out tap).
    fn on_commit(&mut self, rob: RobId, ctx: &mut ModuleCtx<'_>) {
        let _ = (rob, ctx);
    }

    /// An instruction was squashed; the module must drop any state it
    /// holds for it.
    fn on_squash(&mut self, rob: RobId, ctx: &mut ModuleCtx<'_>) {
        let _ = (rob, ctx);
    }

    /// One clock edge: advance internal pipelines, poll MAU completions.
    fn tick(&mut self, ctx: &mut ModuleCtx<'_>) {
        let _ = ctx;
    }

    /// The §3.4 self-test, exercised by the quarantine re-enable probe
    /// (a synthetic blocking CHECK with op [`rse_isa::chk::ops::SELFTEST`]).
    /// A module should verify whatever internal invariants it can check
    /// cheaply (e.g. a state digest) and report `Fail` when its state is
    /// corrupt. The default claims health unconditionally — appropriate
    /// for stateless modules, where a transient output-wire fault heals
    /// on its own.
    fn self_test(&mut self) -> Verdict {
        Verdict::Pass
    }

    /// Deterministically corrupts the module's internal state (the
    /// campaign's module-state fault model). Returns `true` if any state
    /// was actually flipped; the default has no state to corrupt.
    fn corrupt_state(&mut self, seed: u64) -> bool {
        let _ = seed;
        false
    }

    /// Upcast for state retrieval by system software (the paper's "size
    /// query and retrieval check instruction" is complemented here by
    /// direct inspection for the recovery code path).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_display_is_human_readable() {
        assert_eq!(Verdict::Pass.to_string(), "pass (check=0: commit proceeds)");
        assert_eq!(Verdict::Fail.to_string(), "fail (check=1: pipeline flush)");
    }
}
