//! The engine: module host, input interface, IOQ, MAU and watchdog,
//! assembled behind the pipeline's [`CoProcessor`] taps.

use crate::config::RseConfig;
use crate::health::HealthState;
use crate::ioq::{Ioq, IoqEntryKind, IoqFault};
use crate::mau::Mau;
use crate::module::{ChkDispatch, Module, ModuleCtx, Verdict};
use crate::queues::{ExecuteOutEntry, FetchOutEntry, InputQueues};
use crate::watchdog::{SafeModeCause, Watchdog};
use rse_isa::chk::{ops, ChkSpec};
use rse_isa::{Inst, ModuleId};
use rse_mem::MemorySystem;
use rse_pipeline::{CoProcessor, CommitGate, CoprocException, DispatchInfo, ExecuteInfo, RobId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Base of the synthetic ROB-id range used for quarantine self-test
/// probes (one sentinel id per module slot). Guest instructions are
/// numbered from 0 and a run never reaches this range, so probe results
/// flowing through the module→IOQ broadcast path can be told apart from
/// real check results.
pub const PROBE_ROB_BASE: u64 = u64::MAX - ModuleId::SLOTS as u64;

/// The sentinel ROB id of a module's self-test probe.
pub fn probe_rob(id: ModuleId) -> RobId {
    RobId(PROBE_ROB_BASE + id.index() as u64)
}

fn probe_slot(rob: RobId) -> Option<usize> {
    (rob.0 >= PROBE_ROB_BASE).then(|| (rob.0 - PROBE_ROB_BASE) as usize)
}

/// The owning module of a CHECK entry kind.
fn kind_module(kind: IoqEntryKind) -> Option<ModuleId> {
    match kind {
        IoqEntryKind::Plain => None,
        IoqEntryKind::BlockingChk(m) | IoqEntryKind::NonBlockingChk(m) => Some(m),
    }
}

/// An in-flight quarantine self-test probe.
#[derive(Debug, Clone, Copy)]
struct ProbeFlight {
    issued_at: u64,
    response: Option<Verdict>,
}

/// Counters for the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RseStats {
    /// CHECK instructions observed at dispatch.
    pub chk_dispatched: u64,
    /// Blocking CHECKs routed to modules.
    pub chk_blocking: u64,
    /// Non-blocking CHECKs routed to modules.
    pub chk_non_blocking: u64,
    /// CHECKs addressed to disabled or absent modules (passed through by
    /// the enable/disable unit).
    pub chk_passthrough: u64,
    /// Module-enable operations committed.
    pub enables: u64,
    /// Module-disable operations committed.
    pub disables: u64,
    /// Flush verdicts delivered to the pipeline.
    pub flushes: u64,
    /// Stall verdicts delivered to the pipeline.
    pub stalls: u64,
    /// Gate queries answered in safe (decoupled) mode.
    pub safe_mode_passes: u64,
    /// Correct-path CHECKs actually routed to a live module (the index
    /// space [`ChkFault`] addresses).
    pub chk_routed: u64,
    /// Injected [`ChkFault`]s that fired.
    pub chk_faults_applied: u64,
    /// CHECKs committed as NOPs by the per-module output multiplexer
    /// (their module was quarantined or disabled) — the coverage cost of
    /// containment.
    pub chk_nop_committed: u64,
    /// Quarantine entries across all modules.
    pub quarantines: u64,
    /// Successful probed re-enables across all modules.
    pub reenables: u64,
    /// Self-test probes launched.
    pub probes_launched: u64,
    /// Self-test probes that succeeded.
    pub probes_succeeded: u64,
    /// Self-test probes that failed (wrong verdict or probe timeout).
    pub probes_failed: u64,
    /// Installed modules whose health machine reached `Disabled`.
    pub modules_disabled: u64,
    /// Injected module-state corruptions that actually flipped state.
    pub module_corruptions_applied: u64,
}

/// A transient fault on the CHECK-dispatch path between the pipeline and
/// a module — the framework-side soft errors of the §3.4 evaluation
/// beyond stuck-at IOQ bits. The `index` counts correct-path CHECKs
/// routed to live modules (see [`RseStats::chk_routed`]); the fault is
/// one-shot and consumed when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChkFault {
    /// The `index`-th routed CHECK is lost in transit: the module never
    /// sees it. For a blocking CHECK the IOQ entry stays at `00`, so the
    /// watchdog's no-progress timeout eventually decouples the
    /// framework; for a non-blocking CHECK the check is silently skipped
    /// (protection lost, application unaffected).
    Drop {
        /// Which routed CHECK to drop.
        index: u64,
    },
    /// The `index`-th routed CHECK arrives with its first wide operand
    /// (`a0`) XORed by `xor_mask` — the module checks the wrong datum.
    Garble {
        /// Which routed CHECK to garble.
        index: u64,
        /// Bits to flip in operand 0.
        xor_mask: u32,
    },
}

impl ChkFault {
    fn index(&self) -> u64 {
        match *self {
            ChkFault::Drop { index } | ChkFault::Garble { index, .. } => index,
        }
    }
}

struct PendingChk {
    deliver_at: u64,
    chk: ChkDispatch,
}

/// The Reliability and Security Engine.
///
/// Implements [`CoProcessor`] so it can be attached to
/// [`rse_pipeline::Pipeline::run`] directly.
pub struct Engine {
    config: RseConfig,
    ioq: Ioq,
    queues: InputQueues,
    mau: Mau,
    watchdog: Watchdog,
    slots: Vec<Option<Box<dyn Module>>>,
    enabled: [bool; ModuleId::SLOTS],
    pending_chk: VecDeque<PendingChk>,
    /// Scheduled IOQ writes: (visible_at, rob, error).
    pending_ioq: Vec<(u64, RobId, bool)>,
    exceptions: VecDeque<CoprocException>,
    chk_meta: HashMap<RobId, ChkSpec>,
    chk_fault: Option<ChkFault>,
    /// ROB ids whose CHECK was force-NOP'd by the per-module output
    /// multiplexer (module quarantined/disabled at dispatch or while the
    /// entry was in flight).
    nop_chks: HashSet<RobId>,
    /// In-flight quarantine self-test probes, one slot per module.
    probes: [Option<ProbeFlight>; ModuleId::SLOTS],
    /// Scheduled module-state corruptions: (module, at_cycle, seed).
    module_corruptions: Vec<(ModuleId, u64, u64)>,
    stats: RseStats,
    /// Cached: is any module slot enabled? When false the engine takes a
    /// fast path that skips input-queue and IOQ bookkeeping for non-CHECK
    /// instructions (the latching is architecturally unobservable with no
    /// module consuming it).
    any_enabled: bool,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("enabled", &self.enabled)
            .field("stats", &self.stats)
            .field("safe_mode", &self.watchdog.safe_mode())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Creates an engine with no modules installed. All module slots are
    /// initially **disabled** ("Initially, all modules are disabled",
    /// §3.2); enable them with a CHECK instruction or [`Engine::enable`].
    pub fn new(config: RseConfig) -> Engine {
        Engine {
            config,
            ioq: Ioq::new(config.queue_entries),
            queues: InputQueues::new(config.queue_entries),
            mau: Mau::new(),
            watchdog: Watchdog::new(config.watchdog),
            slots: (0..ModuleId::SLOTS).map(|_| None).collect(),
            enabled: [false; ModuleId::SLOTS],
            pending_chk: VecDeque::new(),
            pending_ioq: Vec::new(),
            exceptions: VecDeque::new(),
            chk_meta: HashMap::new(),
            chk_fault: None,
            nop_chks: HashSet::new(),
            probes: [None; ModuleId::SLOTS],
            module_corruptions: Vec::new(),
            stats: RseStats::default(),
            any_enabled: false,
        }
    }

    /// Installs a module into its slot, replacing any previous occupant.
    /// The slot remains disabled until enabled. Installation registers
    /// the slot with the watchdog's containment accounting (the
    /// denominator of the ≥-half-disabled escalation rule).
    pub fn install(&mut self, module: Box<dyn Module>) {
        let idx = module.id().index();
        self.watchdog.note_installed(module.id());
        self.slots[idx] = Some(module);
    }

    /// Whether a module occupies the slot.
    pub fn module_installed(&self, id: ModuleId) -> bool {
        self.slots[id.index()].is_some()
    }

    /// Enables a module slot directly (equivalent to committing an
    /// `ENABLE` CHECK).
    pub fn enable(&mut self, id: ModuleId) {
        self.enabled[id.index()] = true;
        self.any_enabled = true;
    }

    /// Disables a module slot directly.
    pub fn disable(&mut self, id: ModuleId) {
        self.enabled[id.index()] = false;
        self.any_enabled = self.enabled.iter().any(|e| *e);
    }

    /// Whether the slot is enabled.
    pub fn is_enabled(&self, id: ModuleId) -> bool {
        self.enabled[id.index()]
    }

    /// Typed access to an installed module (for system software reading
    /// module state, e.g. the DDT retrieval path).
    pub fn module_ref<T: 'static>(&self, id: ModuleId) -> Option<&T> {
        self.slots[id.index()]
            .as_deref()
            .and_then(|m| m.as_any().downcast_ref())
    }

    /// Typed mutable access to an installed module.
    pub fn module_mut<T: 'static>(&mut self, id: ModuleId) -> Option<&mut T> {
        self.slots[id.index()]
            .as_deref_mut()
            .and_then(|m| m.as_any_mut().downcast_mut())
    }

    /// Engine counters, with the watchdog's per-module containment
    /// bookkeeping folded in.
    pub fn stats(&self) -> RseStats {
        let mut s = self.stats;
        for i in 0..ModuleId::SLOTS {
            let h = self.watchdog.module_health(ModuleId::new(i as u8));
            s.quarantines += h.quarantines;
            s.reenables += h.reenables;
            s.probes_launched += h.probes_launched;
            if h.state() == HealthState::Disabled {
                s.modules_disabled += 1;
            }
        }
        s
    }

    /// The self-checking watchdog.
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// The active safe-mode cause, if the engine has decoupled itself.
    pub fn safe_mode(&self) -> Option<SafeModeCause> {
        self.watchdog.safe_mode()
    }

    /// The containment state of a module slot.
    pub fn module_health(&self, id: ModuleId) -> HealthState {
        self.watchdog.module_state(id)
    }

    /// Injects a stuck-at fault on the IOQ output bits (§3.4 evaluation).
    pub fn inject_ioq_fault(&mut self, fault: Option<IoqFault>) {
        self.ioq.inject_fault(fault);
    }

    /// Injects a stuck-at fault confined to one module's IOQ output bits
    /// (the module-targeted Table 2 scenarios).
    pub fn inject_module_ioq_fault(&mut self, fault: Option<(ModuleId, IoqFault)>) {
        self.ioq.inject_module_fault(fault);
    }

    /// Arms a one-shot fault on the CHECK-dispatch path (dropped or
    /// garbled delivery to a module).
    pub fn inject_chk_fault(&mut self, fault: Option<ChkFault>) {
        self.chk_fault = fault;
    }

    /// Schedules a deterministic corruption of a module's internal state
    /// at (or after) the given cycle (see [`Module::corrupt_state`]).
    pub fn schedule_module_corruption(&mut self, module: ModuleId, at_cycle: u64, seed: u64) {
        self.module_corruptions.push((module, at_cycle, seed));
    }

    /// Arms a one-shot MAU completion drop targeting a module (see
    /// [`Mau::inject_drop`]).
    pub fn inject_mau_drop(&mut self, fault: Option<(ModuleId, u64)>) {
        self.mau.inject_drop(fault);
    }

    /// Polls the watchdog's cycle-budget hang detector (one-shot; see
    /// [`Watchdog::poll_hang`]).
    pub fn poll_hang(&mut self, now: u64) -> bool {
        self.watchdog.poll_hang(now)
    }

    /// The IOQ (inspection).
    pub fn ioq(&self) -> &Ioq {
        &self.ioq
    }

    /// The MAU (inspection).
    pub fn mau(&self) -> &Mau {
        &self.mau
    }

    /// Runs `f` for each installed+enabled module with a [`ModuleCtx`].
    /// With `skip_down`, modules decoupled by the per-module multiplexer
    /// (quarantined/disabled) are left out — used for the dispatch and
    /// execute input taps, which the mux disconnects; commit/squash
    /// bookkeeping and clock ticks still reach a quarantined module so
    /// it can drop stale state and answer self-test probes.
    fn for_each_module(
        &mut self,
        now: u64,
        mem: &mut MemorySystem,
        skip_down: bool,
        mut f: impl FnMut(&mut dyn Module, &mut ModuleCtx<'_>),
    ) {
        for idx in 0..self.slots.len() {
            if !self.enabled[idx] {
                continue;
            }
            if skip_down
                && self
                    .watchdog
                    .module_state(ModuleId::new(idx as u8))
                    .is_down()
            {
                continue;
            }
            let Some(mut module) = self.slots[idx].take() else {
                continue;
            };
            let mut ctx = ModuleCtx {
                now,
                mem,
                mau: &mut self.mau,
                queues: &self.queues,
                ioq_writes: &mut self.pending_ioq,
                exceptions: &mut self.exceptions,
                broadcast_delay: self.config.ioq_broadcast_delay,
            };
            f(module.as_mut(), &mut ctx);
            self.slots[idx] = Some(module);
        }
    }

    /// Runs `f` for one specific module slot (even callbacks like
    /// `on_chk` only go to the addressed module).
    fn with_module(
        &mut self,
        id: ModuleId,
        now: u64,
        mem: &mut MemorySystem,
        f: impl FnOnce(&mut dyn Module, &mut ModuleCtx<'_>),
    ) {
        let idx = id.index();
        if !self.enabled[idx] {
            return;
        }
        let Some(mut module) = self.slots[idx].take() else {
            return;
        };
        let mut ctx = ModuleCtx {
            now,
            mem,
            mau: &mut self.mau,
            queues: &self.queues,
            ioq_writes: &mut self.pending_ioq,
            exceptions: &mut self.exceptions,
            broadcast_delay: self.config.ioq_broadcast_delay,
        };
        f(module.as_mut(), &mut ctx);
        self.slots[idx] = Some(module);
    }

    /// Applies enable/disable requests at dispatch (program order); the
    /// commit-time application in `on_commit` is then idempotent.
    fn apply_enable_at_dispatch(&mut self, spec: &ChkSpec, wrong_path: bool) {
        if wrong_path {
            return;
        }
        match spec.op {
            ops::ENABLE => {
                self.enabled[spec.module.index()] = true;
                self.any_enabled = true;
            }
            ops::DISABLE => {
                self.enabled[spec.module.index()] = false;
                self.any_enabled = self.enabled.iter().any(|e| *e);
            }
            _ => {}
        }
    }

    /// Whether a CHECK is actively routed to a module (installed, enabled,
    /// and not an enable/disable request handled by the engine itself).
    fn routed_to_module(&self, spec: &ChkSpec) -> bool {
        spec.op != ops::ENABLE
            && spec.op != ops::DISABLE
            && self.enabled[spec.module.index()]
            && self.slots[spec.module.index()].is_some()
    }

    /// Resolves in-flight self-test probes. The watchdog reads the probe
    /// result off the same IOQ output wires as everything else, so a
    /// stuck-at fault (global or module-targeted) biases the observation:
    /// a stuck `checkValid=0` makes the probe look unanswered (timeout
    /// failure), a stuck `checkValid=1` makes it look answered with no
    /// module write (premature — failure), a stuck `check=1` reads as an
    /// error verdict, and a stuck `check=0` masks even a failing
    /// self-test (the probe cannot see past it).
    fn resolve_probes(&mut self, now: u64) {
        let probe_timeout = self.config.watchdog.health.probe_timeout;
        for slot in 0..ModuleId::SLOTS {
            let Some(flight) = self.probes[slot] else {
                continue;
            };
            let id = ModuleId::new(slot as u8);
            let timed_out = now.saturating_sub(flight.issued_at) > probe_timeout;
            let verdict: Option<bool> = match self.ioq.effective_fault_for(id) {
                Some(IoqFault::ValidStuck0) => timed_out.then_some(false),
                Some(IoqFault::ValidStuck1) => Some(false),
                Some(IoqFault::CheckStuck1) => match flight.response {
                    Some(_) => Some(false),
                    None => timed_out.then_some(false),
                },
                Some(IoqFault::CheckStuck0) => match flight.response {
                    Some(_) => Some(true),
                    None => timed_out.then_some(false),
                },
                None => match flight.response {
                    Some(v) => Some(v == Verdict::Pass),
                    None => timed_out.then_some(false),
                },
            };
            match verdict {
                Some(true) => {
                    self.probes[slot] = None;
                    self.stats.probes_succeeded += 1;
                    self.watchdog.probe_succeeded(id, now);
                    // Stale CHECKs allocated before/while the module was
                    // down were never delivered; force-NOP them so the
                    // healed module is not immediately re-charged with
                    // their (inevitable) timeouts.
                    for rob in self.ioq.incomplete_for(id) {
                        self.nop_chks.insert(rob);
                    }
                }
                Some(false) => {
                    self.probes[slot] = None;
                    self.stats.probes_failed += 1;
                    self.watchdog.probe_failed(id, now);
                }
                None => {}
            }
        }
    }

    /// Launches due self-test probes into quarantined modules: a
    /// synthetic blocking CHECK with the common `SELFTEST` op, delivered
    /// through the ordinary module interface.
    fn launch_probes(&mut self, now: u64, mem: &mut MemorySystem) {
        for slot in 0..ModuleId::SLOTS {
            let id = ModuleId::new(slot as u8);
            if self.probes[slot].is_some()
                || !self.enabled[slot]
                || self.slots[slot].is_none()
                || !self.watchdog.probe_due(id, now)
            {
                continue;
            }
            self.watchdog.probe_launched(id);
            self.probes[slot] = Some(ProbeFlight {
                issued_at: now,
                response: None,
            });
            let chk = ChkDispatch {
                rob: probe_rob(id),
                pc: 0,
                spec: ChkSpec::new(id, true, ops::SELFTEST, 0),
                operands: [0, 0],
                wrong_path: false,
            };
            self.with_module(id, now, mem, |m, ctx| m.on_chk(&chk, ctx));
        }
    }
}

impl CoProcessor for Engine {
    fn on_dispatch(&mut self, now: u64, info: &DispatchInfo, mem: &mut MemorySystem) {
        if !self.any_enabled {
            // Fast path: no module consumes the input queues; only CHECK
            // bookkeeping (enable requests) is architecturally relevant.
            if let Inst::Chk(spec) = info.inst {
                self.stats.chk_dispatched += 1;
                self.stats.chk_passthrough += 1;
                self.chk_meta.insert(info.rob, spec);
                self.apply_enable_at_dispatch(&spec, info.wrong_path);
                if self.any_enabled {
                    // The slot just turned on; fall through so this and
                    // subsequent instructions are latched normally.
                    self.ioq.allocate(now, info.rob, IoqEntryKind::Plain);
                    self.queues.fetch_out.insert(
                        info.rob,
                        FetchOutEntry {
                            pc: info.pc,
                            word: info.word,
                            inst: info.inst,
                            wrong_path: info.wrong_path,
                        },
                    );
                    self.queues.regfile_data.insert(info.rob, info.operands);
                }
            }
            return;
        }
        self.queues.fetch_out.insert(
            info.rob,
            FetchOutEntry {
                pc: info.pc,
                word: info.word,
                inst: info.inst,
                wrong_path: info.wrong_path,
            },
        );
        self.queues.regfile_data.insert(info.rob, info.operands);
        // Allocate the IOQ entry (Table 1 initial bits).
        if let Inst::Chk(spec) = info.inst {
            self.stats.chk_dispatched += 1;
            self.chk_meta.insert(info.rob, spec);
            // Enable/disable takes effect at in-order dispatch, so a
            // CHECK that follows an ENABLE in program order is routed to
            // the (now live) module. Wrong-path requests are ignored.
            self.apply_enable_at_dispatch(&spec, info.wrong_path);
            let routed = self.routed_to_module(&spec);
            let muxed = routed && self.watchdog.module_down(spec.module);
            if routed && !muxed {
                let kind = if spec.blocking {
                    self.stats.chk_blocking += 1;
                    IoqEntryKind::BlockingChk(spec.module)
                } else {
                    self.stats.chk_non_blocking += 1;
                    IoqEntryKind::NonBlockingChk(spec.module)
                };
                self.ioq.allocate(now, info.rob, kind);
                // Apply any armed CHECK-dispatch fault (correct-path
                // routed CHECKs only; the fault is one-shot).
                let mut operands = info.operands;
                let mut dropped = false;
                if !info.wrong_path {
                    if let Some(fault) = self.chk_fault {
                        if fault.index() == self.stats.chk_routed {
                            match fault {
                                ChkFault::Drop { .. } => dropped = true,
                                ChkFault::Garble { xor_mask, .. } => operands[0] ^= xor_mask,
                            }
                            self.chk_fault = None;
                            self.stats.chk_faults_applied += 1;
                        }
                    }
                    self.stats.chk_routed += 1;
                }
                if !spec.blocking {
                    // Asynchronous mode: checkValid is set right after the
                    // module scans the Fetch_Out queue (§3.2). A dropped
                    // non-blocking CHECK still completes the handshake —
                    // the loss is between the scan and the module, so the
                    // check is silently skipped without stalling commit.
                    self.pending_ioq
                        .push((now + self.config.fetch_scan_delay, info.rob, false));
                }
                if !dropped {
                    self.pending_chk.push_back(PendingChk {
                        deliver_at: now + self.config.fetch_scan_delay,
                        chk: ChkDispatch {
                            rob: info.rob,
                            pc: info.pc,
                            spec,
                            operands,
                            wrong_path: info.wrong_path,
                        },
                    });
                }
            } else if muxed {
                // The module is quarantined/disabled by the containment
                // multiplexer: the CHECK commits as a NOP (constant `10`)
                // and the module never sees it.
                self.nop_chks.insert(info.rob);
                self.ioq.allocate(now, info.rob, IoqEntryKind::Plain);
            } else {
                // Enable/disable requests and CHECKs to disabled/absent
                // modules: the enable/disable unit writes constant `10`.
                self.stats.chk_passthrough += 1;
                self.ioq.allocate(now, info.rob, IoqEntryKind::Plain);
            }
        } else {
            self.ioq.allocate(now, info.rob, IoqEntryKind::Plain);
        }
        // Fan the dispatch out to every enabled module's tap (the mux
        // disconnects quarantined modules from the input queues).
        self.for_each_module(now, mem, true, |m, ctx| m.on_dispatch(info, ctx));
    }

    fn on_execute(&mut self, now: u64, info: &ExecuteInfo, mem: &mut MemorySystem) {
        if !self.any_enabled {
            return;
        }
        self.queues.execute_out.insert(
            info.rob,
            ExecuteOutEntry {
                result: info.result,
                eff_addr: info.eff_addr,
            },
        );
        if let Some(loaded) = info.loaded {
            self.queues.memory_out.insert(info.rob, loaded);
        }
        self.for_each_module(now, mem, true, |m, ctx| m.on_execute(info, ctx));
    }

    fn on_commit(&mut self, now: u64, rob: RobId, mem: &mut MemorySystem) {
        // If the CHECK is committing before its scan-delayed delivery
        // fired (a fast commit), deliver it to its module now: the scan
        // completes no later than retirement. Quarantined modules are
        // disconnected from the scan — the CHECK is simply lost.
        if let Some(pos) = self.pending_chk.iter().position(|p| p.chk.rob == rob) {
            let p = self.pending_chk.remove(pos).expect("position valid");
            let chk = p.chk;
            if !self.watchdog.module_down(chk.spec.module) {
                self.with_module(chk.spec.module, now, mem, |m, ctx| m.on_chk(&chk, ctx));
            }
        }
        // Enable/disable becomes architectural at commit.
        if !self.chk_meta.is_empty() {
            if let Some(spec) = self.chk_meta.remove(&rob) {
                match spec.op {
                    ops::ENABLE => {
                        self.enabled[spec.module.index()] = true;
                        self.any_enabled = true;
                        self.stats.enables += 1;
                    }
                    ops::DISABLE => {
                        self.enabled[spec.module.index()] = false;
                        self.any_enabled = self.enabled.iter().any(|e| *e);
                        self.stats.disables += 1;
                    }
                    _ => {}
                }
            }
        }
        // Containment bookkeeping: count mux-forced NOP commits, and let
        // the watchdog reset a module's symptom windows on a clean,
        // module-written passing commit.
        if self.nop_chks.remove(&rob) {
            self.stats.chk_nop_committed += 1;
        } else if let Some((kind, wrote, check)) = self.ioq.entry_state(rob) {
            if let Some(m) = kind_module(kind) {
                if self.watchdog.module_down(m) {
                    // The module went down while this CHECK was in
                    // flight; the gate converted it to a NOP.
                    self.stats.chk_nop_committed += 1;
                } else if wrote && !check {
                    self.watchdog.record_clean_commit(now, m);
                }
            }
        }
        if !self.any_enabled {
            self.ioq.free(rob);
            return;
        }
        self.for_each_module(now, mem, false, |m, ctx| m.on_commit(rob, ctx));
        self.queues.retire(rob, false);
        self.ioq.free(rob);
    }

    fn on_squash(&mut self, now: u64, rob: RobId, mem: &mut MemorySystem) {
        if !self.any_enabled {
            if !self.chk_meta.is_empty() {
                self.chk_meta.remove(&rob);
            }
            return;
        }
        self.chk_meta.remove(&rob);
        self.nop_chks.remove(&rob);
        self.pending_chk.retain(|p| p.chk.rob != rob);
        self.pending_ioq.retain(|(_, r, _)| *r != rob);
        self.for_each_module(now, mem, false, |m, ctx| m.on_squash(rob, ctx));
        self.queues.retire(rob, true);
        self.ioq.free(rob);
    }

    fn commit_gate(&mut self, now: u64, rob: RobId) -> CommitGate {
        if !self.any_enabled {
            return CommitGate::Pass;
        }
        if self.watchdog.is_decoupled() {
            // Global safe mode: constant `10` — everything commits.
            self.stats.safe_mode_passes += 1;
            return CommitGate::Pass;
        }
        // Per-module output multiplexer (§3.4): a CHECK owned by a
        // quarantined/disabled module is forced to `10` and commits as a
        // NOP, whatever its real bits say.
        if self.nop_chks.contains(&rob) {
            return CommitGate::PassNop;
        }
        let src = self.ioq.entry_kind(rob).and_then(kind_module);
        if let Some(m) = src {
            if self.watchdog.module_down(m) {
                self.nop_chks.insert(rob);
                return CommitGate::PassNop;
            }
        }
        let gate = self.ioq.gate(rob);
        match gate {
            CommitGate::Flush => {
                self.stats.flushes += 1;
                self.watchdog.record_flush(now, src);
                if self.watchdog.is_decoupled() {
                    // An unattributed burst just tripped global safe
                    // mode: decouple immediately rather than honoring
                    // the faulty flush.
                    self.stats.safe_mode_passes += 1;
                    return CommitGate::Pass;
                }
                if let Some(m) = src {
                    if self.watchdog.module_down(m) {
                        // The burst quarantined the module: the mux now
                        // forces its output to `10`.
                        self.nop_chks.insert(rob);
                        return CommitGate::PassNop;
                    }
                }
            }
            CommitGate::Stall => self.stats.stalls += 1,
            CommitGate::Pass => {
                // A blocking CHECK passing without a module result is a
                // stuck-at-1 `checkValid` symptom.
                if let Some((kind, wrote, _)) = self.ioq.entry_state(rob) {
                    if matches!(kind, IoqEntryKind::BlockingChk(_)) && !wrote {
                        self.watchdog.record_premature_pass(now, src);
                        if let Some(m) = src {
                            if self.watchdog.module_down(m) {
                                self.nop_chks.insert(rob);
                                return CommitGate::PassNop;
                            }
                        }
                    }
                }
            }
            CommitGate::PassNop => unreachable!("IOQ never emits PassNop"),
        }
        gate
    }

    fn tick(&mut self, now: u64, mem: &mut MemorySystem) {
        if !self.any_enabled {
            return;
        }
        // Apply scheduled module-state corruptions (fault injection).
        if !self.module_corruptions.is_empty() {
            let due: Vec<(ModuleId, u64, u64)> = self
                .module_corruptions
                .iter()
                .copied()
                .filter(|(_, at, _)| *at <= now)
                .collect();
            self.module_corruptions.retain(|(_, at, _)| *at > now);
            for (id, _, seed) in due {
                if let Some(module) = self.slots[id.index()].as_deref_mut() {
                    if module.corrupt_state(seed) {
                        self.stats.module_corruptions_applied += 1;
                    }
                }
            }
        }
        // Deliver CHECKs whose Fetch_Out scan delay has elapsed. A
        // quarantined module is disconnected from the scan: its CHECKs
        // are dropped here and their IOQ entries NOP at commit.
        while self
            .pending_chk
            .front()
            .is_some_and(|p| p.deliver_at <= now)
        {
            let p = self.pending_chk.pop_front().expect("front checked");
            let chk = p.chk;
            if !self.watchdog.module_down(chk.spec.module) {
                self.with_module(chk.spec.module, now, mem, |m, ctx| m.on_chk(&chk, ctx));
            }
        }
        // The MAU moves data.
        self.mau.tick(now, mem);
        // Modules advance their internal pipelines (including
        // quarantined ones, so self-test probes get answered).
        self.for_each_module(now, mem, false, |m, ctx| m.tick(ctx));
        // Apply module results whose broadcast delay has elapsed. Writes
        // to the probe sentinel ROB range are self-test responses and are
        // routed to the probe bookkeeping instead of the IOQ.
        let due: Vec<(u64, RobId, bool)> = self
            .pending_ioq
            .iter()
            .copied()
            .filter(|(at, ..)| *at <= now)
            .collect();
        self.pending_ioq.retain(|(at, ..)| *at > now);
        for (_, rob, error) in due {
            if let Some(slot) = probe_slot(rob) {
                if let Some(flight) = self.probes.get_mut(slot).and_then(|f| f.as_mut()) {
                    flight.response = Some(if error { Verdict::Fail } else { Verdict::Pass });
                }
            } else {
                self.ioq.complete(now, rob, error);
            }
        }
        // Self-checking: per-module timeout attribution and quiet decay.
        self.watchdog.tick(now, &self.ioq);
        // Probe lifecycle (suppressed entirely in global safe mode).
        if !self.watchdog.is_decoupled() {
            self.resolve_probes(now);
            self.launch_probes(now, mem);
        }
    }

    fn take_exception(&mut self) -> Option<CoprocException> {
        self.exceptions.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::AnomalyKind;
    use crate::testutil::{CountingModule, ScriptedBehavior, ScriptedModule};
    use crate::Verdict;
    use rse_isa::asm::assemble;
    use rse_mem::{MemConfig, MemorySystem};
    use rse_pipeline::{Pipeline, PipelineConfig, StepEvent};

    const SLOT9: ModuleId = ModuleId::ICM; // reuse slot 0 for the scripted module

    fn run(engine: &mut Engine, src: &str) -> Pipeline {
        let image = assemble(src).expect("assembles");
        let mut cpu = Pipeline::new(
            PipelineConfig::default(),
            MemorySystem::new(MemConfig::with_framework()),
        );
        cpu.load_image(&image);
        let ev = cpu.run(engine, 2_000_000);
        assert_eq!(ev, StepEvent::Halted, "program did not halt");
        cpu
    }

    #[test]
    fn plain_program_commits_through_engine() {
        let mut engine = Engine::new(RseConfig::default());
        let cpu = run(
            &mut engine,
            "main: li r8, 7\nli r9, 8\nadd r10, r8, r9\nhalt",
        );
        assert_eq!(cpu.regs()[10], 15);
        assert_eq!(engine.stats().flushes, 0);
    }

    #[test]
    fn enable_disable_via_check_instruction() {
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(CountingModule::new(SLOT9)));
        assert!(!engine.is_enabled(SLOT9));
        run(&mut engine, "main: chk icm, nblk, 0, 0\nhalt"); // op 0 = ENABLE
        assert!(engine.is_enabled(SLOT9));
        assert_eq!(engine.stats().enables, 1);
        run(&mut engine, "main: chk icm, nblk, 1, 0\nhalt"); // op 1 = DISABLE
        assert!(!engine.is_enabled(SLOT9));
    }

    #[test]
    fn chk_to_disabled_module_passes_through() {
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(CountingModule::new(SLOT9)));
        // Module never enabled: the blocking CHECK must not stall forever.
        let cpu = run(&mut engine, "main: chk icm, blk, 2, 0\nli r8, 1\nhalt");
        assert_eq!(cpu.regs()[8], 1);
        assert_eq!(engine.stats().chk_passthrough, 1);
        let m: &CountingModule = engine.module_ref(SLOT9).unwrap();
        assert_eq!(m.chks_seen, 0);
    }

    #[test]
    fn blocking_check_stalls_then_passes() {
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(ScriptedModule::new(
            SLOT9,
            ScriptedBehavior::Respond {
                verdict: Verdict::Pass,
                latency: 25,
            },
        )));
        engine.enable(SLOT9);
        let cpu = run(&mut engine, "main: chk icm, blk, 2, 0\nli r8, 1\nhalt");
        assert_eq!(cpu.regs()[8], 1);
        assert!(
            cpu.stats().commit_stall_cycles > 0,
            "blocking CHECK should stall commit"
        );
        assert_eq!(engine.stats().chk_blocking, 1);
    }

    #[test]
    fn failing_check_flushes_and_burst_quarantines_module() {
        // A module that always reports an error: the CHECK flushes and
        // restarts until the watchdog's per-module burst accounting
        // quarantines the module (Table 2 "false alarm" scenario). The
        // framework as a whole stays coupled.
        let mut cfg = RseConfig::default();
        cfg.watchdog.burst_threshold = 4;
        let mut engine = Engine::new(cfg);
        engine.install(Box::new(ScriptedModule::new(
            SLOT9,
            ScriptedBehavior::Respond {
                verdict: Verdict::Fail,
                latency: 3,
            },
        )));
        engine.enable(SLOT9);
        let cpu = run(&mut engine, "main: chk icm, blk, 2, 0\nli r8, 1\nhalt");
        // The program completes because the mux NOPs the faulty module's
        // CHECK; global safe mode is never entered.
        assert_eq!(cpu.regs()[8], 1);
        assert_eq!(engine.safe_mode(), None);
        assert!(engine.module_health(SLOT9).is_down());
        assert_eq!(
            engine.watchdog().module_health(SLOT9).last_cause(),
            Some(crate::health::AnomalyKind::ErrorBurst)
        );
        assert!(engine.stats().flushes >= 4);
        assert!(engine.stats().quarantines >= 1);
        assert!(engine.stats().chk_nop_committed >= 1);
        assert!(cpu.stats().nop_commits >= 1);
        assert!(cpu.stats().check_flushes >= 3);
    }

    #[test]
    fn silent_module_times_out_to_quarantine() {
        // Table 2 "module does not make progress": the timeout anomalies
        // are attributed to the silent module, which is quarantined; the
        // framework stays coupled.
        let mut cfg = RseConfig::default();
        cfg.watchdog.timeout = 200;
        let mut engine = Engine::new(cfg);
        engine.install(Box::new(ScriptedModule::new(
            SLOT9,
            ScriptedBehavior::Silent,
        )));
        engine.enable(SLOT9);
        let cpu = run(&mut engine, "main: chk icm, blk, 2, 0\nli r8, 1\nhalt");
        assert_eq!(cpu.regs()[8], 1);
        assert_eq!(engine.safe_mode(), None);
        assert!(engine.module_health(SLOT9).is_down());
        assert_eq!(
            engine.watchdog().module_health(SLOT9).last_cause(),
            Some(crate::health::AnomalyKind::Timeout)
        );
        assert!(engine.stats().chk_nop_committed >= 1);
    }

    #[test]
    fn async_check_does_not_stall() {
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(CountingModule::new(SLOT9)));
        engine.enable(SLOT9);
        let cpu = run(&mut engine, "main: chk icm, nblk, 2, 0\nli r8, 1\nhalt");
        assert_eq!(cpu.regs()[8], 1);
        assert_eq!(engine.stats().chk_non_blocking, 1);
        let m: &CountingModule = engine.module_ref(SLOT9).unwrap();
        assert_eq!(m.chks_seen, 1);
    }

    #[test]
    fn wrong_path_chks_are_squashed_cleanly() {
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(CountingModule::new(SLOT9)));
        engine.enable(SLOT9);
        // The loop branch mispredicts at least once; instructions beyond
        // it (including the CHK at `after`) are fetched wrong-path and
        // squashed.
        let cpu = run(
            &mut engine,
            r#"
            main:   li r8, 0
                    li r9, 3
            loop:   addi r8, r8, 1
                    bne r8, r9, loop
            after:  chk icm, nblk, 2, 0
                    halt
            "#,
        );
        assert_eq!(cpu.regs()[8], 3);
        let m: &CountingModule = engine.module_ref(SLOT9).unwrap();
        // Exactly one CHK commits even if several were dispatched.
        assert_eq!(m.chk_commits, 1);
    }

    #[test]
    fn dropped_nonblocking_chk_never_reaches_module() {
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(CountingModule::new(SLOT9)));
        engine.enable(SLOT9);
        engine.inject_chk_fault(Some(ChkFault::Drop { index: 0 }));
        let cpu = run(&mut engine, "main: chk icm, nblk, 2, 0\nli r8, 1\nhalt");
        // The application is unaffected; the module simply never saw it.
        assert_eq!(cpu.regs()[8], 1);
        assert_eq!(engine.stats().chk_faults_applied, 1);
        let m: &CountingModule = engine.module_ref(SLOT9).unwrap();
        assert_eq!(m.chks_seen, 0);
        assert_eq!(engine.safe_mode(), None);
    }

    #[test]
    fn dropped_blocking_chk_quarantines_module() {
        let mut cfg = RseConfig::default();
        cfg.watchdog.timeout = 200;
        let mut engine = Engine::new(cfg);
        engine.install(Box::new(ScriptedModule::new(
            SLOT9,
            ScriptedBehavior::Respond {
                verdict: Verdict::Pass,
                latency: 2,
            },
        )));
        engine.enable(SLOT9);
        engine.inject_chk_fault(Some(ChkFault::Drop { index: 0 }));
        let cpu = run(&mut engine, "main: chk icm, blk, 2, 0\nli r8, 1\nhalt");
        // The lost blocking CHECK looks exactly like a module that makes
        // no progress. The re-arming timeout charges the owning module
        // until it is quarantined; the stuck CHECK then commits as a NOP
        // through the §3.4 multiplexer and the app finishes — without a
        // global decoupling.
        assert_eq!(cpu.regs()[8], 1);
        assert_eq!(engine.safe_mode(), None);
        assert!(engine.module_health(SLOT9).is_down());
        assert_eq!(
            engine.watchdog().module_health(SLOT9).last_cause(),
            Some(AnomalyKind::Timeout)
        );
        assert!(engine.stats().chk_nop_committed >= 1);
    }

    #[test]
    fn garbled_chk_delivers_flipped_operand() {
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(CountingModule::new(SLOT9)));
        engine.enable(SLOT9);
        engine.inject_chk_fault(Some(ChkFault::Garble {
            index: 0,
            xor_mask: 0xFFFF_0000,
        }));
        run(
            &mut engine,
            "main: li r4, 0x1234\nli r5, 0x5678\nchk icm, nblk, 2, 9\nhalt",
        );
        let m: &CountingModule = engine.module_ref(SLOT9).unwrap();
        assert_eq!(m.last_operands, [0xFFFF_1234, 0x5678]);
        assert_eq!(engine.stats().chk_faults_applied, 1);
    }

    #[test]
    fn chk_fault_index_past_end_never_fires() {
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(CountingModule::new(SLOT9)));
        engine.enable(SLOT9);
        engine.inject_chk_fault(Some(ChkFault::Drop { index: 99 }));
        run(&mut engine, "main: chk icm, nblk, 2, 0\nhalt");
        assert_eq!(engine.stats().chk_faults_applied, 0);
        let m: &CountingModule = engine.module_ref(SLOT9).unwrap();
        assert_eq!(m.chks_seen, 1);
    }

    #[test]
    fn operands_reach_module_via_regfile_queue() {
        let mut engine = Engine::new(RseConfig::default());
        engine.install(Box::new(CountingModule::new(SLOT9)));
        engine.enable(SLOT9);
        run(
            &mut engine,
            "main: li r4, 0x1234\nli r5, 0x5678\nchk icm, nblk, 2, 9\nhalt",
        );
        let m: &CountingModule = engine.module_ref(SLOT9).unwrap();
        assert_eq!(m.last_operands, [0x1234, 0x5678]);
        assert_eq!(m.last_param, 9);
    }
}
