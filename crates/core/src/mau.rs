//! The Memory Access Unit (MAU) of §3.2.
//!
//! "Some checks necessitate that the module make an independent memory
//! request. This hardware unit provides memory access for RSE modules and
//! thus eliminates the need for a bus interface unit in each module."
//!
//! A module places a request consisting of an address, the access type
//! (load/store), a byte count, and a tag identifying its internal buffer.
//! Requests sit in a queue serviced cyclically, one at a time; each
//! transfer goes over the shared external bus with *lower* priority than
//! the pipeline (the arbiter of Figure 1), and deliberately bypasses the
//! caches so framework traffic never pollutes application cache state.

use rse_isa::ModuleId;
use rse_mem::MemorySystem;
use std::collections::VecDeque;

/// The access type of a MAU request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MauOp {
    /// Load `bytes` bytes from memory; delivered with the completion.
    Load {
        /// Number of bytes to read.
        bytes: u32,
    },
    /// Store the given bytes to memory at completion time.
    Store {
        /// The data to write.
        data: Vec<u8>,
    },
}

/// A memory request from a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MauRequest {
    /// The requesting module.
    pub module: ModuleId,
    /// Target memory address.
    pub addr: u32,
    /// Load or store, with payload.
    pub op: MauOp,
    /// Module-chosen tag, returned with the completion (the paper's
    /// "pointer to a buffer in the module").
    pub tag: u64,
}

/// A completed MAU request, delivered back to the owning module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MauCompletion {
    /// The requesting module.
    pub module: ModuleId,
    /// The request's tag.
    pub tag: u64,
    /// Address of the transfer.
    pub addr: u32,
    /// Data read from memory (empty for stores).
    pub data: Vec<u8>,
    /// Cycle at which the transfer finished.
    pub finished_at: u64,
}

#[derive(Debug)]
struct InFlight {
    request: MauRequest,
    done_at: u64,
}

/// The Memory Access Unit: one outstanding transfer, a cyclically
/// serviced request queue.
#[derive(Debug, Default)]
pub struct Mau {
    queue: VecDeque<MauRequest>,
    in_flight: Option<InFlight>,
    completions: VecDeque<MauCompletion>,
    /// One-shot injected fault: drop (never deliver) the `index`-th
    /// completion destined for the targeted module — the campaign's
    /// "MAU response drop" model. The transfer itself still happens on
    /// the bus; only the response back to the module is lost.
    drop_fault: Option<(ModuleId, u64)>,
    /// Completions finished per module slot (the index space the drop
    /// fault addresses).
    finished_per_module: [u64; ModuleId::SLOTS],
    /// Requests accepted.
    pub requests: u64,
    /// Transfers finished.
    pub completed: u64,
    /// Total bytes moved.
    pub bytes_moved: u64,
    /// Injected completion drops that fired.
    pub drops: u64,
}

impl Mau {
    /// Creates an idle MAU.
    pub fn new() -> Mau {
        Mau::default()
    }

    /// Queues a request from a module.
    pub fn submit(&mut self, request: MauRequest) {
        self.requests += 1;
        self.queue.push_back(request);
    }

    /// Number of queued (not yet started) requests.
    pub fn pending(&self) -> usize {
        self.queue.len() + usize::from(self.in_flight.is_some())
    }

    /// Arms (or clears) a one-shot completion drop: the `index`-th
    /// completion finished for `module` is silently discarded.
    pub fn inject_drop(&mut self, fault: Option<(ModuleId, u64)>) {
        self.drop_fault = fault;
    }

    /// Completions finished for `module` so far (including dropped
    /// ones) — the index space [`Mau::inject_drop`] addresses.
    pub fn finished_for(&self, module: ModuleId) -> u64 {
        self.finished_per_module[module.index()]
    }

    /// Advances the MAU by one cycle: starts the next transfer if the
    /// unit is idle and finishes the current one when the bus delivers.
    pub fn tick(&mut self, now: u64, mem: &mut MemorySystem) {
        if let Some(fl) = &self.in_flight {
            if now >= fl.done_at {
                let fl = self.in_flight.take().expect("checked above");
                let MauRequest {
                    module,
                    addr,
                    op,
                    tag,
                } = fl.request;
                let data = match op {
                    MauOp::Load { bytes } => {
                        let mut buf = vec![0u8; bytes as usize];
                        mem.memory.read_bytes(addr, &mut buf);
                        buf
                    }
                    MauOp::Store { data } => {
                        mem.memory.write_bytes(addr, &data);
                        self.bytes_moved += data.len() as u64;
                        Vec::new()
                    }
                };
                self.bytes_moved += data.len() as u64;
                self.completed += 1;
                let nth = self.finished_per_module[module.index()];
                self.finished_per_module[module.index()] += 1;
                if self.drop_fault == Some((module, nth)) {
                    // The response back to the module is lost in transit:
                    // the module's buffer fill never arrives.
                    self.drop_fault = None;
                    self.drops += 1;
                } else {
                    self.completions.push_back(MauCompletion {
                        module,
                        tag,
                        addr,
                        data,
                        finished_at: now,
                    });
                }
            }
        }
        if self.in_flight.is_none() {
            if let Some(req) = self.queue.pop_front() {
                let bytes = match &req.op {
                    MauOp::Load { bytes } => *bytes,
                    MauOp::Store { data } => data.len() as u32,
                };
                let done_at = mem.mau_access(now, bytes);
                self.in_flight = Some(InFlight {
                    request: req,
                    done_at,
                });
            }
        }
    }

    /// Drains the completion destined for `module`, if any is ready.
    pub fn take_completion(&mut self, module: ModuleId) -> Option<MauCompletion> {
        let idx = self.completions.iter().position(|c| c.module == module)?;
        self.completions.remove(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rse_mem::MemConfig;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemConfig::with_framework())
    }

    #[test]
    fn load_round_trips_through_memory() {
        let mut mem = mem();
        mem.memory.write_u32(0x1000, 0xDEAD_BEEF);
        let mut mau = Mau::new();
        mau.submit(MauRequest {
            module: ModuleId::ICM,
            addr: 0x1000,
            op: MauOp::Load { bytes: 4 },
            tag: 7,
        });
        let mut now = 0;
        let comp = loop {
            mau.tick(now, &mut mem);
            if let Some(c) = mau.take_completion(ModuleId::ICM) {
                break c;
            }
            now += 1;
            assert!(now < 1000, "MAU never completed");
        };
        assert_eq!(comp.tag, 7);
        assert_eq!(
            u32::from_le_bytes(comp.data.try_into().unwrap()),
            0xDEAD_BEEF
        );
        // 4 bytes = one chunk at 19 cycles with the arbiter config.
        assert!(comp.finished_at >= 19);
    }

    #[test]
    fn store_writes_memory_at_completion() {
        let mut mem = mem();
        let mut mau = Mau::new();
        mau.submit(MauRequest {
            module: ModuleId::MLR,
            addr: 0x2000,
            op: MauOp::Store {
                data: vec![1, 2, 3, 4],
            },
            tag: 0,
        });
        mau.tick(0, &mut mem);
        // Not yet written mid-flight.
        assert_eq!(mem.memory.read_u32(0x2000), 0);
        for now in 1..100 {
            mau.tick(now, &mut mem);
        }
        assert_eq!(mem.memory.read_u32(0x2000), 0x0403_0201);
        assert!(mau.take_completion(ModuleId::MLR).is_some());
    }

    #[test]
    fn requests_service_in_order_one_at_a_time() {
        let mut mem = mem();
        let mut mau = Mau::new();
        for i in 0..3u64 {
            mau.submit(MauRequest {
                module: ModuleId::DDT,
                addr: 0x3000 + 8 * i as u32,
                op: MauOp::Load { bytes: 8 },
                tag: i,
            });
        }
        assert_eq!(mau.pending(), 3);
        let mut tags = Vec::new();
        for now in 0..200 {
            mau.tick(now, &mut mem);
            while let Some(c) = mau.take_completion(ModuleId::DDT) {
                tags.push(c.tag);
            }
        }
        assert_eq!(tags, vec![0, 1, 2]);
        assert_eq!(mau.pending(), 0);
        assert_eq!(mau.completed, 3);
    }

    #[test]
    fn injected_drop_discards_exactly_one_completion() {
        let mut mem = mem();
        let mut mau = Mau::new();
        for i in 0..3u64 {
            mau.submit(MauRequest {
                module: ModuleId::ICM,
                addr: 0x3000 + 8 * i as u32,
                op: MauOp::Load { bytes: 8 },
                tag: i,
            });
        }
        mau.inject_drop(Some((ModuleId::ICM, 1)));
        let mut tags = Vec::new();
        for now in 0..300 {
            mau.tick(now, &mut mem);
            while let Some(c) = mau.take_completion(ModuleId::ICM) {
                tags.push(c.tag);
            }
        }
        // The middle completion vanished; the transfer still counted.
        assert_eq!(tags, vec![0, 2]);
        assert_eq!(mau.completed, 3);
        assert_eq!(mau.drops, 1);
        assert_eq!(mau.finished_for(ModuleId::ICM), 3);
    }

    #[test]
    fn drop_targeting_other_module_never_fires() {
        let mut mem = mem();
        let mut mau = Mau::new();
        mau.inject_drop(Some((ModuleId::DDT, 0)));
        mau.submit(MauRequest {
            module: ModuleId::ICM,
            addr: 0,
            op: MauOp::Load { bytes: 4 },
            tag: 9,
        });
        for now in 0..200 {
            mau.tick(now, &mut mem);
        }
        assert_eq!(mau.take_completion(ModuleId::ICM).unwrap().tag, 9);
        assert_eq!(mau.drops, 0);
    }

    #[test]
    fn completions_routed_per_module() {
        let mut mem = mem();
        let mut mau = Mau::new();
        mau.submit(MauRequest {
            module: ModuleId::ICM,
            addr: 0,
            op: MauOp::Load { bytes: 4 },
            tag: 1,
        });
        mau.submit(MauRequest {
            module: ModuleId::DDT,
            addr: 4,
            op: MauOp::Load { bytes: 4 },
            tag: 2,
        });
        for now in 0..200 {
            mau.tick(now, &mut mem);
        }
        assert!(mau.take_completion(ModuleId::MLR).is_none());
        assert_eq!(mau.take_completion(ModuleId::DDT).unwrap().tag, 2);
        assert_eq!(mau.take_completion(ModuleId::ICM).unwrap().tag, 1);
    }
}
