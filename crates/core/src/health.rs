//! Per-module fault containment: the health state machine of the §3.4
//! self-checking mechanism, refined from a single global switch to one
//! containment unit per module slot.
//!
//! The paper argues the RSE must never become a single point of failure:
//! a faulty module should be disabled while the pipeline — and the
//! *other* modules — keep running. Each installed module therefore owns a
//! four-state machine:
//!
//! ```text
//!          anomaly          anomaly (threshold)        k failed probes
//! Healthy ────────▶ Suspect ────────────────▶ Quarantined ────────▶ Disabled
//!    ▲                 │                           │
//!    │   quiet window  │                           │ successful probe
//!    ◀─────────────────┘                           │
//!    ◀─────────────────────────────────────────────┘
//! ```
//!
//! * **Healthy** — the module drives its IOQ bits normally.
//! * **Suspect** — an anomaly (timeout, error burst, premature pass) was
//!   attributed to the module; it keeps running, but the watchdog is on
//!   alert. A quiet window ([`HealthConfig::suspect_decay`] cycles
//!   without further anomalies) returns it to `Healthy`.
//! * **Quarantined** — the §3.4 output multiplexer forces the module's
//!   IOQ bits to `10`: its CHECKs commit as NOPs and the module is
//!   decoupled from the dispatch/execute input taps. The watchdog
//!   launches self-test probes with exponential backoff: probe *n* fires
//!   `base << n` cycles after the previous probe resolved
//!   ([`HealthConfig::probe_base`]).
//! * **Disabled** — `k` ([`HealthConfig::max_probe_attempts`])
//!   consecutive probes failed; the slot is permanently down. `Disabled`
//!   is absorbing: no event leaves it. Global safe mode remains only as
//!   the escalation of last resort, taken when at least half of the
//!   installed modules are `Disabled`.

/// Health of one module slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HealthState {
    /// Operating normally.
    Healthy,
    /// An anomaly was attributed to the module; under observation.
    Suspect,
    /// Decoupled by the per-module multiplexer; probed for re-enable.
    Quarantined,
    /// Permanently decoupled after `k` failed probes. Absorbing.
    Disabled,
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Quarantined => "quarantined",
            HealthState::Disabled => "disabled",
        })
    }
}

impl HealthState {
    /// Whether the module is decoupled from the pipeline (its CHECKs are
    /// committed as NOPs by the output multiplexer).
    pub fn is_down(self) -> bool {
        matches!(self, HealthState::Quarantined | HealthState::Disabled)
    }
}

/// Why an anomaly was attributed to a module (the Table 2 symptom that
/// the watchdog observed on the module's IOQ output bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnomalyKind {
    /// A blocking CHECK of the module made no progress within the
    /// watchdog timeout (module stuck, or `checkValid` stuck at 0).
    Timeout,
    /// Error indications arrived in a burst (false alarms, or `check`
    /// stuck at 1).
    ErrorBurst,
    /// Blocking CHECKs passed commit without module results
    /// (`checkValid` stuck at 1).
    PrematurePass,
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AnomalyKind::Timeout => "timeout",
            AnomalyKind::ErrorBurst => "error-burst",
            AnomalyKind::PrematurePass => "premature-pass",
        })
    }
}

/// An input to the health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthEvent {
    /// A watchdog anomaly attributed to the module.
    Anomaly(AnomalyKind),
    /// A quarantine self-test probe resolved successfully.
    ProbeSuccess,
    /// A quarantine self-test probe failed (wrong verdict or timeout).
    ProbeFailure,
    /// Time passed with no anomaly (drives the `Suspect → Healthy`
    /// decay); delivered by the watchdog's periodic tick.
    Quiet,
}

/// Containment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Anomalies (within one suspect episode) that escalate `Healthy` to
    /// `Quarantined`; the first anomaly always moves to `Suspect`, so a
    /// threshold of 2 quarantines on the second anomaly.
    pub quarantine_threshold: u32,
    /// Base backoff: probe *n* (0-indexed) fires `probe_base << n`
    /// cycles after the quarantine entry / previous probe failure.
    pub probe_base: u64,
    /// Cycles a launched probe may sit without an observable
    /// `checkValid` 0→1 transition before it is declared failed.
    pub probe_timeout: u64,
    /// `k`: consecutive failed probes that move `Quarantined` to
    /// `Disabled` permanently.
    pub max_probe_attempts: u32,
    /// Quiet cycles after the last anomaly that return `Suspect` to
    /// `Healthy`.
    pub suspect_decay: u64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            quarantine_threshold: 2,
            probe_base: 5_000,
            probe_timeout: 2_500,
            max_probe_attempts: 3,
            suspect_decay: 20_000,
        }
    }
}

/// The per-module health state machine plus its probe/backoff
/// bookkeeping. Pure: transitions happen only through
/// [`ModuleHealth::apply`], so the legal-edge set is a checkable
/// property (see `crates/core/tests/health_properties.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleHealth {
    state: HealthState,
    /// Anomalies in the current suspect episode.
    anomalies: u32,
    /// Cycle of the most recent anomaly.
    last_anomaly_at: Option<u64>,
    /// The most recent anomaly cause (carried into the global
    /// escalation, and into outcome classification).
    last_cause: Option<AnomalyKind>,
    /// Failed probes in the current quarantine episode.
    probe_attempts: u32,
    /// When the next self-test probe may launch (set while Quarantined).
    next_probe_at: Option<u64>,
    /// Total quarantine entries over the run.
    pub quarantines: u64,
    /// Total successful probed re-enables over the run.
    pub reenables: u64,
    /// Total probes launched (the watchdog marks launches so the backoff
    /// clock restarts from the probe's resolution, not its launch).
    pub probes_launched: u64,
}

impl Default for ModuleHealth {
    fn default() -> ModuleHealth {
        ModuleHealth::new()
    }
}

impl ModuleHealth {
    /// A fresh, healthy slot.
    pub fn new() -> ModuleHealth {
        ModuleHealth {
            state: HealthState::Healthy,
            anomalies: 0,
            last_anomaly_at: None,
            last_cause: None,
            probe_attempts: 0,
            next_probe_at: None,
            quarantines: 0,
            reenables: 0,
            probes_launched: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The most recent anomaly cause attributed to the module.
    pub fn last_cause(&self) -> Option<AnomalyKind> {
        self.last_cause
    }

    /// Failed probes in the current quarantine episode.
    pub fn probe_attempts(&self) -> u32 {
        self.probe_attempts
    }

    /// Anomalies attributed in the current suspect episode (the counter
    /// compared against [`HealthConfig::quarantine_threshold`]). Exposed
    /// so external exhaustive explorers (`rse-mc`) can canonicalize the
    /// machine's state through the public API.
    pub fn anomaly_count(&self) -> u32 {
        self.anomalies
    }

    /// Cycle of the most recent attributed anomaly (the reference point
    /// of the `Suspect → Healthy` quiet-window decay).
    pub fn last_anomaly_at(&self) -> Option<u64> {
        self.last_anomaly_at
    }

    /// Cycle at which the next self-test probe may launch, if the module
    /// is quarantined.
    pub fn next_probe_at(&self) -> Option<u64> {
        self.next_probe_at
    }

    /// Whether a probe may launch now.
    pub fn probe_due(&self, now: u64) -> bool {
        self.state == HealthState::Quarantined && self.next_probe_at.is_some_and(|at| now >= at)
    }

    /// Marks a probe as launched (clears the due flag until the probe
    /// resolves via [`HealthEvent::ProbeSuccess`] /
    /// [`HealthEvent::ProbeFailure`]).
    pub fn note_probe_launched(&mut self) {
        self.next_probe_at = None;
        self.probes_launched += 1;
    }

    /// Applies one event at cycle `now` and returns the `(from, to)`
    /// state pair. Every reachable edge of the machine goes through
    /// here.
    pub fn apply(
        &mut self,
        config: &HealthConfig,
        now: u64,
        event: HealthEvent,
    ) -> (HealthState, HealthState) {
        let from = self.state;
        match (self.state, event) {
            // Disabled is absorbing.
            (HealthState::Disabled, _) => {}
            (_, HealthEvent::Anomaly(kind)) => {
                self.last_cause = Some(kind);
                self.last_anomaly_at = Some(now);
                match self.state {
                    HealthState::Healthy => {
                        self.anomalies = 1;
                        self.state = if config.quarantine_threshold <= 1 {
                            self.enter_quarantine(config, now);
                            HealthState::Quarantined
                        } else {
                            HealthState::Suspect
                        };
                    }
                    HealthState::Suspect => {
                        self.anomalies += 1;
                        if self.anomalies >= config.quarantine_threshold {
                            self.enter_quarantine(config, now);
                            self.state = HealthState::Quarantined;
                        }
                    }
                    // Anomalies while quarantined cannot occur on the
                    // muxed output wires, but a racing report is simply
                    // recorded without a transition.
                    HealthState::Quarantined | HealthState::Disabled => {}
                }
            }
            (HealthState::Quarantined, HealthEvent::ProbeSuccess) => {
                self.state = HealthState::Healthy;
                self.anomalies = 0;
                self.probe_attempts = 0;
                self.next_probe_at = None;
                self.reenables += 1;
            }
            (HealthState::Quarantined, HealthEvent::ProbeFailure) => {
                self.probe_attempts += 1;
                if self.probe_attempts >= config.max_probe_attempts {
                    self.state = HealthState::Disabled;
                    self.next_probe_at = None;
                } else {
                    // Exponential backoff: base << attempts.
                    self.next_probe_at =
                        Some(now + (config.probe_base << self.probe_attempts.min(32)));
                }
            }
            (HealthState::Suspect, HealthEvent::Quiet)
                if self
                    .last_anomaly_at
                    .is_none_or(|at| now.saturating_sub(at) >= config.suspect_decay) =>
            {
                self.state = HealthState::Healthy;
                self.anomalies = 0;
            }
            // Probe results outside quarantine and quiet ticks elsewhere
            // are no-ops.
            _ => {}
        }
        (from, self.state)
    }

    fn enter_quarantine(&mut self, config: &HealthConfig, now: u64) {
        self.quarantines += 1;
        self.probe_attempts = 0;
        // First probe after the base backoff (base << 0).
        self.next_probe_at = Some(now + config.probe_base);
    }
}

/// Whether `(from, to)` is a legal edge of the health state machine
/// (including self-loops). Exported so the property-test suite and the
/// watchdog's debug assertions share one definition.
pub fn legal_edge(from: HealthState, to: HealthState) -> bool {
    use HealthState::*;
    matches!(
        (from, to),
        (Healthy, Healthy)
            | (Healthy, Suspect)
            | (Healthy, Quarantined) // threshold == 1
            | (Suspect, Suspect)
            | (Suspect, Healthy)
            | (Suspect, Quarantined)
            | (Quarantined, Quarantined)
            | (Quarantined, Healthy)
            | (Quarantined, Disabled)
            | (Disabled, Disabled)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            quarantine_threshold: 2,
            probe_base: 100,
            probe_timeout: 50,
            max_probe_attempts: 3,
            suspect_decay: 1_000,
            // (No other fields today, but stay future-proof.)
        }
    }

    #[test]
    fn anomaly_path_reaches_quarantine() {
        let mut h = ModuleHealth::new();
        assert_eq!(h.state(), HealthState::Healthy);
        h.apply(&cfg(), 10, HealthEvent::Anomaly(AnomalyKind::Timeout));
        assert_eq!(h.state(), HealthState::Suspect);
        h.apply(&cfg(), 20, HealthEvent::Anomaly(AnomalyKind::Timeout));
        assert_eq!(h.state(), HealthState::Quarantined);
        assert_eq!(h.quarantines, 1);
        assert_eq!(h.last_cause(), Some(AnomalyKind::Timeout));
        // First probe is due after the base backoff.
        assert!(!h.probe_due(119));
        assert!(h.probe_due(120));
    }

    #[test]
    fn probe_success_reenables() {
        let mut h = ModuleHealth::new();
        h.apply(&cfg(), 0, HealthEvent::Anomaly(AnomalyKind::ErrorBurst));
        h.apply(&cfg(), 1, HealthEvent::Anomaly(AnomalyKind::ErrorBurst));
        h.note_probe_launched();
        h.apply(&cfg(), 150, HealthEvent::ProbeSuccess);
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.reenables, 1);
        assert_eq!(h.probe_attempts(), 0);
    }

    #[test]
    fn backoff_doubles_and_k_failures_disable() {
        let mut h = ModuleHealth::new();
        h.apply(&cfg(), 0, HealthEvent::Anomaly(AnomalyKind::Timeout));
        h.apply(&cfg(), 0, HealthEvent::Anomaly(AnomalyKind::Timeout));
        assert_eq!(h.next_probe_at(), Some(100)); // base << 0
        h.note_probe_launched();
        h.apply(&cfg(), 150, HealthEvent::ProbeFailure);
        assert_eq!(h.next_probe_at(), Some(150 + 200)); // base << 1
        h.note_probe_launched();
        h.apply(&cfg(), 400, HealthEvent::ProbeFailure);
        assert_eq!(h.next_probe_at(), Some(400 + 400)); // base << 2
        h.note_probe_launched();
        h.apply(&cfg(), 900, HealthEvent::ProbeFailure);
        assert_eq!(h.state(), HealthState::Disabled);
        assert_eq!(h.next_probe_at(), None);
    }

    #[test]
    fn disabled_is_absorbing() {
        let mut h = ModuleHealth::new();
        for _ in 0..2 {
            h.apply(&cfg(), 0, HealthEvent::Anomaly(AnomalyKind::Timeout));
        }
        for _ in 0..3 {
            h.apply(&cfg(), 0, HealthEvent::ProbeFailure);
        }
        assert_eq!(h.state(), HealthState::Disabled);
        for ev in [
            HealthEvent::Anomaly(AnomalyKind::ErrorBurst),
            HealthEvent::ProbeSuccess,
            HealthEvent::ProbeFailure,
            HealthEvent::Quiet,
        ] {
            let (from, to) = h.apply(&cfg(), 99, ev);
            assert_eq!((from, to), (HealthState::Disabled, HealthState::Disabled));
        }
    }

    #[test]
    fn suspect_decays_after_quiet_window() {
        let mut h = ModuleHealth::new();
        h.apply(
            &cfg(),
            100,
            HealthEvent::Anomaly(AnomalyKind::PrematurePass),
        );
        assert_eq!(h.state(), HealthState::Suspect);
        h.apply(&cfg(), 500, HealthEvent::Quiet);
        assert_eq!(h.state(), HealthState::Suspect, "window not elapsed yet");
        h.apply(&cfg(), 1_100, HealthEvent::Quiet);
        assert_eq!(h.state(), HealthState::Healthy);
        // The episode counter reset: quarantine needs a fresh pair.
        h.apply(&cfg(), 1_200, HealthEvent::Anomaly(AnomalyKind::Timeout));
        assert_eq!(h.state(), HealthState::Suspect);
    }

    #[test]
    fn threshold_one_quarantines_immediately() {
        let cfg = HealthConfig {
            quarantine_threshold: 1,
            ..cfg()
        };
        let mut h = ModuleHealth::new();
        h.apply(&cfg, 0, HealthEvent::Anomaly(AnomalyKind::Timeout));
        assert_eq!(h.state(), HealthState::Quarantined);
    }

    #[test]
    fn states_render_human_readably() {
        assert_eq!(HealthState::Quarantined.to_string(), "quarantined");
        assert_eq!(AnomalyKind::PrematurePass.to_string(), "premature-pass");
        assert!(HealthState::Disabled.is_down());
        assert!(!HealthState::Suspect.is_down());
    }

    #[test]
    fn legal_edges_are_closed_over_random_events() {
        // Cheap in-module sanity; the full property test drives this via
        // the rse-support harness, and the exhaustive proof lives in
        // `rse-mc`. Both inclusion directions are asserted: every taken
        // edge is legal (closure) AND every legal edge is taken
        // (reverse completeness) — a silently-unreachable legal edge
        // fails here too.
        use std::collections::HashSet;
        let mut observed: HashSet<(HealthState, HealthState)> = HashSet::new();
        // Threshold 2 covers everything except the threshold-1 shortcut
        // edge `Healthy → Quarantined`; a second pass covers that.
        for threshold in [2u32, 1] {
            let config = HealthConfig {
                quarantine_threshold: threshold,
                probe_base: 100,
                probe_timeout: 50,
                max_probe_attempts: 3,
                suspect_decay: 50,
            };
            let mut h = ModuleHealth::new();
            let mut now = 0u64;
            let mut s: u64 = 0x1234 ^ u64::from(threshold);
            for _ in 0..10_000u64 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let ev = match s >> 60 {
                    0..=5 => HealthEvent::Anomaly(AnomalyKind::Timeout),
                    6..=9 => HealthEvent::Anomaly(AnomalyKind::ErrorBurst),
                    10..=11 => HealthEvent::ProbeSuccess,
                    12..=13 => HealthEvent::ProbeFailure,
                    _ => HealthEvent::Quiet,
                };
                // Mostly small steps; an occasional jump past the decay
                // window so the `Suspect → Healthy` back-edge is hit.
                now += if (s >> 32) & 0xF == 0 {
                    config.suspect_decay + 1
                } else {
                    1 + ((s >> 16) & 7)
                };
                let (from, to) = h.apply(&config, now, ev);
                assert!(legal_edge(from, to), "illegal edge {from} -> {to}");
                observed.insert((from, to));
                // Disabled is absorbing: restart the machine so the
                // sampler keeps visiting the live part of the graph.
                if to == HealthState::Disabled && from == HealthState::Disabled {
                    h = ModuleHealth::new();
                }
            }
        }
        let all = [
            HealthState::Healthy,
            HealthState::Suspect,
            HealthState::Quarantined,
            HealthState::Disabled,
        ];
        for from in all {
            for to in all {
                assert_eq!(
                    observed.contains(&(from, to)),
                    legal_edge(from, to),
                    "edge {from} -> {to}: observed-set and legal_edge disagree"
                );
            }
        }
    }
}
