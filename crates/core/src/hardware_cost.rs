//! The paper's analytical hardware-overhead model (footnote 4 of §3.1).
//!
//! For a 32-bit processor with a 16-entry reorder buffer the paper
//! estimates the input interface at ≈2560 flip-flops and ≈12 800 gates:
//!
//! * flip-flops = #input queues × #entries per queue × #bits per entry
//!   = 5 × 16 × 32 = 2560;
//! * MUX gates: a 2-to-1 MUX with feedback loop is 4 gates, 3-to-1 is 5,
//!   4-to-1 is 6; two inputs need 4-to-1 MUXes, two need 2-to-1, one
//!   needs 3-to-1, each replicated per bit per entry:
//!   (2×6 + 2×4 + 1×5) × 32 × 16 = 25 × 512 = 12 800.

use crate::RseConfig;

/// Number of input queues in the interface (Fetch_Out, Regfile_Data,
/// Execute_Out, Memory_Out, Commit_Out).
pub const INPUT_QUEUES: u32 = 5;

/// Gate cost of an n-to-1 multiplexer with feedback loop, per the
/// paper's footnote: 2→4 gates, 3→5 gates, 4→6 gates.
pub fn mux_gates(inputs: u32) -> u32 {
    match inputs {
        2 => 4,
        3 => 5,
        4 => 6,
        n => 2 + 2 * (n.max(1) - 1) + 2, // linear extrapolation of the same model
    }
}

/// Estimated hardware cost of the framework's input interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareCost {
    /// Flip-flops implementing the input-queue storage.
    pub flip_flops: u64,
    /// Gates implementing the input multiplexers.
    pub mux_gate_count: u64,
}

/// Computes the cost model for a configuration.
///
/// The multiplexer mix follows Figure 1: `Execute_Out` selects among
/// ALU/MDU/LSU (3-to-1); `Fetch_Out` and `Commit_Out` select among the
/// four fetch/commit slots (4-to-1); `Regfile_Data` and `Memory_Out` are
/// 2-to-1.
pub fn input_interface_cost(config: &RseConfig) -> HardwareCost {
    let entries = config.queue_entries as u64;
    let bits = config.entry_bits as u64;
    let flip_flops = INPUT_QUEUES as u64 * entries * bits;
    let per_bit_gates = (2 * mux_gates(4) + 2 * mux_gates(2) + mux_gates(3)) as u64;
    let mux_gate_count = per_bit_gates * bits * entries;
    HardwareCost {
        flip_flops,
        mux_gate_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_footnote4() {
        let cost = input_interface_cost(&RseConfig::default());
        assert_eq!(cost.flip_flops, 2560);
        assert_eq!(cost.mux_gate_count, 12_800);
    }

    #[test]
    fn mux_gate_model() {
        assert_eq!(mux_gates(2), 4);
        assert_eq!(mux_gates(3), 5);
        assert_eq!(mux_gates(4), 6);
        // Extrapolation is monotone.
        assert!(mux_gates(8) > mux_gates(4));
    }

    #[test]
    fn scales_with_rob_size() {
        let big = RseConfig {
            queue_entries: 32,
            ..RseConfig::default()
        };
        let cost = input_interface_cost(&big);
        assert_eq!(cost.flip_flops, 5120);
        assert_eq!(cost.mux_gate_count, 25_600);
    }
}
