//! # rse-core — the Reliability and Security Engine framework
//!
//! The primary contribution of *"An Architectural Framework for Providing
//! Reliability and Security Support"* (DSN 2004): an on-chip engine,
//! attached to the processor pipeline, that hosts hardware modules
//! providing application-aware reliability and security services.
//!
//! The engine ([`Engine`]) implements the pipeline's
//! [`CoProcessor`](rse_pipeline::CoProcessor) tap interface and contains:
//!
//! * the **input interface** ([`queues`]) — five input queues
//!   (`Fetch_Out`, `Regfile_Data`, `Execute_Out`, `Memory_Out`,
//!   `Commit_Out`), each with as many entries as the reorder buffer
//!   (§3.1),
//! * the **Instruction Output Queue** ([`ioq`]) — per-instruction
//!   `check`/`checkValid` bits with exactly the Table 1 semantics, gating
//!   instruction commit,
//! * the **Memory Access Unit** ([`mau`]) — a shared port into memory for
//!   all modules, serviced cyclically, sharing the external bus with the
//!   pipeline through the arbiter (pipeline priority; §3.2),
//! * the **module host** ([`module`]) — up to 16 module slots addressed
//!   by the CHECK instruction's module number, with the enable/disable
//!   unit of §3.2,
//! * the **self-checking watchdog** ([`watchdog`]) — §3.4 / Table 2:
//!   transition monitoring on the IOQ bits plus an error-burst counter,
//!   with every anomaly attributed to the owning module,
//! * the **per-module containment machinery** ([`health`]) — each module
//!   slot owns a `Healthy → Suspect → Quarantined → Disabled` state
//!   machine; a quarantined module's CHECKs commit as NOPs through the
//!   §3.4 output multiplexer while the other modules keep running, and
//!   self-test probes with exponential backoff attempt re-enable. Global
//!   safe mode (every instruction commits freely) remains as the
//!   escalation of last resort,
//! * the **hardware cost model** ([`hardware_cost`]) — the paper's
//!   footnote-4 flip-flop and gate-count estimates, parameterized.
//!
//! Modules operate in one of two modes (§3, Figure 2): **synchronous**
//! (blocking CHECK — the pipeline may not commit the instruction until
//! the module completes) and **asynchronous** (non-blocking CHECK — the
//! module lags the pipeline and logs permanent state only when the
//! instruction commits).
//!
//! # Example
//!
//! ```
//! use rse_core::{Engine, RseConfig};
//! use rse_core::testutil::CountingModule;
//! use rse_isa::ModuleId;
//!
//! let mut engine = Engine::new(RseConfig::default());
//! engine.install(Box::new(CountingModule::new(ModuleId::new(9))));
//! assert!(engine.module_installed(ModuleId::new(9)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod engine;
pub mod hardware_cost;
pub mod health;
pub mod ioq;
pub mod mau;
pub mod module;
pub mod queues;
pub mod testutil;
pub mod watchdog;

pub use config::RseConfig;
pub use engine::{probe_rob, ChkFault, Engine, RseStats, PROBE_ROB_BASE};
pub use health::{AnomalyKind, HealthConfig, HealthEvent, HealthState, ModuleHealth};
pub use ioq::{Ioq, IoqEntryKind, IoqFault};
pub use mau::{Mau, MauOp, MauRequest};
pub use module::{ChkDispatch, Module, ModuleCtx, Verdict};
pub use watchdog::{SafeModeCause, Watchdog, WatchdogConfig};
