//! The Instruction Output Queue (IOQ).
//!
//! An IOQ entry is allocated for **every** instruction when it is
//! forwarded to the framework (simultaneously with dispatch, §3.2). The
//! entry carries two bits whose meaning is Table 1 of the paper:
//!
//! | `checkValid` | `check` | Meaning |
//! |---|---|---|
//! | 0 | 0 | entry allocated for a CHECK whose execution is incomplete — the pipeline may stall at commit |
//! | 1 | 0 | non-CHECK instruction, or CHECK that completed without error — commit proceeds |
//! | 1 | 1 | a module detected an error — the pipeline is flushed |
//!
//! The IOQ also records the bookkeeping the self-checking watchdog of
//! §3.4 monitors: allocation time, the time of the 0→1 `checkValid`
//! transition, and whether a module (as opposed to a stuck-at fault)
//! produced the bits.

use rse_isa::ModuleId;
use rse_pipeline::{CommitGate, RobId};
use std::collections::HashMap;

/// What kind of instruction an IOQ entry was allocated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IoqEntryKind {
    /// A non-CHECK instruction: bits initialized to `10` (commit freely).
    Plain,
    /// A blocking CHECK handled by a module: bits initialized to `00`.
    BlockingChk(ModuleId),
    /// A non-blocking CHECK: the module sets `checkValid` immediately
    /// after acquiring the instruction, so commit never waits.
    NonBlockingChk(ModuleId),
}

/// Injectable stuck-at faults on the IOQ output bits (the §3.4 / Table 2
/// error scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IoqFault {
    /// `checkValid` stuck at 0: blocking CHECKs stall forever.
    ValidStuck0,
    /// `checkValid` stuck at 1: results pass before modules finish.
    ValidStuck1,
    /// `check` stuck at 0: errors are never reported (false negative).
    CheckStuck0,
    /// `check` stuck at 1: the pipeline is flushed repeatedly.
    CheckStuck1,
}

impl std::fmt::Display for IoqFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoqFault::ValidStuck0 => {
                write!(f, "checkValid stuck at 0 (blocking CHECKs stall forever)")
            }
            IoqFault::ValidStuck1 => {
                write!(
                    f,
                    "checkValid stuck at 1 (results pass before modules finish)"
                )
            }
            IoqFault::CheckStuck0 => {
                write!(
                    f,
                    "check stuck at 0 (errors never reported: false negative)"
                )
            }
            IoqFault::CheckStuck1 => {
                write!(f, "check stuck at 1 (pipeline flushed repeatedly)")
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct IoqEntry {
    kind: IoqEntryKind,
    check_valid: bool,
    check: bool,
    allocated_at: u64,
    valid_set_at: Option<u64>,
    /// Whether a module actually wrote the result (distinguishes a real
    /// completion from a stuck-at-1 `checkValid`).
    module_wrote: bool,
}

/// The Instruction Output Queue.
#[derive(Debug, Clone, Default)]
pub struct Ioq {
    entries: HashMap<RobId, IoqEntry>,
    capacity: usize,
    fault: Option<IoqFault>,
    /// A stuck-at fault confined to the output bits of one module's
    /// CHECK entries (the module-targeted campaign fault models); other
    /// modules' entries and plain entries are unaffected.
    module_fault: Option<(ModuleId, IoqFault)>,
    /// Total entries ever allocated.
    pub allocated_total: u64,
    /// Error verdicts recorded (check 0→1 transitions).
    pub error_verdicts: u64,
}

/// The module a CHECK entry belongs to, if the entry is a CHECK.
fn entry_module(kind: IoqEntryKind) -> Option<ModuleId> {
    match kind {
        IoqEntryKind::Plain => None,
        IoqEntryKind::BlockingChk(m) | IoqEntryKind::NonBlockingChk(m) => Some(m),
    }
}

impl Ioq {
    /// Creates an IOQ with `capacity` entries (the ROB size).
    pub fn new(capacity: usize) -> Ioq {
        Ioq {
            capacity,
            ..Ioq::default()
        }
    }

    /// Number of live entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Injects (or clears) a stuck-at fault on the output bits.
    pub fn inject_fault(&mut self, fault: Option<IoqFault>) {
        self.fault = fault;
    }

    /// The currently injected fault, if any.
    pub fn fault(&self) -> Option<IoqFault> {
        self.fault
    }

    /// Injects (or clears) a stuck-at fault confined to one module's
    /// CHECK entries.
    pub fn inject_module_fault(&mut self, fault: Option<(ModuleId, IoqFault)>) {
        self.module_fault = fault;
    }

    /// The currently injected module-targeted fault, if any.
    pub fn module_fault(&self) -> Option<(ModuleId, IoqFault)> {
        self.module_fault
    }

    /// The fault observable on the output wires of `module`'s CHECK
    /// entries — used by the engine's self-test probe evaluation, which
    /// reads the same wires as the commit unit.
    pub fn effective_fault_for(&self, module: ModuleId) -> Option<IoqFault> {
        self.effective_fault(IoqEntryKind::BlockingChk(module))
    }

    /// The fault observable on the output bits of an entry of `kind`:
    /// the global fault if present, else the module-targeted fault when
    /// the entry belongs to the targeted module.
    fn effective_fault(&self, kind: IoqEntryKind) -> Option<IoqFault> {
        self.fault.or_else(|| {
            self.module_fault
                .and_then(|(m, f)| (entry_module(kind) == Some(m)).then_some(f))
        })
    }

    /// Allocates an entry for a dispatched instruction.
    ///
    /// # Panics
    ///
    /// Panics if the IOQ would exceed its capacity — the pipeline cannot
    /// have more in-flight instructions than ROB entries, so this
    /// indicates a bookkeeping bug.
    pub fn allocate(&mut self, now: u64, rob: RobId, kind: IoqEntryKind) {
        assert!(
            self.entries.len() < self.capacity,
            "IOQ overflow: more entries than the ROB"
        );
        let (check_valid, check) = match kind {
            // Table 1: non-CHECK instructions start at `10`.
            IoqEntryKind::Plain => (true, false),
            // CHECK instructions start at `00`.
            IoqEntryKind::BlockingChk(_) | IoqEntryKind::NonBlockingChk(_) => (false, false),
        };
        self.allocated_total += 1;
        self.entries.insert(
            rob,
            IoqEntry {
                kind,
                check_valid,
                check,
                allocated_at: now,
                valid_set_at: check_valid.then_some(now),
                module_wrote: false,
            },
        );
    }

    /// A module (or the enable/disable unit, or the asynchronous-mode
    /// fast path) writes the result bits for `rob`: `error` selects the
    /// `check` bit, and `checkValid` is set.
    pub fn complete(&mut self, now: u64, rob: RobId, error: bool) {
        if let Some(e) = self.entries.get_mut(&rob) {
            if !e.check_valid {
                e.valid_set_at = Some(now);
            }
            e.check_valid = true;
            if error && !e.check {
                self.error_verdicts += 1;
            }
            e.check = error;
            e.module_wrote = true;
        }
    }

    /// Frees the entry for a committed or squashed instruction.
    pub fn free(&mut self, rob: RobId) {
        self.entries.remove(&rob);
    }

    /// Reads the commit gate for `rob`, applying any injected stuck-at
    /// fault to the observed bits (the fault sits on the output wires to
    /// the commit unit, exactly as in Table 2).
    pub fn gate(&self, rob: RobId) -> CommitGate {
        let Some(e) = self.entries.get(&rob) else {
            // Untracked instruction (allocated before the engine attached):
            // behaves like `10`.
            return CommitGate::Pass;
        };
        let mut valid = e.check_valid;
        let mut check = e.check;
        match self.effective_fault(e.kind) {
            Some(IoqFault::ValidStuck0) => valid = false,
            Some(IoqFault::ValidStuck1) => valid = true,
            Some(IoqFault::CheckStuck0) => check = false,
            Some(IoqFault::CheckStuck1) => check = true,
            None => {}
        }
        match (valid, check) {
            (false, _) => CommitGate::Stall,
            (true, false) => CommitGate::Pass,
            (true, true) => CommitGate::Flush,
        }
    }

    /// Iterates over entries for the watchdog: `(rob, kind, allocated_at,
    /// check_valid, module_wrote)`.
    ///
    /// The watchdog monitors the same output wires the commit unit reads,
    /// so an injected stuck-at fault is visible here too — that is
    /// exactly how §3.4 detects a stuck-at-0 `checkValid` (it looks like
    /// a module that never makes progress).
    ///
    /// Entries come out in ascending ROB order, not hash-map order: when
    /// several modules time out in the same cycle, the anomaly charge
    /// sequence (and hence the health state machine's event order) must
    /// not depend on `HashMap` iteration.
    pub fn watchdog_view(
        &self,
    ) -> impl Iterator<Item = (RobId, IoqEntryKind, u64, bool, bool)> + '_ {
        let mut view: Vec<_> = self
            .entries
            .iter()
            .map(|(rob, e)| {
                let valid = match self.effective_fault(e.kind) {
                    Some(IoqFault::ValidStuck0) => false,
                    Some(IoqFault::ValidStuck1) => true,
                    _ => e.check_valid,
                };
                (*rob, e.kind, e.allocated_at, valid, e.module_wrote)
            })
            .collect();
        view.sort_unstable_by_key(|&(rob, ..)| rob);
        view.into_iter()
    }

    /// The kind of a live entry.
    pub fn entry_kind(&self, rob: RobId) -> Option<IoqEntryKind> {
        self.entries.get(&rob).map(|e| e.kind)
    }

    /// Raw `(kind, module_wrote, check)` of a live entry — the
    /// *unfaulted* bits, for the engine's commit-time bookkeeping (clean
    /// commits, NOP-mux accounting).
    pub fn entry_state(&self, rob: RobId) -> Option<(IoqEntryKind, bool, bool)> {
        self.entries
            .get(&rob)
            .map(|e| (e.kind, e.module_wrote, e.check))
    }

    /// Live CHECK entries of `module` whose result was never written by
    /// the module. When a module heals out of quarantine these stale
    /// entries would stall commit forever (their CHECKs were dropped
    /// while decoupled), so the engine force-NOPs them.
    pub fn incomplete_for(&self, module: ModuleId) -> Vec<RobId> {
        let mut robs: Vec<RobId> = self
            .entries
            .iter()
            .filter(|(_, e)| entry_module(e.kind) == Some(module) && !e.module_wrote)
            .map(|(rob, _)| *rob)
            .collect();
        robs.sort_unstable();
        robs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: ModuleId = ModuleId::ICM;

    #[test]
    fn table1_plain_instruction_commits_freely() {
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(1), IoqEntryKind::Plain);
        assert_eq!(ioq.gate(RobId(1)), CommitGate::Pass);
    }

    #[test]
    fn table1_blocking_chk_stalls_until_complete() {
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(2), IoqEntryKind::BlockingChk(M));
        assert_eq!(ioq.gate(RobId(2)), CommitGate::Stall);
        ioq.complete(5, RobId(2), false);
        assert_eq!(ioq.gate(RobId(2)), CommitGate::Pass);
    }

    #[test]
    fn table1_error_flushes() {
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(3), IoqEntryKind::BlockingChk(M));
        ioq.complete(4, RobId(3), true);
        assert_eq!(ioq.gate(RobId(3)), CommitGate::Flush);
        assert_eq!(ioq.error_verdicts, 1);
    }

    #[test]
    fn untracked_instruction_passes() {
        let ioq = Ioq::new(16);
        assert_eq!(ioq.gate(RobId(99)), CommitGate::Pass);
    }

    #[test]
    fn free_releases_capacity() {
        let mut ioq = Ioq::new(2);
        ioq.allocate(0, RobId(1), IoqEntryKind::Plain);
        ioq.allocate(0, RobId(2), IoqEntryKind::Plain);
        assert_eq!(ioq.occupancy(), 2);
        ioq.free(RobId(1));
        ioq.allocate(1, RobId(3), IoqEntryKind::Plain);
        assert_eq!(ioq.occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "IOQ overflow")]
    fn overflow_panics() {
        let mut ioq = Ioq::new(1);
        ioq.allocate(0, RobId(1), IoqEntryKind::Plain);
        ioq.allocate(0, RobId(2), IoqEntryKind::Plain);
    }

    #[test]
    fn stuck_at_faults_bias_gate() {
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(1), IoqEntryKind::BlockingChk(M));
        ioq.complete(1, RobId(1), false);
        ioq.inject_fault(Some(IoqFault::CheckStuck1));
        assert_eq!(ioq.gate(RobId(1)), CommitGate::Flush);
        ioq.inject_fault(Some(IoqFault::ValidStuck0));
        assert_eq!(ioq.gate(RobId(1)), CommitGate::Stall);
        ioq.inject_fault(Some(IoqFault::ValidStuck1));
        assert_eq!(ioq.gate(RobId(1)), CommitGate::Pass);
        ioq.inject_fault(None);
        assert_eq!(ioq.gate(RobId(1)), CommitGate::Pass);
    }

    #[test]
    fn fault_display_is_human_readable() {
        assert_eq!(
            IoqFault::ValidStuck0.to_string(),
            "checkValid stuck at 0 (blocking CHECKs stall forever)"
        );
        assert!(IoqFault::CheckStuck1.to_string().contains("flushed"));
        assert!(IoqFault::CheckStuck0.to_string().contains("false negative"));
        assert!(IoqFault::ValidStuck1.to_string().contains("stuck at 1"));
    }

    #[test]
    fn module_fault_is_confined_to_that_module() {
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(1), IoqEntryKind::Plain);
        ioq.allocate(0, RobId(2), IoqEntryKind::BlockingChk(ModuleId::ICM));
        ioq.allocate(0, RobId(3), IoqEntryKind::BlockingChk(ModuleId::MLR));
        ioq.complete(1, RobId(2), false);
        ioq.complete(1, RobId(3), false);
        ioq.inject_module_fault(Some((ModuleId::ICM, IoqFault::ValidStuck0)));
        // Only the ICM entry observes the stuck bit.
        assert_eq!(ioq.gate(RobId(1)), CommitGate::Pass);
        assert_eq!(ioq.gate(RobId(2)), CommitGate::Stall);
        assert_eq!(ioq.gate(RobId(3)), CommitGate::Pass);
        let stuck: Vec<_> = ioq
            .watchdog_view()
            .filter(|(_, _, _, valid, _)| !*valid)
            .map(|(rob, ..)| rob)
            .collect();
        assert_eq!(stuck, vec![RobId(2)]);
        ioq.inject_module_fault(None);
        assert_eq!(ioq.gate(RobId(2)), CommitGate::Pass);
    }

    #[test]
    fn global_fault_takes_precedence_over_module_fault() {
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(2), IoqEntryKind::BlockingChk(M));
        ioq.complete(1, RobId(2), false);
        ioq.inject_module_fault(Some((M, IoqFault::ValidStuck0)));
        ioq.inject_fault(Some(IoqFault::CheckStuck1));
        assert_eq!(ioq.gate(RobId(2)), CommitGate::Flush);
    }

    #[test]
    fn entry_state_and_incomplete_for_report_raw_bits() {
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(1), IoqEntryKind::BlockingChk(M));
        ioq.allocate(0, RobId(2), IoqEntryKind::NonBlockingChk(M));
        ioq.allocate(0, RobId(3), IoqEntryKind::BlockingChk(ModuleId::MLR));
        ioq.allocate(0, RobId(4), IoqEntryKind::Plain);
        ioq.complete(1, RobId(2), true);
        assert_eq!(ioq.incomplete_for(M), vec![RobId(1)]);
        assert_eq!(ioq.incomplete_for(ModuleId::MLR), vec![RobId(3)]);
        assert_eq!(
            ioq.entry_state(RobId(2)),
            Some((IoqEntryKind::NonBlockingChk(M), true, true))
        );
        assert_eq!(ioq.entry_kind(RobId(4)), Some(IoqEntryKind::Plain));
        assert_eq!(ioq.entry_kind(RobId(99)), None);
    }

    #[test]
    fn check_stuck0_masks_errors() {
        let mut ioq = Ioq::new(16);
        ioq.allocate(0, RobId(1), IoqEntryKind::BlockingChk(M));
        ioq.complete(1, RobId(1), true);
        ioq.inject_fault(Some(IoqFault::CheckStuck0));
        // The module said "error" but the stuck bit hides it.
        assert_eq!(ioq.gate(RobId(1)), CommitGate::Pass);
    }
}
